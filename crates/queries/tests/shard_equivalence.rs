//! Seeded property test for the intra-query sharding subsystem
//! (`tlc::par`): over the whole adapted workload (x1–x20, Q1, Q2, x10a)
//! and random shard counts — including the degenerate single-shard plan
//! and shard counts far above the anchor's candidate count — a sharded
//! execution must serialize byte-identically to the single-threaded
//! reference, on both the tree-walk backend (`--ir off`) and the
//! register-IR backend (`--ir on`).

use tlc::par::{execute_sharded, execute_sharded_vm, plan_shards, ShardPlan, ShardPolicy};

/// Deterministic xorshift64* — the repo is dependency-free, and the test
/// must replay identically across runs.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn pick(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next() as usize) % (hi - lo + 1)
    }
}

#[test]
fn sharded_workload_is_byte_identical_on_both_backends() {
    let db = xmark::auction_database(0.002);
    let mut rng = Rng(0x9E37_79B9_7F4A_7C15);
    let mut sharded_any = false;
    let mut vm_any = false;
    for q in queries::all_queries() {
        let plan =
            tlc::compile(q.text, &db).unwrap_or_else(|e| panic!("{}: compile failed: {e}", q.name));
        let reference = tlc::execute_to_string(&db, &plan)
            .unwrap_or_else(|e| panic!("{}: reference failed: {e}", q.name));
        // Three random shard counts per query, one far above any
        // candidate count (the planner clamps to the candidate count, so
        // the tail windows go empty), and one degenerate 1-shard run.
        let counts = [rng.pick(2, 9), rng.pick(2, 9), 10_000];
        for k in counts {
            let policy = ShardPolicy { max_shards: k, min_candidates: 1 };
            let sp = match plan_shards(&db, &plan, policy) {
                Ok(sp) => sp,
                Err(_) => continue, // sequential fallback is its own test
            };
            sharded_any = true;
            for variant in [sp.clone(), degenerate_single_shard(&sp)] {
                let (trees, _, _) = execute_sharded(&db, &plan, &variant, None)
                    .unwrap_or_else(|e| panic!("{} k={k}: walk shards failed: {e}", q.name));
                assert_eq!(
                    tlc::serialize_results(&db, &trees),
                    reference,
                    "{} k={k} ({} window(s)): tree-walk shards diverged",
                    q.name,
                    variant.ranges.len()
                );
                if let Ok(prog) = tlc::vm::lower(&plan) {
                    vm_any = true;
                    let (trees, _, _) = execute_sharded_vm(&db, &prog, &variant, None)
                        .unwrap_or_else(|e| panic!("{} k={k}: vm shards failed: {e}", q.name));
                    assert_eq!(
                        tlc::serialize_results(&db, &trees),
                        reference,
                        "{} k={k} ({} window(s)): register-IR shards diverged",
                        q.name,
                        variant.ranges.len()
                    );
                }
            }
        }
    }
    assert!(sharded_any, "no workload query ever sharded");
    assert!(vm_any, "no sharded workload query ever lowered to the IR");
}

/// Collapses a shard plan to one full-document window: the degenerate
/// 1-shard execution the planner itself never emits (policy disables
/// below 2), but which the merge path must still handle.
fn degenerate_single_shard(sp: &ShardPlan) -> ShardPlan {
    ShardPlan { ranges: vec![xmldb::OrdRange::full(sp.doc)], ..sp.clone() }
}
