//! Regression test for the class-liveness pruning pass: over the whole
//! adapted workload (x1–x20, Q1, Q2, x10a) and all four plan-producing
//! engines, a pruned plan must verify and serialize byte-identically to
//! the unpruned plan. Together with the seeded random plans of
//! `experiments lintcheck` this pins the pruner to observable behaviour on
//! both hand-written and machine-generated plan shapes.

use baselines::Engine;

#[test]
fn pruned_workload_plans_are_byte_identical_on_every_engine() {
    let db = xmark::auction_database(0.002);
    let mut pruned_any = false;
    for q in queries::all_queries() {
        for engine in [Engine::Tlc, Engine::TlcOpt, Engine::Gtp, Engine::Tax] {
            let plan = baselines::plan_for(engine, q.text, &db)
                .unwrap_or_else(|e| panic!("{} on {engine:?}: compile failed: {e}", q.name));
            let (pruned, report) = tlc::prune_with_report(&plan);
            if !report.changed() {
                continue;
            }
            pruned_any = true;
            tlc::verify(&pruned).unwrap_or_else(|e| {
                panic!("{} on {engine:?}: pruned plan fails verification: {e:?}", q.name)
            });
            let before = tlc::execute_to_string(&db, &plan)
                .unwrap_or_else(|e| panic!("{} on {engine:?}: unpruned failed: {e}", q.name));
            let after = tlc::execute_to_string(&db, &pruned)
                .unwrap_or_else(|e| panic!("{} on {engine:?}: pruned failed: {e}", q.name));
            assert_eq!(before, after, "{} on {engine:?}: pruning changed the output", q.name);
        }
    }
    assert!(pruned_any, "liveness pruning never fired on the whole workload");
}
