#![warn(missing_docs)]

//! # queries — the evaluation workload (paper §6.2)
//!
//! The 23 queries of Figure 15: the twenty XMark benchmark queries
//! (x1…x20), the paper's running examples Q1 and Q2, and x10a (x10 with a
//! highly selective filter). XMark's original queries use a few XQuery
//! features outside the paper's Figure 5 fragment (positional predicates,
//! arithmetic in predicates, user functions); like the paper — which ran
//! everything through the same Figure 5 translator — we adapt them while
//! preserving each query's *shape descriptor* from Figure 15's Comments
//! column (arguments per RETURN, output-tree volume, joins, counts, LETs,
//! `//` usage). The mapping is documented query by query below and in
//! DESIGN.md §4.

pub mod suite;

pub use suite::{all_queries, extended_queries, query, QuerySpec, FIG16_QUERIES, FIG17_QUERIES};

use baselines::Engine;
use tlc::Result;
use xmldb::Database;

/// Runs one named query on one engine against a database.
pub fn run_query(db: &Database, name: &str, engine: Engine) -> Result<String> {
    let spec =
        query(name).ok_or_else(|| tlc::Error::Unsupported(format!("unknown query {name}")))?;
    baselines::run(engine, spec.text, db)
}
