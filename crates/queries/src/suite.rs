//! The query texts and their Figure 15 metadata.

/// One benchmark query.
#[derive(Debug, Clone, Copy)]
pub struct QuerySpec {
    /// Name as it appears in Figure 15 (`x1` … `x20`, `Q1`, `Q2`, `x10a`).
    pub name: &'static str,
    /// The query text (Figure 5 fragment).
    pub text: &'static str,
    /// The paper's Comments column for this query.
    pub comment: &'static str,
    /// Whether the §4 rewrites apply (the Figure 16 set).
    pub rewritable: bool,
}

macro_rules! q {
    ($name:literal, $comment:literal, $rw:literal, $text:literal) => {
        QuerySpec { name: $name, text: $text, comment: $comment, rewritable: $rw }
    };
}

/// The Figure 16 queries (rewrites applicable).
pub const FIG16_QUERIES: [&str; 4] = ["x3", "x5", "Q1", "Q2"];

/// The Figure 17 scalability queries.
pub const FIG17_QUERIES: [&str; 5] = ["x3", "x5", "x13", "Q1", "Q2"];

/// All 23 queries of Figure 15, in table order.
pub fn all_queries() -> &'static [QuerySpec] {
    QUERIES
}

/// Extended workload beyond Figure 15: exercises the grammar corners the
/// XMark adaptation does not reach (OR, SOME, multi-key ORDER BY, FOR over
/// a variable path, a FLWOR in RETURN position). Used by the cross-engine
/// equivalence tests.
pub fn extended_queries() -> &'static [QuerySpec] {
    EXTENDED
}

/// Looks a query up by name.
pub fn query(name: &str) -> Option<&'static QuerySpec> {
    QUERIES.iter().find(|q| q.name == name)
}

static QUERIES: &[QuerySpec] = &[
    q!(
        "x1",
        "1 A/R, single OT",
        false,
        r#"
        FOR $p IN document("auction.xml")//person
        WHERE $p/@id = "person0"
        RETURN $p/name"#
    ),
    q!(
        "x2",
        "1 A/R, lots OT",
        false,
        r#"
        FOR $i IN document("auction.xml")//open_auction/bidder/increase
        RETURN <increase>{$i/text()}</increase>"#
    ),
    q!(
        "x3",
        "J, 2 A/R, avg OT",
        true,
        r#"
        FOR $p IN document("auction.xml")//person
        FOR $a IN document("auction.xml")//open_auction
        WHERE count($a/bidder) > 3 AND $p/@id = $a/bidder/personref/@person
        RETURN <res name={$p/name/text()}>{$a/bidder}</res>"#
    ),
    q!(
        "x4",
        "1 A/R, two OT",
        false,
        r#"
        FOR $o IN document("auction.xml")//open_auction
        WHERE $o/initial > 299
        RETURN $o/initial"#
    ),
    q!(
        "x5",
        "small count, 1 A/R",
        true,
        r#"
        FOR $o IN document("auction.xml")//open_auction
        WHERE $o/quantity = 3 AND count($o/bidder) > 5 AND $o/bidder/increase > 25
        RETURN <n>{count($o/bidder)}</n>"#
    ),
    q!(
        "x6",
        "big count, '//'",
        false,
        r#"
        FOR $r IN document("auction.xml")//regions
        RETURN count($r//item)"#
    ),
    q!(
        "x7",
        "3 big counts, '//'",
        false,
        r#"
        FOR $s IN document("auction.xml")/site
        RETURN <counts>
          <descriptions>{count($s//description)}</descriptions>
          <mails>{count($s//mail)}</mails>
          <texts>{count($s//text)}</texts>
        </counts>"#
    ),
    q!(
        "x8",
        "J, LET, 2 A/R",
        false,
        r#"
        FOR $p IN document("auction.xml")//person
        LET $a := FOR $t IN document("auction.xml")//closed_auction
                  WHERE $t/buyer/@person = $p/@id
                  RETURN <tx>{$t/price/text()}</tx>
        RETURN <item person={$p/name/text()}>{count($a/tx)}</item>"#
    ),
    q!(
        "x9",
        "2J, LETs, 2 A/R",
        false,
        r#"
        FOR $p IN document("auction.xml")//person
        LET $a := FOR $t IN document("auction.xml")//closed_auction
                  WHERE $t/seller/@person = $p/@id AND $t/price > 100
                  RETURN <sale>{$t/price/text()}</sale>
        LET $b := FOR $o IN document("auction.xml")//open_auction
                  WHERE $o/seller/@person = $p/@id
                  RETURN <open>{$o/current/text()}</open>
        RETURN <person name={$p/name/text()}>{count($a/sale)}</person>"#
    ),
    q!(
        "x10",
        "LET, 12 A/R, lots OT",
        false,
        r#"
        FOR $p IN document("auction.xml")//person
        LET $a := FOR $o IN document("auction.xml")//open_auction
                  WHERE $o/seller/@person = $p/@id
                  RETURN <rec>
                    <f1>{$o/initial/text()}</f1>
                    <f2>{$o/current/text()}</f2>
                    <f3>{$o/quantity/text()}</f3>
                    <f4>{$o/type/text()}</f4>
                    <f5>{$o/interval/start/text()}</f5>
                    <f6>{$o/interval/end/text()}</f6>
                    <f7>{$o/itemref/@item/text()}</f7>
                    <f8>{$o/seller/@person/text()}</f8>
                    <f9>{$o/annotation/happiness/text()}</f9>
                    <f10>{$o/annotation/author/@person/text()}</f10>
                    <f11>{count($o/bidder)}</f11>
                    <f12>{$o/privacy/text()}</f12>
                  </rec>
        RETURN <person name={$p/name/text()}>{$a/rec}</person>"#
    ),
    q!(
        "x11",
        "count, LET, lots OT",
        false,
        r#"
        FOR $p IN document("auction.xml")//person
        LET $l := FOR $i IN document("auction.xml")//item
                  WHERE $i/location = $p/address/country
                  RETURN <match>{$i/name/text()}</match>
        RETURN <items name={$p/name/text()}>{count($l/match)}</items>"#
    ),
    q!(
        "x12",
        "count, LET, avg OT",
        false,
        r#"
        FOR $p IN document("auction.xml")//person
        LET $l := FOR $i IN document("auction.xml")//item
                  WHERE $i/location = $p/address/country
                  RETURN <match>{$i/name/text()}</match>
        WHERE $p/profile/@income > 65000
        RETURN <items name={$p/name/text()}>{count($l/match)}</items>"#
    ),
    q!(
        "x13",
        "2 A/R, avg OT",
        false,
        r#"
        FOR $i IN document("auction.xml")//australia/item
        RETURN <item name={$i/name/text()}>{$i/description}</item>"#
    ),
    q!(
        "x14",
        "'//', contains on desc",
        false,
        r#"
        FOR $i IN document("auction.xml")//item
        WHERE contains($i/description, "gold")
        RETURN $i/name"#
    ),
    q!(
        "x15",
        "long path, return $var",
        false,
        r#"
        FOR $t IN document("auction.xml")//closed_auction/annotation/description/parlist/listitem/parlist/listitem/text
        RETURN $t"#
    ),
    q!(
        "x16",
        "long path, 1 A/R",
        false,
        r#"
        FOR $t IN document("auction.xml")//closed_auction/annotation/description/parlist/listitem/parlist/listitem/text
        RETURN <text>{$t/text()}</text>"#
    ),
    q!(
        "x17",
        "1 A/R, lots OT",
        false,
        r#"
        FOR $p IN document("auction.xml")//person
        WHERE contains($p/emailaddress, "mailto:")
        RETURN $p/name"#
    ),
    q!(
        "x18",
        "1 A/R, lots OT",
        false,
        r#"
        FOR $o IN document("auction.xml")//open_auction
        WHERE $o/initial > 10
        RETURN $o/initial"#
    ),
    q!(
        "x19",
        "'//', 2 A/R, sort, lots OT",
        false,
        r#"
        FOR $i IN document("auction.xml")//item
        ORDER BY $i/location
        RETURN <item name={$i/name/text()}>{$i/location}</item>"#
    ),
    q!(
        "x20",
        "4 counts",
        false,
        r#"
        FOR $s IN document("auction.xml")/site
        RETURN <counts>
          <people>{count($s//person)}</people>
          <open>{count($s//open_auction)}</open>
          <closed>{count($s//closed_auction)}</closed>
          <items>{count($s//item)}</items>
        </counts>"#
    ),
    q!(
        "Q1",
        "'//', J, count, 2 A/R",
        true,
        r#"
        FOR $p IN document("auction.xml")//person
        FOR $o IN document("auction.xml")//open_auction
        WHERE count($o/bidder) > 5 AND $p/age > 25
          AND $p/@id = $o/bidder//@person
        RETURN <person name={$p/name/text()}> $o/bidder </person>"#
    ),
    q!(
        "Q2",
        "'//', J, count, 2 A/R, LET",
        true,
        r#"
        FOR $p IN document("auction.xml")//person
        LET $a := FOR $o IN document("auction.xml")//open_auction
                  WHERE count($o/bidder) > 5
                    AND $p/@id = $o/bidder//@person
                  RETURN <myauction> {$o/bidder}
                           <myquan>{$o/quantity/text()}</myquan>
                         </myauction>
        WHERE $p/age > 25
          AND EVERY $i IN $a/myquan SATISFIES $i > 2
        RETURN <person name={$p/name/text()}>{$a/bidder}</person>"#
    ),
    q!(
        "x10a",
        "LET, 12 A/R, few OT",
        false,
        r#"
        FOR $p IN document("auction.xml")//person
        LET $a := FOR $o IN document("auction.xml")//open_auction
                  WHERE $o/seller/@person = $p/@id
                  RETURN <rec>
                    <f1>{$o/initial/text()}</f1>
                    <f2>{$o/current/text()}</f2>
                    <f3>{$o/quantity/text()}</f3>
                    <f4>{$o/type/text()}</f4>
                    <f5>{$o/interval/start/text()}</f5>
                    <f6>{$o/interval/end/text()}</f6>
                    <f7>{$o/itemref/@item/text()}</f7>
                    <f8>{$o/seller/@person/text()}</f8>
                    <f9>{$o/annotation/happiness/text()}</f9>
                    <f10>{$o/annotation/author/@person/text()}</f10>
                    <f11>{count($o/bidder)}</f11>
                    <f12>{$o/privacy/text()}</f12>
                  </rec>
        WHERE $p/@id = "person3"
        RETURN <person name={$p/name/text()}>{$a/rec}</person>"#
    ),
];

static EXTENDED: &[QuerySpec] = &[
    q!(
        "e1-or",
        "disjunctive predicate (UNION translation)",
        false,
        r#"
        FOR $p IN document("auction.xml")//person
        WHERE $p/@id = "person0" OR $p/age > 65
        RETURN $p/name"#
    ),
    q!(
        "e2-some",
        "existential quantifier",
        false,
        r#"
        FOR $o IN document("auction.xml")//open_auction
        WHERE SOME $i IN $o/bidder/increase SATISFIES $i > 28
        RETURN $o/@id/text()"#
    ),
    q!(
        "e3-multisort",
        "two ORDER BY keys",
        false,
        r#"
        FOR $i IN document("auction.xml")//item
        ORDER BY $i/location, $i/quantity
        RETURN <i loc={$i/location/text()}>{$i/quantity/text()}</i>"#
    ),
    q!(
        "e4-forvar",
        "FOR over a variable path",
        false,
        r#"
        FOR $o IN document("auction.xml")//open_auction
        FOR $b IN $o/bidder
        WHERE $b/increase > 28
        RETURN <big auction={$o/@id/text()}>{$b/increase/text()}</big>"#
    ),
    q!(
        "e5-retsub",
        "FLWOR in RETURN position (desugared LET)",
        false,
        r#"
        FOR $p IN document("auction.xml")//person
        WHERE $p/@id = "person1"
        RETURN <seller name={$p/name/text()}>{
          FOR $o IN document("auction.xml")//open_auction
          WHERE $o/seller/@person = $p/@id
          RETURN <sale>{$o/initial/text()}</sale>
        }</seller>"#
    ),
    q!(
        "e6-minmax",
        "min/max/avg aggregates",
        false,
        r#"
        FOR $s IN document("auction.xml")/site
        RETURN <prices>
          <lo>{min($s//closed_auction/price)}</lo>
          <hi>{max($s//closed_auction/price)}</hi>
          <mean>{avg($s//closed_auction/price)}</mean>
        </prices>"#
    ),
    q!(
        "e7-everydeep",
        "EVERY with a condition path",
        false,
        r#"
        FOR $o IN document("auction.xml")//open_auction
        WHERE EVERY $b IN $o/bidder SATISFIES $b/increase > 2
        RETURN $o/@id/text()"#
    ),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_full_figure_15_roster_is_present() {
        assert_eq!(QUERIES.len(), 23);
        for i in 1..=20 {
            assert!(query(&format!("x{i}")).is_some(), "x{i} missing");
        }
        assert!(query("Q1").is_some() && query("Q2").is_some() && query("x10a").is_some());
        assert!(query("nope").is_none());
    }

    #[test]
    fn all_queries_parse() {
        for q in all_queries() {
            xquery::parse(q.text).unwrap_or_else(|e| panic!("{} fails to parse: {e}", q.name));
        }
    }

    #[test]
    fn extended_queries_parse() {
        for q in extended_queries() {
            xquery::parse(q.text).unwrap_or_else(|e| panic!("{} fails to parse: {e}", q.name));
        }
        assert_eq!(extended_queries().len(), 7);
    }

    #[test]
    fn every_query_compiles_under_every_plan_style() {
        let db = xmark_mini();
        for q in all_queries().iter().chain(extended_queries()) {
            for style in [tlc::Style::Tlc, tlc::Style::Gtp, tlc::Style::Tax] {
                let plan = tlc::compile_with_style(q.text, &db, style)
                    .unwrap_or_else(|e| panic!("{} under {style:?}: {e}", q.name));
                assert!(plan.operator_count() >= 2, "{} {style:?}", q.name);
            }
        }
    }

    fn xmark_mini() -> xmldb::Database {
        xmark::auction_database(0.001)
    }

    #[test]
    fn figure_16_and_17_sets_reference_real_queries() {
        for n in FIG16_QUERIES {
            assert!(query(n).is_some_and(|q| q.rewritable), "{n} must be rewritable");
        }
        for n in FIG17_QUERIES {
            assert!(query(n).is_some());
        }
    }
}
