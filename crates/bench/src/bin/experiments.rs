//! Paper-style experiment driver.
//!
//! ```text
//! experiments fig15 [--factor F] [--budget SECS] [--json FILE]
//! experiments fig16 [--factor F]
//! experiments fig17 [--factors F1,F2,...]
//! experiments stats [--factor F]     # per-engine ExecStats (redundancy metrics)
//! experiments concurrent [--factor F] [--threads N] [--rounds R] [--json FILE]
//! experiments batch [--factor F] [--clients N] [--requests R] [--seed S] [--json FILE]
//! experiments rw [--factor F] [--ops N] [--seed S] [--write-fractions F1,F2,...] [--json FILE]
//! experiments hotswap [--factor F] [--threads N] [--rounds R] [--swap-ms MS] [--json FILE]
//! experiments lintcheck [--factor F] [--plans N] [--seed S] [--json FILE]
//! experiments parallel [--factor F] [--clients N] [--requests R] [--seed S] [--json FILE]
//! experiments check [--factor F]     # store invariant check on generated data
//! experiments all   [--factor F]
//! ```
//!
//! `concurrent` drives the query service from N client threads (default 4)
//! replaying the full workload R times each, and reports QPS and exact
//! latency percentiles with the plan cache warm versus compiling every
//! query from scratch.
//!
//! `batch` replays a seeded skewed query mix (a hot set takes most of the
//! traffic) from N closed-loop clients through the batched + match-cached
//! service, through a per-request baseline (match cache and batching
//! off), and through the same per-request baseline with the register-IR
//! backend forced off (`ir = false`) — the per-request/tree-walk QPS
//! ratio isolates the IR win — byte-checking every answer against a
//! single-threaded reference. Exits non-zero on any mismatch, failed
//! request, or a cold match cache.
//!
//! `rw` drives a seeded mixed read/write stream through the in-place
//! update engine at each configured write fraction: writes go through the
//! copy-on-write commit (epoch bump + footprint-based cache seeding),
//! reads replay the workload queries, and every read answer is
//! byte-checked against a from-scratch reference obtained by serializing
//! the current snapshot back to XML and reparsing it. Exits non-zero on
//! any mismatch, failed op, or store-invariant violation. `--json FILE`
//! additionally writes the machine-readable report (`BENCH_rw.json` in
//! CI); `batch --json FILE` does the same for its comparison
//! (`BENCH_batch.json`).
//!
//! `hotswap` soaks the catalog's epoch-versioned snapshot swap: clients
//! replay the workload while a background thread republishes the database
//! every `--swap-ms` milliseconds; every answer is byte-checked against a
//! single-threaded reference for the epoch it reports. Exits non-zero on
//! any failed request or wrong-snapshot answer.
//!
//! `parallel` sweeps the intra-query sharding subsystem: each heavy
//! workload query (x10, Q2) runs through `tlc::par` at 1/2/4/8 shards on
//! both backends, and the same mix is replayed through a sharded service
//! versus a sequential one — every answer byte-checked against the
//! single-threaded reference. Speedup is reported but never gated (it is
//! bounded by the host's core count, which the report prints); the run
//! exits non-zero only on a byte mismatch, a failed request, or a sharded
//! service that never actually sharded. `--json` writes the
//! machine-readable report (`BENCH_parallel.json` in CI).
//!
//! `lintcheck` is the static-analysis soundness oracle: N seeded random
//! plans (default 300), each checked for runtime conformance to its
//! inferred type, liveness-pruning byte-identity, empty-select lint
//! truthfulness, footprint-based cache-carry correctness under a seeded
//! mutation, and register-IR/tree-walk byte equality (no cache, cold
//! cache, and warm cache). Exits non-zero on any soundness violation.
//!
//! `fig15 --json`, `concurrent --json` and `hotswap --json` write
//! machine-readable reports (`BENCH_fig15.json`, `BENCH_concurrent.json`,
//! `BENCH_hotswap.json` in CI), mirroring `batch`/`rw`.

use baselines::Engine;
use bench::{
    fig15, fig16, fig17, render_fig15, render_fig16, render_fig17, setup, DEFAULT_FACTOR,
    FIG17_FACTORS,
};
use std::time::Duration;

// Measure, don't estimate: the experiment driver counts heap allocations
// (one relaxed atomic per alloc), so `batch --json` reports measured
// allocations per request and scripts/check_qps.sh can gate on the count.
#[global_allocator]
static COUNTING_ALLOC: bench::alloc::CountingAlloc = bench::alloc::CountingAlloc;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("all");
    let factor =
        flag_value(&args, "--factor").and_then(|v| v.parse().ok()).unwrap_or(DEFAULT_FACTOR);
    let budget = Duration::from_secs_f64(
        flag_value(&args, "--budget").and_then(|v| v.parse().ok()).unwrap_or(120.0),
    );
    let factors: Vec<f64> = flag_value(&args, "--factors")
        .map(|v| v.split(',').filter_map(|s| s.parse().ok()).collect())
        .unwrap_or_else(|| FIG17_FACTORS.to_vec());

    match cmd {
        "fig15" => run_fig15(factor, budget, flag_value(&args, "--json")),
        "fig16" => run_fig16(factor, budget),
        "fig17" => run_fig17(&factors, budget),
        "stats" => run_stats(factor),
        "concurrent" => {
            let threads = flag_value(&args, "--threads").and_then(|v| v.parse().ok()).unwrap_or(4);
            let rounds = flag_value(&args, "--rounds").and_then(|v| v.parse().ok()).unwrap_or(10);
            // Default to a small database: serving is lookup-style there
            // and the compile share of a request (what the cache removes)
            // is at its most visible.
            let factor =
                flag_value(&args, "--factor").and_then(|v| v.parse().ok()).unwrap_or(0.0005);
            run_concurrent(factor, threads, rounds, flag_value(&args, "--json"));
        }
        "batch" => {
            let clients = flag_value(&args, "--clients").and_then(|v| v.parse().ok()).unwrap_or(8);
            // Enough requests per client that the cold misses of the first
            // pass are amortized and the steady-state hit rate dominates.
            let requests =
                flag_value(&args, "--requests").and_then(|v| v.parse().ok()).unwrap_or(120);
            let seed = flag_value(&args, "--seed").and_then(|v| v.parse().ok()).unwrap_or(7);
            // Small database by default: that's the serving regime where
            // pattern matching dominates the request and the match cache's
            // effect is cleanly visible.
            let factor =
                flag_value(&args, "--factor").and_then(|v| v.parse().ok()).unwrap_or(0.0005);
            let json = flag_value(&args, "--json");
            run_batch(factor, clients, requests, seed, json);
        }
        "rw" => {
            let ops = flag_value(&args, "--ops").and_then(|v| v.parse().ok()).unwrap_or(200);
            let seed = flag_value(&args, "--seed").and_then(|v| v.parse().ok()).unwrap_or(11);
            // Small database: reference reparses after every write stay
            // cheap, and the cache-carry effect on reads is most visible.
            let factor =
                flag_value(&args, "--factor").and_then(|v| v.parse().ok()).unwrap_or(0.0005);
            let fractions: Vec<f64> = flag_value(&args, "--write-fractions")
                .map(|v| v.split(',').filter_map(|s| s.parse().ok()).collect())
                .unwrap_or_else(|| vec![0.05, 0.2, 0.5]);
            let json = flag_value(&args, "--json");
            run_rw(factor, ops, seed, &fractions, json);
        }
        "hotswap" => {
            let threads = flag_value(&args, "--threads").and_then(|v| v.parse().ok()).unwrap_or(4);
            let rounds = flag_value(&args, "--rounds").and_then(|v| v.parse().ok()).unwrap_or(10);
            let factor =
                flag_value(&args, "--factor").and_then(|v| v.parse().ok()).unwrap_or(0.0005);
            let swap_ms = flag_value(&args, "--swap-ms").and_then(|v| v.parse().ok()).unwrap_or(10);
            run_hotswap(
                factor,
                threads,
                rounds,
                Duration::from_millis(swap_ms),
                flag_value(&args, "--json"),
            );
        }
        "lintcheck" => {
            let plans = flag_value(&args, "--plans").and_then(|v| v.parse().ok()).unwrap_or(300);
            let seed = flag_value(&args, "--seed").and_then(|v| v.parse().ok()).unwrap_or(17);
            // Small database: hundreds of plans each execute every subplan
            // and replay a mutation, so per-plan cost must stay tiny.
            let factor =
                flag_value(&args, "--factor").and_then(|v| v.parse().ok()).unwrap_or(0.0005);
            run_lintcheck(factor, plans, seed, flag_value(&args, "--json"));
        }
        "parallel" => {
            let clients = flag_value(&args, "--clients").and_then(|v| v.parse().ok()).unwrap_or(2);
            let requests =
                flag_value(&args, "--requests").and_then(|v| v.parse().ok()).unwrap_or(6);
            let seed = flag_value(&args, "--seed").and_then(|v| v.parse().ok()).unwrap_or(23);
            // Big enough that per-shard work dwarfs planning and merge —
            // the regime the speedup curve is about.
            let factor = flag_value(&args, "--factor").and_then(|v| v.parse().ok()).unwrap_or(0.05);
            run_parallel(factor, clients, requests, seed, flag_value(&args, "--json"));
        }
        "check" => run_check(factor),
        "all" => {
            run_fig15(factor, budget, None);
            println!();
            run_fig16(factor, budget);
            println!();
            run_fig17(&factors, budget);
            println!();
            run_stats(factor);
        }
        other => {
            eprintln!(
                "unknown command {other:?}; use fig15|fig16|fig17|stats|concurrent|batch|rw|hotswap|lintcheck|parallel|check|all"
            );
            std::process::exit(2);
        }
    }
}

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).map(String::as_str)
}

fn run_fig15(factor: f64, budget: Duration, json: Option<&str>) {
    eprintln!("generating XMark factor {factor} ...");
    let db = setup(factor);
    eprintln!("database: {} nodes", db.node_count());
    let rows = fig15(&db, budget);
    print!("{}", render_fig15(&rows, factor));
    if let Some(path) = json {
        write_json(path, &bench::fig15_json(&rows, factor, budget));
    }
}

fn run_fig16(factor: f64, budget: Duration) {
    let db = setup(factor);
    let rows = fig16(&db, budget);
    print!("{}", render_fig16(&rows, factor));
}

fn run_fig17(factors: &[f64], budget: Duration) {
    let rows = fig17(factors, budget);
    print!("{}", render_fig17(&rows, factors));
}

/// Concurrent service load: QPS and exact latency percentiles, plan cache
/// warm versus compile-every-time.
fn run_concurrent(factor: f64, threads: usize, rounds: usize, json: Option<&str>) {
    eprintln!("generating XMark factor {factor} ...");
    let db = std::sync::Arc::new(setup(factor));
    eprintln!(
        "database: {} nodes; {threads} client threads x {rounds} rounds of {} queries",
        db.node_count(),
        queries::all_queries().len()
    );
    let (cached, uncached) = bench::concurrent::cached_vs_uncached(db, threads, rounds);
    print!("{}", bench::concurrent::render_comparison(&cached, &uncached, factor));
    if let Some(path) = json {
        write_json(path, &bench::concurrent::comparison_json(&cached, &uncached, factor, rounds));
    }
}

/// Batched + match-cached service versus per-request execution on a seeded
/// skewed mix, every answer byte-checked. Exits non-zero if any answer
/// mismatched the single-threaded reference, any request failed, or the
/// match cache never hit (the regression CI guards against).
fn run_batch(factor: f64, clients: usize, requests: usize, seed: u64, json: Option<&str>) {
    eprintln!(
        "generating XMark factor {factor}; {clients} clients x {requests} requests, seed {seed} ..."
    );
    let report = bench::batch::batched_vs_per_request(factor, clients, requests, seed);
    print!("{}", report.render(factor));
    if let Some(path) = json {
        write_json(path, &report.to_json(factor, clients, requests, seed));
    }
    if !report.clean() {
        eprintln!(
            "batch run FAILED: {} mismatch(es), {} / {} / {} error(s)",
            report.mismatches,
            report.batched.errors,
            report.baseline.errors,
            report.tree_walk.errors
        );
        std::process::exit(1);
    }
    if report.hit_rate <= 0.0 {
        eprintln!("batch run FAILED: the match cache never hit on the hot set");
        std::process::exit(1);
    }
    if report.no_arena_allocs_per_request > 0.0
        && report.allocs_per_request >= report.no_arena_allocs_per_request
    {
        eprintln!(
            "batch run FAILED: the execution arena did not reduce heap allocations per \
             request ({:.0} with arenas vs {:.0} without)",
            report.allocs_per_request, report.no_arena_allocs_per_request
        );
        std::process::exit(1);
    }
    println!("batch run clean: every answer matched the single-threaded reference");
}

/// Intra-query sharding sweep plus the composed service scenario, every
/// answer byte-checked. Exits non-zero on any mismatch or failed request,
/// or if the sharded service never sharded — never on the speedup itself.
fn run_parallel(factor: f64, clients: usize, requests: usize, seed: u64, json: Option<&str>) {
    eprintln!(
        "generating XMark factor {factor}; shard counts {:?}, {clients} clients x {requests} requests, seed {seed} ...",
        bench::parallel::SHARD_COUNTS
    );
    let report = bench::parallel::sweep(factor, clients, requests, seed);
    print!("{}", report.render());
    if let Some(path) = json {
        write_json(path, &report.to_json(clients, requests));
    }
    if !report.clean() {
        eprintln!(
            "parallel run FAILED: {} mismatch(es), {} / {} error(s), {} shard job(s)",
            report.mismatches, report.sharded.errors, report.sequential.errors, report.shard_jobs
        );
        std::process::exit(1);
    }
    println!("parallel run clean: every sharded answer matched the single-threaded reference");
}

fn write_json(path: &str, doc: &str) {
    match std::fs::write(path, doc) {
        Ok(()) => eprintln!("wrote {path}"),
        Err(e) => {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        }
    }
}

/// Mixed read/write streams through the update engine, one per write
/// fraction, every read byte-checked against a reparse-from-scratch
/// reference and every commit followed by a store-invariant check. Exits
/// non-zero on any defect; `--json` writes the machine-readable report.
fn run_rw(factor: f64, ops: usize, seed: u64, fractions: &[f64], json: Option<&str>) {
    eprintln!(
        "generating XMark factor {factor}; {ops} ops at write fractions {fractions:?}, seed {seed} ..."
    );
    let runs = bench::rw::sweep(factor, ops, seed, fractions);
    println!("Mixed read/write streams, XMark factor {factor}, {ops} ops, seed {seed}");
    for run in &runs {
        print!("{}", run.render());
    }
    if let Some(path) = json {
        write_json(path, &bench::rw::sweep_json(factor, ops, seed, &runs));
    }
    let defects: Vec<&bench::rw::RwReport> = runs.iter().filter(|r| !r.clean()).collect();
    if !defects.is_empty() {
        for d in defects {
            eprintln!(
                "rw run FAILED at write fraction {}: {} mismatch(es), {} error(s), {} check failure(s)",
                d.write_fraction, d.mismatches, d.errors, d.check_failures
            );
        }
        std::process::exit(1);
    }
    if runs.iter().all(|r| r.writes == 0 || r.plans_seeded == 0) {
        eprintln!("rw run FAILED: no plan ever carried across a mutation epoch");
        std::process::exit(1);
    }
    println!("rw run clean: every read matched the reparse-from-scratch reference");
}

/// Hot-swap soak: correctness under concurrent snapshot republishes. Any
/// failed request or answer from the wrong snapshot exits non-zero.
fn run_hotswap(
    factor: f64,
    threads: usize,
    rounds: usize,
    swap_every: Duration,
    json: Option<&str>,
) {
    eprintln!(
        "soaking hot swap: XMark factors {factor} / {}, {threads} clients x {rounds} rounds, \
         swap every {swap_every:?} ...",
        factor * 2.0
    );
    let report = bench::concurrent::hot_swap_soak(factor, threads, rounds, swap_every);
    println!("{}", report.summary());
    if let Some(path) = json {
        write_json(path, &bench::concurrent::soak_json(&report, factor, rounds, swap_every));
    }
    if !report.clean() {
        eprintln!(
            "hot swap soak FAILED: {} error(s), {} stale answer(s)",
            report.errors, report.stale
        );
        std::process::exit(1);
    }
    println!("hot swap soak clean: every answer matched its epoch's reference");
}

/// Static-analysis soundness oracle over seeded random plans. Exits
/// non-zero on any violation; `--json` writes the machine-readable report.
fn run_lintcheck(factor: f64, plans: usize, seed: u64, json: Option<&str>) {
    eprintln!("generating XMark factor {factor}; checking {plans} random plans, seed {seed} ...");
    let report = bench::lintcheck::run(factor, plans, seed);
    print!("{}", report.render(factor, seed));
    if let Some(path) = json {
        write_json(path, &report.to_json(factor, seed));
    }
    if !report.clean() {
        eprintln!("lintcheck FAILED: the analyzer made a claim the runtime disproved");
        std::process::exit(1);
    }
    println!("lintcheck clean: {plans} random plans, zero soundness violations");
}

/// Generates XMark data at the given factor and runs the full store
/// invariant check (interval encoding, arena layout, index completeness)
/// over it. Exits non-zero on corruption.
fn run_check(factor: f64) {
    eprintln!("generating XMark factor {factor} ...");
    let db = setup(factor);
    eprintln!("database: {} nodes", db.node_count());
    match xmldb::check_database(&db) {
        Ok(report) => println!("{report}"),
        Err(e) => {
            eprintln!("store check FAILED: {e}");
            std::process::exit(1);
        }
    }
}

/// The redundancy metrics behind the timings: per-query, per-engine
/// ExecStats counters (index probes, nodes inspected, subtrees
/// materialized) — the paper's §4 argument made quantitative.
fn run_stats(factor: f64) {
    let db = setup(factor);
    println!(
        "Execution counters, factor {factor} (probes / nodes inspected / subtrees materialized; NAV: nodes visited)"
    );
    println!("{:<6} {:>28} {:>28} {:>28} {:>12}", "query", "TLC", "GTP", "TAX", "NAV");
    for q in queries::all_queries() {
        let mut cells = Vec::new();
        for engine in [Engine::Tlc, Engine::Gtp, Engine::Tax] {
            let cell = match baselines::plan_for(engine, q.text, &db)
                .and_then(|p| tlc::execute(&db, &p))
            {
                Ok((_, s)) => format!(
                    "{:>8}/{:>12}/{:>6}",
                    s.probes, s.nodes_inspected, s.subtrees_materialized
                ),
                Err(_) => format!("{:>28}", "ERR"),
            };
            cells.push(cell);
        }
        let nav = xquery::parse(q.text)
            .ok()
            .and_then(|ast| baselines::evaluate_nav(&db, &ast).ok())
            .map(|(_, s)| format!("{:>12}", s.nodes_visited))
            .unwrap_or_else(|| format!("{:>12}", "ERR"));
        println!("{:<6} {} {} {} {}", q.name, cells[0], cells[1], cells[2], nav);
    }
}
