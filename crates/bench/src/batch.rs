//! The `experiments batch` workload: what the epoch-keyed pattern-match
//! cache and batch-aware dispatch buy under realistic skewed traffic.
//!
//! Many closed-loop clients replay a **seeded, skewed query mix** — a small
//! hot set of templates receives most of the traffic, the rest of the
//! evaluation workload fills the tail — against two services that differ
//! *only* in the new machinery:
//!
//! * **batched+cached** — the default configuration: match cache on,
//!   same-`(database, epoch)` batch dispatch on;
//! * **per-request** — match cache disabled (`match_cache_bytes = 0`),
//!   batching disabled (`batch_max = 1`); the plan cache stays on in both,
//!   so the delta isolates match caching + batching, not compilation;
//! * **cached per-request** — match cache on, batching off, register IR
//!   on: every request executes individually against the warm shared
//!   match cache;
//! * **tree-walk** — the cached per-request configuration with the
//!   register-IR backend forced off (`ir = false`). The cached/tree-walk
//!   QPS ratio isolates what [`tlc::vm`] buys per request: with a warm
//!   match cache the kernels barely run, so the delta is exactly the
//!   per-request work the compiler hoisted out — the walker re-derives
//!   every chain's cache key (APT fingerprints — string canonicalization
//!   at every cacheable node) on each execution, while the compiled
//!   program carries its keys from lowering. Batching is off on both
//!   sides because batch coalescing would amortize that per-request work
//!   across whole batches and mask the comparison.
//! * **no-arena** — the batched+cached configuration with the pooled
//!   execution arenas disabled (`arena_kb = 0`); the only difference from
//!   the batched side is where intermediate buffers come from, so the
//!   batched/no-arena *allocation* delta (measured with the counting
//!   allocator, [`crate::alloc`]) is exactly what the arena saves.
//!
//! Every answer from *both* services is byte-compared against a
//! single-threaded reference computed up front; any mismatch is a
//! correctness defect, not noise. The report carries QPS / exact latency
//! quantiles for both sides, the match-cache hit rate, and the batch
//! counters. Hot-swap staleness is covered by the companion soak
//! ([`crate::concurrent::hot_swap_soak_with`] with a seeded mix), which
//! runs the same skewed traffic while the snapshot is republished under it.

use crate::concurrent::LoadReport;
use baselines::Engine;
use queries::all_queries;
use service::{Service, ServiceConfig};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;
use xmark::rng::{RngExt, SeedableRng, StdRng};
use xmldb::Database;

/// Percentage of the traffic aimed at the hot set.
const HOT_TRAFFIC_PCT: u32 = 80;

/// Workload indices forming the hot set — x15, x16, x17 and x10a:
/// templates whose cost is dominated by their cacheable Select/Filter
/// spine (deep path chains, the x10a twig) rather than by serialization,
/// so a warm match cache removes most of the request. Fixed, so every run
/// and the CI smoke agree on what "hot" means.
const HOT_SET: [usize; 4] = [14, 15, 16, 22];

/// Draws the next query index of the skewed mix: `HOT_TRAFFIC_PCT`% of
/// draws pick uniformly from `HOT_SET`, the rest uniformly from the whole
/// workload. Falls back to uniform when the workload is smaller than the
/// hot set assumes.
pub fn skewed_pick(rng: &mut StdRng, n: usize) -> usize {
    let max_hot = HOT_SET.iter().copied().max().expect("hot set non-empty");
    if n > max_hot && rng.random_range(0..100u32) < HOT_TRAFFIC_PCT {
        HOT_SET[rng.random_range(0..HOT_SET.len())]
    } else {
        rng.random_range(0..n)
    }
}

/// Per-client RNG: one base seed, decorrelated per client with a splitmix
/// increment so runs are reproducible but clients do not march in step.
pub fn client_rng(seed: u64, client: usize) -> StdRng {
    StdRng::seed_from_u64(seed ^ (client as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// One batched-vs-per-request comparison.
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// The batched + match-cached side.
    pub batched: LoadReport,
    /// The per-request side (no match cache, no batching; register-IR
    /// backend on, like every other side).
    pub baseline: LoadReport,
    /// The cached per-request side: match cache on, batching off,
    /// register IR on.
    pub cached: LoadReport,
    /// The cached per-request side with the register-IR backend forced
    /// off — identical to `cached` except every execution walks the plan
    /// tree. The `cached`/`tree_walk` QPS ratio isolates what the IR buys
    /// per request (chiefly: cache keys are compiled into the program
    /// instead of re-derived per execution).
    pub tree_walk: LoadReport,
    /// The batched+cached configuration with the pooled execution arenas
    /// disabled (`arena_kb = 0`) — the allocation-count control.
    pub no_arena: LoadReport,
    /// Answers (either side) that did not byte-match the single-threaded
    /// reference. Must be zero.
    pub mismatches: u64,
    /// Match-cache hit rate of the batched side, in `[0, 1]`.
    pub hit_rate: f64,
    /// Batches the batched side dispatched.
    pub batches: u64,
    /// Largest batch the batched side dispatched.
    pub max_batch: u64,
    /// Measured heap allocations per request of the batched side (0.0
    /// when the counting allocator is not registered in this build).
    pub allocs_per_request: f64,
    /// Measured heap allocations per request of the no-arena control.
    pub no_arena_allocs_per_request: f64,
    /// Arena-pool recycling counters of the batched side.
    pub arena: service::pool::ArenaPoolStats,
}

impl BatchReport {
    /// Batched-side QPS over per-request QPS.
    pub fn speedup(&self) -> f64 {
        if self.baseline.qps() > 0.0 {
            self.batched.qps() / self.baseline.qps()
        } else {
            f64::INFINITY
        }
    }

    /// Cached per-request QPS with the IR backend on over the same
    /// configuration with it off (tree walk) — the isolated IR win.
    pub fn ir_speedup(&self) -> f64 {
        if self.tree_walk.qps() > 0.0 {
            self.cached.qps() / self.tree_walk.qps()
        } else {
            f64::INFINITY
        }
    }

    /// No mismatched answers and no failed requests on any side.
    pub fn clean(&self) -> bool {
        self.mismatches == 0
            && self.batched.errors == 0
            && self.baseline.errors == 0
            && self.cached.errors == 0
            && self.tree_walk.errors == 0
            && self.no_arena.errors == 0
    }

    /// Fraction of per-request heap allocations the arena removed, in
    /// `[0, 1]` (batched vs the arena-disabled control). Zero when the
    /// counting allocator is not registered.
    pub fn arena_alloc_reduction(&self) -> f64 {
        if self.no_arena_allocs_per_request <= 0.0 {
            return 0.0;
        }
        (1.0 - self.allocs_per_request / self.no_arena_allocs_per_request).max(0.0)
    }

    /// Arena-pool reuse rate in `[0, 1]` (reused checkouts over all
    /// checkouts of the batched side).
    pub fn arena_reuse_rate(&self) -> f64 {
        if self.arena.checkouts == 0 {
            return 0.0;
        }
        self.arena.reuses as f64 / self.arena.checkouts as f64
    }

    /// The `BENCH_batch.json` document for this comparison (hand-rolled;
    /// the workspace carries no serialization dependency).
    pub fn to_json(&self, factor: f64, clients: usize, requests: usize, seed: u64) -> String {
        format!(
            "{{\"experiment\":\"batch\",\"factor\":{factor},\"clients\":{clients},\
             \"requests\":{requests},\"seed\":{seed},\
             \"batched\":{},\"per_request\":{},\"cached_per_request\":{},\
             \"tree_walk\":{},\"no_arena\":{},\"speedup\":{:.2},\
             \"ir_speedup\":{:.2},\
             \"match_cache_hit_rate\":{:.4},\"batches\":{},\"max_batch\":{},\
             \"batched_allocs_per_request\":{:.1},\
             \"no_arena_allocs_per_request\":{:.1},\
             \"arena_alloc_reduction\":{:.4},\
             \"arena_checkouts\":{},\"arena_reuses\":{},\"arena_discards\":{},\
             \"arena_reuse_rate\":{:.4},\
             \"mismatches\":{}}}\n",
            crate::rw::load_report_json(&self.batched),
            crate::rw::load_report_json(&self.baseline),
            crate::rw::load_report_json(&self.cached),
            crate::rw::load_report_json(&self.tree_walk),
            crate::rw::load_report_json(&self.no_arena),
            self.speedup(),
            self.ir_speedup(),
            self.hit_rate,
            self.batches,
            self.max_batch,
            self.allocs_per_request,
            self.no_arena_allocs_per_request,
            self.arena_alloc_reduction(),
            self.arena.checkouts,
            self.arena.reuses,
            self.arena.discards,
            self.arena_reuse_rate(),
            self.mismatches,
        )
    }

    /// The text block `experiments batch` prints.
    pub fn render(&self, factor: f64) -> String {
        format!(
            "Skewed-mix replay ({HOT_TRAFFIC_PCT}% of traffic on {} hot queries), XMark factor {factor}\n\
             batched+cached : {}\n\
             per-request    : {}\n\
             cached (ir on) : {}\n\
             tree-walk (ir off): {}\n\
             no-arena (arena-kb 0): {}\n\
             throughput gain from match cache + batching: {:.2}x\n\
             per-request gain from register IR (ir on vs off): {:.2}x\n\
             ir non-regression: {}\n\
             match cache hit rate: {:.1}%  batches: {}  max batch: {}\n\
             heap allocs/request: batched {:.0} vs arena-off {:.0} ({:.1}% fewer)\n\
             arena pool: {} checkout(s), {} reuse(s) ({:.1}% reuse rate), {} discard(s)\n\
             byte mismatches vs single-threaded reference: {}\n",
            HOT_SET.len(),
            self.batched.summary(),
            self.baseline.summary(),
            self.cached.summary(),
            self.tree_walk.summary(),
            self.no_arena.summary(),
            self.speedup(),
            self.ir_speedup(),
            if self.ir_speedup() >= 0.85 { "ok" } else { "REGRESSED" },
            self.hit_rate * 100.0,
            self.batches,
            self.max_batch,
            self.allocs_per_request,
            self.no_arena_allocs_per_request,
            self.arena_alloc_reduction() * 100.0,
            self.arena.checkouts,
            self.arena.reuses,
            self.arena_reuse_rate() * 100.0,
            self.arena.discards,
            self.mismatches,
        )
    }
}

/// Replays the skewed mix from `clients` closed-loop threads, `requests`
/// requests each, byte-checking every answer against `refs`.
///
/// Before the clock starts, every template is executed once so the timed
/// window measures warm steady state: plan-cache compiles, register-IR
/// lowering and (where enabled) match-cache cold misses all land in the
/// warmup, not in the comparison.
pub(crate) fn run_mix(
    svc: &Service,
    clients: usize,
    requests: usize,
    seed: u64,
    texts: &[&str],
    refs: &[String],
    mismatches: &AtomicU64,
) -> LoadReport {
    for text in texts {
        let _ = svc.execute(text);
    }
    let errors = AtomicU64::new(0);
    let started = Instant::now();
    let mut latencies: Vec<_> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|t| {
                let errors = &errors;
                s.spawn(move || {
                    let mut rng = client_rng(seed, t);
                    let mut mine = Vec::with_capacity(requests);
                    for _ in 0..requests {
                        let qi = skewed_pick(&mut rng, texts.len());
                        let begun = Instant::now();
                        match svc.execute(texts[qi]) {
                            Ok(resp) => {
                                if resp.output == refs[qi] {
                                    mine.push(begun.elapsed());
                                } else {
                                    mismatches.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                            Err(_) => {
                                errors.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                    mine
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().expect("client thread")).collect()
    });
    let elapsed = started.elapsed();
    latencies.sort_unstable();
    LoadReport {
        threads: clients,
        ok: latencies.len() as u64,
        errors: errors.into_inner(),
        elapsed,
        latencies,
    }
}

/// Runs [`run_mix`] bracketed by the counting allocator: returns the load
/// report plus measured heap allocations per request (0.0 when counting
/// is not registered in this build). The warmup pass is inside the
/// bracket — it is identical on every side, so comparisons stay fair.
fn counted_mix(
    svc: &Service,
    clients: usize,
    requests: usize,
    seed: u64,
    texts: &[&str],
    refs: &[String],
    mismatches: &AtomicU64,
) -> (LoadReport, f64) {
    let before = crate::alloc::allocations();
    let report = run_mix(svc, clients, requests, seed, texts, refs, mismatches);
    let after = crate::alloc::allocations();
    let total = (clients * requests).max(1) as f64;
    let per_request = if after > before { (after - before) as f64 / total } else { 0.0 };
    (report, per_request)
}

/// The `experiments batch` experiment: identical skewed traffic through the
/// batched+cached configuration and the per-request configuration, against
/// the same database, every answer byte-checked. Workers are kept below
/// the client count so the admission queue actually holds same-template
/// jobs for a worker to batch.
pub fn batched_vs_per_request(
    factor: f64,
    clients: usize,
    requests: usize,
    seed: u64,
) -> BatchReport {
    let db = Arc::new(crate::setup(factor));
    batched_vs_per_request_on(db, clients, requests, seed)
}

/// [`batched_vs_per_request`] over an already-built database.
pub fn batched_vs_per_request_on(
    db: Arc<Database>,
    clients: usize,
    requests: usize,
    seed: u64,
) -> BatchReport {
    let texts: Vec<&'static str> = all_queries().iter().map(|q| q.text).collect();
    let refs: Vec<String> = texts
        .iter()
        .map(|q| baselines::run(Engine::Tlc, q, &db).expect("single-threaded reference"))
        .collect();
    let workers = (clients / 2).clamp(1, 4);
    let batched_cfg =
        ServiceConfig { workers, queue_depth: clients.max(4) * 4, ..ServiceConfig::default() };
    let baseline_cfg = ServiceConfig { match_cache_bytes: 0, batch_max: 1, ..batched_cfg.clone() };
    let cached_cfg = ServiceConfig { batch_max: 1, ..batched_cfg.clone() };
    let tree_walk_cfg = ServiceConfig { ir: false, ..cached_cfg.clone() };
    let no_arena_cfg = ServiceConfig { arena_kb: 0, ..batched_cfg.clone() };
    let mismatches = AtomicU64::new(0);

    let batched_svc = Service::new(Arc::clone(&db), batched_cfg);
    let (batched, allocs_per_request) =
        counted_mix(&batched_svc, clients, requests, seed, &texts, &refs, &mismatches);
    let cache = batched_svc.match_cache_stats().expect("match cache enabled");
    let lookups = cache.hits + cache.misses;
    let hit_rate = if lookups == 0 { 0.0 } else { cache.hits as f64 / lookups as f64 };
    let pool = batched_svc.batch_stats();
    let arena = batched_svc.arena_stats();

    let baseline_svc = Service::new(Arc::clone(&db), baseline_cfg);
    let baseline = run_mix(&baseline_svc, clients, requests, seed, &texts, &refs, &mismatches);

    let cached_svc = Service::new(Arc::clone(&db), cached_cfg);
    let cached = run_mix(&cached_svc, clients, requests, seed, &texts, &refs, &mismatches);

    let tree_walk_svc = Service::new(Arc::clone(&db), tree_walk_cfg);
    let tree_walk = run_mix(&tree_walk_svc, clients, requests, seed, &texts, &refs, &mismatches);

    let no_arena_svc = Service::new(db, no_arena_cfg);
    let (no_arena, no_arena_allocs_per_request) =
        counted_mix(&no_arena_svc, clients, requests, seed, &texts, &refs, &mismatches);

    BatchReport {
        batched,
        baseline,
        cached,
        tree_walk,
        no_arena,
        mismatches: mismatches.into_inner(),
        hit_rate,
        batches: pool.batches,
        max_batch: pool.max_batch,
        allocs_per_request,
        no_arena_allocs_per_request,
        arena,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skewed_pick_is_skewed_and_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = all_queries().len();
        let mut hot = 0u32;
        for _ in 0..2_000 {
            let qi = skewed_pick(&mut rng, n);
            assert!(qi < n);
            if HOT_SET.contains(&qi) {
                hot += 1;
            }
        }
        // 80% targeted + a sliver of uniform tail landing in the hot set.
        assert!((1_400..1_900).contains(&hot), "hot draws: {hot}");
        // Tiny workloads fall back to uniform without panicking.
        for _ in 0..100 {
            assert!(skewed_pick(&mut rng, 3) < 3);
        }
    }

    #[test]
    fn client_rngs_are_reproducible_and_decorrelated() {
        let a: Vec<u64> = (0..8).map(|_| client_rng(42, 0).next_u64()).collect();
        let b: Vec<u64> = (0..8).map(|_| client_rng(42, 0).next_u64()).collect();
        assert_eq!(a, b);
        assert_ne!(client_rng(42, 0).next_u64(), client_rng(42, 1).next_u64());
    }

    #[test]
    fn batch_experiment_is_clean_and_hits_the_match_cache() {
        let report = batched_vs_per_request(0.0005, 4, 30, 7);
        assert!(report.clean(), "defects: {}", report.render(0.0005));
        assert_eq!(
            report.batched.ok
                + report.baseline.ok
                + report.cached.ok
                + report.tree_walk.ok
                + report.no_arena.ok,
            5 * 4 * 30
        );
        assert!(report.hit_rate > 0.0, "hot set never hit the match cache");
        assert!(report.batches > 0);
        assert!(report.arena.checkouts > 0, "batched side never checked out an arena");
        assert!(report.arena.reuses > 0, "the pool never recycled an arena across requests");
        // The test build registers the counting allocator, so the arena
        // must show a *measured* reduction in heap allocations/request
        // against the identical configuration with arenas off.
        assert!(report.allocs_per_request > 0.0, "counting allocator not active");
        assert!(
            report.allocs_per_request < report.no_arena_allocs_per_request,
            "arena did not reduce allocations: {:.0} vs {:.0}",
            report.allocs_per_request,
            report.no_arena_allocs_per_request
        );
        let rendered = report.render(0.0005);
        assert!(rendered.contains("match cache hit rate"), "{rendered}");
        assert!(rendered.contains("register IR"), "{rendered}");
        assert!(rendered.contains("heap allocs/request"), "{rendered}");
        assert!(rendered.contains("arena pool:"), "{rendered}");
        let json = report.to_json(0.0005, 4, 30, 7);
        assert!(json.contains("\"tree_walk\":"), "{json}");
        assert!(json.contains("\"ir_speedup\":"), "{json}");
        assert!(json.contains("\"no_arena\":"), "{json}");
        assert!(json.contains("\"batched_allocs_per_request\":"), "{json}");
        assert!(json.contains("\"arena_reuse_rate\":"), "{json}");
    }
}
