//! Concurrent load generation against the query service.
//!
//! Replays the Figure-15 workload (the full evaluation suite) from N
//! client threads against one shared [`service::Service`], and reports
//! throughput plus a latency distribution. Latencies here are *exact*
//! (every request's duration is kept and sorted), unlike the service's own
//! bucketed histogram — the load generator is the measuring instrument,
//! the histogram is the cheap always-on telemetry.
//!
//! The second entry point, [`cached_vs_uncached`], quantifies what the
//! plan cache buys: the same workload through the same service, with the
//! cache warm versus a cache too small to ever hit (compile every time).
//!
//! The third, [`hot_swap_soak`], is the correctness gauntlet for the
//! catalog's epoch-versioned hot swap: client threads hammer the service
//! while a background thread keeps republishing the default database, and
//! every response is byte-compared against a single-threaded reference for
//! the snapshot the service *says* it ran on (the response's epoch picks
//! the reference). Any failed request or any answer from the wrong
//! snapshot is a defect, not noise.

use baselines::Engine;
use queries::all_queries;
use service::catalog::DEFAULT_DB;
use service::{Service, ServiceConfig};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use xmldb::Database;

use crate::batch::{client_rng, skewed_pick};

/// One load run's results.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Client threads that generated the load.
    pub threads: usize,
    /// Requests that completed successfully.
    pub ok: u64,
    /// Requests that failed (compile/execute/deadline/rejected).
    pub errors: u64,
    /// Wall-clock time for the whole run.
    pub elapsed: Duration,
    /// Sorted per-request latencies (successful requests only).
    pub latencies: Vec<Duration>,
}

impl LoadReport {
    /// Successful requests per wall-clock second.
    pub fn qps(&self) -> f64 {
        if self.elapsed.is_zero() {
            return 0.0;
        }
        self.ok as f64 / self.elapsed.as_secs_f64()
    }

    /// Exact latency quantile over the successful requests (`q` in `[0,1]`).
    pub fn quantile(&self, q: f64) -> Duration {
        if self.latencies.is_empty() {
            return Duration::ZERO;
        }
        let rank = ((self.latencies.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
        self.latencies[rank]
    }

    /// One-line summary: `threads=8 ok=184 err=0 qps=412.3 p50=1.2ms p95=8.0ms max=11.1ms`.
    pub fn summary(&self) -> String {
        format!(
            "threads={} ok={} err={} qps={:.1} p50={:.1?} p95={:.1?} max={:.1?}",
            self.threads,
            self.ok,
            self.errors,
            self.qps(),
            self.quantile(0.50),
            self.quantile(0.95),
            self.latencies.last().copied().unwrap_or(Duration::ZERO),
        )
    }
}

/// Replays the full workload `rounds` times from each of `threads` client
/// threads against `svc`. Requests run one at a time per client (closed
/// loop); the service's worker pool is the concurrency limiter.
pub fn run_load(svc: &Service, threads: usize, rounds: usize) -> LoadReport {
    let texts: Vec<&'static str> = all_queries().iter().map(|q| q.text).collect();
    let errors = AtomicU64::new(0);
    let started = Instant::now();
    let mut latencies: Vec<Duration> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let texts = &texts;
                let errors = &errors;
                s.spawn(move || {
                    let mut mine = Vec::with_capacity(rounds * texts.len());
                    for round in 0..rounds {
                        // Stagger start positions so the clients don't hit
                        // the same query in lock-step.
                        let offset = (t + round) % texts.len();
                        for i in 0..texts.len() {
                            let q = texts[(offset + i) % texts.len()];
                            let begun = Instant::now();
                            match svc.execute(q) {
                                Ok(_) => mine.push(begun.elapsed()),
                                Err(_) => {
                                    errors.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                        }
                    }
                    mine
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().expect("client thread")).collect()
    });
    let elapsed = started.elapsed();
    latencies.sort_unstable();
    LoadReport {
        threads,
        ok: latencies.len() as u64,
        errors: errors.into_inner(),
        elapsed,
        latencies,
    }
}

/// Cached-vs-uncached comparison on one database, both sides through
/// identical service machinery so plan reuse is the *only* difference:
///
/// * **cached** — a normally-sized plan cache, warmed with one full pass,
///   so every measured request is a cache hit;
/// * **uncached** — a capacity-1 cache cycled by the 23-query workload, so
///   every request misses and recompiles (the compile-every-time life).
///
/// Returns `(cached, uncached)`. The gap this shows is the compile share
/// of the request — large for small databases (lookup-style serving),
/// shrinking as execution grows with the scale factor.
pub fn cached_vs_uncached(
    db: Arc<Database>,
    threads: usize,
    rounds: usize,
) -> (LoadReport, LoadReport) {
    let config = ServiceConfig { workers: threads, queue_depth: threads * 4, ..Default::default() };
    let warm_svc = Service::new(Arc::clone(&db), config.clone());
    let _warm = run_load(&warm_svc, 1, 1); // one pass fills the plan cache
    let cached = run_load(&warm_svc, threads, rounds);
    let cold_svc =
        Service::new(Arc::clone(&db), ServiceConfig { plan_cache_capacity: 1, ..config });
    let uncached = run_load(&cold_svc, threads, rounds);
    (cached, uncached)
}

/// One hot-swap soak run's results.
#[derive(Debug, Clone)]
pub struct SoakReport {
    /// Client threads that generated the load.
    pub threads: usize,
    /// Snapshot swaps the background thread published during the run.
    pub swaps: u64,
    /// Requests whose answer byte-matched the reference for their epoch.
    pub ok: u64,
    /// Requests that failed outright.
    pub errors: u64,
    /// Requests that answered from the *wrong* snapshot (stale plan or
    /// torn swap) — must be zero for the hot swap to be sound.
    pub stale: u64,
    /// Wall-clock time for the whole run.
    pub elapsed: Duration,
}

impl SoakReport {
    /// Whether the run saw neither failures nor wrong-snapshot answers.
    pub fn clean(&self) -> bool {
        self.errors == 0 && self.stale == 0
    }

    /// One-line summary:
    /// `threads=4 swaps=17 ok=184 err=0 stale=0 elapsed=1.3s`.
    pub fn summary(&self) -> String {
        format!(
            "threads={} swaps={} ok={} err={} stale={} elapsed={:.1?}",
            self.threads, self.swaps, self.ok, self.errors, self.stale, self.elapsed
        )
    }
}

/// Replays the workload from `threads` clients while a background thread
/// hot-swaps the default database every `swap_every`, alternating between
/// two XMark variants (scale `factor` and `factor * 2`).
///
/// The epoch→variant mapping is fixed by construction: the run starts on
/// variant 0 at epoch 0 and the s-th swap publishes variant `s % 2` at
/// epoch `s`, so epoch parity names the snapshot. Each response's output
/// is compared byte-for-byte against a single-threaded TLC reference for
/// the variant its `db_epoch` selects; a mismatch means a plan compiled
/// against one snapshot was executed against another.
pub fn hot_swap_soak(
    factor: f64,
    threads: usize,
    rounds: usize,
    swap_every: Duration,
) -> SoakReport {
    let config = ServiceConfig { workers: threads, queue_depth: threads * 4, ..Default::default() };
    hot_swap_soak_with(factor, threads, rounds, swap_every, config, None)
}

/// [`hot_swap_soak`] with an explicit service configuration and an optional
/// seeded skewed query mix.
///
/// The configuration knob exists so the soak can run with the match cache
/// and batch dispatch engaged (the default [`ServiceConfig`]) *or* in
/// per-request mode — the epoch-parity byte check is the property test that
/// a cached pattern match never survives a snapshot swap. With
/// `mix_seed: Some(seed)` each client replays the reproducible skewed mix
/// of [`crate::batch`] instead of the round-robin sweep, so hot templates
/// are in flight on several clients at once while the snapshot changes
/// under them — the worst case for a stale cache entry.
pub fn hot_swap_soak_with(
    factor: f64,
    threads: usize,
    rounds: usize,
    swap_every: Duration,
    config: ServiceConfig,
    mix_seed: Option<u64>,
) -> SoakReport {
    let variants: [Arc<Database>; 2] =
        [Arc::new(crate::setup(factor)), Arc::new(crate::setup(factor * 2.0))];
    let texts: Vec<&'static str> = all_queries().iter().map(|q| q.text).collect();
    // Per-variant reference answers, computed single-threaded up front.
    let refs: Vec<Vec<String>> = variants
        .iter()
        .map(|db| {
            texts.iter().map(|q| baselines::run(Engine::Tlc, q, db).expect("reference")).collect()
        })
        .collect();
    let svc = Service::new(Arc::clone(&variants[0]), config);
    let stop = AtomicBool::new(false);
    let swaps = AtomicU64::new(0);
    let errors = AtomicU64::new(0);
    let stale = AtomicU64::new(0);
    let started = Instant::now();
    let ok: u64 = std::thread::scope(|s| {
        let swapper = s.spawn(|| {
            let mut epoch = 0u64;
            while !stop.load(Ordering::Relaxed) {
                epoch += 1;
                let entry = svc
                    .install(DEFAULT_DB, Arc::clone(&variants[(epoch % 2) as usize]))
                    .expect("swap default db");
                // The swapper is the only publisher, so the catalog's epoch
                // must track its counter exactly — this is what makes epoch
                // parity a valid variant witness for the clients.
                assert_eq!(entry.epoch(), epoch, "unexpected concurrent publisher");
                swaps.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(swap_every);
            }
        });
        let clients: Vec<_> = (0..threads)
            .map(|t| {
                let texts = &texts;
                let refs = &refs;
                let svc = &svc;
                let errors = &errors;
                let stale = &stale;
                s.spawn(move || {
                    let mut rng = mix_seed.map(|seed| client_rng(seed, t));
                    let mut mine = 0u64;
                    for round in 0..rounds {
                        let offset = (t + round) % texts.len();
                        for i in 0..texts.len() {
                            // Seeded skewed mix when requested, the
                            // staggered round-robin sweep otherwise.
                            let qi = match &mut rng {
                                Some(rng) => skewed_pick(rng, texts.len()),
                                None => (offset + i) % texts.len(),
                            };
                            match svc.execute(texts[qi]) {
                                Ok(resp) => {
                                    let expect = &refs[(resp.db_epoch % 2) as usize][qi];
                                    if resp.output == *expect {
                                        mine += 1;
                                    } else {
                                        stale.fetch_add(1, Ordering::Relaxed);
                                    }
                                }
                                Err(_) => {
                                    errors.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                        }
                    }
                    mine
                })
            })
            .collect();
        let ok = clients.into_iter().map(|h| h.join().expect("client thread")).sum();
        stop.store(true, Ordering::Relaxed);
        swapper.join().expect("swapper thread");
        ok
    });
    SoakReport {
        threads,
        swaps: swaps.into_inner(),
        ok,
        errors: errors.into_inner(),
        stale: stale.into_inner(),
        elapsed: started.elapsed(),
    }
}

/// The full `BENCH_concurrent.json` document for one cached-vs-uncached
/// comparison (hand-rolled; the workspace carries no serialization
/// dependency).
pub fn comparison_json(
    cached: &LoadReport,
    uncached: &LoadReport,
    factor: f64,
    rounds: usize,
) -> String {
    let speedup = if uncached.qps() > 0.0 { cached.qps() / uncached.qps() } else { 0.0 };
    format!(
        "{{\"experiment\":\"concurrent\",\"factor\":{factor},\"threads\":{},\"rounds\":{rounds},\
         \"cached\":{},\"uncached\":{},\"speedup\":{speedup:.2}}}\n",
        cached.threads,
        crate::rw::load_report_json(cached),
        crate::rw::load_report_json(uncached),
    )
}

/// The full `BENCH_hotswap.json` document for one soak run.
pub fn soak_json(report: &SoakReport, factor: f64, rounds: usize, swap_every: Duration) -> String {
    format!(
        "{{\"experiment\":\"hotswap\",\"factor\":{factor},\"threads\":{},\"rounds\":{rounds},\
         \"swap_ms\":{},\"swaps\":{},\"ok\":{},\"errors\":{},\"stale\":{},\
         \"elapsed_us\":{},\"clean\":{}}}\n",
        report.threads,
        swap_every.as_millis(),
        report.swaps,
        report.ok,
        report.errors,
        report.stale,
        report.elapsed.as_micros(),
        report.clean(),
    )
}

/// Renders the comparison as a small text table.
pub fn render_comparison(cached: &LoadReport, uncached: &LoadReport, factor: f64) -> String {
    let speedup = if uncached.qps() > 0.0 { cached.qps() / uncached.qps() } else { f64::INFINITY };
    format!(
        "Concurrent replay of the evaluation workload, XMark factor {factor}\n\
         cached plans   : {}\n\
         compile always : {}\n\
         throughput gain from the plan cache: {speedup:.2}x\n",
        cached.summary(),
        uncached.summary(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_are_exact_order_statistics() {
        let report = LoadReport {
            threads: 1,
            ok: 4,
            errors: 0,
            elapsed: Duration::from_secs(1),
            latencies: (1..=4).map(Duration::from_millis).collect(),
        };
        assert_eq!(report.quantile(0.0), Duration::from_millis(1));
        assert_eq!(report.quantile(1.0), Duration::from_millis(4));
        assert_eq!(report.qps(), 4.0);
    }

    #[test]
    fn hot_swap_soak_is_clean_on_a_tiny_database() {
        // Swap aggressively (every 5ms) so plenty of requests straddle a
        // publish; factor is tiny to keep the test fast.
        let report = hot_swap_soak(0.0005, 4, 2, Duration::from_millis(5));
        assert!(report.clean(), "soak saw defects: {}", report.summary());
        assert_eq!(report.ok, 4 * 2 * all_queries().len() as u64);
        assert!(report.swaps >= 1, "the swapper never ran");
    }

    #[test]
    fn batched_cached_soak_stays_clean_across_mixes_and_swaps() {
        // The property the epoch-keyed match cache must uphold: with the
        // cache and batch dispatch fully engaged, every answer still
        // byte-matches the single-threaded reference for its epoch, across
        // different seeded skewed mixes and concurrent snapshot swaps.
        for seed in [1u64, 97] {
            let config = ServiceConfig { workers: 2, queue_depth: 64, ..Default::default() };
            let report =
                hot_swap_soak_with(0.0005, 4, 2, Duration::from_millis(5), config, Some(seed));
            assert!(report.clean(), "seed {seed} saw defects: {}", report.summary());
            assert_eq!(report.ok, 4 * 2 * all_queries().len() as u64);
            assert!(report.swaps >= 1, "the swapper never ran");
        }
    }

    #[test]
    fn load_run_completes_the_whole_workload() {
        let db = Arc::new(crate::setup(0.001));
        let svc = Service::new(Arc::clone(&db), ServiceConfig::default());
        let report = run_load(&svc, 2, 1);
        let expected = 2 * all_queries().len() as u64;
        assert_eq!(report.ok + report.errors, expected);
        assert_eq!(report.errors, 0, "workload queries must all succeed");
        assert_eq!(report.latencies.len() as u64, report.ok);
    }
}
