//! Concurrent load generation against the query service.
//!
//! Replays the Figure-15 workload (the full evaluation suite) from N
//! client threads against one shared [`service::Service`], and reports
//! throughput plus a latency distribution. Latencies here are *exact*
//! (every request's duration is kept and sorted), unlike the service's own
//! bucketed histogram — the load generator is the measuring instrument,
//! the histogram is the cheap always-on telemetry.
//!
//! The second entry point, [`cached_vs_uncached`], quantifies what the
//! plan cache buys: the same workload through the same service, with the
//! cache warm versus a cache too small to ever hit (compile every time).

use queries::all_queries;
use service::{Service, ServiceConfig};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use xmldb::Database;

/// One load run's results.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Client threads that generated the load.
    pub threads: usize,
    /// Requests that completed successfully.
    pub ok: u64,
    /// Requests that failed (compile/execute/deadline/rejected).
    pub errors: u64,
    /// Wall-clock time for the whole run.
    pub elapsed: Duration,
    /// Sorted per-request latencies (successful requests only).
    pub latencies: Vec<Duration>,
}

impl LoadReport {
    /// Successful requests per wall-clock second.
    pub fn qps(&self) -> f64 {
        if self.elapsed.is_zero() {
            return 0.0;
        }
        self.ok as f64 / self.elapsed.as_secs_f64()
    }

    /// Exact latency quantile over the successful requests (`q` in `[0,1]`).
    pub fn quantile(&self, q: f64) -> Duration {
        if self.latencies.is_empty() {
            return Duration::ZERO;
        }
        let rank = ((self.latencies.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
        self.latencies[rank]
    }

    /// One-line summary: `threads=8 ok=184 err=0 qps=412.3 p50=1.2ms p95=8.0ms max=11.1ms`.
    pub fn summary(&self) -> String {
        format!(
            "threads={} ok={} err={} qps={:.1} p50={:.1?} p95={:.1?} max={:.1?}",
            self.threads,
            self.ok,
            self.errors,
            self.qps(),
            self.quantile(0.50),
            self.quantile(0.95),
            self.latencies.last().copied().unwrap_or(Duration::ZERO),
        )
    }
}

/// Replays the full workload `rounds` times from each of `threads` client
/// threads against `svc`. Requests run one at a time per client (closed
/// loop); the service's worker pool is the concurrency limiter.
pub fn run_load(svc: &Service, threads: usize, rounds: usize) -> LoadReport {
    let texts: Vec<&'static str> = all_queries().iter().map(|q| q.text).collect();
    let errors = AtomicU64::new(0);
    let started = Instant::now();
    let mut latencies: Vec<Duration> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let texts = &texts;
                let errors = &errors;
                s.spawn(move || {
                    let mut mine = Vec::with_capacity(rounds * texts.len());
                    for round in 0..rounds {
                        // Stagger start positions so the clients don't hit
                        // the same query in lock-step.
                        let offset = (t + round) % texts.len();
                        for i in 0..texts.len() {
                            let q = texts[(offset + i) % texts.len()];
                            let begun = Instant::now();
                            match svc.execute(q) {
                                Ok(_) => mine.push(begun.elapsed()),
                                Err(_) => {
                                    errors.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                        }
                    }
                    mine
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().expect("client thread")).collect()
    });
    let elapsed = started.elapsed();
    latencies.sort_unstable();
    LoadReport {
        threads,
        ok: latencies.len() as u64,
        errors: errors.into_inner(),
        elapsed,
        latencies,
    }
}

/// Cached-vs-uncached comparison on one database, both sides through
/// identical service machinery so plan reuse is the *only* difference:
///
/// * **cached** — a normally-sized plan cache, warmed with one full pass,
///   so every measured request is a cache hit;
/// * **uncached** — a capacity-1 cache cycled by the 23-query workload, so
///   every request misses and recompiles (the compile-every-time life).
///
/// Returns `(cached, uncached)`. The gap this shows is the compile share
/// of the request — large for small databases (lookup-style serving),
/// shrinking as execution grows with the scale factor.
pub fn cached_vs_uncached(
    db: Arc<Database>,
    threads: usize,
    rounds: usize,
) -> (LoadReport, LoadReport) {
    let config = ServiceConfig { workers: threads, queue_depth: threads * 4, ..Default::default() };
    let warm_svc = Service::new(Arc::clone(&db), config.clone());
    let _warm = run_load(&warm_svc, 1, 1); // one pass fills the plan cache
    let cached = run_load(&warm_svc, threads, rounds);
    let cold_svc =
        Service::new(Arc::clone(&db), ServiceConfig { plan_cache_capacity: 1, ..config });
    let uncached = run_load(&cold_svc, threads, rounds);
    (cached, uncached)
}

/// Renders the comparison as a small text table.
pub fn render_comparison(cached: &LoadReport, uncached: &LoadReport, factor: f64) -> String {
    let speedup = if uncached.qps() > 0.0 { cached.qps() / uncached.qps() } else { f64::INFINITY };
    format!(
        "Concurrent replay of the evaluation workload, XMark factor {factor}\n\
         cached plans   : {}\n\
         compile always : {}\n\
         throughput gain from the plan cache: {speedup:.2}x\n",
        cached.summary(),
        uncached.summary(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_are_exact_order_statistics() {
        let report = LoadReport {
            threads: 1,
            ok: 4,
            errors: 0,
            elapsed: Duration::from_secs(1),
            latencies: (1..=4).map(Duration::from_millis).collect(),
        };
        assert_eq!(report.quantile(0.0), Duration::from_millis(1));
        assert_eq!(report.quantile(1.0), Duration::from_millis(4));
        assert_eq!(report.qps(), 4.0);
    }

    #[test]
    fn load_run_completes_the_whole_workload() {
        let db = Arc::new(crate::setup(0.001));
        let svc = Service::new(Arc::clone(&db), ServiceConfig::default());
        let report = run_load(&svc, 2, 1);
        let expected = 2 * all_queries().len() as u64;
        assert_eq!(report.ok + report.errors, expected);
        assert_eq!(report.errors, 0, "workload queries must all succeed");
        assert_eq!(report.latencies.len() as u64, report.ok);
    }
}
