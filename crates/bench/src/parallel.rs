//! Intra-query parallel execution sweep (`experiments parallel`).
//!
//! Two layers, both byte-checked against the single-threaded reference:
//!
//! 1. **Engine sweep** — each heavy workload query is compiled once and
//!    executed through `tlc::par` at shard counts 1/2/4/8, on the
//!    tree-walk backend and (where the plan lowers) the register-IR
//!    backend. The 1-shard point runs the full shard machinery over a
//!    single full-document window, so it isolates the machinery's
//!    overhead against the plain sequential run.
//! 2. **Service composition** — the same heavy mix replayed by closed-loop
//!    clients through a sharded service (`shard_max` over the batched
//!    worker pool) and through an otherwise-identical sequential service,
//!    reporting QPS for both.
//!
//! A run is `clean()` when every answer matched and the sharded service
//! actually sharded; speedup itself is *reported, never gated* — it is
//! bounded by the host's core count, which the report prints.

use crate::concurrent::LoadReport;
use baselines::Engine;
use queries::all_queries;
use service::{Service, ServiceConfig};
use std::sync::atomic::AtomicU64;
use std::sync::Arc;
use std::time::{Duration, Instant};
use tlc::par::{execute_sharded, execute_sharded_vm, plan_shards, ShardPlan, ShardPolicy};
use xmldb::{Database, OrdRange};

/// Shard counts the engine sweep measures.
pub const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Heavy workload queries: large candidate sets and big outputs, so
/// per-shard work dominates planning and merge.
pub const HEAVY_QUERIES: [&str; 2] = ["x10", "Q2"];

/// One measured shard-count configuration of one query.
pub struct ShardPoint {
    /// Requested shard count.
    pub shards: usize,
    /// Final-wave windows the planner actually produced (clamped to the
    /// candidate count).
    pub windows: usize,
    /// Total shard jobs of the staged tree-walk execution.
    pub jobs: usize,
    /// Tree-walk sharded wall clock (execute + merge + serialize).
    pub walk: Duration,
    /// Register-IR sharded wall clock; `None` when the plan does not lower.
    pub vm: Option<Duration>,
}

/// The shard-count curve of one query.
pub struct QuerySweep {
    /// Workload query name (e.g. `x10`).
    pub name: &'static str,
    /// Plain single-threaded `tlc::execute` wall clock (the speedup
    /// denominator for the tree-walk points).
    pub sequential: Duration,
    /// One point per measured shard count, ascending.
    pub points: Vec<ShardPoint>,
}

impl QuerySweep {
    /// Tree-walk speedup of the point at `shards`, vs the sequential run.
    pub fn walk_speedup(&self, shards: usize) -> Option<f64> {
        let p = self.points.iter().find(|p| p.shards == shards)?;
        Some(self.sequential.as_secs_f64() / p.walk.as_secs_f64().max(1e-9))
    }

    /// Register-IR speedup of the point at `shards`, vs the 1-shard IR run
    /// (same backend, so the ratio isolates the sharding effect).
    pub fn vm_speedup(&self, shards: usize) -> Option<f64> {
        let base = self.points.iter().find(|p| p.shards == 1)?.vm?;
        let p = self.points.iter().find(|p| p.shards == shards)?.vm?;
        Some(base.as_secs_f64() / p.as_secs_f64().max(1e-9))
    }
}

/// The full `experiments parallel` result.
pub struct ParallelReport {
    /// XMark scale factor the run was measured at.
    pub factor: f64,
    /// `std::thread::available_parallelism()` — the speedup ceiling.
    pub parallelism: usize,
    /// Per-query shard-count curves.
    pub sweeps: Vec<QuerySweep>,
    /// Heavy mix through the sharded service (shards over the batched pool).
    pub sharded: LoadReport,
    /// The same mix through an otherwise-identical sequential service.
    pub sequential: LoadReport,
    /// Shard jobs the sharded service executed (from `.metrics`).
    pub shard_jobs: u64,
    /// Requests the sharded service fell back to sequential execution.
    pub fallbacks: u64,
    /// Shard waves the pool admitted.
    pub waves: u64,
    /// Answers compared against the single-threaded reference.
    pub checked: u64,
    /// Answers that differed from the reference (must be zero).
    pub mismatches: u64,
    /// Arena-pool recycling counters of the sharded service (each shard
    /// job checks out its own disjoint arena).
    pub arena: service::pool::ArenaPoolStats,
}

impl ParallelReport {
    /// True when every byte check passed, no request failed, and the
    /// sharded service actually executed shard jobs.
    pub fn clean(&self) -> bool {
        self.mismatches == 0
            && self.sharded.errors == 0
            && self.sequential.errors == 0
            && self.shard_jobs > 0
    }

    /// QPS ratio of the sharded service over the sequential service.
    pub fn service_speedup(&self) -> f64 {
        let base = self.sequential.qps();
        if base <= 0.0 {
            0.0
        } else {
            self.sharded.qps() / base
        }
    }

    /// Machine-readable report; the two `"qps"` fields (sharded first,
    /// sequential second) are what `scripts/check_qps.sh` compares.
    pub fn to_json(&self, clients: usize, requests: usize) -> String {
        let mut queries = String::new();
        for (i, sw) in self.sweeps.iter().enumerate() {
            if i > 0 {
                queries.push(',');
            }
            let mut points = String::new();
            for (j, p) in sw.points.iter().enumerate() {
                if j > 0 {
                    points.push(',');
                }
                points.push_str(&format!(
                    "{{\"shards\":{},\"windows\":{},\"jobs\":{},\"walk_ms\":{:.2},\
                     \"walk_speedup\":{:.3}",
                    p.shards,
                    p.windows,
                    p.jobs,
                    p.walk.as_secs_f64() * 1e3,
                    sw.walk_speedup(p.shards).unwrap_or(0.0),
                ));
                if let Some(vm) = p.vm {
                    points.push_str(&format!(
                        ",\"vm_ms\":{:.2},\"vm_speedup\":{:.3}",
                        vm.as_secs_f64() * 1e3,
                        sw.vm_speedup(p.shards).unwrap_or(0.0),
                    ));
                }
                points.push('}');
            }
            queries.push_str(&format!(
                "{{\"query\":\"{}\",\"seq_ms\":{:.2},\"points\":[{points}]}}",
                sw.name,
                sw.sequential.as_secs_f64() * 1e3,
            ));
        }
        format!(
            "{{\"experiment\":\"parallel\",\"factor\":{},\"available_parallelism\":{},\
             \"clients\":{clients},\"requests\":{requests},\
             \"queries\":[{queries}],\
             \"sharded\":{},\"sequential\":{},\"service_speedup\":{:.3},\
             \"shard_jobs\":{},\"fallbacks\":{},\"waves\":{},\
             \"arena_checkouts\":{},\"arena_reuses\":{},\"arena_discards\":{},\
             \"checked\":{},\"mismatches\":{}}}\n",
            self.factor,
            self.parallelism,
            crate::rw::load_report_json(&self.sharded),
            crate::rw::load_report_json(&self.sequential),
            self.service_speedup(),
            self.shard_jobs,
            self.fallbacks,
            self.waves,
            self.arena.checkouts,
            self.arena.reuses,
            self.arena.discards,
            self.checked,
            self.mismatches,
        )
    }

    /// Human-readable report.
    pub fn render(&self) -> String {
        let mut out = format!(
            "Intra-query parallel sharding, XMark factor {}\n\
             available parallelism: {} core(s) — shard speedups are bounded by the host\n",
            self.factor, self.parallelism
        );
        for sw in &self.sweeps {
            out.push_str(&format!("\n{}: sequential {:.1?}\n", sw.name, sw.sequential));
            for p in &sw.points {
                out.push_str(&format!(
                    "  shards={:<2} windows={:<2} jobs={:<3} walk {:>9.1?} ({:.2}x)",
                    p.shards,
                    p.windows,
                    p.jobs,
                    p.walk,
                    sw.walk_speedup(p.shards).unwrap_or(0.0),
                ));
                match p.vm {
                    Some(vm) => out.push_str(&format!(
                        "   vm {:>9.1?} ({:.2}x vs 1-shard vm)\n",
                        vm,
                        sw.vm_speedup(p.shards).unwrap_or(0.0),
                    )),
                    None => out.push_str("   vm —\n"),
                }
            }
        }
        out.push_str(&format!(
            "\nservice mix (shard dispatch over the batched pool) vs sequential service:\n\
             \x20 sharded:    {}\n\
             \x20 sequential: {}\n\
             \x20 service speedup: {:.2}x; {} shard job(s), {} wave(s), {} fallback(s)\n\
             \x20 arena pool: {} checkout(s), {} reuse(s), {} discard(s)\n\
             byte checks: {} answer(s) compared, {} mismatch(es)\n",
            self.sharded.summary(),
            self.sequential.summary(),
            self.service_speedup(),
            self.shard_jobs,
            self.waves,
            self.fallbacks,
            self.arena.checkouts,
            self.arena.reuses,
            self.arena.discards,
            self.checked,
            self.mismatches,
        ));
        out
    }
}

/// Collapses every wave of `sp` to one full-document window — the
/// degenerate 1-shard execution that isolates the shard machinery's
/// overhead from actual partitioning.
fn single_window(sp: &ShardPlan) -> ShardPlan {
    let mut sp = sp.clone();
    sp.ranges = vec![OrdRange::full(sp.doc)];
    for stage in &mut sp.stages {
        stage.ranges = vec![OrdRange::full(sp.doc)];
    }
    sp
}

/// Measures one query's shard-count curve, byte-checking every answer.
fn sweep_query(
    db: &Database,
    name: &'static str,
    text: &str,
    checked: &mut u64,
    mismatches: &mut u64,
) -> QuerySweep {
    let plan = tlc::compile(text, db).expect("heavy query compiles");
    // Warm the allocator and page cache before anything is timed.
    let reference = tlc::execute_to_string(db, &plan).expect("reference");
    let started = Instant::now();
    let sequential_out = tlc::execute_to_string(db, &plan).expect("reference");
    let sequential = started.elapsed();
    assert_eq!(sequential_out, reference, "sequential rerun diverged");
    let prog = tlc::vm::lower(&plan).ok();

    let mut points = Vec::new();
    for &k in &SHARD_COUNTS {
        // The planner refuses below 2 shards; plan at 2 and collapse for
        // the 1-shard overhead point.
        let policy = ShardPolicy { max_shards: k.max(2), min_candidates: 1 };
        let Ok(planned) = plan_shards(db, &plan, policy) else {
            continue;
        };
        let sp = if k == 1 { single_window(&planned) } else { planned };

        let started = Instant::now();
        let (trees, _, jobs) = execute_sharded(db, &plan, &sp, None)
            .unwrap_or_else(|e| panic!("{name} k={k}: walk shards failed: {e}"));
        let out = tlc::serialize_results(db, &trees);
        let walk = started.elapsed();
        *checked += 1;
        if out != reference {
            *mismatches += 1;
            eprintln!("MISMATCH: {name} k={k} tree-walk shards diverged from reference");
        }

        let vm = prog.as_ref().map(|prog| {
            let started = Instant::now();
            let (trees, _, _) = execute_sharded_vm(db, prog, &sp, None)
                .unwrap_or_else(|e| panic!("{name} k={k}: vm shards failed: {e}"));
            let out = tlc::serialize_results(db, &trees);
            let elapsed = started.elapsed();
            *checked += 1;
            if out != reference {
                *mismatches += 1;
                eprintln!("MISMATCH: {name} k={k} register-IR shards diverged from reference");
            }
            elapsed
        });

        points.push(ShardPoint { shards: k, windows: sp.ranges.len(), jobs, walk, vm });
    }
    QuerySweep { name, sequential, points }
}

/// The `experiments parallel` experiment: engine-level shard-count sweep
/// plus the composed service scenario, every answer byte-checked.
pub fn sweep(factor: f64, clients: usize, requests: usize, seed: u64) -> ParallelReport {
    let db = Arc::new(crate::setup(factor));
    let parallelism = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);

    let heavy: Vec<_> = all_queries().iter().filter(|q| HEAVY_QUERIES.contains(&q.name)).collect();
    assert_eq!(heavy.len(), HEAVY_QUERIES.len(), "heavy query missing from workload");

    let mut checked = 0u64;
    let mut mismatches = 0u64;
    let sweeps: Vec<QuerySweep> = heavy
        .iter()
        .map(|q| sweep_query(&db, q.name, q.text, &mut checked, &mut mismatches))
        .collect();

    // Composed scenario: the same heavy mix through shard dispatch over
    // the batched pool, and through an otherwise-identical sequential
    // service. Worker count covers a full 4-shard wave even on small
    // hosts; the cost threshold is dropped so smoke-scale databases
    // exercise the shard path too.
    let texts: Vec<&str> = heavy.iter().map(|q| q.text).collect();
    let refs: Vec<String> = texts
        .iter()
        .map(|t| baselines::run(Engine::Tlc, t, &db).expect("single-threaded reference"))
        .collect();
    let sharded_cfg = ServiceConfig {
        workers: 4,
        queue_depth: clients.max(4) * 8,
        shard_max: 4,
        shard_min_candidates: 1,
        ..ServiceConfig::default()
    };
    let sequential_cfg = ServiceConfig { shard_max: 0, ..sharded_cfg.clone() };
    let svc_mismatches = AtomicU64::new(0);

    let sharded_svc = Service::new(Arc::clone(&db), sharded_cfg);
    let sharded = crate::batch::run_mix(
        &sharded_svc,
        clients,
        requests,
        seed,
        &texts,
        &refs,
        &svc_mismatches,
    );
    let snap = sharded_svc.metrics_snapshot();
    let waves = sharded_svc.shard_stats().waves;
    let arena = sharded_svc.arena_stats();

    let sequential_svc = Service::new(db, sequential_cfg);
    let sequential = crate::batch::run_mix(
        &sequential_svc,
        clients,
        requests,
        seed,
        &texts,
        &refs,
        &svc_mismatches,
    );

    checked += sharded.ok + sequential.ok;
    ParallelReport {
        factor,
        parallelism,
        sweeps,
        sharded,
        sequential,
        shard_jobs: snap.shards_executed,
        fallbacks: snap.shard_fallback_sequential,
        waves,
        checked,
        mismatches: mismatches + svc_mismatches.into_inner(),
        arena,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_sweep_is_clean_on_a_small_database() {
        let report = sweep(0.002, 2, 3, 7);
        assert!(report.clean(), "mismatches or errors: {}", report.render());
        assert_eq!(report.mismatches, 0);
        assert!(report.checked > 0);
        // Every heavy query produced all four shard-count points.
        for sw in &report.sweeps {
            assert_eq!(
                sw.points.iter().map(|p| p.shards).collect::<Vec<_>>(),
                SHARD_COUNTS.to_vec(),
                "{} missed shard counts",
                sw.name
            );
            // More requested shards never yields fewer windows.
            for pair in sw.points.windows(2) {
                assert!(pair[0].windows <= pair[1].windows);
            }
        }
        // Every shard job checked out a pool arena.
        assert!(report.arena.checkouts > 0, "sharded service never checked out an arena");
        let json = report.to_json(2, 3);
        assert_eq!(json.matches("\"qps\":").count(), 2, "check_qps expects two qps fields");
        assert!(json.contains("\"mismatches\":0"));
        assert!(json.contains("\"arena_checkouts\":"), "{json}");
        assert!(report.render().contains("available parallelism"));
        assert!(report.render().contains("arena pool:"));
    }
}
