//! The `experiments rw` workload: seeded mixed read/write traffic through
//! the in-place update engine, every read byte-checked against a
//! reparse-from-scratch reference.
//!
//! One driver interleaves reads (workload queries through the service, so
//! the plan and match caches engage and carry across epochs) with writes
//! ([`service::Service::apply_update`] — copy-on-write commit, epoch bump,
//! footprint-based cache seeding). After every write the *current* snapshot
//! is serialized back to XML and reparsed into a fresh store; each read's
//! answer must byte-match what the single-threaded engine computes on that
//! reparsed reference, and the mutated store must pass the full invariant
//! check. A mismatch is a correctness defect in the update engine or the
//! seeding rule, never noise.
//!
//! Writes stay within a dedicated `<note>` namespace: inserts append
//! `<note>` fragments under existing `person`/`item` elements, and
//! settext/delete target previously inserted notes, so the run mutates
//! every epoch without consuming the base document. The op stream is fully
//! determined by the seed and the write fraction.

use crate::concurrent::LoadReport;
use baselines::Engine;
use queries::all_queries;
use service::cache::CacheStats;
use service::catalog::DEFAULT_DB;
use service::{Service, ServiceConfig, UpdateOp};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};
use tlc::ExecStats;
use xmark::rng::{RngExt, SeedableRng, StdRng};
use xmldb::Database;

/// Document the generator mutates (the only one XMark databases carry).
const DOC: &str = "auction.xml";

/// One `experiments rw` run configuration.
#[derive(Debug, Clone, Copy)]
pub struct RwConfig {
    /// XMark scale factor of the starting database.
    pub factor: f64,
    /// Total operations (reads + writes) in the stream.
    pub ops: usize,
    /// Base RNG seed; the whole op stream is a function of it.
    pub seed: u64,
    /// Fraction of operations that are writes, in `[0, 1]`.
    pub write_fraction: f64,
}

/// What one mixed read/write run observed.
#[derive(Debug, Clone)]
pub struct RwReport {
    /// The write fraction this run was configured with.
    pub write_fraction: f64,
    /// Reads that completed.
    pub reads: u64,
    /// Writes that committed.
    pub writes: u64,
    /// Requests (either kind) that failed. Must be zero.
    pub errors: u64,
    /// Read answers that did not byte-match the reparsed reference.
    /// Must be zero.
    pub mismatches: u64,
    /// Post-write invariant checks that failed. Must be zero.
    pub check_failures: u64,
    /// Insert / settext / delete split of the committed writes.
    pub op_mix: [u64; 3],
    /// Nodes renumbered across all writes (gap-exhaustion fallbacks).
    pub renumbered: u64,
    /// Plans carried into new epochs by footprint disjointness.
    pub plans_seeded: u64,
    /// Match-cache entries carried into new epochs.
    pub matches_seeded: u64,
    /// Of those, chain entries carried *only* because the precise
    /// per-chain footprints proved them safe — the conservative
    /// whole-plan guard would have dropped them.
    pub matches_extra: u64,
    /// Epoch the default database reached.
    pub final_epoch: u64,
    /// Sorted read latencies.
    pub read_latencies: Vec<Duration>,
    /// Sorted write (commit) latencies — excludes reference rebuilds.
    pub write_latencies: Vec<Duration>,
    /// Plan cache counters at the end of the run.
    pub plan_cache: CacheStats,
    /// Match cache counters at the end of the run, if enabled.
    pub match_cache: Option<CacheStats>,
    /// Executor counters summed over all reads.
    pub stats: ExecStats,
}

impl RwReport {
    /// No failed ops, no byte mismatches, no invariant violations.
    pub fn clean(&self) -> bool {
        self.errors == 0 && self.mismatches == 0 && self.check_failures == 0
    }

    /// Reads per second of read wall-clock (commit and verification time
    /// excluded — this is service-side read cost under a mutating catalog).
    pub fn read_qps(&self) -> f64 {
        let busy: Duration = self.read_latencies.iter().sum();
        if busy.is_zero() {
            return 0.0;
        }
        self.reads as f64 / busy.as_secs_f64()
    }

    /// Exact quantile over the sorted `latencies` (`q` in `[0, 1]`).
    fn quantile(latencies: &[Duration], q: f64) -> Duration {
        if latencies.is_empty() {
            return Duration::ZERO;
        }
        let rank = ((latencies.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
        latencies[rank]
    }

    /// Plan-cache hit rate in `[0, 1]`.
    pub fn plan_hit_rate(&self) -> f64 {
        hit_rate(&self.plan_cache)
    }

    /// The text block `experiments rw` prints for this run.
    pub fn render(&self) -> String {
        format!(
            "write fraction {:.0}%: {} reads / {} writes (ins {} / set {} / del {}), epoch {}\n\
             \x20 read qps {:.1}, p50 {:.1?}, p95 {:.1?}; write p50 {:.1?}, p95 {:.1?}\n\
             \x20 plan cache hit rate {:.1}%, {} plan(s) and {} match entr(ies) carried \
             (+{} by precise footprints alone), {} node(s) renumbered\n\
             \x20 mismatches {}, errors {}, check failures {}\n",
            self.write_fraction * 100.0,
            self.reads,
            self.writes,
            self.op_mix[0],
            self.op_mix[1],
            self.op_mix[2],
            self.final_epoch,
            self.read_qps(),
            Self::quantile(&self.read_latencies, 0.50),
            Self::quantile(&self.read_latencies, 0.95),
            Self::quantile(&self.write_latencies, 0.50),
            Self::quantile(&self.write_latencies, 0.95),
            self.plan_hit_rate() * 100.0,
            self.plans_seeded,
            self.matches_seeded,
            self.matches_extra,
            self.renumbered,
            self.mismatches,
            self.errors,
            self.check_failures,
        )
    }

    /// This run as one JSON object (hand-rolled; the workspace carries no
    /// serialization dependency).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"write_fraction\":{},\"reads\":{},\"writes\":{},\"errors\":{},\
             \"mismatches\":{},\"check_failures\":{},\
             \"inserts\":{},\"settexts\":{},\"deletes\":{},\
             \"renumbered\":{},\"plans_seeded\":{},\"matches_seeded\":{},\
             \"matches_extra\":{},\"final_epoch\":{},\"read_qps\":{:.1},\
             \"read_p50_us\":{},\"read_p95_us\":{},\
             \"write_p50_us\":{},\"write_p95_us\":{},\
             \"plan_cache\":{},\"match_cache\":{},\"exec_stats\":{}}}",
            self.write_fraction,
            self.reads,
            self.writes,
            self.errors,
            self.mismatches,
            self.check_failures,
            self.op_mix[0],
            self.op_mix[1],
            self.op_mix[2],
            self.renumbered,
            self.plans_seeded,
            self.matches_seeded,
            self.matches_extra,
            self.final_epoch,
            self.read_qps(),
            Self::quantile(&self.read_latencies, 0.50).as_micros(),
            Self::quantile(&self.read_latencies, 0.95).as_micros(),
            Self::quantile(&self.write_latencies, 0.50).as_micros(),
            Self::quantile(&self.write_latencies, 0.95).as_micros(),
            cache_json(&self.plan_cache),
            self.match_cache.as_ref().map_or_else(|| "null".into(), cache_json),
            exec_stats_json(&self.stats),
        )
    }
}

/// `CacheStats` as a JSON object.
pub fn cache_json(s: &CacheStats) -> String {
    format!(
        "{{\"hits\":{},\"misses\":{},\"evictions\":{},\"len\":{},\"hit_rate\":{:.4}}}",
        s.hits,
        s.misses,
        s.evictions,
        s.len,
        hit_rate(s)
    )
}

/// `ExecStats` as a JSON object.
pub fn exec_stats_json(s: &ExecStats) -> String {
    format!(
        "{{\"probes\":{},\"nodes_inspected\":{},\"pattern_matches\":{},\"trees_built\":{},\
         \"subtrees_materialized\":{},\"join_steps\":{},\"candidate_fetches\":{},\
         \"struct_cmps\":{},\"match_cache_hits\":{},\"match_cache_misses\":{},\
         \"arena_bytes\":{},\"arena_resets\":{},\"fallback_allocs\":{}}}",
        s.probes,
        s.nodes_inspected,
        s.pattern_matches,
        s.trees_built,
        s.subtrees_materialized,
        s.join_steps,
        s.candidate_fetches,
        s.struct_cmps,
        s.match_cache_hits,
        s.match_cache_misses,
        s.arena_bytes,
        s.arena_resets,
        s.fallback_allocs,
    )
}

/// A `LoadReport` as a JSON object (QPS and exact latency quantiles).
pub fn load_report_json(r: &LoadReport) -> String {
    format!(
        "{{\"threads\":{},\"ok\":{},\"errors\":{},\"qps\":{:.1},\
         \"p50_us\":{},\"p95_us\":{},\"max_us\":{}}}",
        r.threads,
        r.ok,
        r.errors,
        r.qps(),
        r.quantile(0.50).as_micros(),
        r.quantile(0.95).as_micros(),
        r.latencies.last().copied().unwrap_or(Duration::ZERO).as_micros(),
    )
}

fn hit_rate(s: &CacheStats) -> f64 {
    let lookups = s.hits + s.misses;
    if lookups == 0 {
        0.0
    } else {
        s.hits as f64 / lookups as f64
    }
}

/// The full `BENCH_rw.json` document for a sweep of write fractions over
/// one generated database.
pub fn sweep_json(factor: f64, ops: usize, seed: u64, runs: &[RwReport]) -> String {
    let runs: Vec<String> = runs.iter().map(RwReport::to_json).collect();
    format!(
        "{{\"experiment\":\"rw\",\"factor\":{factor},\"ops\":{ops},\"seed\":{seed},\
         \"runs\":[{}]}}\n",
        runs.join(",")
    )
}

/// Picks a random existing node with `tag`, by pre ordinal, from the
/// current snapshot. `None` when the tag has no postings.
fn pick(db: &Database, rng: &mut StdRng, tag: &str) -> Option<u32> {
    let nodes = db.nodes_with_tag(tag);
    if nodes.is_empty() {
        None
    } else {
        Some(nodes[rng.random_range(0..nodes.len())].pre)
    }
}

/// Draws the next write op against the current snapshot. Inserts hang a
/// fresh `<note>` under a random `person`/`item`/root element; settext and
/// delete target a random previously inserted note (falling back to insert
/// while none exist yet).
fn next_write(db: &Database, rng: &mut StdRng, n: u64) -> UpdateOp {
    let kind = rng.random_range(0..100u32);
    if kind >= 45 {
        if let Some(pre) = pick(db, rng, "note") {
            return if kind < 80 {
                UpdateOp::SetText { doc: DOC.into(), pre, text: format!("note v{n}") }
            } else {
                UpdateOp::Delete { doc: DOC.into(), pre }
            };
        }
    }
    let parent = pick(db, rng, "person")
        .or_else(|| pick(db, rng, "item"))
        .unwrap_or_else(|| db.nodes_with_tag("site")[0].pre);
    // Alternate attribute-bearing and plain fragments; payloads contain
    // spaces so serialization and the wire path stay honest about them.
    let xml = if n.is_multiple_of(2) {
        format!("<note>rw payload {n}</note>")
    } else {
        format!("<note seq=\"{n}\">rw payload {n}</note>")
    };
    UpdateOp::Insert { doc: DOC.into(), parent, xml }
}

/// Serializes the snapshot's document back to XML and reparses it into a
/// fresh store — the from-scratch reference every read is checked against.
fn reparse_reference(snapshot: &Database) -> Database {
    let doc = snapshot.document_by_name(DOC).expect("snapshot carries the workload document");
    let xml = xmldb::serialize::serialize_subtree(snapshot, snapshot.root(doc));
    let mut fresh = Database::new();
    fresh.load_xml(DOC, &xml).expect("reference reparse");
    fresh
}

/// Runs one seeded mixed read/write stream through a fresh service over
/// `db` and reports what it observed.
pub fn run_on(db: Arc<Database>, cfg: &RwConfig) -> RwReport {
    let svc = Service::new(Arc::clone(&db), ServiceConfig::default());
    let texts: Vec<&'static str> = all_queries().iter().map(|q| q.text).collect();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let write_per_mille = (cfg.write_fraction.clamp(0.0, 1.0) * 1000.0) as u32;

    let mut reference = reparse_reference(&db);
    let mut ref_answers: HashMap<usize, String> = HashMap::new();
    let mut report = RwReport {
        write_fraction: cfg.write_fraction,
        reads: 0,
        writes: 0,
        errors: 0,
        mismatches: 0,
        check_failures: 0,
        op_mix: [0; 3],
        renumbered: 0,
        plans_seeded: 0,
        matches_seeded: 0,
        matches_extra: 0,
        final_epoch: 0,
        read_latencies: Vec::new(),
        write_latencies: Vec::new(),
        plan_cache: CacheStats::default(),
        match_cache: None,
        stats: ExecStats::new(),
    };

    for n in 0..cfg.ops as u64 {
        if rng.random_range(0..1000u32) < write_per_mille {
            let op = next_write(&svc.database(), &mut rng, n);
            let slot = match op {
                UpdateOp::Insert { .. } => 0,
                UpdateOp::SetText { .. } => 1,
                UpdateOp::Delete { .. } => 2,
            };
            let begun = Instant::now();
            match svc.apply_update(DEFAULT_DB, &op) {
                Ok(outcome) => {
                    report.write_latencies.push(begun.elapsed());
                    report.writes += 1;
                    report.op_mix[slot] += 1;
                    report.renumbered += outcome.summary.renumbered as u64;
                    report.plans_seeded += outcome.plans_seeded;
                    report.matches_seeded += outcome.matches_seeded;
                    report.matches_extra += outcome.matches_extra;
                    report.final_epoch = outcome.entry.epoch();
                    let snapshot = svc.database();
                    if xmldb::check_database(&snapshot).is_err() {
                        report.check_failures += 1;
                    }
                    reference = reparse_reference(&snapshot);
                    ref_answers.clear();
                }
                Err(_) => report.errors += 1,
            }
        } else {
            let qi = rng.random_range(0..texts.len());
            let begun = Instant::now();
            match svc.execute(texts[qi]) {
                Ok(resp) => {
                    report.read_latencies.push(begun.elapsed());
                    report.reads += 1;
                    report.stats.absorb(&resp.stats);
                    let expect = ref_answers.entry(qi).or_insert_with(|| {
                        baselines::run(Engine::Tlc, texts[qi], &reference)
                            .expect("reference evaluation")
                    });
                    if resp.output != *expect {
                        report.mismatches += 1;
                    }
                }
                Err(_) => report.errors += 1,
            }
        }
    }
    report.read_latencies.sort_unstable();
    report.write_latencies.sort_unstable();
    report.plan_cache = svc.cache_stats();
    report.match_cache = svc.match_cache_stats();
    report
}

/// Runs the seeded stream at each write fraction, each over a fresh copy
/// of the same generated database.
pub fn sweep(factor: f64, ops: usize, seed: u64, fractions: &[f64]) -> Vec<RwReport> {
    let db = Arc::new(crate::setup(factor));
    fractions
        .iter()
        .map(|&write_fraction| {
            run_on(Arc::clone(&db), &RwConfig { factor, ops, seed, write_fraction })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixed_stream_is_clean_and_carries_cache_state() {
        let db = Arc::new(crate::setup(0.0005));
        let report = run_on(
            Arc::clone(&db),
            &RwConfig { factor: 0.0005, ops: 60, seed: 11, write_fraction: 0.3 },
        );
        assert!(report.clean(), "defects:\n{}", report.render());
        assert!(report.reads > 0 && report.writes > 0, "{}", report.render());
        assert_eq!(report.reads + report.writes, 60);
        assert!(report.final_epoch > 0, "writes must publish new epochs");
        assert!(
            report.plans_seeded > 0,
            "footprint-disjoint plans must carry across epochs:\n{}",
            report.render()
        );
        // Same seed, same stream, same observations.
        let again =
            run_on(db, &RwConfig { factor: 0.0005, ops: 60, seed: 11, write_fraction: 0.3 });
        assert_eq!(
            (again.reads, again.writes, again.op_mix),
            (report.reads, report.writes, report.op_mix)
        );
    }

    #[test]
    fn write_fraction_bounds_hold() {
        let db = Arc::new(crate::setup(0.0005));
        let all_reads = run_on(
            Arc::clone(&db),
            &RwConfig { factor: 0.0005, ops: 20, seed: 3, write_fraction: 0.0 },
        );
        assert_eq!((all_reads.writes, all_reads.reads), (0, 20));
        assert_eq!(all_reads.final_epoch, 0);
        let all_writes =
            run_on(db, &RwConfig { factor: 0.0005, ops: 20, seed: 3, write_fraction: 1.0 });
        assert_eq!((all_writes.writes, all_writes.reads), (20, 0));
        assert!(all_writes.clean(), "defects:\n{}", all_writes.render());
    }

    #[test]
    fn json_documents_are_well_formed_enough() {
        let runs = sweep(0.0005, 30, 5, &[0.2]);
        let doc = sweep_json(0.0005, 30, 5, &runs);
        assert!(doc.starts_with("{\"experiment\":\"rw\""), "{doc}");
        assert!(doc.contains("\"write_fraction\":0.2"), "{doc}");
        assert!(doc.contains("\"exec_stats\":{"), "{doc}");
        assert!(doc.contains("\"plan_cache\":{"), "{doc}");
        assert_eq!(doc.matches('{').count(), doc.matches('}').count(), "{doc}");
    }
}
