//! A counting global allocator for allocation-per-request accounting.
//!
//! [`CountingAlloc`] wraps [`std::alloc::System`] and bumps one relaxed
//! atomic per `alloc`/`realloc` call — cheap enough to leave on for bench
//! runs, and the only way to *measure* (rather than estimate) what the
//! execution arena saves. It is registered as the `#[global_allocator]`
//! in two places:
//!
//! * the `experiments` binary (always), so `experiments batch --json`
//!   reports measured heap allocations per request and
//!   `scripts/check_qps.sh` can gate on the count;
//! * this crate's test build (`#[cfg(test)]` in `lib.rs`), so the batch
//!   smoke test can assert the arena-backed side allocates strictly less.
//!
//! When no registration is active (other binaries linking `bench`), the
//! counter stays at zero and [`allocations`] reports that; callers treat
//! an all-zero delta as "counting disabled" rather than "zero allocs".

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

/// System allocator with a heap-allocation counter on the side.
pub struct CountingAlloc;

// SAFETY: delegates every operation verbatim to `System`; the counter is
// a side effect that never touches the returned memory.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

/// Heap allocations observed so far (process-wide, monotone). Zero means
/// the counting allocator is not registered in this build.
pub fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_observes_heap_traffic() {
        // The test build registers CountingAlloc (see lib.rs), so any
        // fresh allocation must move the counter.
        let before = allocations();
        let v: Vec<u64> = (0..64).collect();
        assert_eq!(v.len(), 64);
        assert!(allocations() > before, "counting allocator not registered?");
    }
}
