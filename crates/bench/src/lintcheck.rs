//! Seeded differential soundness oracle for the static-analysis framework.
//!
//! Generates hundreds of random — but statically valid — plans with
//! [`tlc::random_plan`] over an XMark database and checks, per plan, every
//! claim the analyzer makes against what actually happens at runtime:
//!
//! * **cardinality** — the executed result set of every subplan conforms to
//!   its inferred [`tlc::PlanType`] ([`tlc::check_conformance`], the same
//!   oracle debug builds run on every test execution);
//! * **liveness pruning** — `tlc::prune_with_report` output still verifies
//!   and serializes byte-identically to the unpruned plan;
//! * **empty-select lints** — a Select the linter calls *statically empty*
//!   really produces zero trees when executed alone;
//! * **footprint carry** — replaying the service's selective
//!   cache-invalidation decision: pattern-match entries for chains whose
//!   [`tlc::Footprint`] is disjoint from a seeded mutation are carried into
//!   the post-mutation snapshot, and the answer there must byte-match a
//!   from-scratch execution;
//! * **register IR** — every verified plan is lowered to a [`tlc::vm`]
//!   program and executed on the bytecode evaluator three ways (no cache,
//!   cold cache, warm cache); each run must byte-match the tree walker and
//!   the cold runs must leave identical match-cache entries behind.
//!
//! Any discrepancy is a soundness violation, not noise: the generator only
//! emits plans the analyzer accepted, so the analyzer has vouched for every
//! claim checked here.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use tlc::{ExecCtx, MatchCache, Plan, ResultTree};
use xmark::rng::{RngExt, SeedableRng, StdRng};
use xmldb::Database;

/// The document every generated plan is anchored at.
const DOC: &str = "auction.xml";

/// Tallies from one oracle run. Every `*_violations` field must be zero.
#[derive(Debug, Clone, Default)]
pub struct LintcheckReport {
    /// Plans generated and checked.
    pub plans: usize,
    /// Wrapper operators across all generated plans (generation diversity).
    pub wrappers: usize,
    /// Plans the final optional Construct wrapper applied to.
    pub constructs: usize,
    /// Lint warnings raised across all plans.
    pub lints: u64,
    /// Match-cache chain entries carried across the seeded mutation.
    pub chains_carried: u64,
    /// Chain entries the footprints forced to be dropped.
    pub chains_dropped: u64,
    /// Generated plans that failed verification or execution.
    pub exec_violations: u64,
    /// Subplan result sets that broke their inferred cardinality/order.
    pub conformance_violations: u64,
    /// Pruned plans that failed verification or diverged byte-wise.
    pub prune_violations: u64,
    /// "Statically empty" selects that produced trees when executed.
    pub empty_select_violations: u64,
    /// Carried-cache executions that diverged from a fresh execution.
    pub carry_violations: u64,
    /// Plans successfully lowered to register-IR programs.
    pub ir_programs: u64,
    /// Plans that failed to lower, or whose IR execution diverged from the
    /// tree walker (output bytes or match-cache content, any cache state).
    pub ir_violations: u64,
}

impl LintcheckReport {
    /// Whether the run saw zero soundness violations.
    pub fn clean(&self) -> bool {
        self.exec_violations == 0
            && self.conformance_violations == 0
            && self.prune_violations == 0
            && self.empty_select_violations == 0
            && self.carry_violations == 0
            && self.ir_violations == 0
    }

    /// Multi-line human-readable summary.
    pub fn render(&self, factor: f64, seed: u64) -> String {
        format!(
            "Differential soundness oracle, XMark factor {factor}, seed {seed}\n\
             {} random plan(s) checked ({} wrapper op(s), {} Construct(s)), {} lint(s) raised\n\
             footprint carry: {} chain entr(ies) carried, {} dropped\n\
             register IR: {} program(s) lowered and replayed against the tree walker\n\
             violations: {} exec, {} conformance, {} prune, {} empty-select, {} carry, {} ir\n",
            self.plans,
            self.wrappers,
            self.constructs,
            self.lints,
            self.chains_carried,
            self.chains_dropped,
            self.ir_programs,
            self.exec_violations,
            self.conformance_violations,
            self.prune_violations,
            self.empty_select_violations,
            self.carry_violations,
            self.ir_violations,
        )
    }

    /// The run as one JSON object (hand-rolled; no serialization dependency).
    pub fn to_json(&self, factor: f64, seed: u64) -> String {
        format!(
            "{{\"experiment\":\"lintcheck\",\"factor\":{factor},\"seed\":{seed},\
             \"plans\":{},\"wrappers\":{},\"constructs\":{},\"lints\":{},\
             \"chains_carried\":{},\"chains_dropped\":{},\
             \"exec_violations\":{},\"conformance_violations\":{},\
             \"prune_violations\":{},\"empty_select_violations\":{},\
             \"carry_violations\":{},\"ir_programs\":{},\"ir_violations\":{},\
             \"clean\":{}}}\n",
            self.plans,
            self.wrappers,
            self.constructs,
            self.lints,
            self.chains_carried,
            self.chains_dropped,
            self.exec_violations,
            self.conformance_violations,
            self.prune_violations,
            self.empty_select_violations,
            self.carry_violations,
            self.ir_programs,
            self.ir_violations,
            self.clean(),
        )
    }
}

/// A transparent match cache: an unbounded map the executor populates as it
/// runs, which the oracle then filters chain-by-chain to replay the
/// service's footprint-based carry decision.
#[derive(Default)]
struct RecordingCache {
    entries: Mutex<BTreeMap<String, Arc<Vec<ResultTree>>>>,
}

impl RecordingCache {
    fn take(&self) -> BTreeMap<String, Arc<Vec<ResultTree>>> {
        std::mem::take(&mut self.entries.lock().expect("cache lock"))
    }

    fn seed(entries: BTreeMap<String, Arc<Vec<ResultTree>>>) -> RecordingCache {
        RecordingCache { entries: Mutex::new(entries) }
    }
}

impl MatchCache for RecordingCache {
    fn get(&self, key: &str) -> Option<Arc<Vec<ResultTree>>> {
        self.entries.lock().expect("cache lock").get(key).cloned()
    }

    fn put(&self, key: &str, trees: &[ResultTree]) {
        self.entries.lock().expect("cache lock").insert(key.to_string(), Arc::new(trees.to_vec()));
    }
}

/// Builds the oracle's database: XMark at `factor` plus a tiny probe
/// document whose tags exist in the interner but nowhere in `auction.xml`,
/// so the generator can (and will) produce statically-empty selects.
pub fn oracle_database(factor: f64) -> Database {
    let mut db = crate::setup(factor);
    db.load_xml("probe.xml", "<probe><probeonly>absent tag probe</probeonly></probe>")
        .expect("probe document parses");
    db
}

/// Runs the oracle: `plans` seeded random plans over a fresh
/// [`oracle_database`], each put through the four differential checks.
/// Violation messages go to stderr as they are found.
pub fn run(factor: f64, plans: usize, seed: u64) -> LintcheckReport {
    let db = oracle_database(factor);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xA076_1D64_78BD_642F);
    let mut report = LintcheckReport { plans, ..LintcheckReport::default() };
    for i in 0..plans {
        let gp = tlc::random_plan(&db, DOC, seed.wrapping_add(i as u64));
        report.wrappers += gp.wrappers;
        report.constructs += usize::from(matches!(gp.plan, Plan::Construct { .. }));
        check_one(&db, &gp.plan, gp.seed, &mut rng, &mut report);
    }
    report
}

fn check_one(
    db: &Database,
    plan: &Plan,
    seed: u64,
    rng: &mut StdRng,
    report: &mut LintcheckReport,
) {
    if let Err(e) = tlc::verify(plan) {
        eprintln!("lintcheck seed {seed}: generated plan fails verification: {e:?}");
        report.exec_violations += 1;
        return;
    }
    report.lints += tlc::lint(plan, db).len() as u64;

    // Cardinality/order conformance of every subplan's actual result set —
    // and, along the way, the empty-select lint's runtime claim.
    let mut sound = true;
    for_each_subplan(plan, &mut |sub| {
        let trees = match tlc::execute(db, sub) {
            Ok((trees, _)) => trees,
            Err(e) => {
                eprintln!("lintcheck seed {seed}: subplan failed to execute: {e}");
                report.exec_violations += 1;
                sound = false;
                return;
            }
        };
        if let Err(e) = tlc::check_conformance(sub, &trees) {
            eprintln!("lintcheck seed {seed}: conformance violation: {e}");
            report.conformance_violations += 1;
            sound = false;
        }
        if matches!(sub, Plan::Select { .. }) && !trees.is_empty() {
            let empty = tlc::lint(sub, db).into_iter().any(|l| {
                l.code == tlc::LintCode::EmptySelect && l.message.contains("statically empty")
            });
            if empty {
                eprintln!(
                    "lintcheck seed {seed}: select linted statically empty produced {} tree(s)",
                    trees.len()
                );
                report.empty_select_violations += 1;
                sound = false;
            }
        }
    });
    if !sound {
        return;
    }

    // Liveness pruning must preserve behaviour byte-for-byte.
    let (pruned, prune) = tlc::prune_with_report(plan);
    if prune.changed() {
        if tlc::verify(&pruned).is_err() {
            eprintln!("lintcheck seed {seed}: pruned plan fails verification");
            report.prune_violations += 1;
            return;
        }
        let before = tlc::execute_to_string(db, plan);
        let after = tlc::execute_to_string(db, &pruned);
        match (before, after) {
            (Ok(a), Ok(b)) if a == b => {}
            (Err(_), Err(_)) => {}
            _ => {
                eprintln!("lintcheck seed {seed}: pruning changed the plan's output");
                report.prune_violations += 1;
                return;
            }
        }
    }

    check_ir(db, plan, seed, report);
    check_footprint_carry(db, plan, seed, rng, report);
}

/// Differential check of the register-IR backend: lower the plan, then run
/// the bytecode evaluator with no cache, a cold cache, and a warm cache,
/// byte-comparing every answer against the tree walker under the same
/// cache state — and the two cold runs' recorded cache entries against
/// each other, since the compiled probe/store protocol claims to leave the
/// exact cache content the walker does.
fn check_ir(db: &Database, plan: &Plan, seed: u64, report: &mut LintcheckReport) {
    let prog = match tlc::vm::lower(plan) {
        Ok(prog) => prog,
        Err(e) => {
            eprintln!("lintcheck seed {seed}: verified plan failed to lower: {e}");
            report.ir_violations += 1;
            return;
        }
    };
    report.ir_programs += 1;
    let vm_exec = |cache: Option<Arc<dyn MatchCache>>| {
        let mut ctx = ExecCtx::new();
        if let Some(cache) = cache {
            ctx = ctx.with_cache(cache);
        }
        tlc::vm::run(db, &prog, &mut ctx).map(|trees| tlc::serialize_results(db, &trees))
    };
    let walk_exec = |cache: Option<Arc<dyn MatchCache>>| {
        let mut ctx = ExecCtx::new();
        if let Some(cache) = cache {
            ctx = ctx.with_cache(cache);
        }
        tlc::execute_with_ctx(db, plan, &mut ctx).map(|trees| tlc::serialize_results(db, &trees))
    };
    // Two errors count as agreement (both backends refused identically).
    let diverged = |walk: &Result<String, tlc::Error>, vm: &Result<String, tlc::Error>| {
        !(matches!((walk, vm), (Ok(a), Ok(b)) if a == b) || (walk.is_err() && vm.is_err()))
    };

    // No cache attached: probes fall through, stores are no-ops.
    if diverged(&walk_exec(None), &vm_exec(None)) {
        eprintln!("lintcheck seed {seed}: IR output diverged from the tree walker (no cache)");
        report.ir_violations += 1;
        return;
    }

    // Cold caches, one per engine: outputs and recorded entries must agree.
    let walk_cache = Arc::new(RecordingCache::default());
    let vm_cache = Arc::new(RecordingCache::default());
    let walk_cold = walk_exec(Some(Arc::clone(&walk_cache) as Arc<dyn MatchCache>));
    let vm_cold = vm_exec(Some(Arc::clone(&vm_cache) as Arc<dyn MatchCache>));
    if diverged(&walk_cold, &vm_cold) {
        eprintln!("lintcheck seed {seed}: IR output diverged from the tree walker (cold cache)");
        report.ir_violations += 1;
        return;
    }
    {
        let walk_entries = walk_cache.entries.lock().expect("cache lock");
        let vm_entries = vm_cache.entries.lock().expect("cache lock");
        let walk_keys: Vec<&String> = walk_entries.keys().collect();
        let vm_keys: Vec<&String> = vm_entries.keys().collect();
        if walk_keys != vm_keys {
            eprintln!(
                "lintcheck seed {seed}: IR left different cache entries than the tree walker"
            );
            report.ir_violations += 1;
            return;
        }
    }

    // Warm: each engine replays over the cache its own cold run populated.
    let walk_warm = walk_exec(Some(walk_cache as Arc<dyn MatchCache>));
    let vm_warm = vm_exec(Some(vm_cache as Arc<dyn MatchCache>));
    if diverged(&walk_warm, &vm_warm) {
        eprintln!("lintcheck seed {seed}: IR output diverged from the tree walker (warm cache)");
        report.ir_violations += 1;
    }
}

/// Replays the service's selective cache invalidation on one plan: record
/// every chain's pattern-match result, apply a seeded settext mutation,
/// carry exactly the entries whose chain footprint is provably unaffected,
/// and demand that executing over the carried cache byte-matches a
/// from-scratch execution on the mutated snapshot.
fn check_footprint_carry(
    db: &Database,
    plan: &Plan,
    seed: u64,
    rng: &mut StdRng,
    report: &mut LintcheckReport,
) {
    // Record the pre-mutation chain entries.
    let recorder = Arc::new(RecordingCache::default());
    let mut ctx = ExecCtx::new().with_cache(Arc::clone(&recorder) as Arc<dyn MatchCache>);
    if tlc::execute_with_ctx(db, plan, &mut ctx).is_err() {
        return; // already counted by the conformance pass
    }
    let recorded = recorder.take();

    // A seeded settext on a random element of a random tag. Retry a few
    // tags in case the draw lands on one with no postings.
    let interner = db.interner();
    let mutation = (0..8).find_map(|_| {
        let tag = xmldb::TagId(rng.random_range(0..interner.len() as u32));
        if tag == interner.doc_tag() || tag == interner.text_tag() {
            return None;
        }
        let name = interner.name(tag);
        if name.starts_with('@') {
            return None;
        }
        let nodes = db.nodes_with_tag(&name);
        if nodes.is_empty() {
            return None;
        }
        Some((tag, nodes[rng.random_range(0..nodes.len())].pre))
    });
    let Some((_, pre)) = mutation else { return };
    let mut next = db.clone();
    let Ok(doc) = next.document_by_name(DOC) else { return };
    let Ok(summary) = xmldb::set_text(&mut next, doc, pre, &format!("lintcheck probe {seed}"))
    else {
        return;
    };

    // The service's carry decision, chain by chain.
    let mut carried = BTreeMap::new();
    for (key, fp) in tlc::match_chain_footprints(plan) {
        let safe = !fp.docs.contains(DOC)
            || (summary.renumbered == 0 && !fp.overlaps(DOC, &summary.affected_tags));
        match recorded.get(&key) {
            Some(entry) if safe => {
                carried.insert(key, Arc::clone(entry));
                report.chains_carried += 1;
            }
            Some(_) => report.chains_dropped += 1,
            None => {}
        }
    }

    let fresh = tlc::execute_to_string(&next, plan);
    let cache = Arc::new(RecordingCache::seed(carried));
    let mut ctx = ExecCtx::new().with_cache(cache as Arc<dyn MatchCache>);
    let replay = tlc::execute_with_ctx(&next, plan, &mut ctx)
        .map(|trees| tlc::serialize_results(&next, &trees));
    match (fresh, replay) {
        (Ok(a), Ok(b)) if a == b => {}
        (Err(_), Err(_)) => {}
        _ => {
            eprintln!("lintcheck seed {seed}: carried match entries changed the answer");
            report.carry_violations += 1;
        }
    }
}

fn for_each_subplan(plan: &Plan, f: &mut impl FnMut(&Plan)) {
    f(plan);
    for input in plan.inputs() {
        for_each_subplan(input, f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oracle_is_clean_on_a_small_batch() {
        let report = run(0.0005, 40, 23);
        assert!(report.clean(), "oracle found violations:\n{}", report.render(0.0005, 23));
        assert_eq!(report.plans, 40);
        assert!(report.wrappers > 0, "generator produced only bare selects");
        assert!(report.ir_programs > 0, "no plan was ever lowered to IR");
    }

    #[test]
    fn oracle_exercises_the_footprint_carry_path() {
        let report = run(0.0005, 60, 5);
        assert!(report.clean(), "{}", report.render(0.0005, 5));
        assert!(
            report.chains_carried > 0,
            "no chain entry was ever carried — the precise footprints buy nothing"
        );
        assert!(report.lints > 0, "no lint ever fired across 60 random plans");
    }

    #[test]
    fn report_json_is_well_formed() {
        let report = LintcheckReport {
            plans: 3,
            wrappers: 5,
            constructs: 1,
            lints: 2,
            chains_carried: 4,
            chains_dropped: 1,
            ..LintcheckReport::default()
        };
        let doc = report.to_json(0.01, 9);
        assert!(doc.contains("\"experiment\":\"lintcheck\""));
        assert!(doc.contains("\"plans\":3"));
        assert!(doc.contains("\"ir_programs\":"));
        assert!(doc.contains("\"ir_violations\":0"));
        assert!(doc.contains("\"clean\":true"));
        assert!(report.clean());
    }
}
