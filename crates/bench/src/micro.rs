//! Minimal micro-benchmark harness backing the `benches/` targets.
//!
//! The bench targets are plain `harness = false` binaries so the workspace
//! builds without an external benchmarking crate. Each measurement warms the
//! closure up, then runs timed batches for a fixed wall-clock budget and
//! reports min / mean / max per-iteration times — enough to compare the two
//! sides of each ablation, which is all the benches are for. For
//! statistics-grade measurement use the `experiments` binary, which follows
//! the paper's trimmed-mean protocol.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// A named group of measurements, printed as a small table.
pub struct Group {
    name: String,
    warm_up: Duration,
    measure: Duration,
}

impl Group {
    /// Starts a group with default budgets (300 ms warm-up, 800 ms measure).
    pub fn new(name: &str) -> Group {
        Group {
            name: name.to_string(),
            warm_up: Duration::from_millis(300),
            measure: Duration::from_millis(800),
        }
    }

    /// Overrides the per-benchmark time budgets.
    pub fn budgets(mut self, warm_up: Duration, measure: Duration) -> Group {
        self.warm_up = warm_up;
        self.measure = measure;
        self
    }

    /// Times `f`, printing one result line.
    pub fn bench<R>(&self, name: &str, mut f: impl FnMut() -> R) {
        // Warm up and estimate a batch size targeting ~10 ms per batch.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter = self.warm_up.as_secs_f64() / warm_iters.max(1) as f64;
        let batch = ((0.01 / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000);

        let mut samples: Vec<f64> = Vec::new();
        let run_start = Instant::now();
        while run_start.elapsed() < self.measure {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            samples.push(t.elapsed().as_secs_f64() / batch as f64);
        }
        let (mut min, mut max, mut sum) = (f64::MAX, 0.0f64, 0.0f64);
        for &s in &samples {
            min = min.min(s);
            max = max.max(s);
            sum += s;
        }
        let mean = sum / samples.len() as f64;
        println!(
            "{}/{name:<28} {:>12} min {:>12} mean {:>12} max  ({} samples x {batch} iters)",
            self.name,
            fmt_time(min),
            fmt_time(mean),
            fmt_time(max),
            samples.len(),
        );
    }
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.1}ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2}µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.3}ms", secs * 1e3)
    } else {
        format!("{secs:.3}s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let g = Group::new("smoke").budgets(Duration::from_millis(5), Duration::from_millis(10));
        g.bench("noop", || 1 + 1);
    }
}
