#![warn(missing_docs)]

//! # bench — the evaluation harness (paper §6)
//!
//! Regenerates every table and figure of the paper's evaluation section:
//!
//! * [`fig15`] — the Figure 15 table: execution time of x1…x20, Q1, Q2 and
//!   x10a under NAV / TAX / GTP / TLC.
//! * [`fig16`] — the Figure 16 chart: plain TLC plans vs OPT plans (Flatten
//!   and Shadow/Illuminate rewrites) for x3, x5, Q1, Q2.
//! * [`fig17`] — the Figure 17 chart: scalability of x3, x5, x13, Q1, Q2
//!   over a sweep of XMark scale factors.
//!
//! Measurement follows the paper's protocol: each query runs five times,
//! the highest and lowest times are dropped, and the remaining three are
//! averaged (§6, footnote 6). A configurable time budget stands in for the
//! paper's 10-minute DNF cut-off.
//!
//! The same functions back both the `experiments` binary (paper-style
//! tables on stdout) and the timed bench targets (see [`micro`]).

pub mod alloc;
pub mod batch;
pub mod concurrent;
pub mod lintcheck;
pub mod micro;
pub mod parallel;
pub mod rw;

use baselines::Engine;
use queries::{all_queries, query, QuerySpec};
use std::time::{Duration, Instant};
use xmldb::Database;

// Count heap allocations in the test build so the batch smoke can gate
// allocations-per-request (the `experiments` binary registers its own).
#[cfg(test)]
#[global_allocator]
static COUNTING_ALLOC: alloc::CountingAlloc = alloc::CountingAlloc;

/// Default scale factor for the Figure 15/16 runs. The paper uses XMark
/// factor 1 (~710 MB in TIMBER); this in-memory reproduction defaults to a
/// smaller factor and reports the *shape* of the comparison (see DESIGN.md
/// §5 and EXPERIMENTS.md).
pub const DEFAULT_FACTOR: f64 = 0.05;

/// The Figure 17 sweep (the paper sweeps 0.1–5).
pub const FIG17_FACTORS: [f64; 6] = [0.005, 0.01, 0.025, 0.05, 0.1, 0.25];

/// Builds the benchmark database at a scale factor.
pub fn setup(factor: f64) -> Database {
    xmark::auction_database(factor)
}

/// Outcome of one measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Measurement {
    /// Trimmed-mean-of-five execution time.
    Time(Duration),
    /// Exceeded the time budget ("DNF" in Figure 15).
    DidNotFinish,
    /// The engine could not run the query.
    Failed,
}

impl Measurement {
    /// Seconds, if finished.
    pub fn secs(&self) -> Option<f64> {
        match self {
            Measurement::Time(d) => Some(d.as_secs_f64()),
            _ => None,
        }
    }

    /// Table cell rendering.
    pub fn cell(&self) -> String {
        match self {
            Measurement::Time(d) => format!("{:>9.4}", d.as_secs_f64()),
            Measurement::DidNotFinish => format!("{:>9}", "DNF"),
            Measurement::Failed => format!("{:>9}", "ERR"),
        }
    }
}

/// Runs one query on one engine with the paper's trimmed-mean-of-5 protocol.
/// If a single run exceeds `budget`, reports [`Measurement::DidNotFinish`].
pub fn measure(db: &Database, spec: &QuerySpec, engine: Engine, budget: Duration) -> Measurement {
    // Warm-up / budget probe.
    let start = Instant::now();
    if baselines::run(engine, spec.text, db).is_err() {
        return Measurement::Failed;
    }
    let probe = start.elapsed();
    if probe > budget {
        return Measurement::DidNotFinish;
    }
    // Five timed runs, trim the extremes, average the rest.
    let runs = 5;
    let mut times = Vec::with_capacity(runs);
    for _ in 0..runs {
        let t = Instant::now();
        let _ = baselines::run(engine, spec.text, db);
        times.push(t.elapsed());
    }
    times.sort_unstable();
    let kept = &times[1..runs - 1];
    let total: Duration = kept.iter().sum();
    Measurement::Time(total / kept.len() as u32)
}

/// One row of the Figure 15 table.
#[derive(Debug, Clone)]
pub struct Fig15Row {
    /// Query name.
    pub name: &'static str,
    /// Figure 15 comment.
    pub comment: &'static str,
    /// TLC, GTP, TAX, NAV times in that order.
    pub cells: [Measurement; 4],
}

/// Runs the Figure 15 experiment.
pub fn fig15(db: &Database, budget: Duration) -> Vec<Fig15Row> {
    all_queries()
        .iter()
        .map(|q| {
            let cells = [
                measure(db, q, Engine::Tlc, budget),
                measure(db, q, Engine::Gtp, budget),
                measure(db, q, Engine::Tax, budget),
                measure(db, q, Engine::Nav, budget),
            ];
            Fig15Row { name: q.name, comment: q.comment, cells }
        })
        .collect()
}

/// One bar group of Figure 16.
#[derive(Debug, Clone)]
pub struct Fig16Row {
    /// Query name.
    pub name: &'static str,
    /// Plain TLC plan time.
    pub tlc: Measurement,
    /// Rewritten (OPT) plan time — the paper's unconditional rewrites.
    pub opt: Measurement,
    /// Cost-guarded rewrites (OPT*, the optimizer extension): applies a
    /// rewrite only when the cost model predicts a win.
    pub costed: Measurement,
}

/// Runs the Figure 16 experiment (rewrites).
pub fn fig16(db: &Database, budget: Duration) -> Vec<Fig16Row> {
    queries::FIG16_QUERIES
        .iter()
        .map(|name| {
            let q = query(name).expect("known query");
            Fig16Row {
                name: q.name,
                tlc: measure(db, q, Engine::Tlc, budget),
                opt: measure(db, q, Engine::TlcOpt, budget),
                costed: measure(db, q, Engine::TlcCosted, budget),
            }
        })
        .collect()
}

/// One line of Figure 17: per-factor TLC times for one query.
#[derive(Debug, Clone)]
pub struct Fig17Row {
    /// Query name.
    pub name: &'static str,
    /// `(factor, time)` series.
    pub series: Vec<(f64, Measurement)>,
}

/// Generates the per-factor databases in parallel (generation dominates the
/// sweep's wall-clock at the larger factors).
pub fn setup_many(factors: &[f64]) -> Vec<(f64, Database)> {
    let mut out: Vec<Option<(f64, Database)>> = factors.iter().map(|_| None).collect();
    std::thread::scope(|s| {
        for (slot, &f) in out.iter_mut().zip(factors) {
            s.spawn(move || {
                *slot = Some((f, setup(f)));
            });
        }
    });
    out.into_iter().map(|o| o.expect("every slot filled")).collect()
}

/// Runs the Figure 17 scalability sweep.
pub fn fig17(factors: &[f64], budget: Duration) -> Vec<Fig17Row> {
    let dbs: Vec<(f64, Database)> = setup_many(factors);
    queries::FIG17_QUERIES
        .iter()
        .map(|name| {
            let q = query(name).expect("known query");
            let series =
                dbs.iter().map(|(f, db)| (*f, measure(db, q, Engine::Tlc, budget))).collect();
            Fig17Row { name: q.name, series }
        })
        .collect()
}

/// Renders the Figure 15 table in the paper's layout.
pub fn render_fig15(rows: &[Fig15Row], factor: f64) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Figure 15 — execution time in seconds, XMark factor {factor} (paper: factor 1)\n"
    ));
    out.push_str(&format!(
        "{:<6} {:>9} {:>9} {:>9} {:>9}  {}\n",
        "query", "TLC", "GTP", "TAX", "NAV", "comments"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<6} {} {} {} {}  {}\n",
            r.name,
            r.cells[0].cell(),
            r.cells[1].cell(),
            r.cells[2].cell(),
            r.cells[3].cell(),
            r.comment
        ));
    }
    out
}

/// One [`Measurement`] as a JSON value: seconds as a number, `"DNF"` or
/// `"ERR"` as a string otherwise.
pub fn measurement_json(m: &Measurement) -> String {
    match m {
        Measurement::Time(d) => format!("{:.6}", d.as_secs_f64()),
        Measurement::DidNotFinish => "\"DNF\"".to_string(),
        Measurement::Failed => "\"ERR\"".to_string(),
    }
}

/// The full `BENCH_fig15.json` document: per-query TLC/GTP/TAX/NAV times.
pub fn fig15_json(rows: &[Fig15Row], factor: f64, budget: Duration) -> String {
    let rows: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "{{\"query\":\"{}\",\"tlc\":{},\"gtp\":{},\"tax\":{},\"nav\":{}}}",
                r.name,
                measurement_json(&r.cells[0]),
                measurement_json(&r.cells[1]),
                measurement_json(&r.cells[2]),
                measurement_json(&r.cells[3]),
            )
        })
        .collect();
    format!(
        "{{\"experiment\":\"fig15\",\"factor\":{factor},\"budget_secs\":{},\
         \"rows\":[{}]}}\n",
        budget.as_secs_f64(),
        rows.join(",")
    )
}

/// Renders the Figure 16 comparison.
pub fn render_fig16(rows: &[Fig16Row], factor: f64) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Figure 16 — plain TLC plan vs OPT (Flatten + Shadow/Illuminate rewrites), factor {factor}\n"
    ));
    out.push_str(&format!(
        "{:<6} {:>9} {:>9} {:>8} {:>9}\n",
        "query", "TLC", "OPT", "speedup", "OPT*"
    ));
    for r in rows {
        let speedup = match (r.tlc.secs(), r.opt.secs()) {
            (Some(a), Some(b)) if b > 0.0 => format!("{:>7.2}x", a / b),
            _ => format!("{:>8}", "-"),
        };
        out.push_str(&format!(
            "{:<6} {} {} {} {}\n",
            r.name,
            r.tlc.cell(),
            r.opt.cell(),
            speedup,
            r.costed.cell()
        ));
    }
    out
}

/// Renders the Figure 17 sweep.
pub fn render_fig17(rows: &[Fig17Row], factors: &[f64]) -> String {
    let mut out = String::new();
    out.push_str("Figure 17 — TLC execution time in seconds over XMark scale factors\n");
    out.push_str(&format!("{:<6}", "query"));
    for f in factors {
        out.push_str(&format!(" {f:>9}"));
    }
    out.push('\n');
    for r in rows {
        out.push_str(&format!("{:<6}", r.name));
        for (_, m) in &r.series {
            out.push_str(&format!(" {}", m.cell()));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_reports_time_for_a_quick_query() {
        let db = setup(0.001);
        let q = query("x1").unwrap();
        let m = measure(&db, q, Engine::Tlc, Duration::from_secs(30));
        assert!(matches!(m, Measurement::Time(_)));
    }

    #[test]
    fn tiny_fig15_has_23_rows() {
        let db = setup(0.001);
        let rows = fig15(&db, Duration::from_secs(60));
        assert_eq!(rows.len(), 23);
        for r in &rows {
            for c in &r.cells {
                assert!(!matches!(c, Measurement::Failed), "{} failed: {:?}", r.name, r.cells);
            }
        }
        let table = render_fig15(&rows, 0.001);
        assert!(table.contains("x10a"));
    }

    #[test]
    fn fig16_rows_cover_the_rewritable_set() {
        let db = setup(0.001);
        let rows = fig16(&db, Duration::from_secs(60));
        assert_eq!(rows.len(), 4);
        let rendered = render_fig16(&rows, 0.001);
        assert!(rendered.contains("speedup"));
    }
}
