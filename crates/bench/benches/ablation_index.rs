//! Ablation A2 (DESIGN.md): the access-path choice of §6.2 — "on all
//! queries that had a condition on content we used a value index".
//!
//! The same selective predicate (`@id = "person0"`) evaluated two ways over
//! identical data:
//!
//! * **value-index served** — the predicate sits on the APT node, where the
//!   matcher resolves it against the content-value index;
//! * **scan** — the predicate is applied as a post-select Filter, so the
//!   pattern match enumerates every `person` via the tag index first.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tlc::ops::filter::{FilterMode, FilterPred};
use tlc::{Apt, ContentPred, LclId, MSpec, Plan, PredValue};
use xmldb::AxisRel;
use xquery::CmpOp;

fn plans(db: &xmldb::Database) -> (Plan, Plan) {
    let person = db.interner().lookup("person").unwrap();
    let at_id = db.interner().lookup("@id").unwrap();
    let pred = ContentPred { op: CmpOp::Eq, value: PredValue::Str("person0".into()) };

    // Indexed: predicate inside the pattern.
    let mut apt = Apt::for_document("auction.xml", LclId(1));
    let p = apt.add(None, AxisRel::Descendant, MSpec::One, person, None, LclId(2));
    apt.add(Some(p), AxisRel::Child, MSpec::One, at_id, Some(pred.clone()), LclId(3));
    let indexed = Plan::Select { input: None, apt };

    // Scan: match every person/@id, filter afterwards.
    let mut apt = Apt::for_document("auction.xml", LclId(1));
    let p = apt.add(None, AxisRel::Descendant, MSpec::One, person, None, LclId(2));
    apt.add(Some(p), AxisRel::Child, MSpec::One, at_id, None, LclId(3));
    let scan = Plan::Filter {
        input: Box::new(Plan::Select { input: None, apt }),
        lcl: LclId(3),
        pred: FilterPred::Content(pred),
        mode: FilterMode::Alo,
    };
    (indexed, scan)
}

fn index_ablation(c: &mut Criterion) {
    let db = bench::setup(0.05);
    let (indexed, scan) = plans(&db);
    // Same answers, different access paths.
    assert_eq!(
        tlc::execute_to_string(&db, &indexed).unwrap(),
        tlc::execute_to_string(&db, &scan).unwrap()
    );
    let mut group = c.benchmark_group("ablation_index");
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(800));
    group.bench_function("value_index_served", |b| {
        b.iter(|| black_box(tlc::execute(&db, &indexed).unwrap().0.len()))
    });
    group.bench_function("tag_scan_then_filter", |b| {
        b.iter(|| black_box(tlc::execute(&db, &scan).unwrap().0.len()))
    });
    group.finish();
}

criterion_group!(benches, index_ablation);
criterion_main!(benches);
