//! Ablation A2 (DESIGN.md): the access-path choice of §6.2 — "on all
//! queries that had a condition on content we used a value index".
//!
//! The same selective predicate (`@id = "person0"`) evaluated two ways over
//! identical data:
//!
//! * **value-index served** — the predicate sits on the APT node, where the
//!   matcher resolves it against the content-value index;
//! * **scan** — the predicate is applied as a post-select Filter, so the
//!   pattern match enumerates every `person` via the tag index first.

use bench::micro::Group;
use tlc::ops::filter::{FilterMode, FilterPred};
use tlc::{Apt, ContentPred, LclId, MSpec, Plan, PredValue};
use xmldb::AxisRel;
use xquery::CmpOp;

fn plans(db: &xmldb::Database) -> (Plan, Plan) {
    let person = db.interner().lookup("person").unwrap();
    let at_id = db.interner().lookup("@id").unwrap();
    let pred = ContentPred { op: CmpOp::Eq, value: PredValue::Str("person0".into()) };

    // Indexed: predicate inside the pattern.
    let mut apt = Apt::for_document("auction.xml", LclId(1));
    let p = apt.add(None, AxisRel::Descendant, MSpec::One, person, None, LclId(2));
    apt.add(Some(p), AxisRel::Child, MSpec::One, at_id, Some(pred.clone()), LclId(3));
    let indexed = Plan::Select { input: None, apt };

    // Scan: match every person/@id, filter afterwards.
    let mut apt = Apt::for_document("auction.xml", LclId(1));
    let p = apt.add(None, AxisRel::Descendant, MSpec::One, person, None, LclId(2));
    apt.add(Some(p), AxisRel::Child, MSpec::One, at_id, None, LclId(3));
    let scan = Plan::Filter {
        input: Box::new(Plan::Select { input: None, apt }),
        lcl: LclId(3),
        pred: FilterPred::Content(pred),
        mode: FilterMode::Alo,
    };
    (indexed, scan)
}

fn main() {
    let db = bench::setup(0.05);
    let (indexed, scan) = plans(&db);
    // Same answers, different access paths.
    assert_eq!(
        tlc::execute_to_string(&db, &indexed).unwrap(),
        tlc::execute_to_string(&db, &scan).unwrap()
    );
    let group = Group::new("ablation_index");
    group.bench("value_index_served", || tlc::execute(&db, &indexed).unwrap().0.len());
    group.bench("tag_scan_then_filter", || tlc::execute(&db, &scan).unwrap().0.len());
}
