//! Ablation A3: pattern-matching strategy — the binary-structural-join
//! matcher that drives the TLC operators vs the holistic twig join
//! (TwigStack, the paper's reference [3]) on the same flat twig over XMark
//! data.
//!
//! Both produce the same match set; the interesting dimension is how each
//! scales with twig selectivity (TwigStack never enumerates partial matches
//! that cannot extend; the binary matcher may).

use bench::micro::Group;
use tlc::physical::twigstack::{twig_join, Twig};
use tlc::{Apt, LclId, MSpec, Plan};
use xmldb::AxisRel;

fn main() {
    let db = bench::setup(0.02);
    let t = |n: &str| db.interner().lookup(n).unwrap();

    // The Q1-ish twig: open_auction[//bidder//@person][/quantity].
    let mut twig = Twig::new(t("open_auction"));
    let b = twig.add(0, AxisRel::Child, t("bidder"));
    twig.add(b, AxisRel::Descendant, t("@person"));
    twig.add(0, AxisRel::Child, t("quantity"));

    let mut apt = Apt::for_document("auction.xml", LclId(1));
    let oa = apt.add(None, AxisRel::Descendant, MSpec::One, t("open_auction"), None, LclId(2));
    let bid = apt.add(Some(oa), AxisRel::Child, MSpec::One, t("bidder"), None, LclId(3));
    apt.add(Some(bid), AxisRel::Descendant, MSpec::One, t("@person"), None, LclId(4));
    apt.add(Some(oa), AxisRel::Child, MSpec::One, t("quantity"), None, LclId(5));
    let plan = Plan::Select { input: None, apt };

    // Same matches, two strategies.
    let twig_count = twig_join(&db, &twig).len();
    let (trees, _) = tlc::execute(&db, &plan).unwrap();
    assert_eq!(twig_count, trees.len(), "strategies must agree before timing");

    let group = Group::new("ablation_twigstack");
    group.bench("interval_matcher", || tlc::execute(&db, &plan).unwrap().0.len());
    group.bench("twigstack_holistic", || twig_join(&db, &twig).len());
}
