//! Ablation A3: pattern-matching strategy — the binary-structural-join
//! matcher that drives the TLC operators vs the holistic twig join
//! (TwigStack, the paper's reference [3]) on the same flat twig over XMark
//! data.
//!
//! Both produce the same match set; the interesting dimension is how each
//! scales with twig selectivity (TwigStack never enumerates partial matches
//! that cannot extend; the binary matcher may).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tlc::physical::twigstack::{twig_join, Twig};
use tlc::{Apt, LclId, MSpec, Plan};
use xmldb::AxisRel;

fn twig_benches(c: &mut Criterion) {
    let db = bench::setup(0.02);
    let t = |n: &str| db.interner().lookup(n).unwrap();

    // The Q1-ish twig: open_auction[//bidder//@person][/quantity].
    let mut twig = Twig::new(t("open_auction"));
    let b = twig.add(0, AxisRel::Child, t("bidder"));
    twig.add(b, AxisRel::Descendant, t("@person"));
    twig.add(0, AxisRel::Child, t("quantity"));

    let mut apt = Apt::for_document("auction.xml", LclId(1));
    let oa = apt.add(None, AxisRel::Descendant, MSpec::One, t("open_auction"), None, LclId(2));
    let bid = apt.add(Some(oa), AxisRel::Child, MSpec::One, t("bidder"), None, LclId(3));
    apt.add(Some(bid), AxisRel::Descendant, MSpec::One, t("@person"), None, LclId(4));
    apt.add(Some(oa), AxisRel::Child, MSpec::One, t("quantity"), None, LclId(5));
    let plan = Plan::Select { input: None, apt };

    // Same matches, two strategies.
    let twig_count = twig_join(&db, &twig).len();
    let (trees, _) = tlc::execute(&db, &plan).unwrap();
    assert_eq!(twig_count, trees.len(), "strategies must agree before timing");

    let mut group = c.benchmark_group("ablation_twigstack");
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(800));
    group.bench_function("interval_matcher", |b| {
        b.iter(|| black_box(tlc::execute(&db, &plan).unwrap().0.len()))
    });
    group.bench_function("twigstack_holistic", |b| {
        b.iter(|| black_box(twig_join(&db, &twig).len()))
    });
    group.finish();
}

criterion_group!(benches, twig_benches);
criterion_main!(benches);
