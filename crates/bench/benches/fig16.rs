//! Timed version of the Figure 16 experiment: plain TLC plans vs OPT
//! plans (Flatten + Shadow/Illuminate rewrites) on the rewritable queries.

use baselines::Engine;
use bench::micro::Group;

fn main() {
    let db = bench::setup(0.02);
    let group = Group::new("fig16");
    for name in queries::FIG16_QUERIES {
        let q = queries::query(name).unwrap();
        for engine in [Engine::Tlc, Engine::TlcOpt] {
            // Compile outside the loop: Figure 16 measures execution.
            let plan = baselines::plan_for(engine, q.text, &db).unwrap();
            group.bench(&format!("{}/{}", q.name, engine.name()), || {
                tlc::execute_to_string(&db, &plan).unwrap()
            });
        }
    }
}
