//! Criterion version of the Figure 16 experiment: plain TLC plans vs OPT
//! plans (Flatten + Shadow/Illuminate rewrites) on the rewritable queries.

use baselines::Engine;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn fig16_benches(c: &mut Criterion) {
    let db = bench::setup(0.02);
    let mut group = c.benchmark_group("fig16");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(800));
    for name in queries::FIG16_QUERIES {
        let q = queries::query(name).unwrap();
        for engine in [Engine::Tlc, Engine::TlcOpt] {
            // Compile outside the loop: Figure 16 measures execution.
            let plan = baselines::plan_for(engine, q.text, &db).unwrap();
            group.bench_function(format!("{}/{}", q.name, engine.name()), |b| {
                b.iter(|| black_box(tlc::execute_to_string(&db, &plan).unwrap()))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, fig16_benches);
criterion_main!(benches);
