//! Criterion version of the Figure 15 experiment: every query of the
//! workload on every engine. Uses a small scale factor so `cargo bench`
//! stays tractable; run the `experiments` binary for paper-scale tables.

use baselines::Engine;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn fig15_benches(c: &mut Criterion) {
    let factor = 0.01;
    let db = bench::setup(factor);
    let mut group = c.benchmark_group("fig15");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(800));
    for q in queries::all_queries() {
        for engine in Engine::figure15() {
            group.bench_function(format!("{}/{}", q.name, engine.name()), |b| {
                b.iter(|| black_box(baselines::run(engine, q.text, &db).unwrap()))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, fig15_benches);
criterion_main!(benches);
