//! Timed version of the Figure 15 experiment: every query of the workload
//! on every engine. Uses a small scale factor so `cargo bench` stays
//! tractable; run the `experiments` binary for paper-scale tables.

use baselines::Engine;
use bench::micro::Group;

fn main() {
    let factor = 0.01;
    let db = bench::setup(factor);
    let group = Group::new("fig15");
    for q in queries::all_queries() {
        for engine in Engine::figure15() {
            group.bench(&format!("{}/{}", q.name, engine.name()), || {
                baselines::run(engine, q.text, &db).unwrap()
            });
        }
    }
}
