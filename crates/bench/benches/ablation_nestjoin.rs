//! Ablation A1 (DESIGN.md): the paper's central physical claim — pushing
//! grouping into the join (**nest-structural-join**, Definition 8) beats
//! the flat-join-then-group-by procedure TAX/GTP must run.
//!
//! Two measurements over the same clustering query (`$o/bidder` under each
//! qualifying auction):
//!
//! 1. the raw physical primitives: `nest_structural_join` vs
//!    `structural_join` + hash grouping;
//! 2. whole plans: the TLC plan (nest matching) vs the GTP plan (flat match
//!    + grouping procedure).

use criterion::{criterion_group, criterion_main, Criterion};
use std::collections::HashMap;
use std::hint::black_box;
use tlc::physical::structural::{inodes, nest_structural_join, structural_join, INode};
use xmldb::AxisRel;

fn primitives(c: &mut Criterion) {
    let db = bench::setup(0.02);
    let auctions: Vec<INode> = inodes(&db, db.nodes_with_tag("open_auction"));
    let bidders: Vec<INode> = inodes(&db, db.nodes_with_tag("bidder"));
    let mut group = c.benchmark_group("ablation_nestjoin/primitive");
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(800));
    group.bench_function("nest_structural_join", |b| {
        b.iter(|| black_box(nest_structural_join(&auctions, &bidders, AxisRel::Child)))
    });
    group.bench_function("flat_join_then_group", |b| {
        b.iter(|| {
            // The grouping procedure a flat algebra needs: join, then hash
            // the pairs back into clusters.
            let pairs = structural_join(&auctions, &bidders, AxisRel::Child);
            let mut groups: HashMap<usize, Vec<usize>> = HashMap::new();
            for (a, d) in pairs {
                groups.entry(a).or_default().push(d);
            }
            black_box(groups)
        })
    });
    group.finish();
}

fn whole_plans(c: &mut Criterion) {
    let db = bench::setup(0.02);
    let q = queries::query("Q1").unwrap();
    let tlc_plan = baselines::plan_for(baselines::Engine::Tlc, q.text, &db).unwrap();
    let gtp_plan = baselines::plan_for(baselines::Engine::Gtp, q.text, &db).unwrap();
    let mut group = c.benchmark_group("ablation_nestjoin/plan");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(800));
    group.bench_function("tlc_nest_match", |b| {
        b.iter(|| black_box(tlc::execute_to_string(&db, &tlc_plan).unwrap()))
    });
    group.bench_function("gtp_grouping_procedure", |b| {
        b.iter(|| black_box(tlc::execute_to_string(&db, &gtp_plan).unwrap()))
    });
    group.finish();
}

criterion_group!(benches, primitives, whole_plans);
criterion_main!(benches);
