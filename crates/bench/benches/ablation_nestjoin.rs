//! Ablation A1 (DESIGN.md): the paper's central physical claim — pushing
//! grouping into the join (**nest-structural-join**, Definition 8) beats
//! the flat-join-then-group-by procedure TAX/GTP must run.
//!
//! Two measurements over the same clustering query (`$o/bidder` under each
//! qualifying auction):
//!
//! 1. the raw physical primitives: `nest_structural_join` vs
//!    `structural_join` + hash grouping;
//! 2. whole plans: the TLC plan (nest matching) vs the GTP plan (flat match
//!    + grouping procedure).

use bench::micro::Group;
use std::collections::HashMap;
use tlc::physical::structural::{inodes, nest_structural_join, structural_join, INode};
use xmldb::AxisRel;

fn primitives(db: &xmldb::Database) {
    let auctions: Vec<INode> = inodes(db, db.nodes_with_tag("open_auction"));
    let bidders: Vec<INode> = inodes(db, db.nodes_with_tag("bidder"));
    let group = Group::new("ablation_nestjoin/primitive");
    group.bench("nest_structural_join", || {
        nest_structural_join(&auctions, &bidders, AxisRel::Child)
    });
    group.bench("flat_join_then_group", || {
        // The grouping procedure a flat algebra needs: join, then hash
        // the pairs back into clusters.
        let pairs = structural_join(&auctions, &bidders, AxisRel::Child);
        let mut groups: HashMap<usize, Vec<usize>> = HashMap::new();
        for (a, d) in pairs {
            groups.entry(a).or_default().push(d);
        }
        groups
    });
}

fn whole_plans(db: &xmldb::Database) {
    let q = queries::query("Q1").unwrap();
    let tlc_plan = baselines::plan_for(baselines::Engine::Tlc, q.text, db).unwrap();
    let gtp_plan = baselines::plan_for(baselines::Engine::Gtp, q.text, db).unwrap();
    let group = Group::new("ablation_nestjoin/plan");
    group.bench("tlc_nest_match", || tlc::execute_to_string(db, &tlc_plan).unwrap());
    group.bench("gtp_grouping_procedure", || tlc::execute_to_string(db, &gtp_plan).unwrap());
}

fn main() {
    let db = bench::setup(0.02);
    primitives(&db);
    whole_plans(&db);
}
