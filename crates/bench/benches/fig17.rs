//! Criterion version of the Figure 17 experiment: TLC scalability over
//! XMark scale factors for x3, x5, x13, Q1, Q2. The paper's claim is
//! *linear* scaling; compare the per-factor times.

use baselines::Engine;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn fig17_benches(c: &mut Criterion) {
    let factors = [0.005, 0.01, 0.02, 0.04];
    let dbs: Vec<(f64, xmldb::Database)> =
        factors.iter().map(|&f| (f, bench::setup(f))).collect();
    let mut group = c.benchmark_group("fig17");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(800));
    for name in queries::FIG17_QUERIES {
        let q = queries::query(name).unwrap();
        for (f, db) in &dbs {
            group.bench_function(format!("{}/factor_{}", q.name, f), |b| {
                b.iter(|| black_box(baselines::run(Engine::Tlc, q.text, db).unwrap()))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, fig17_benches);
criterion_main!(benches);
