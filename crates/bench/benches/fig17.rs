//! Timed version of the Figure 17 experiment: TLC scalability over XMark
//! scale factors for x3, x5, x13, Q1, Q2. The paper's claim is *linear*
//! scaling; compare the per-factor times.

use baselines::Engine;
use bench::micro::Group;

fn main() {
    let factors = [0.005, 0.01, 0.02, 0.04];
    let dbs: Vec<(f64, xmldb::Database)> = factors.iter().map(|&f| (f, bench::setup(f))).collect();
    let group = Group::new("fig17");
    for name in queries::FIG17_QUERIES {
        let q = queries::query(name).unwrap();
        for (f, db) in &dbs {
            group.bench(&format!("{}/factor_{}", q.name, f), || {
                baselines::run(Engine::Tlc, q.text, db).unwrap()
            });
        }
    }
}
