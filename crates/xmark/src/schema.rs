//! XMark schema conformance checking.
//!
//! The XMark benchmark ships a DTD (`auction.dtd`); this module encodes its
//! content models (restricted to the subset this generator emits) and
//! validates documents against them. The generator's own output is checked
//! in tests at several scale factors — guarding against regressions that
//! would silently change what the benchmark queries measure.

use std::collections::HashMap;
use xmldb::{Database, DocId, NodeKind};

/// A violation found during validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Pre rank of the offending node.
    pub pre: u32,
    /// Explanation.
    pub message: String,
}

/// Occurrence constraint for one child particle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Occurs {
    One,
    Optional,
    Star,
    Plus,
}

/// Content model: ordered sequence of (child tag, occurrence), plus allowed
/// attributes. `text` content models are handled separately.
struct Model {
    sequence: &'static [(&'static str, Occurs)],
    attributes: &'static [&'static str],
    /// Element may carry character data (mixed or text-only).
    allows_text: bool,
}

fn models() -> HashMap<&'static str, Model> {
    use Occurs::*;
    let mut m = HashMap::new();
    let mut add = |tag: &'static str,
                   sequence: &'static [(&'static str, Occurs)],
                   attributes: &'static [&'static str],
                   allows_text: bool| {
        m.insert(tag, Model { sequence, attributes, allows_text });
    };
    add(
        "site",
        &[
            ("regions", One),
            ("categories", One),
            ("catgraph", One),
            ("people", One),
            ("open_auctions", One),
            ("closed_auctions", One),
        ],
        &[],
        false,
    );
    add(
        "regions",
        &[
            ("africa", One),
            ("asia", One),
            ("australia", One),
            ("europe", One),
            ("namerica", One),
            ("samerica", One),
        ],
        &[],
        false,
    );
    for region in ["africa", "asia", "australia", "europe", "namerica", "samerica"] {
        add(region, &[("item", Star)], &[], false);
    }
    add(
        "item",
        &[
            ("location", One),
            ("quantity", One),
            ("name", One),
            ("payment", One),
            ("description", One),
            ("shipping", One),
            ("incategory", Plus),
            ("mailbox", Optional),
        ],
        &["id"],
        false,
    );
    add("incategory", &[], &["category"], false);
    add("mailbox", &[("mail", Star)], &[], false);
    add("mail", &[("from", One), ("to", One), ("date", One), ("text", One)], &[], false);
    add("description", &[("text", Optional), ("parlist", Optional)], &[], false);
    add("parlist", &[("listitem", Plus)], &[], false);
    add("listitem", &[("text", Optional), ("parlist", Optional)], &[], false);
    add("text", &[("keyword", Optional), ("bold", Optional), ("emph", Optional)], &[], true);
    for inline in ["keyword", "bold", "emph"] {
        add(inline, &[], &[], true);
    }
    add("categories", &[("category", Plus)], &[], false);
    add("category", &[("name", One), ("description", One)], &["id"], false);
    add("catgraph", &[("edge", Star)], &[], false);
    add("edge", &[], &["from", "to"], false);
    add("people", &[("person", Star)], &[], false);
    add(
        "person",
        &[
            ("name", One),
            ("emailaddress", One),
            ("phone", Optional),
            ("address", Optional),
            ("homepage", Optional),
            ("creditcard", Optional),
            ("age", Optional),
            ("profile", Optional),
            ("watches", Optional),
        ],
        &["id"],
        false,
    );
    add(
        "address",
        &[("street", One), ("city", One), ("country", One), ("zipcode", One)],
        &[],
        false,
    );
    add(
        "profile",
        &[("interest", Star), ("education", Optional), ("gender", Optional), ("business", One)],
        &["income"],
        false,
    );
    add("interest", &[], &["category"], false);
    add("watches", &[("watch", Star)], &[], false);
    add("watch", &[], &["open_auction"], false);
    add("open_auctions", &[("open_auction", Star)], &[], false);
    add(
        "open_auction",
        &[
            ("initial", One),
            ("reserve", Optional),
            ("bidder", Star),
            ("current", One),
            ("privacy", Optional),
            ("itemref", One),
            ("seller", One),
            ("annotation", One),
            ("quantity", One),
            ("type", One),
            ("interval", One),
        ],
        &["id"],
        false,
    );
    add(
        "bidder",
        &[("date", One), ("time", One), ("personref", One), ("increase", One)],
        &[],
        false,
    );
    add("personref", &[], &["person"], false);
    add("itemref", &[], &["item"], false);
    add("seller", &[], &["person"], false);
    add("annotation", &[("author", One), ("description", One), ("happiness", One)], &[], false);
    add("author", &[], &["person"], false);
    add("interval", &[("start", One), ("end", One)], &[], false);
    add("closed_auctions", &[("closed_auction", Star)], &[], false);
    add(
        "closed_auction",
        &[
            ("seller", One),
            ("buyer", One),
            ("itemref", One),
            ("price", One),
            ("date", One),
            ("quantity", One),
            ("type", One),
            ("annotation", One),
        ],
        &[],
        false,
    );
    add("buyer", &[], &["person"], false);
    // Text-only leaves.
    for leaf in [
        "location",
        "quantity",
        "name",
        "payment",
        "shipping",
        "from",
        "to",
        "date",
        "time",
        "increase",
        "initial",
        "reserve",
        "current",
        "privacy",
        "happiness",
        "type",
        "start",
        "end",
        "price",
        "emailaddress",
        "phone",
        "homepage",
        "creditcard",
        "age",
        "street",
        "city",
        "country",
        "zipcode",
        "education",
        "gender",
        "business",
    ] {
        add(leaf, &[], &[], true);
    }
    m
}

/// Validates a document against the XMark content models. Returns every
/// violation found (empty = conformant).
pub fn validate(db: &Database, doc: DocId) -> Vec<Violation> {
    let models = models();
    let document = db.document(doc);
    let mut violations = Vec::new();
    for rec in document.records() {
        if rec.kind != NodeKind::Element {
            continue;
        }
        let pre = rec.pre;
        let tag = db.interner().name(rec.tag);
        let Some(model) = models.get(&*tag) else {
            violations.push(Violation { pre, message: format!("unknown element <{tag}>") });
            continue;
        };
        check_element(db, doc, pre, &tag, model, &mut violations);
    }
    violations
}

fn check_element(
    db: &Database,
    doc: DocId,
    pre: u32,
    tag: &str,
    model: &Model,
    violations: &mut Vec<Violation>,
) {
    let document = db.document(doc);
    let mut elem_children: Vec<String> = Vec::new();
    let mut has_text = document.record(pre).content.is_some();
    for c in document.children(pre) {
        let rec = document.record(c);
        let cname = db.interner().name(rec.tag);
        match rec.kind {
            NodeKind::Attribute => {
                let bare = &cname[1..];
                if !model.attributes.contains(&bare) {
                    violations.push(Violation {
                        pre,
                        message: format!("<{tag}> does not allow attribute @{bare}"),
                    });
                }
            }
            NodeKind::Element => elem_children.push(cname.to_string()),
            NodeKind::Text => has_text = true,
            NodeKind::DocRoot => unreachable!("doc root is never a child"),
        }
    }
    if has_text && !model.allows_text {
        violations.push(Violation { pre, message: format!("<{tag}> does not allow text content") });
    }
    // Sequence check: greedy match of the ordered particles.
    let mut i = 0;
    for (child_tag, occurs) in model.sequence {
        let mut seen = 0;
        while i < elem_children.len() && elem_children[i] == *child_tag {
            seen += 1;
            i += 1;
        }
        let ok = match occurs {
            Occurs::One => seen == 1,
            Occurs::Optional => seen <= 1,
            Occurs::Star => true,
            Occurs::Plus => seen >= 1,
        };
        if !ok {
            violations.push(Violation {
                pre,
                message: format!(
                    "<{tag}>: child <{child_tag}> occurs {seen} time(s), violating {occurs:?}"
                ),
            });
        }
    }
    if i < elem_children.len() {
        violations.push(Violation {
            pre,
            message: format!(
                "<{tag}>: unexpected child <{}> (out of order or not allowed)",
                elem_children[i]
            ),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_documents_conform() {
        for factor in [0.001, 0.005, 0.02] {
            let db = crate::auction_database(factor);
            let violations = validate(&db, DocId(0));
            assert!(
                violations.is_empty(),
                "factor {factor}: {} violation(s), first: {:?}",
                violations.len(),
                violations.first()
            );
        }
    }

    #[test]
    fn detects_unknown_elements() {
        let mut db = Database::new();
        db.load_xml("bad.xml", "<site><zebra/></site>").unwrap();
        let v = validate(&db, DocId(0));
        assert!(v.iter().any(|v| v.message.contains("unknown element")), "{v:?}");
    }

    #[test]
    fn detects_missing_required_children() {
        let mut db = Database::new();
        // bidder requires date, time, personref, increase.
        db.load_xml("bad.xml", "<bidder><date>1/1/2000</date></bidder>").unwrap();
        let v = validate(&db, DocId(0));
        assert!(v.iter().any(|v| v.message.contains("<time>")), "{v:?}");
    }

    #[test]
    fn detects_out_of_order_children() {
        let mut db = Database::new();
        db.load_xml("bad.xml", "<interval><end>x</end><start>y</start></interval>").unwrap();
        let v = validate(&db, DocId(0));
        assert!(!v.is_empty(), "order violation must be reported");
    }

    #[test]
    fn detects_unexpected_attributes() {
        let mut db = Database::new();
        db.load_xml("bad.xml", r#"<seller bogus="1"/>"#).unwrap();
        let v = validate(&db, DocId(0));
        assert!(v.iter().any(|v| v.message.contains("@bogus")), "{v:?}");
    }

    #[test]
    fn detects_text_where_forbidden() {
        let mut db = Database::new();
        db.load_xml("bad.xml", "<watches>hello<watch open_auction=\"a\"/></watches>").unwrap();
        let v = validate(&db, DocId(0));
        assert!(v.iter().any(|v| v.message.contains("text content")), "{v:?}");
    }
}
