//! The XMark document generator.

use crate::rng::{RngExt, SeedableRng, StdRng};
use crate::words::{pick, sentence, FIRST_NAMES, LAST_NAMES, LOCATIONS};
use xmldb::{Database, DocId, Document, DocumentBuilder, Result, TagId, TagInterner};

/// Default RNG seed; all evaluation runs use it so that every engine sees the
/// same data.
pub const DEFAULT_SEED: u64 = 0x7132_0040; // "TLC 2004"

/// Element/attribute population sizes produced for a scale factor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScaleStats {
    /// Number of `person` elements.
    pub persons: u32,
    /// Number of `open_auction` elements.
    pub open_auctions: u32,
    /// Number of `closed_auction` elements.
    pub closed_auctions: u32,
    /// Number of `item` elements (across all six regions).
    pub items: u32,
    /// Number of `category` elements.
    pub categories: u32,
}

impl ScaleStats {
    /// The XMark factor-1 populations, scaled linearly and clamped to small
    /// minimums so tiny factors still produce a queryable document.
    pub fn for_factor(factor: f64) -> ScaleStats {
        let s = |base: f64, min: u32| ((base * factor).round() as u32).max(min);
        ScaleStats {
            persons: s(25_500.0, 12),
            open_auctions: s(12_000.0, 8),
            closed_auctions: s(9_750.0, 8),
            items: s(21_750.0, 12),
            categories: s(1_000.0, 4),
        }
    }
}

/// The six XMark region names.
pub const REGIONS: &[&str] = &["africa", "asia", "australia", "europe", "namerica", "samerica"];

/// Generates an XMark document with the given name, factor and seed.
pub fn generate(name: &str, factor: f64, seed: u64, interner: &TagInterner) -> Result<Document> {
    let stats = ScaleStats::for_factor(factor);
    let mut g = Gen { rng: StdRng::seed_from_u64(seed), tags: Tags::new(interner), stats };
    let mut b = DocumentBuilder::new(name, interner);
    g.site(&mut b, interner)?;
    b.finish()
}

/// Generates an XMark document and inserts it into `db`.
pub fn generate_into(db: &mut Database, name: &str, factor: f64, seed: u64) -> Result<DocId> {
    let doc = generate(name, factor, seed, db.interner())?;
    db.insert(doc)
}

/// All tags the generator emits, interned once up front.
struct Tags {
    site: TagId,
    regions: TagId,
    region: Vec<TagId>,
    item: TagId,
    location: TagId,
    quantity: TagId,
    name: TagId,
    payment: TagId,
    description: TagId,
    text: TagId,
    keyword: TagId,
    bold: TagId,
    emph: TagId,
    parlist: TagId,
    listitem: TagId,
    shipping: TagId,
    incategory: TagId,
    at_category: TagId,
    mailbox: TagId,
    mail: TagId,
    from: TagId,
    to: TagId,
    date: TagId,
    categories: TagId,
    category: TagId,
    catgraph: TagId,
    edge: TagId,
    at_from: TagId,
    at_to: TagId,
    people: TagId,
    person: TagId,
    at_id: TagId,
    emailaddress: TagId,
    phone: TagId,
    address: TagId,
    street: TagId,
    city: TagId,
    country: TagId,
    zipcode: TagId,
    homepage: TagId,
    creditcard: TagId,
    age: TagId,
    profile: TagId,
    at_income: TagId,
    interest: TagId,
    education: TagId,
    gender: TagId,
    business: TagId,
    watches: TagId,
    watch: TagId,
    at_open_auction: TagId,
    open_auctions: TagId,
    open_auction: TagId,
    initial: TagId,
    reserve: TagId,
    bidder: TagId,
    time: TagId,
    personref: TagId,
    at_person: TagId,
    increase: TagId,
    current: TagId,
    privacy: TagId,
    itemref: TagId,
    at_item: TagId,
    seller: TagId,
    annotation: TagId,
    author: TagId,
    happiness: TagId,
    type_: TagId,
    interval: TagId,
    start: TagId,
    end: TagId,
    closed_auctions: TagId,
    closed_auction: TagId,
    buyer: TagId,
    price: TagId,
}

impl Tags {
    fn new(i: &TagInterner) -> Tags {
        Tags {
            site: i.intern("site"),
            regions: i.intern("regions"),
            region: REGIONS.iter().map(|r| i.intern(r)).collect(),
            item: i.intern("item"),
            location: i.intern("location"),
            quantity: i.intern("quantity"),
            name: i.intern("name"),
            payment: i.intern("payment"),
            description: i.intern("description"),
            text: i.intern("text"),
            keyword: i.intern("keyword"),
            bold: i.intern("bold"),
            emph: i.intern("emph"),
            parlist: i.intern("parlist"),
            listitem: i.intern("listitem"),
            shipping: i.intern("shipping"),
            incategory: i.intern("incategory"),
            at_category: i.intern("@category"),
            mailbox: i.intern("mailbox"),
            mail: i.intern("mail"),
            from: i.intern("from"),
            to: i.intern("to"),
            date: i.intern("date"),
            categories: i.intern("categories"),
            category: i.intern("category"),
            catgraph: i.intern("catgraph"),
            edge: i.intern("edge"),
            at_from: i.intern("@from"),
            at_to: i.intern("@to"),
            people: i.intern("people"),
            person: i.intern("person"),
            at_id: i.intern("@id"),
            emailaddress: i.intern("emailaddress"),
            phone: i.intern("phone"),
            address: i.intern("address"),
            street: i.intern("street"),
            city: i.intern("city"),
            country: i.intern("country"),
            zipcode: i.intern("zipcode"),
            homepage: i.intern("homepage"),
            creditcard: i.intern("creditcard"),
            age: i.intern("age"),
            profile: i.intern("profile"),
            at_income: i.intern("@income"),
            interest: i.intern("interest"),
            education: i.intern("education"),
            gender: i.intern("gender"),
            business: i.intern("business"),
            watches: i.intern("watches"),
            watch: i.intern("watch"),
            at_open_auction: i.intern("@open_auction"),
            open_auctions: i.intern("open_auctions"),
            open_auction: i.intern("open_auction"),
            initial: i.intern("initial"),
            reserve: i.intern("reserve"),
            bidder: i.intern("bidder"),
            time: i.intern("time"),
            personref: i.intern("personref"),
            at_person: i.intern("@person"),
            increase: i.intern("increase"),
            current: i.intern("current"),
            privacy: i.intern("privacy"),
            itemref: i.intern("itemref"),
            at_item: i.intern("@item"),
            seller: i.intern("seller"),
            annotation: i.intern("annotation"),
            author: i.intern("author"),
            happiness: i.intern("happiness"),
            type_: i.intern("type"),
            interval: i.intern("interval"),
            start: i.intern("start"),
            end: i.intern("end"),
            closed_auctions: i.intern("closed_auctions"),
            closed_auction: i.intern("closed_auction"),
            buyer: i.intern("buyer"),
            price: i.intern("price"),
        }
    }
}

struct Gen {
    rng: StdRng,
    tags: Tags,
    stats: ScaleStats,
}

impl Gen {
    fn site(&mut self, b: &mut DocumentBuilder, i: &TagInterner) -> Result<()> {
        b.start_element(self.tags.site);
        self.regions(b, i)?;
        self.categories(b, i)?;
        self.catgraph(b)?;
        self.people(b, i)?;
        self.open_auctions(b, i)?;
        self.closed_auctions(b, i)?;
        b.end_element()?;
        Ok(())
    }

    fn date(&mut self) -> String {
        format!(
            "{:02}/{:02}/{}",
            self.rng.random_range(1..=12u32),
            self.rng.random_range(1..=28u32),
            self.rng.random_range(1998..=2004u32)
        )
    }

    fn money(&mut self, max: f64) -> String {
        format!("{:.2}", self.rng.random_range(0.0..max))
    }

    fn person_ref(&mut self) -> String {
        format!("person{}", self.rng.random_range(0..self.stats.persons))
    }

    fn item_ref(&mut self) -> String {
        format!("item{}", self.rng.random_range(0..self.stats.items))
    }

    fn category_ref(&mut self) -> String {
        format!("category{}", self.rng.random_range(0..self.stats.categories))
    }

    /// A `text` element. Like XMark's, it sometimes carries mixed content:
    /// character runs interleaved with inline `keyword` / `bold` / `emph`
    /// elements — one of the heterogeneity sources real XML brings.
    fn text_element(
        &mut self,
        b: &mut DocumentBuilder,
        i: &TagInterner,
        words: usize,
    ) -> Result<()> {
        if self.rng.random_range(0..100) < 70 {
            let s = sentence(&mut self.rng, words, 12);
            b.leaf(self.tags.text, &s, i);
            return Ok(());
        }
        b.start_element(self.tags.text);
        let head = sentence(&mut self.rng, words.max(2) / 2, 12);
        b.text(&head, i);
        let inline =
            [self.tags.keyword, self.tags.bold, self.tags.emph][self.rng.random_range(0..3usize)];
        let marked = sentence(&mut self.rng, 1 + words / 4, 6);
        b.leaf(inline, &marked, i);
        let tail = sentence(&mut self.rng, words.max(2) / 2, 12);
        b.text(&tail, i);
        b.end_element()?;
        Ok(())
    }

    /// `description` element: either a single `text` child or a recursive
    /// `parlist`. `parlist_p` is the probability (in percent) of recursing.
    fn description(
        &mut self,
        b: &mut DocumentBuilder,
        i: &TagInterner,
        parlist_p: u32,
        depth: u32,
    ) -> Result<()> {
        b.start_element(self.tags.description);
        if depth > 0 && self.rng.random_range(0..100u32) < parlist_p {
            self.parlist(b, i, depth)?;
        } else {
            let words = self.rng.random_range(4..14);
            self.text_element(b, i, words)?;
        }
        b.end_element()?;
        Ok(())
    }

    fn parlist(&mut self, b: &mut DocumentBuilder, i: &TagInterner, depth: u32) -> Result<()> {
        b.start_element(self.tags.parlist);
        let items = self.rng.random_range(1..=3);
        for _ in 0..items {
            b.start_element(self.tags.listitem);
            if depth > 1 && self.rng.random_range(0..100) < 55 {
                self.parlist(b, i, depth - 1)?;
            } else {
                let words = self.rng.random_range(3..10);
                self.text_element(b, i, words)?;
            }
            b.end_element()?;
        }
        b.end_element()?;
        Ok(())
    }

    fn regions(&mut self, b: &mut DocumentBuilder, i: &TagInterner) -> Result<()> {
        b.start_element(self.tags.regions);
        let per = self.stats.items / REGIONS.len() as u32;
        let mut remainder = self.stats.items % REGIONS.len() as u32;
        let mut next_id = 0u32;
        for r in 0..REGIONS.len() {
            let mut n = per;
            if remainder > 0 {
                n += 1;
                remainder -= 1;
            }
            b.start_element(self.tags.region[r]);
            for _ in 0..n {
                self.item(b, i, next_id)?;
                next_id += 1;
            }
            b.end_element()?;
        }
        b.end_element()?;
        Ok(())
    }

    fn item(&mut self, b: &mut DocumentBuilder, i: &TagInterner, id: u32) -> Result<()> {
        b.start_element(self.tags.item);
        b.attribute(self.tags.at_id, &format!("item{id}"));
        b.leaf(self.tags.location, pick(&mut self.rng, LOCATIONS), i);
        let q = self.rng.random_range(1..=10u32).to_string();
        b.leaf(self.tags.quantity, &q, i);
        let words = self.rng.random_range(2..5);
        let nm = sentence(&mut self.rng, words, 0);
        b.leaf(self.tags.name, &nm, i);
        b.leaf(
            self.tags.payment,
            ["Cash", "Money order", "Creditcard", "Personal Check"]
                [self.rng.random_range(0..4usize)],
            i,
        );
        self.description(b, i, 35, 2)?;
        b.leaf(self.tags.shipping, "Will ship internationally", i);
        let cats = self.rng.random_range(1..=3);
        for _ in 0..cats {
            b.start_element(self.tags.incategory);
            let c = self.category_ref();
            b.attribute(self.tags.at_category, &c);
            b.end_element()?;
        }
        if self.rng.random_range(0..100) < 60 {
            b.start_element(self.tags.mailbox);
            let mails = self.rng.random_range(0..=3);
            for _ in 0..mails {
                b.start_element(self.tags.mail);
                let from = format!(
                    "{} {}",
                    pick(&mut self.rng, FIRST_NAMES),
                    pick(&mut self.rng, LAST_NAMES)
                );
                b.leaf(self.tags.from, &from, i);
                let to = format!(
                    "{} {}",
                    pick(&mut self.rng, FIRST_NAMES),
                    pick(&mut self.rng, LAST_NAMES)
                );
                b.leaf(self.tags.to, &to, i);
                let d = self.date();
                b.leaf(self.tags.date, &d, i);
                let words = self.rng.random_range(5..20);
                let body = sentence(&mut self.rng, words, 12);
                b.leaf(self.tags.text, &body, i);
                b.end_element()?;
            }
            b.end_element()?;
        }
        b.end_element()?;
        Ok(())
    }

    fn categories(&mut self, b: &mut DocumentBuilder, i: &TagInterner) -> Result<()> {
        b.start_element(self.tags.categories);
        for c in 0..self.stats.categories {
            b.start_element(self.tags.category);
            b.attribute(self.tags.at_id, &format!("category{c}"));
            let words = self.rng.random_range(1..4);
            let nm = sentence(&mut self.rng, words, 0);
            b.leaf(self.tags.name, &nm, i);
            self.description(b, i, 25, 1)?;
            b.end_element()?;
        }
        b.end_element()?;
        Ok(())
    }

    fn catgraph(&mut self, b: &mut DocumentBuilder) -> Result<()> {
        b.start_element(self.tags.catgraph);
        for _ in 0..self.stats.categories {
            b.start_element(self.tags.edge);
            let f = self.category_ref();
            b.attribute(self.tags.at_from, &f);
            let t = self.category_ref();
            b.attribute(self.tags.at_to, &t);
            b.end_element()?;
        }
        b.end_element()?;
        Ok(())
    }

    fn people(&mut self, b: &mut DocumentBuilder, i: &TagInterner) -> Result<()> {
        b.start_element(self.tags.people);
        for p in 0..self.stats.persons {
            self.person(b, i, p)?;
        }
        b.end_element()?;
        Ok(())
    }

    fn person(&mut self, b: &mut DocumentBuilder, i: &TagInterner, id: u32) -> Result<()> {
        b.start_element(self.tags.person);
        b.attribute(self.tags.at_id, &format!("person{id}"));
        let nm =
            format!("{} {}", pick(&mut self.rng, FIRST_NAMES), pick(&mut self.rng, LAST_NAMES));
        b.leaf(self.tags.name, &nm, i);
        let email = format!("mailto:{}@example.org", nm.replace(' ', "."));
        b.leaf(self.tags.emailaddress, &email, i);
        if self.rng.random_range(0..100) < 60 {
            let ph = format!(
                "+{} ({}) {}",
                self.rng.random_range(1..99u32),
                self.rng.random_range(100..999u32),
                self.rng.random_range(1_000_000..9_999_999u32)
            );
            b.leaf(self.tags.phone, &ph, i);
        }
        if self.rng.random_range(0..100) < 40 {
            b.start_element(self.tags.address);
            let st = format!(
                "{} {} St",
                self.rng.random_range(1..99u32),
                pick(&mut self.rng, LAST_NAMES)
            );
            b.leaf(self.tags.street, &st, i);
            let city = pick(&mut self.rng, LAST_NAMES).to_string();
            b.leaf(self.tags.city, &city, i);
            b.leaf(self.tags.country, pick(&mut self.rng, LOCATIONS), i);
            let zip = self.rng.random_range(10_000..99_999u32).to_string();
            b.leaf(self.tags.zipcode, &zip, i);
            b.end_element()?;
        }
        if self.rng.random_range(0..100) < 30 {
            let hp = format!("http://example.org/~person{id}");
            b.leaf(self.tags.homepage, &hp, i);
        }
        if self.rng.random_range(0..100) < 25 {
            let cc = format!(
                "{} {} {} {}",
                self.rng.random_range(1000..9999u32),
                self.rng.random_range(1000..9999u32),
                self.rng.random_range(1000..9999u32),
                self.rng.random_range(1000..9999u32)
            );
            b.leaf(self.tags.creditcard, &cc, i);
        }
        // The paper's Q1/Q2 predicate path: optional direct `age` child.
        if self.rng.random_range(0..100) < 60 {
            let age = self.rng.random_range(18..=70u32).to_string();
            b.leaf(self.tags.age, &age, i);
        }
        if self.rng.random_range(0..100) < 80 {
            b.start_element(self.tags.profile);
            let income = (self.rng.random_range(8_000..120_000u32) / 100 * 100).to_string();
            b.attribute(self.tags.at_income, &income);
            let interests = self.rng.random_range(0..=4);
            for _ in 0..interests {
                b.start_element(self.tags.interest);
                let c = self.category_ref();
                b.attribute(self.tags.at_category, &c);
                b.end_element()?;
            }
            if self.rng.random_range(0..100) < 50 {
                b.leaf(
                    self.tags.education,
                    ["High School", "College", "Graduate School", "Other"]
                        [self.rng.random_range(0..4usize)],
                    i,
                );
            }
            if self.rng.random_range(0..100) < 50 {
                b.leaf(self.tags.gender, ["male", "female"][self.rng.random_range(0..2usize)], i);
            }
            b.leaf(self.tags.business, ["Yes", "No"][self.rng.random_range(0..2usize)], i);
            b.end_element()?;
        }
        if self.rng.random_range(0..100) < 30 {
            b.start_element(self.tags.watches);
            let n = self.rng.random_range(1..=4);
            for _ in 0..n {
                b.start_element(self.tags.watch);
                let oa =
                    format!("open_auction{}", self.rng.random_range(0..self.stats.open_auctions));
                b.attribute(self.tags.at_open_auction, &oa);
                b.end_element()?;
            }
            b.end_element()?;
        }
        b.end_element()?;
        Ok(())
    }

    /// Bidder count distribution: ~35% of auctions get 0-1 bidders, ~35% get
    /// 2-5, ~30% get 6-12 — so `count(bidder) > 5` retains roughly 30%.
    fn bidder_count(&mut self) -> u32 {
        match self.rng.random_range(0..100u32) {
            0..=34 => self.rng.random_range(0..=1),
            35..=69 => self.rng.random_range(2..=5),
            _ => self.rng.random_range(6..=12),
        }
    }

    fn open_auctions(&mut self, b: &mut DocumentBuilder, i: &TagInterner) -> Result<()> {
        b.start_element(self.tags.open_auctions);
        for a in 0..self.stats.open_auctions {
            self.open_auction(b, i, a)?;
        }
        b.end_element()?;
        Ok(())
    }

    fn open_auction(&mut self, b: &mut DocumentBuilder, i: &TagInterner, id: u32) -> Result<()> {
        b.start_element(self.tags.open_auction);
        b.attribute(self.tags.at_id, &format!("open_auction{id}"));
        let initial = self.money(300.0);
        b.leaf(self.tags.initial, &initial, i);
        if self.rng.random_range(0..100) < 50 {
            let r = self.money(400.0);
            b.leaf(self.tags.reserve, &r, i);
        }
        let mut current: f64 = initial.parse().unwrap_or(0.0);
        let bidders = self.bidder_count();
        for _ in 0..bidders {
            b.start_element(self.tags.bidder);
            let d = self.date();
            b.leaf(self.tags.date, &d, i);
            let t = format!(
                "{:02}:{:02}:{:02}",
                self.rng.random_range(0..24u32),
                self.rng.random_range(0..60u32),
                self.rng.random_range(0..60u32)
            );
            b.leaf(self.tags.time, &t, i);
            b.start_element(self.tags.personref);
            let pr = self.person_ref();
            b.attribute(self.tags.at_person, &pr);
            b.end_element()?;
            let inc = self.rng.random_range(1..=20u32) as f64 * 1.5;
            current += inc;
            b.leaf(self.tags.increase, &format!("{inc:.2}"), i);
            b.end_element()?;
        }
        b.leaf(self.tags.current, &format!("{current:.2}"), i);
        if self.rng.random_range(0..100) < 50 {
            b.leaf(self.tags.privacy, ["Yes", "No"][self.rng.random_range(0..2usize)], i);
        }
        b.start_element(self.tags.itemref);
        let ir = self.item_ref();
        b.attribute(self.tags.at_item, &ir);
        b.end_element()?;
        b.start_element(self.tags.seller);
        let sr = self.person_ref();
        b.attribute(self.tags.at_person, &sr);
        b.end_element()?;
        self.annotation(b, i, 40)?;
        // XMark quantities are small integers; Q2 filters `myquan > 2`.
        let q = self.rng.random_range(1..=10u32).to_string();
        b.leaf(self.tags.quantity, &q, i);
        b.leaf(self.tags.type_, ["Regular", "Featured"][self.rng.random_range(0..2usize)], i);
        b.start_element(self.tags.interval);
        let sd = self.date();
        b.leaf(self.tags.start, &sd, i);
        let ed = self.date();
        b.leaf(self.tags.end, &ed, i);
        b.end_element()?;
        b.end_element()?;
        Ok(())
    }

    fn annotation(
        &mut self,
        b: &mut DocumentBuilder,
        i: &TagInterner,
        parlist_p: u32,
    ) -> Result<()> {
        b.start_element(self.tags.annotation);
        b.start_element(self.tags.author);
        let ar = self.person_ref();
        b.attribute(self.tags.at_person, &ar);
        b.end_element()?;
        self.description(b, i, parlist_p, 3)?;
        let h = self.rng.random_range(1..=10u32).to_string();
        b.leaf(self.tags.happiness, &h, i);
        b.end_element()?;
        Ok(())
    }

    fn closed_auctions(&mut self, b: &mut DocumentBuilder, i: &TagInterner) -> Result<()> {
        b.start_element(self.tags.closed_auctions);
        for _ in 0..self.stats.closed_auctions {
            b.start_element(self.tags.closed_auction);
            b.start_element(self.tags.seller);
            let sr = self.person_ref();
            b.attribute(self.tags.at_person, &sr);
            b.end_element()?;
            b.start_element(self.tags.buyer);
            let br = self.person_ref();
            b.attribute(self.tags.at_person, &br);
            b.end_element()?;
            b.start_element(self.tags.itemref);
            let ir = self.item_ref();
            b.attribute(self.tags.at_item, &ir);
            b.end_element()?;
            // Prices come from a small value pool so the value-index query
            // (x5) has stable, factor-independent selectivity (~1/40).
            let price = format!("{}.00", (self.rng.random_range(1..=40u32)) * 5);
            b.leaf(self.tags.price, &price, i);
            let d = self.date();
            b.leaf(self.tags.date, &d, i);
            let q = self.rng.random_range(1..=10u32).to_string();
            b.leaf(self.tags.quantity, &q, i);
            b.leaf(self.tags.type_, ["Regular", "Featured"][self.rng.random_range(0..2usize)], i);
            // Closed-auction annotations recurse deeply enough for the
            // long-path queries (x15/x16).
            self.annotation(b, i, 70)?;
            b.end_element()?;
        }
        b.end_element()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db_at(factor: f64) -> Database {
        let mut db = Database::new();
        generate_into(&mut db, "auction.xml", factor, DEFAULT_SEED).unwrap();
        db
    }

    #[test]
    fn populations_match_scale_stats() {
        let db = db_at(0.01);
        let stats = ScaleStats::for_factor(0.01);
        assert_eq!(db.nodes_with_tag("person").len() as u32, stats.persons);
        assert_eq!(db.nodes_with_tag("open_auction").len() as u32, stats.open_auctions);
        assert_eq!(db.nodes_with_tag("closed_auction").len() as u32, stats.closed_auctions);
        assert_eq!(db.nodes_with_tag("item").len() as u32, stats.items);
        assert_eq!(db.nodes_with_tag("category").len() as u32, stats.categories);
    }

    #[test]
    fn node_count_scales_roughly_linearly() {
        let n1 = db_at(0.01).node_count() as f64;
        let n4 = db_at(0.04).node_count() as f64;
        let ratio = n4 / n1;
        assert!((3.0..5.0).contains(&ratio), "scaling ratio was {ratio}");
    }

    #[test]
    fn generation_is_deterministic() {
        let a = db_at(0.01);
        let b = db_at(0.01);
        assert_eq!(a.node_count(), b.node_count());
        let sa = xmldb::serialize::serialize_subtree(&a, a.root(xmldb::DocId(0)));
        let sb = xmldb::serialize::serialize_subtree(&b, b.root(xmldb::DocId(0)));
        assert_eq!(sa, sb);
    }

    #[test]
    fn person0_exists_with_id() {
        let db = db_at(0.005);
        let at_id = db.interner().lookup("@id").unwrap();
        assert!(!db.value_index().lookup_exact(at_id, "person0").is_empty());
    }

    #[test]
    fn some_auction_has_more_than_five_bidders() {
        let db = db_at(0.005);
        let found = db
            .nodes_with_tag("open_auction")
            .iter()
            .any(|&oa| db.node(oa).children().filter(|c| &*c.tag_name() == "bidder").count() > 5);
        assert!(found, "Q1's count(bidder) > 5 must be satisfiable");
    }

    #[test]
    fn bidders_carry_person_references() {
        let db = db_at(0.005);
        let bidder = db.nodes_with_tag("bidder");
        assert!(!bidder.is_empty());
        let b0 = db.node(bidder[0]);
        let pref = b0.children().find(|c| &*c.tag_name() == "personref").unwrap();
        let p = pref.attribute("person").unwrap().content().unwrap().to_string();
        assert!(p.starts_with("person"));
        // The reference resolves to an actual person id.
        let at_id = db.interner().lookup("@id").unwrap();
        assert!(!db.value_index().lookup_exact(at_id, &p).is_empty());
    }

    #[test]
    fn deep_parlist_paths_exist() {
        let db = db_at(0.01);
        // closed_auction/annotation/description/parlist/listitem/parlist exists somewhere.
        let parlists = db.nodes_with_tag("parlist");
        let nested = parlists.iter().any(|&p| {
            let n = db.node(p);
            let mut anc = n.parent();
            let mut seen_listitem = false;
            while let Some(a) = anc {
                if &*a.tag_name() == "listitem" {
                    seen_listitem = true;
                }
                if &*a.tag_name() == "parlist" && seen_listitem {
                    return true;
                }
                anc = a.parent();
            }
            false
        });
        assert!(nested, "x15/x16 long paths need nested parlists");
    }

    #[test]
    fn ages_are_optional_and_numeric() {
        let db = db_at(0.01);
        let persons = db.nodes_with_tag("person").len();
        let ages = db.nodes_with_tag("age").len();
        assert!(ages > 0 && ages < persons, "ages={ages} persons={persons}");
        for &a in db.nodes_with_tag("age").iter().take(20) {
            let v = db.node(a).num_value().unwrap();
            assert!((18.0..=70.0).contains(&v));
        }
    }

    #[test]
    fn document_invariants_hold() {
        let db = db_at(0.02);
        db.document(xmldb::DocId(0)).check_invariants().unwrap();
    }

    #[test]
    fn keyword_appears_in_some_description() {
        let db = db_at(0.01);
        let hit = db
            .nodes_with_tag("description")
            .iter()
            .any(|&d| db.node(d).string_value().contains("gold"));
        assert!(hit, "x14's contains predicate needs matches");
    }
}
