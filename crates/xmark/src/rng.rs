//! Self-contained deterministic RNG for the generator.
//!
//! The generator needs nothing beyond seedable, reproducible uniform
//! sampling, so instead of an external crate this module provides a
//! splitmix64 generator behind the same call surface the generator code
//! uses (`StdRng::seed_from_u64`, `rng.random_range(...)`). The guarantees
//! the rest of the workspace relies on are preserved:
//!
//! * the same `(seed, factor)` always yields byte-identical documents, on
//!   every platform and build;
//! * streams from different seeds are statistically independent (splitmix64
//!   passes BigCrush as a 64-bit mixer);
//! * range sampling is unbiased via 128-bit multiply-shift (Lemire).

use std::ops::{Range, RangeInclusive};

/// Deterministic pseudo-random generator (splitmix64).
#[derive(Debug, Clone)]
pub struct StdRng {
    state: u64,
}

/// Constructing a generator from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        StdRng { state: seed }
    }
}

impl StdRng {
    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`; `bound` must be non-zero.
    fn bounded(&mut self, bound: u64) -> u64 {
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }
}

/// Uniform sampling from range expressions.
pub trait RngExt {
    /// Samples uniformly from `range`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T;
}

impl RngExt for StdRng {
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }
}

/// A range that can be sampled to produce a `T`.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample(self, rng: &mut StdRng) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.bounded(span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut StdRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.bounded(span) as $t)
            }
        }
    )*};
}

impl_int_range!(u32, u64, usize, i32);

impl SampleRange<f64> for Range<f64> {
    fn sample(self, rng: &mut StdRng) -> f64 {
        assert!(self.start < self.end, "empty range");
        // 53 uniform mantissa bits in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: u32 = rng.random_range(3..17u32);
            assert!((3..17).contains(&x));
            let y: u32 = rng.random_range(5..=5u32);
            assert_eq!(y, 5);
            let z = rng.random_range(0.0..2.5);
            assert!((0.0..2.5).contains(&z));
            let w: usize = rng.random_range(0..3usize);
            assert!(w < 3);
        }
    }

    #[test]
    fn sampling_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(99);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[rng.random_range(0..10usize)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "bucket count {c}");
        }
    }
}
