//! Vocabulary for synthetic text content.
//!
//! XMark draws its prose from Shakespeare; we use a fixed common-word list
//! instead. What matters for the queries is (a) that text exists, (b) that a
//! known keyword (`"gold"`) appears with a controlled frequency so the
//! `contains` query (x14) has stable selectivity.

use crate::rng::{RngExt, StdRng};

/// Word pool for generated sentences.
pub const WORDS: &[&str] = &[
    "auction",
    "bid",
    "price",
    "market",
    "trade",
    "value",
    "offer",
    "sale",
    "lot",
    "estate",
    "vintage",
    "rare",
    "classic",
    "antique",
    "modern",
    "fine",
    "grand",
    "small",
    "large",
    "heavy",
    "light",
    "bright",
    "dark",
    "silver",
    "bronze",
    "copper",
    "wooden",
    "glass",
    "stone",
    "paper",
    "collection",
    "series",
    "edition",
    "original",
    "signed",
    "mint",
    "used",
    "boxed",
    "sealed",
    "painting",
    "sculpture",
    "watch",
    "clock",
    "ring",
    "necklace",
    "coin",
    "stamp",
    "book",
    "map",
    "table",
    "chair",
    "lamp",
    "mirror",
    "vase",
    "plate",
    "cup",
    "bottle",
    "chest",
    "cabinet",
    "excellent",
    "good",
    "fair",
    "poor",
    "restored",
    "damaged",
    "complete",
    "partial",
    "unique",
    "quality",
    "condition",
    "history",
    "provenance",
    "certificate",
    "guarantee",
    "shipping",
    "delivery",
    "payment",
    "reserve",
    "minimum",
    "final",
    "closing",
    "opening",
    "current",
    "seller",
    "buyer",
    "dealer",
    "collector",
    "museum",
    "gallery",
    "private",
    "public",
];

/// Keyword with controlled frequency for the `contains` query (x14).
pub const KEYWORD: &str = "gold";

/// First names for `person/name`.
pub const FIRST_NAMES: &[&str] = &[
    "Ann", "Bo", "Carl", "Dana", "Erik", "Faye", "Gus", "Hana", "Ivan", "Jill", "Kurt", "Lena",
    "Mia", "Nils", "Olga", "Pete", "Quin", "Rosa", "Sven", "Tara", "Ulf", "Vera", "Walt", "Xena",
    "Yuri", "Zoe",
];

/// Last names for `person/name`.
pub const LAST_NAMES: &[&str] = &[
    "Adams", "Baker", "Clark", "Diaz", "Evans", "Fisher", "Gray", "Hill", "Irwin", "Jones",
    "Keller", "Lopez", "Moore", "Nolan", "Owens", "Price", "Quinn", "Reyes", "Stone", "Turner",
    "Unger", "Vance", "White", "Young", "Zhang",
];

/// Location / country names for `item/location` and addresses.
pub const LOCATIONS: &[&str] = &[
    "United States",
    "Germany",
    "France",
    "Japan",
    "Brazil",
    "Kenya",
    "Australia",
    "Canada",
    "India",
    "Spain",
    "Italy",
    "Norway",
    "Chile",
    "Egypt",
    "Korea",
    "Mexico",
];

/// Produces a sentence of `n` words; roughly one sentence in `keyword_in`
/// contains [`KEYWORD`].
pub fn sentence(rng: &mut StdRng, n: usize, keyword_in: u32) -> String {
    let mut out = String::with_capacity(n * 8);
    let kw_pos = if keyword_in > 0 && rng.random_range(0..keyword_in) == 0 {
        Some(rng.random_range(0..n))
    } else {
        None
    };
    for i in 0..n {
        if i > 0 {
            out.push(' ');
        }
        if kw_pos == Some(i) {
            out.push_str(KEYWORD);
        } else {
            out.push_str(WORDS[rng.random_range(0..WORDS.len())]);
        }
    }
    out
}

/// Picks one element of a slice.
pub fn pick<'a>(rng: &mut StdRng, pool: &[&'a str]) -> &'a str {
    pool[rng.random_range(0..pool.len())]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SeedableRng;

    #[test]
    fn sentence_has_requested_length() {
        let mut rng = StdRng::seed_from_u64(1);
        let s = sentence(&mut rng, 7, 0);
        assert_eq!(s.split(' ').count(), 7);
        assert!(!s.contains(KEYWORD));
    }

    #[test]
    fn keyword_frequency_is_roughly_controlled() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..1000).filter(|_| sentence(&mut rng, 10, 5).contains(KEYWORD)).count();
        assert!((100..350).contains(&hits), "got {hits} keyword sentences out of 1000");
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        assert_eq!(sentence(&mut a, 12, 4), sentence(&mut b, 12, 4));
    }
}
