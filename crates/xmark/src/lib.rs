#![warn(missing_docs)]

//! # xmark — synthetic XMark auction data generator
//!
//! The paper's evaluation (§6) runs over documents produced by the XMark
//! benchmark generator (`xmlgen`). That C program is not available here, so
//! this crate re-implements the generator from the published schema: a
//! deterministic, seedable producer of the auction-site document with XMark's
//! element hierarchy, fan-outs and scale-factor proportions (factor 1 ≈
//! 25 500 persons, 12 000 open auctions, 9 750 closed auctions, 21 750 items,
//! 1 000 categories).
//!
//! Fidelity notes (see DESIGN.md §5):
//! * Element *paths* match XMark: `site/{regions,categories,catgraph,people,
//!   open_auctions,closed_auctions}`, recursive `description/parlist/listitem`
//!   structures, reference attributes (`@person`, `@item`, `@category`,
//!   `@open_auction`).
//! * `person/age` is generated as a direct, *optional* child (present for
//!   ~60% of persons) because the paper's Q1/Q2 use the path `$p/age` — this
//!   is also one of the heterogeneity sources the paper leans on.
//! * Node counts scale linearly in the factor, which is what Figure 17
//!   depends on.
//!
//! Everything is driven by a single `StdRng` seeded from the factor, so the
//! same `(seed, factor)` always yields byte-identical documents — a property
//! the cross-engine equivalence tests rely on.

mod gen;
pub mod rng;
pub mod schema;
mod words;

pub use gen::{generate, generate_into, ScaleStats, DEFAULT_SEED};
pub use schema::{validate, Violation};
pub use words::{sentence, FIRST_NAMES, KEYWORD, LAST_NAMES, LOCATIONS, WORDS};

use xmldb::Database;

/// Builds a fresh database containing one XMark document named
/// `auction.xml`, generated at the given scale factor.
pub fn auction_database(factor: f64) -> Database {
    let mut db = Database::new();
    generate_into(&mut db, "auction.xml", factor, DEFAULT_SEED).expect("generation is infallible");
    db
}

/// Generates the XMark document at the given factor and renders it as XML
/// text (e.g. to feed an external system or to exercise the parser).
pub fn auction_xml(factor: f64) -> String {
    let db = auction_database(factor);
    let doc = db.document_by_name("auction.xml").expect("just generated");
    xmldb::serialize::serialize_subtree(&db, db.root(doc))
}

#[cfg(test)]
mod roundtrip_tests {
    use super::*;

    #[test]
    fn generated_xml_parses_back_identically() {
        let text = auction_xml(0.002);
        assert!(text.starts_with("<site>"));
        let mut db = Database::new();
        let d = db.load_xml("auction.xml", &text).expect("own output parses");
        let again = xmldb::serialize::serialize_subtree(&db, db.root(d));
        assert_eq!(text, again, "generator output is a serializer fixpoint");
        // Populations survive the round trip.
        let direct = auction_database(0.002);
        assert_eq!(db.nodes_with_tag("person").len(), direct.nodes_with_tag("person").len());
        assert_eq!(db.node_count(), direct.node_count());
    }
}
