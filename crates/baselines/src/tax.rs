//! The TAX baseline (paper §6.1).
//!
//! "The TAX algebra plan consists of a sequence of operators that takes a
//! pattern tree as argument. … For the FOR/WHERE part TAX will generate a
//! selection … followed by a projection and a duplicate elimination … The
//! entire subtree is retrieved for such nodes, because it is assumed to be
//! used later in the query. For the RETURN clause TAX will create a
//! selection for every path. Then a join operator will be used to stitch
//! together the RETURN clause paths with the FOR/WHERE parts … TAX does not
//! support annotated edges in its pattern trees, and to compensate for that
//! it uses a grouping procedure."
//!
//! The plan generation lives in the shared translator
//! ([`tlc::translate_with_style`] with [`tlc::Style::Tax`]); this module is
//! the engine-facing entry point. See `crates/tlc/src/translate.rs` for the
//! exact operator substitutions and `crates/tlc/src/ops/{grouping,
//! materialize}.rs` for the baseline-specific physical operators.

use tlc::{Plan, Result, Style};
use xmldb::Database;

/// Compiles a query into a TAX-style plan.
pub fn tax_plan(query: &str, db: &Database) -> Result<Plan> {
    tlc::compile_with_style(query, db, Style::Tax)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tax_matches_tlc_output() {
        let mut db = Database::new();
        db.load_xml(
            "auction.xml",
            r#"<site><people>
                 <person id="p0"><name>Ann</name><age>30</age></person>
                 <person id="p1"><name>Bo</name><age>19</age></person>
               </people></site>"#,
        )
        .unwrap();
        let q = r#"FOR $p IN document("auction.xml")//person
                   WHERE $p/age > 25 RETURN <r name={$p/name/text()}>{$p/age}</r>"#;
        let tax = tax_plan(q, &db).unwrap();
        let tlc_plan = tlc::compile(q, &db).unwrap();
        assert_eq!(
            tlc::execute_to_string(&db, &tax).unwrap(),
            tlc::execute_to_string(&db, &tlc_plan).unwrap()
        );
        let rendered = tax.display(Some(&db)).to_string();
        assert!(rendered.contains("Materialize"), "{rendered}");
    }
}
