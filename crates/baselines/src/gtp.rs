//! The GTP baseline (paper §6.1).
//!
//! "Instead of creating multiple pattern trees for various subparts of the
//! query, an abstract generalized tree is used to capture the semantics for
//! the entire query. … Similar to TAX, aggregates, RETURN paths etc.
//! (everything that corresponds to '+' or '*' pattern tree edge in TLC) are
//! addressed via a grouping procedure that potentially includes splitting
//! the trees, grouping and then merging the results (a DAG-like procedure).
//! But GTP is more efficient than TAX because the generalized tree captures
//! the semantics for the entire query allowing pattern tree reuse."
//!
//! Plan generation lives in the shared translator
//! ([`tlc::translate_with_style`] with [`tlc::Style::Gtp`]).

use tlc::{Plan, Result, Style};
use xmldb::Database;

/// Compiles a query into a GTP-style plan.
pub fn gtp_plan(query: &str, db: &Database) -> Result<Plan> {
    tlc::compile_with_style(query, db, Style::Gtp)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gtp_matches_tlc_output_and_groups() {
        let mut db = Database::new();
        db.load_xml(
            "auction.xml",
            r#"<site><open_auctions>
                 <open_auction><bidder/><bidder/><quantity>5</quantity></open_auction>
                 <open_auction><bidder/><quantity>2</quantity></open_auction>
               </open_auctions></site>"#,
        )
        .unwrap();
        let q = r#"FOR $o IN document("auction.xml")//open_auction
                   WHERE count($o/bidder) > 1 RETURN $o/quantity"#;
        let gtp = gtp_plan(q, &db).unwrap();
        let tlc_plan = tlc::compile(q, &db).unwrap();
        assert_eq!(
            tlc::execute_to_string(&db, &gtp).unwrap(),
            tlc::execute_to_string(&db, &tlc_plan).unwrap()
        );
        let rendered = gtp.display(Some(&db)).to_string();
        assert!(rendered.contains("GroupBy"), "{rendered}");
        assert!(!rendered.contains("Materialize"), "GTP skips early materialization");
    }
}
