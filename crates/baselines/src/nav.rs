//! The navigational baseline (paper §6.1).
//!
//! "The algorithm traverses down a path by recursively getting all children
//! of a node and checking them for a condition on content or name before
//! proceeding on the next iteration."
//!
//! Characteristics the paper measures (§6.3) and this implementation
//! reproduces structurally:
//!
//! * every path step visits *all* children of every context node (no
//!   indexes), so cost grows with path length and fan-out;
//! * `//` steps walk entire subtrees;
//! * joins are nested loops over binding tuples;
//! * selectivity does not help: the same traversals run even when the
//!   result is empty;
//! * aggregates (`count`) iterate over all the counted nodes.
//!
//! The interpreter evaluates the FLWOR AST directly, tuple at a time, and
//! produces output byte-identical to the algebraic engines.

use std::collections::HashMap;
use std::rc::Rc;
use tlc::{Error, Result};
use xmldb::serialize::{escape_attr, escape_text, serialize_subtree};
use xmldb::{Database, NodeId, NodeKind};
use xquery::{
    AggFunc, Axis, BindingKind, BindingSource, CmpOp, Flwor, Literal, NodeTest, PathRoot,
    Quantifier, ReturnExpr, SimplePath, WhereExpr,
};

/// Traversal counters for the navigational engine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NavStats {
    /// Nodes visited while stepping through paths and reading values.
    pub nodes_visited: u64,
    /// Binding tuples enumerated.
    pub tuples: u64,
}

/// Evaluates a query navigationally; returns the serialized result and the
/// traversal counters.
pub fn evaluate_nav(db: &Database, q: &Flwor) -> Result<(String, NavStats)> {
    let mut ev = Nav { db, stats: NavStats::default(), memo: HashMap::new() };
    let mut ctx = Ctx { vars: HashMap::new() };
    let items = ev.flwor(&mut ctx, q)?;
    let mut out = String::new();
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        ev.serialize(item, &mut out);
    }
    Ok((out, ev.stats))
}

/// A constructed element (RETURN constructors build these).
#[derive(Debug)]
struct CTree {
    tag: String,
    attrs: Vec<(String, String)>,
    children: Vec<Item>,
}

/// One value flowing through the interpreter.
#[derive(Debug, Clone)]
enum Item {
    /// A stored node (its whole subtree).
    Node(NodeId),
    /// A constructed element.
    Tree(Rc<CTree>),
    /// Computed text (text() steps, aggregates, literals).
    Text(Rc<str>),
}

#[derive(Debug, Clone)]
enum BindVal {
    One(Item),
    Seq(Rc<Vec<Item>>),
}

struct Ctx {
    vars: HashMap<String, BindVal>,
}

/// Memoization key for path evaluation: the path's address plus the
/// identity of the context the path starts from. A navigational evaluator
/// running a nested-loops join walks each binding's paths once per binding,
/// not once per joined tuple — without this, join queries would be
/// quadratic with full-traversal constants, which matches neither a real
/// navigational engine nor the paper's NAV column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum CacheCtx {
    Doc,
    Node(NodeId),
}

struct Nav<'a> {
    db: &'a Database,
    stats: NavStats,
    memo: HashMap<(usize, CacheCtx), Rc<Vec<Item>>>,
}

impl<'a> Nav<'a> {
    // ---------------- paths ----------------

    fn path_start(&mut self, ctx: &Ctx, path: &SimplePath) -> Result<Vec<Item>> {
        match &path.root {
            PathRoot::Document(name) => {
                let doc = self
                    .db
                    .document_by_name(name)
                    .map_err(|_| Error::UnknownDocument(name.clone()))?;
                Ok(vec![Item::Node(self.db.root(doc))])
            }
            PathRoot::Var(v) => match ctx.vars.get(v) {
                Some(BindVal::One(item)) => Ok(vec![item.clone()]),
                Some(BindVal::Seq(items)) => Ok(items.as_ref().clone()),
                None => Err(Error::UnboundVariable(v.clone())),
            },
        }
    }

    fn eval_path(&mut self, ctx: &Ctx, path: &SimplePath) -> Result<Vec<Item>> {
        // Memoize per (path, context identity): re-walking the same stored
        // subtree for every tuple of a nested-loops join is work no real
        // evaluator repeats.
        let cache_ctx = match &path.root {
            PathRoot::Document(_) => Some(CacheCtx::Doc),
            // Only stable identities are safe cache keys: stored nodes and
            // the document root. Constructed trees and LET sequences are
            // per-tuple values whose heap addresses can be reused.
            PathRoot::Var(v) => match ctx.vars.get(v) {
                Some(BindVal::One(Item::Node(n))) => Some(CacheCtx::Node(*n)),
                _ => None,
            },
        };
        let key = cache_ctx.map(|c| (path as *const SimplePath as usize, c));
        if let Some(k) = &key {
            if let Some(hit) = self.memo.get(k) {
                return Ok(hit.as_ref().clone());
            }
        }
        let result = self.eval_path_uncached(ctx, path)?;
        if let Some(k) = key {
            self.memo.insert(k, Rc::new(result.clone()));
        }
        Ok(result)
    }

    fn eval_path_uncached(&mut self, ctx: &Ctx, path: &SimplePath) -> Result<Vec<Item>> {
        let mut cur = self.path_start(ctx, path)?;
        let mut steps = path.steps.as_slice();
        // `$a/mya` where $a is a sequence of constructed `<mya>` elements
        // denotes those elements themselves (same leniency as the algebraic
        // translator's root-tag fallback).
        if let Some(first) = steps.first() {
            if let NodeTest::Tag(t) = &first.test {
                let all_rooted = !cur.is_empty()
                    && cur.iter().all(|i| matches!(i, Item::Tree(ct) if ct.tag == *t));
                if all_rooted {
                    steps = &steps[1..];
                }
            }
        }
        for step in steps {
            let mut next = Vec::new();
            match &step.test {
                NodeTest::Text => {
                    for item in &cur {
                        let v = self.value(item);
                        next.push(Item::Text(v.into()));
                    }
                }
                NodeTest::Tag(t) => {
                    for item in &cur {
                        self.step_named(item, t, step.axis, false, &mut next);
                    }
                }
                NodeTest::Attribute(a) => {
                    let name = format!("@{a}");
                    for item in &cur {
                        self.step_named(item, &name, step.axis, true, &mut next);
                    }
                }
            }
            cur = next;
        }
        Ok(cur)
    }

    /// One named step: visit all children (recursively for `//`), keeping
    /// those whose tag matches. Matching is by *name*, through the node API
    /// — the paper's navigational evaluator works "checking them for a
    /// condition on content or name", i.e. it inspects each node rather
    /// than comparing pre-resolved ids (it has no query compiler).
    fn step_named(&mut self, item: &Item, want: &str, axis: Axis, attr: bool, out: &mut Vec<Item>) {
        match item {
            Item::Text(_) => {}
            Item::Node(n) => self.step_node(*n, want, axis, attr, out),
            Item::Tree(t) => {
                for c in &t.children {
                    match c {
                        Item::Tree(ct) => {
                            if !attr && ct.tag == want {
                                out.push(c.clone());
                            }
                            if axis == Axis::Descendant {
                                self.step_named(c, want, axis, attr, out);
                            }
                        }
                        Item::Node(n) => {
                            // A grafted stored subtree: test the node itself,
                            // then descend normally.
                            let rec = self.db.node(*n);
                            self.stats.nodes_visited += 1;
                            let name = rec.tag_name();
                            if &*name == want && (attr == (rec.kind() == NodeKind::Attribute)) {
                                out.push(c.clone());
                            }
                            if axis == Axis::Descendant {
                                self.step_node(*n, want, axis, attr, out);
                            }
                        }
                        Item::Text(_) => {}
                    }
                }
                if !attr {
                    return;
                }
                // Attribute steps also read the constructed attributes.
                for (name, value) in &t.attrs {
                    if format!("@{name}") == want {
                        out.push(Item::Text(value.as_str().into()));
                    }
                }
            }
        }
    }

    fn step_node(&mut self, n: NodeId, want: &str, axis: Axis, _attr: bool, out: &mut Vec<Item>) {
        let node = self.db.node(n);
        for c in node.children() {
            self.stats.nodes_visited += 1;
            // Per-node inspection through the generic node API: fetch the
            // tag name and compare (no compiled/interned fast path).
            let name = c.tag_name();
            if &*name == want {
                out.push(Item::Node(c.id()));
            }
            if axis == Axis::Descendant {
                self.step_node(c.id(), want, axis, _attr, out);
            }
        }
    }

    /// String value of an item; visiting cost is charged for stored nodes.
    fn value(&mut self, item: &Item) -> String {
        match item {
            Item::Node(n) => {
                let node = self.db.node(*n);
                self.stats.nodes_visited += node.subtree_size() as u64;
                node.string_value()
            }
            Item::Tree(t) => {
                let mut s = String::new();
                for c in &t.children {
                    s.push_str(&self.value(c));
                }
                s
            }
            Item::Text(t) => t.to_string(),
        }
    }

    // ---------------- FLWOR ----------------

    fn flwor(&mut self, ctx: &mut Ctx, q: &Flwor) -> Result<Vec<Item>> {
        // Each entry: (order keys, the tuple's return items).
        let mut tuples: Vec<(Vec<Option<String>>, Vec<Item>)> = Vec::new();
        self.bind_loop(ctx, q, 0, &mut tuples)?;
        if let Some(ob) = &q.order_by {
            let mut idx: Vec<usize> = (0..tuples.len()).collect();
            idx.sort_by(|&a, &b| {
                let ord = compare_keys(&tuples[a].0, &tuples[b].0);
                if ob.descending {
                    ord.reverse()
                } else {
                    ord
                }
            });
            let mut out = Vec::new();
            for i in idx {
                out.extend(tuples[i].1.iter().cloned());
            }
            return Ok(out);
        }
        Ok(tuples.into_iter().flat_map(|(_, items)| items).collect())
    }

    fn bind_loop(
        &mut self,
        ctx: &mut Ctx,
        q: &Flwor,
        depth: usize,
        out: &mut Vec<(Vec<Option<String>>, Vec<Item>)>,
    ) -> Result<()> {
        if depth == q.bindings.len() {
            self.stats.tuples += 1;
            if let Some(w) = &q.where_expr {
                if !self.where_holds(ctx, w)? {
                    return Ok(());
                }
            }
            let keys = match &q.order_by {
                Some(ob) => ob
                    .keys
                    .iter()
                    .map(|k| {
                        let items = self.eval_path(ctx, k)?;
                        Ok(items.first().map(|i| self.value(i)))
                    })
                    .collect::<Result<Vec<_>>>()?,
                None => Vec::new(),
            };
            let items = self.ret(ctx, &q.ret)?;
            out.push((keys, items));
            return Ok(());
        }
        let b = &q.bindings[depth];
        // Save any shadowed outer binding and restore it on scope exit —
        // `FOR $p … LET $a := FOR $p …` must not destroy the outer $p.
        let shadowed = ctx.vars.get(&b.var).cloned();
        match (&b.kind, &b.source) {
            (BindingKind::For, BindingSource::Path(p)) => {
                let items = self.eval_path(ctx, p)?;
                for item in items {
                    ctx.vars.insert(b.var.clone(), BindVal::One(item));
                    self.bind_loop(ctx, q, depth + 1, out)?;
                }
            }
            (BindingKind::Let, BindingSource::Path(p)) => {
                let items = self.eval_path(ctx, p)?;
                ctx.vars.insert(b.var.clone(), BindVal::Seq(Rc::new(items)));
                self.bind_loop(ctx, q, depth + 1, out)?;
            }
            (BindingKind::Let, BindingSource::Subquery(sub)) => {
                let items = self.flwor(ctx, sub)?;
                ctx.vars.insert(b.var.clone(), BindVal::Seq(Rc::new(items)));
                self.bind_loop(ctx, q, depth + 1, out)?;
            }
            (BindingKind::For, BindingSource::Subquery(sub)) => {
                let items = self.flwor(ctx, sub)?;
                for item in items {
                    ctx.vars.insert(b.var.clone(), BindVal::One(item));
                    self.bind_loop(ctx, q, depth + 1, out)?;
                }
            }
        }
        match shadowed {
            Some(v) => {
                ctx.vars.insert(b.var.clone(), v);
            }
            None => {
                ctx.vars.remove(&b.var);
            }
        }
        Ok(())
    }

    // ---------------- WHERE ----------------

    fn where_holds(&mut self, ctx: &mut Ctx, w: &WhereExpr) -> Result<bool> {
        match w {
            WhereExpr::And(a, b) => Ok(self.where_holds(ctx, a)? && self.where_holds(ctx, b)?),
            WhereExpr::Or(a, b) => Ok(self.where_holds(ctx, a)? || self.where_holds(ctx, b)?),
            WhereExpr::Comparison { path, op, value } => {
                let items = self.eval_path(ctx, path)?;
                for item in items {
                    let v = self.value(&item);
                    if literal_cmp(*op, &v, value) {
                        return Ok(true);
                    }
                }
                Ok(false)
            }
            WhereExpr::AggrComparison { func, path, op, value } => {
                let items = self.eval_path(ctx, path)?;
                let agg = self.aggregate(*func, &items);
                Ok(literal_cmp(*op, &agg, value))
            }
            WhereExpr::ValueJoin { left, op, right } => {
                let l = self.eval_path(ctx, left)?;
                let r = self.eval_path(ctx, right)?;
                // Nested loops — the navigational join.
                for li in &l {
                    let lv = self.value(li);
                    for ri in &r {
                        let rv = self.value(ri);
                        if text_cmp(*op, &lv, &rv) {
                            return Ok(true);
                        }
                    }
                }
                Ok(false)
            }
            WhereExpr::Quantified { quant, var, path, cond_path, op, value } => {
                let items = self.eval_path(ctx, path)?;
                let shadowed = ctx.vars.get(var).cloned();
                let mut all = true;
                let mut any = false;
                for item in items {
                    ctx.vars.insert(var.clone(), BindVal::One(item));
                    let holds = {
                        let c_items = self.eval_path(ctx, cond_path)?;
                        c_items.iter().any(|i| {
                            let v = self.value_imm(i);
                            literal_cmp(*op, &v, value)
                        })
                    };
                    match &shadowed {
                        Some(v) => {
                            ctx.vars.insert(var.clone(), v.clone());
                        }
                        None => {
                            ctx.vars.remove(var);
                        }
                    }
                    all &= holds;
                    any |= holds;
                }
                Ok(match quant {
                    Quantifier::Every => all,
                    Quantifier::Some => any,
                })
            }
        }
    }

    /// Value without mutating stats (borrow-friendly inside closures); the
    /// visits are charged separately by the caller's path evaluation.
    fn value_imm(&self, item: &Item) -> String {
        match item {
            Item::Node(n) => self.db.node(*n).string_value(),
            Item::Tree(t) => t.children.iter().map(|c| self.value_imm(c)).collect(),
            Item::Text(t) => t.to_string(),
        }
    }

    fn aggregate(&mut self, func: AggFunc, items: &[Item]) -> String {
        if func == AggFunc::Count {
            return items.len().to_string();
        }
        let nums: Vec<f64> =
            items.iter().filter_map(|i| self.value(i).trim().parse::<f64>().ok()).collect();
        if nums.is_empty() {
            return "empty".to_string();
        }
        let v = match func {
            AggFunc::Sum => nums.iter().sum(),
            AggFunc::Avg => nums.iter().sum::<f64>() / nums.len() as f64,
            AggFunc::Min => nums.iter().copied().fold(f64::INFINITY, f64::min),
            AggFunc::Max => nums.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            AggFunc::Count => unreachable!(),
        };
        format_num(v)
    }

    // ---------------- RETURN ----------------

    fn ret(&mut self, ctx: &mut Ctx, r: &ReturnExpr) -> Result<Vec<Item>> {
        match r {
            ReturnExpr::Path(p) => self.eval_path(ctx, p),
            ReturnExpr::Text(t) => Ok(vec![Item::Text(t.as_str().into())]),
            ReturnExpr::Aggr(f, p) => {
                let items = self.eval_path(ctx, p)?;
                let v = self.aggregate(*f, &items);
                Ok(vec![Item::Text(v.into())])
            }
            ReturnExpr::Subquery(sub) => self.flwor(ctx, sub),
            ReturnExpr::Element { tag, attrs, children } => {
                let mut built_attrs = Vec::with_capacity(attrs.len());
                for (name, path) in attrs {
                    let items = self.eval_path(ctx, path)?;
                    let v: String = items.iter().map(|i| self.value_imm(i)).collect();
                    // Charge the value reads.
                    for i in &items {
                        let _ = self.value(i);
                    }
                    built_attrs.push((name.clone(), v));
                }
                let mut built_children = Vec::new();
                for c in children {
                    built_children.extend(self.ret(ctx, c)?);
                }
                Ok(vec![Item::Tree(Rc::new(CTree {
                    tag: tag.clone(),
                    attrs: built_attrs,
                    children: built_children,
                }))])
            }
        }
    }

    // ---------------- output ----------------

    fn serialize(&self, item: &Item, out: &mut String) {
        match item {
            Item::Node(n) => out.push_str(&serialize_subtree(self.db, *n)),
            Item::Text(t) => escape_text(t, out),
            Item::Tree(t) => {
                out.push('<');
                out.push_str(&t.tag);
                for (name, value) in &t.attrs {
                    out.push(' ');
                    out.push_str(name);
                    out.push_str("=\"");
                    escape_attr(value, out);
                    out.push('"');
                }
                if t.children.is_empty() {
                    out.push_str("/>");
                    return;
                }
                out.push('>');
                for c in &t.children {
                    self.serialize(c, out);
                }
                out.push_str("</");
                out.push_str(&t.tag);
                out.push('>');
            }
        }
    }
}

fn format_num(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

fn literal_cmp(op: CmpOp, actual: &str, lit: &Literal) -> bool {
    match lit {
        Literal::Number(n) => {
            if op == CmpOp::Contains {
                return false;
            }
            match actual.trim().parse::<f64>() {
                Ok(a) => a.partial_cmp(n).is_some_and(|o| ord_holds(op, o)),
                Err(_) => false,
            }
        }
        Literal::Str(s) => match op {
            CmpOp::Contains => actual.contains(s.as_str()),
            _ => ord_holds(op, actual.cmp(s.as_str())),
        },
    }
}

fn text_cmp(op: CmpOp, a: &str, b: &str) -> bool {
    // Numeric when both parse (matching the algebraic join-key coercion).
    if let (Ok(x), Ok(y)) = (a.trim().parse::<f64>(), b.trim().parse::<f64>()) {
        return x.partial_cmp(&y).is_some_and(|o| ord_holds(op, o));
    }
    if op == CmpOp::Contains {
        return a.contains(b);
    }
    ord_holds(op, a.cmp(b))
}

fn ord_holds(op: CmpOp, o: std::cmp::Ordering) -> bool {
    use std::cmp::Ordering::*;
    match op {
        CmpOp::Eq => o == Equal,
        CmpOp::Ne => o != Equal,
        CmpOp::Lt => o == Less,
        CmpOp::Le => o != Greater,
        CmpOp::Gt => o == Greater,
        CmpOp::Ge => o != Less,
        CmpOp::Contains => false,
    }
}

fn compare_keys(a: &[Option<String>], b: &[Option<String>]) -> std::cmp::Ordering {
    for (x, y) in a.iter().zip(b) {
        let ord = match (x, y) {
            (Some(x), Some(y)) => match (x.trim().parse::<f64>(), y.trim().parse::<f64>()) {
                (Ok(nx), Ok(ny)) => nx.total_cmp(&ny),
                _ => x.cmp(y),
            },
            (Some(_), None) => std::cmp::Ordering::Less,
            (None, Some(_)) => std::cmp::Ordering::Greater,
            (None, None) => std::cmp::Ordering::Equal,
        };
        if ord != std::cmp::Ordering::Equal {
            return ord;
        }
    }
    std::cmp::Ordering::Equal
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> Database {
        let mut db = Database::new();
        db.load_xml(
            "auction.xml",
            r#"<site>
              <people>
                <person id="person0"><name>Ann</name><age>30</age></person>
                <person id="person1"><name>Bo</name><age>20</age></person>
              </people>
              <open_auctions>
                <open_auction>
                  <bidder><personref person="person0"/></bidder>
                  <bidder><personref person="person1"/></bidder>
                  <quantity>5</quantity>
                </open_auction>
                <open_auction>
                  <bidder><personref person="person0"/></bidder>
                  <quantity>1</quantity>
                </open_auction>
              </open_auctions>
            </site>"#,
        )
        .unwrap();
        db
    }

    fn run(db: &Database, q: &str) -> String {
        let ast = xquery::parse(q).unwrap();
        evaluate_nav(db, &ast).unwrap().0
    }

    #[test]
    fn simple_path_and_predicate() {
        let d = db();
        let out = run(
            &d,
            r#"FOR $p IN document("auction.xml")//person WHERE $p/age > 25 RETURN $p/name"#,
        );
        assert_eq!(out, "<name>Ann</name>");
    }

    #[test]
    fn nav_visits_nodes() {
        let d = db();
        let ast =
            xquery::parse(r#"FOR $p IN document("auction.xml")//person RETURN $p/name"#).unwrap();
        let (_, stats) = evaluate_nav(&d, &ast).unwrap();
        assert!(stats.nodes_visited > 10, "descendant steps walk the tree: {stats:?}");
        assert_eq!(stats.tuples, 2);
    }

    #[test]
    fn counts_and_joins() {
        let d = db();
        let out = run(
            &d,
            r#"FOR $p IN document("auction.xml")//person
               FOR $o IN document("auction.xml")//open_auction
               WHERE count($o/bidder) > 1 AND $p/age > 25
                 AND $p/@id = $o/bidder//@person
               RETURN <person name={$p/name/text()}> $o/bidder </person>"#,
        );
        assert_eq!(out.matches("<person name=\"Ann\">").count(), 1);
        assert_eq!(out.matches("<bidder>").count(), 2);
    }

    #[test]
    fn let_subquery() {
        let d = db();
        let out = run(
            &d,
            r#"FOR $p IN document("auction.xml")//person
               LET $a := FOR $o IN document("auction.xml")//open_auction
                         WHERE $p/@id = $o/bidder//@person
                         RETURN <mya>{$o/quantity/text()}</mya>
               WHERE $p/age > 25
               RETURN <res name={$p/name/text()}>{$a/mya}</res>"#,
        );
        assert_eq!(out, "<res name=\"Ann\"><mya>5</mya><mya>1</mya></res>");
    }

    #[test]
    fn order_by_descending() {
        let d = db();
        let out = run(
            &d,
            r#"FOR $p IN document("auction.xml")//person ORDER BY $p/age DESCENDING RETURN $p/age"#,
        );
        assert_eq!(out, "<age>30</age>\n<age>20</age>");
    }

    #[test]
    fn every_quantifier() {
        let d = db();
        let out = run(
            &d,
            r#"FOR $o IN document("auction.xml")//open_auction
               WHERE EVERY $b IN $o/quantity SATISFIES $b > 2
               RETURN $o/quantity"#,
        );
        assert_eq!(out, "<quantity>5</quantity>");
    }

    #[test]
    fn aggregate_in_return() {
        let d = db();
        let out = run(
            &d,
            r#"FOR $o IN document("auction.xml")//open_auction RETURN <n>{count($o/bidder)}</n>"#,
        );
        assert_eq!(out, "<n>2</n>\n<n>1</n>");
    }
}
