//! Arena transparency: pooled execution arenas change where intermediate
//! buffers come from, never what a request returns. Every configuration
//! pair below runs the same seeded workload through an arena-enabled
//! service and an `arena_kb: 0` twin (the seed allocation behavior) and
//! demands byte-identical output *and* identical [`tlc::ExecStats`] once
//! the three arena-only counters are projected away — across the tree
//! walker, the register-IR backend, and sharded execution. A cancelled
//! shard wave must additionally never leak an arena back into the pool.

use service::{Service, ServiceConfig, ServiceError};
use std::sync::Arc;
use std::time::Duration;

const FACTOR: f64 = 0.001;
const SEED: u64 = 0x5eed_a11c_0de5_u64;
const REQUESTS: usize = 60;

/// Deterministic xorshift64* so the request mix is a seeded property, not
/// a fixed enumeration: repeated queries exercise warm match-cache hit
/// paths (the arena's dominant recycling site) in a shuffled order.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }
}

fn config(ir: bool, sharded: bool) -> ServiceConfig {
    ServiceConfig {
        // One worker keeps request interleaving — and therefore shared
        // match-cache state — deterministic between the two services.
        workers: 1,
        queue_depth: 16,
        ir,
        shard_max: if sharded { 4 } else { 0 },
        shard_min_candidates: if sharded { 1 } else { 512 },
        ..Default::default()
    }
}

/// The tentpole property: for every backend combination, an arena-backed
/// service and its arena-free twin are indistinguishable from outside —
/// same bytes, same counters (modulo the arena's own three), same cache
/// behavior — while the arena-backed side demonstrably recycles buffers.
#[test]
fn arena_execution_is_byte_and_stats_identical_to_seed_path() {
    let db = Arc::new(xmark::auction_database(FACTOR));
    let suite = queries::all_queries();

    for (ir, sharded) in [(false, false), (true, false), (false, true), (true, true)] {
        let arena_cfg = config(ir, sharded);
        assert!(arena_cfg.arena_kb > 0, "default config must enable arenas");
        let seed_cfg = ServiceConfig { arena_kb: 0, ..arena_cfg.clone() };

        let with_arena = Service::new(Arc::clone(&db), arena_cfg);
        let without = Service::new(Arc::clone(&db), seed_cfg);

        let mut rng = Rng(SEED);
        for i in 0..REQUESTS {
            let q = &suite[(rng.next() % suite.len() as u64) as usize];
            let a = with_arena
                .execute(q.text)
                .unwrap_or_else(|e| panic!("ir={ir} sharded={sharded}: {} (arena): {e}", q.name));
            let b = without
                .execute(q.text)
                .unwrap_or_else(|e| panic!("ir={ir} sharded={sharded}: {} (seed): {e}", q.name));
            assert_eq!(
                a.output, b.output,
                "ir={ir} sharded={sharded} request {i}: {} bytes diverged",
                q.name
            );
            assert_eq!(
                a.stats.without_arena_counters(),
                b.stats.without_arena_counters(),
                "ir={ir} sharded={sharded} request {i}: {} counters diverged",
                q.name
            );
        }

        let pool = with_arena.arena_stats();
        assert!(pool.checkouts > 0, "ir={ir} sharded={sharded}: arena pool never used: {pool:?}");
        assert!(
            pool.reuses > 0,
            "ir={ir} sharded={sharded}: arenas never recycled across requests: {pool:?}"
        );
        let off = without.arena_stats();
        assert_eq!(off.reuses, 0, "arena_kb 0 must never recycle: {off:?}");
    }
}

/// Cancellation hygiene: a shard wave killed mid-stream by its deadline
/// must not restore any of its arenas (errors discard — a half-written
/// buffer never becomes another request's starting capacity), and the
/// service must stay healthy for the next caller.
#[test]
fn cancelled_shard_wave_never_recycles_its_arenas() {
    let db = Arc::new(xmark::auction_database(FACTOR));
    let q = queries::query("x5").expect("x5 in suite").text;
    let svc = Service::new(Arc::clone(&db), config(true, true));

    let expected = svc.execute(q).expect("warmup").output;
    let before = svc.arena_stats();

    match svc.execute_with_deadline(q, Duration::ZERO) {
        Err(ServiceError::DeadlineExceeded) => {}
        other => panic!("zero budget should exceed its deadline, got {other:?}"),
    }

    // Every arena the cancelled wave checked out must end in a discard —
    // restores don't tick a counter, so discards == checkouts proves none
    // of the wave's arenas went back to the pool. (Shards expired while
    // still queued never run, so they neither check out nor discard.)
    let after = svc.arena_stats();
    assert_eq!(
        after.discards - before.discards,
        after.checkouts - before.checkouts,
        "a cancelled wave must discard every arena it checked out: {before:?} -> {after:?}"
    );

    let resp = svc.execute(q).expect("service must stay healthy after a cancelled wave");
    assert_eq!(resp.output, expected, "post-cancellation request diverged");
}
