//! Catalog correctness at the service boundary: epoch-keyed plan
//! invalidation across hot swaps, and multi-database persist round trips.

use baselines::Engine;
use service::catalog::DEFAULT_DB;
use service::{Service, ServiceConfig};
use std::sync::Arc;

const Q: &str = r#"FOR $p IN document("auction.xml")//person RETURN $p/name"#;

/// Builds a database for `xml`, interning `prelude_tags` first so the
/// document's tags land on different ids than a plain load would assign.
/// This is the trap a stale plan falls into: compiled plans bind tag *ids*,
/// so a plan from one store executed against the other matches the wrong
/// element names entirely.
fn xml_db(prelude_tags: &[&str], xml: &str) -> xmldb::Database {
    let db = xmldb::Database::new();
    for t in prelude_tags {
        db.interner().intern(t);
    }
    let mut db = db;
    db.load_xml("auction.xml", xml).unwrap();
    db
}

#[test]
fn hot_swap_to_shifted_tag_ids_misses_the_cache_and_recompiles() {
    let xml_a = "<site><person><name>Ann</name></person></site>";
    let xml_b = "<site><person><name>Bob</name><name>Cat</name></person></site>";
    let a = Arc::new(xml_db(&[], xml_a));
    let b = Arc::new(xml_db(&["pad0", "pad1", "pad2", "pad3"], xml_b));
    // The precondition that makes this test meaningful: the two loads
    // assigned different ids to the same element names.
    assert_ne!(
        a.interner().lookup("person"),
        b.interner().lookup("person"),
        "tag ids must differ between the snapshots"
    );

    let svc = Service::new(Arc::clone(&a), ServiceConfig::default());
    let before = svc.execute(Q).unwrap();
    assert!(!before.cache_hit);
    assert_eq!(before.output, baselines::run(Engine::Tlc, Q, &a).unwrap());
    assert!(svc.execute(Q).unwrap().cache_hit, "warm cache before the swap");

    let entry = svc.install(DEFAULT_DB, Arc::clone(&b)).unwrap();
    assert_eq!(entry.epoch(), 1);

    // Same text after the swap: the epoch in the cache key forces a miss,
    // and the recompiled plan answers exactly like a fresh single-threaded
    // compile against the new store. A stale plan would probe the wrong
    // tag ids and answer garbage here.
    let after = svc.execute(Q).unwrap();
    assert!(!after.cache_hit, "stale plan served across the hot swap");
    assert_eq!(after.db_epoch, 1);
    assert_eq!(after.output, baselines::run(Engine::Tlc, Q, &b).unwrap());
    assert_ne!(after.output, before.output, "the two stores answer differently by design");

    // And the swap is visible in the per-database metrics.
    let snap = svc.metrics_snapshot();
    let counters = snap.db(DEFAULT_DB).expect("per-db counters");
    assert_eq!(counters.swaps, 1);
    assert!(counters.invalidated >= 1, "the pre-swap plan must have been purged");
}

#[test]
fn two_document_catalog_round_trips_through_persistence() {
    let dir = std::env::temp_dir();
    let pid = std::process::id();
    let path_a = dir.join(format!("tlc_cat_a_{pid}.tlcx"));
    let path_b = dir.join(format!("tlc_cat_b_{pid}.xml"));

    let a = xml_db(&[], "<site><person><name>Ann</name></person></site>");
    xmldb::save_file(&a, &path_a).unwrap();
    // `b` goes to disk as plain XML: .open must accept both forms.
    std::fs::write(&path_b, "<site><person><name>Bea</name></person></site>").unwrap();

    let svc = Service::new(Arc::new(xmark::auction_database(0.001)), ServiceConfig::default());
    svc.open("a", &path_a).unwrap();
    svc.open("b", &path_b).unwrap();
    assert_eq!(svc.databases().len(), 3);

    // Both loaded databases serve the standard workload query, each from
    // its own store, while `main` keeps answering too.
    let on_a = svc.execute_on("a", Q).unwrap();
    let on_b = svc.execute_on("b", Q).unwrap();
    assert_eq!(on_a.output, "<name>Ann</name>");
    assert_eq!(on_b.output, "<name>Bea</name>");
    assert!(svc.execute(Q).is_ok());

    // Distinct cache entries per database: re-asking each hits its own.
    assert!(svc.execute_on("a", Q).unwrap().cache_hit);
    assert!(svc.execute_on("b", Q).unwrap().cache_hit);

    // Reload `b` after editing its source: the swap is visible at once.
    std::fs::write(&path_b, "<site><person><name>Bix</name></person></site>").unwrap();
    let (entry, invalidated) = svc.reload("b").unwrap();
    assert_eq!(entry.epoch(), 1);
    assert_eq!(invalidated, 1, "b's cached plan must have been purged");
    let reloaded = svc.execute_on("b", Q).unwrap();
    assert!(!reloaded.cache_hit);
    assert_eq!(reloaded.output, "<name>Bix</name>");
    // `a` was untouched: its cache entry survived the sibling's swap.
    assert!(svc.execute_on("a", Q).unwrap().cache_hit);

    for p in [path_a, path_b] {
        std::fs::remove_file(p).ok();
    }
}
