//! Concurrency equivalence: the service must be a *transparent* wrapper.
//! Whatever `baselines::run` produces single-threaded, the service must
//! produce byte-identically from any number of threads at once — the plan
//! cache, the worker pool, and the shared database change performance,
//! never results.

use baselines::Engine;
use service::{Service, ServiceConfig};
use std::collections::BTreeMap;
use std::sync::Arc;

const THREADS: usize = 8;
const FACTOR: f64 = 0.001;

/// The full evaluation suite from 8 threads against one shared service,
/// each thread starting at a different workload offset so distinct queries
/// are in flight together. Every response must equal the single-threaded
/// baseline byte for byte.
#[test]
fn eight_threads_match_single_threaded_baselines() {
    let db = Arc::new(xmark::auction_database(FACTOR));
    let expected: BTreeMap<&str, String> = queries::all_queries()
        .iter()
        .map(|q| (q.name, baselines::run(Engine::Tlc, q.text, &db).unwrap()))
        .collect();

    let svc = Service::new(
        Arc::clone(&db),
        ServiceConfig { workers: THREADS, queue_depth: THREADS * 4, ..Default::default() },
    );
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let svc = &svc;
            let expected = &expected;
            s.spawn(move || {
                let suite = queries::all_queries();
                for i in 0..suite.len() {
                    let q = &suite[(t + i) % suite.len()];
                    let resp = svc.execute(q.text).unwrap_or_else(|e| {
                        panic!("thread {t}: {} failed: {e}", q.name);
                    });
                    assert_eq!(
                        resp.output, expected[q.name],
                        "thread {t}: {} diverged from the single-threaded run",
                        q.name
                    );
                }
            });
        }
    });

    // Every query ran THREADS times; after the first arrival of each text
    // the rest were cache hits — modulo the deliberate miss race: lookup
    // and insert don't hold the cache lock across the compile, so two
    // threads arriving at an uncached text together may both miss and both
    // compile (the loser's insert replaces in place). Allow one racing
    // compile per text on top of the cold miss; more than that means the
    // cache stopped being consulted.
    let cache = svc.cache_stats();
    let suite_len = queries::all_queries().len() as u64;
    assert_eq!(cache.hits + cache.misses, suite_len * THREADS as u64);
    assert!(cache.misses <= suite_len * 2, "cache barely hit: {cache:?}");
    let snap = svc.metrics_snapshot();
    assert_eq!(snap.ok, suite_len * THREADS as u64);
}

/// Same property for prepared plans: one thread prepares, eight execute
/// the shared handles concurrently.
#[test]
fn shared_prepared_plans_are_thread_safe() {
    let db = Arc::new(xmark::auction_database(FACTOR));
    let svc = Service::new(
        Arc::clone(&db),
        ServiceConfig { workers: THREADS, queue_depth: THREADS * 4, ..Default::default() },
    );
    let suite = queries::all_queries();
    let handles: Vec<_> = suite.iter().map(|q| svc.prepare(q.text).unwrap()).collect();
    let expected: Vec<String> =
        suite.iter().map(|q| baselines::run(Engine::Tlc, q.text, &db).unwrap()).collect();

    std::thread::scope(|s| {
        for t in 0..THREADS {
            let svc = &svc;
            let handles = &handles;
            let expected = &expected;
            s.spawn(move || {
                for i in 0..handles.len() {
                    let k = (t * 3 + i) % handles.len();
                    let resp = svc.execute_prepared(&handles[k]).unwrap();
                    assert_eq!(resp.output, expected[k]);
                    assert!(resp.cache_hit);
                }
            });
        }
    });
}
