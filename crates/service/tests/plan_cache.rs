//! Plan-cache correctness at the service boundary: hit accounting,
//! whitespace-insensitive keying, and eviction safety for plans that are
//! still executing.

use service::{Service, ServiceConfig};
use std::sync::Arc;

fn service_with_cache(capacity: usize) -> Service {
    let db = Arc::new(xmark::auction_database(0.001));
    // Queue sized for the 8 concurrent client threads below — these tests
    // exercise the cache, not admission control.
    Service::new(
        db,
        ServiceConfig {
            plan_cache_capacity: capacity,
            workers: 4,
            queue_depth: 16,
            ..Default::default()
        },
    )
}

const Q: &str = r#"FOR $p IN document("auction.xml")//person RETURN $p/name"#;

#[test]
fn identical_queries_hit_the_cache() {
    let svc = service_with_cache(16);
    assert!(!svc.execute(Q).unwrap().cache_hit);
    for _ in 0..3 {
        assert!(svc.execute(Q).unwrap().cache_hit);
    }
    let stats = svc.cache_stats();
    assert_eq!((stats.hits, stats.misses, stats.len), (3, 1, 1));
}

#[test]
fn whitespace_variants_share_one_entry() {
    let svc = service_with_cache(16);
    let reference = svc.execute(Q).unwrap().output;
    let variants = [
        "FOR $p IN document(\"auction.xml\")//person\n    RETURN $p/name",
        "  FOR   $p   IN document(\"auction.xml\")//person RETURN $p/name  ",
        "\tFOR $p\nIN\tdocument(\"auction.xml\")//person\n\nRETURN $p/name\n",
    ];
    for v in variants {
        let resp = svc.execute(v).unwrap();
        assert!(resp.cache_hit, "variant should share the cache entry: {v:?}");
        assert_eq!(resp.output, reference);
    }
    let stats = svc.cache_stats();
    assert_eq!((stats.misses, stats.len), (1, 1), "all spellings must map to one entry");
    // prepare() agrees on the key too.
    assert_eq!(svc.prepare(Q).unwrap().query(), svc.prepare(variants[0]).unwrap().query());
}

#[test]
fn eviction_does_not_corrupt_in_flight_executions() {
    // Capacity 1: every distinct query evicts the previous one. Holding a
    // PlanHandle across those evictions and executing it afterwards must
    // still work and still be correct — eviction only drops the cache's
    // reference, never the plan under a live handle.
    let svc = service_with_cache(1);
    let handle = svc.prepare(Q).unwrap();
    let reference = svc.execute_prepared(&handle).unwrap().output;

    let suite = queries::all_queries();
    for q in suite.iter().take(6) {
        svc.execute(q.text).unwrap(); // each of these evicts the last entry
        let resp = svc.execute_prepared(&handle).unwrap();
        assert_eq!(resp.output, reference, "evicted plan changed behavior");
    }
    let stats = svc.cache_stats();
    assert_eq!(stats.len, 1);
    assert!(stats.evictions >= 6, "capacity-1 cache must have evicted per query: {stats:?}");

    // And under concurrency: threads churn the capacity-1 cache while
    // others hammer the held handle.
    std::thread::scope(|s| {
        for t in 0..4 {
            let svc = &svc;
            s.spawn(move || {
                for q in queries::all_queries().iter().skip(t * 3).take(5) {
                    svc.execute(q.text).unwrap();
                }
            });
        }
        for _ in 0..4 {
            let svc = &svc;
            let handle = &handle;
            let reference = &reference;
            s.spawn(move || {
                for _ in 0..10 {
                    assert_eq!(&svc.execute_prepared(handle).unwrap().output, reference);
                }
            });
        }
    });
}

#[test]
fn distinct_queries_get_distinct_entries() {
    let svc = service_with_cache(64);
    let a = svc.execute(Q).unwrap();
    let b =
        svc.execute(r#"FOR $p IN document("auction.xml")//person RETURN $p/emailaddress"#).unwrap();
    assert!(!a.cache_hit && !b.cache_hit);
    assert_ne!(a.output, b.output);
    assert_eq!(svc.cache_stats().len, 2);
}
