//! The persistent catalog manifest: which databases a server had open,
//! where they came from, and what epoch each had reached.
//!
//! `tlc-serve --manifest FILE` makes the catalog survive restarts: the
//! server writes the manifest after startup and whenever a connection
//! that may have changed the catalog closes, and on the next start it
//! reopens every recorded database from its source file — at its recorded
//! epoch, so `(name, epoch)` pairs a client noted before the restart stay
//! monotonic ([`crate::catalog::Catalog::open_at`]).
//!
//! The format is one header comment plus one tab-separated line per
//! database with a reload source:
//!
//! ```text
//! # tlc-serve catalog manifest: name<TAB>epoch<TAB>source
//! auction <TAB> 3 <TAB> /data/auction.tlcx
//! side    <TAB> 0 <TAB> /data/side.xml
//! ```
//!
//! Purely in-memory databases (the generated default `main`, anything
//! published with [`crate::Service::install`]) have no source file to
//! reopen from and are deliberately absent — a manifest records what a
//! restart can actually reconstruct, nothing more. In-place updates
//! ([`crate::Service::apply_update`]) bump a database's epoch without
//! touching its source file, so a restart reloads the *file* content at
//! the recorded epoch; durability of the mutations themselves is the
//! caller's business (save a snapshot, then `.open` it).

use crate::catalog::CatalogRow;
use crate::Service;
use std::io;
use std::path::{Path, PathBuf};

/// One manifest line: a database the server can reopen after a restart.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestEntry {
    /// Catalog name.
    pub name: String,
    /// Epoch the database had reached when the manifest was written.
    pub epoch: u64,
    /// File to reload it from.
    pub source: PathBuf,
}

/// Writes the manifest for `rows` (a [`crate::Service::databases`]
/// listing) to `path`, returning how many databases were recorded.
/// Sourceless databases are skipped. The write goes through a sibling
/// temp file and a rename, so a crash mid-write never leaves a truncated
/// manifest behind.
pub fn save(path: &Path, rows: &[CatalogRow]) -> io::Result<usize> {
    let mut out = String::from("# tlc-serve catalog manifest: name\tepoch\tsource\n");
    let mut recorded = 0;
    for row in rows {
        if let Some(source) = &row.source {
            out.push_str(&format!("{}\t{}\t{}\n", row.name, row.epoch, source.display()));
            recorded += 1;
        }
    }
    let tmp = path.with_extension("manifest.tmp");
    std::fs::write(&tmp, out)?;
    std::fs::rename(&tmp, path)?;
    Ok(recorded)
}

/// Parses a manifest file. Blank lines and `#` comments are ignored;
/// malformed lines are an error (a manifest is machine-written — damage
/// should be loud, not silently dropped).
pub fn load(path: &Path) -> io::Result<Vec<ManifestEntry>> {
    let text = std::fs::read_to_string(path)?;
    let mut entries = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.splitn(3, '\t');
        let (name, epoch, source) = match (parts.next(), parts.next(), parts.next()) {
            (Some(n), Some(e), Some(s)) if !n.is_empty() && !s.is_empty() => (n, e, s),
            _ => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("manifest line {}: want name\\tepoch\\tsource", lineno + 1),
                ))
            }
        };
        let epoch: u64 = epoch.parse().map_err(|_| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("manifest line {}: bad epoch {epoch:?}", lineno + 1),
            )
        })?;
        entries.push(ManifestEntry {
            name: name.to_string(),
            epoch,
            source: PathBuf::from(source),
        });
    }
    Ok(entries)
}

/// Reopens every manifest entry into `service`'s catalog at its recorded
/// epoch. Returns `(restored, failures)`; a failure (missing file, parse
/// error, name collision handled as swap) does not stop the rest — a
/// restarted server should come up with whatever it can still serve.
pub fn restore(service: &Service, entries: &[ManifestEntry]) -> (usize, Vec<String>) {
    let mut restored = 0;
    let mut failures = Vec::new();
    for e in entries {
        match service.open_at(&e.name, &e.source, e.epoch) {
            Ok(_) => restored += 1,
            Err(err) => failures.push(format!("{} ({}): {err}", e.name, e.source.display())),
        }
    }
    (restored, failures)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Service, ServiceConfig};
    use std::sync::Arc;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("tlc_manifest_{}_{name}", std::process::id()))
    }

    #[test]
    fn round_trips_sourced_databases_and_their_epochs() {
        let xml_a = tmp("a.xml");
        let xml_b = tmp("b.xml");
        std::fs::write(&xml_a, "<r><v>1</v></r>").unwrap();
        std::fs::write(&xml_b, "<r><w>2</w></r>").unwrap();
        let svc = Service::new(Arc::new(xmark::auction_database(0.001)), ServiceConfig::default());
        svc.open("a", &xml_a).unwrap();
        svc.open("b", &xml_b).unwrap();
        svc.reload("b").unwrap(); // epoch 1
        let manifest = tmp("catalog.manifest");
        // `main` is in-memory, so only a and b are recorded.
        assert_eq!(save(&manifest, &svc.databases()).unwrap(), 2);

        // A fresh service restores both, at their recorded epochs.
        let entries = load(&manifest).unwrap();
        assert_eq!(entries.len(), 2);
        let fresh =
            Service::new(Arc::new(xmark::auction_database(0.001)), ServiceConfig::default());
        let (restored, failures) = restore(&fresh, &entries);
        assert_eq!((restored, failures.len()), (2, 0));
        assert!(fresh.has_database("a") && fresh.has_database("b"));
        let rows = fresh.databases();
        let b = rows.iter().find(|r| r.name == "b").unwrap();
        assert_eq!(b.epoch, 1, "restored epoch must continue from the manifest");
        // XML sources register under the workload's document name.
        let resp =
            fresh.execute_on("b", r#"FOR $w IN document("auction.xml")//w RETURN $w"#).unwrap();
        assert_eq!(resp.output, "<w>2</w>");
        assert_eq!(resp.db_epoch, 1);
        for p in [&xml_a, &xml_b, &manifest] {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn restore_skips_missing_sources_but_keeps_going() {
        let xml = tmp("ok.xml");
        std::fs::write(&xml, "<r/>").unwrap();
        let entries = vec![
            ManifestEntry { name: "gone".into(), epoch: 2, source: PathBuf::from("/nope/x.xml") },
            ManifestEntry { name: "ok".into(), epoch: 5, source: xml.clone() },
        ];
        let svc = Service::new(Arc::new(xmark::auction_database(0.001)), ServiceConfig::default());
        let (restored, failures) = restore(&svc, &entries);
        assert_eq!(restored, 1);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].starts_with("gone"), "{failures:?}");
        assert!(svc.has_database("ok") && !svc.has_database("gone"));
        std::fs::remove_file(&xml).ok();
    }

    #[test]
    fn damaged_manifests_are_loud() {
        let p = tmp("bad.manifest");
        std::fs::write(&p, "# header\nonly-one-field\n").unwrap();
        assert!(load(&p).is_err());
        std::fs::write(&p, "name\tnot-a-number\t/x.xml\n").unwrap();
        assert!(load(&p).is_err());
        std::fs::write(&p, "# empty is fine\n\n").unwrap();
        assert_eq!(load(&p).unwrap(), Vec::new());
        std::fs::remove_file(&p).ok();
    }
}
