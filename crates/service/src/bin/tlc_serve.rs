//! `tlc-serve` — the query service as a process.
//!
//! Loads (or generates) a database, builds a [`service::Service`] around
//! it, and speaks the line protocol of [`service::protocol`] either on
//! stdin/stdout (default) or to any number of concurrent TCP clients:
//!
//! ```text
//! tlc-serve                          # XMark factor 0.05 on stdin/stdout
//! tlc-serve --factor 0.2            # bigger generated database
//! tlc-serve --load site.xml         # serve a document from disk
//! tlc-serve --open b=snap.tlcx      # also register `b` in the catalog
//! tlc-serve --tcp 127.0.0.1:7001    # TCP, one thread per connection
//! tlc-serve --engine gtp --workers 4 --cache 64 --queue 32 --deadline-ms 500
//! ```
//!
//! Requests are one query per line; `.open`/`.use`/`.reload`/`.catalog`
//! drive the database catalog, `.insert`/`.delete`/`.settext` mutate the
//! current database, `.metrics` prints the metrics report, `.quit` ends
//! the connection. In TCP mode the process runs until killed.
//! The generated or `--load`ed database is catalog entry `main`; every
//! `--open NAME=FILE` (repeatable) registers another. With
//! `--manifest FILE` the catalog (every database with a reload source,
//! plus its epoch) is written to FILE after startup and after each
//! connection closes, and restored from it on the next start.

use baselines::Engine;
use service::{manifest, protocol, Service, ServiceConfig};
use std::io::{BufReader, BufWriter};
use std::net::TcpListener;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::{Arc, Mutex};
use std::time::Duration;

struct Options {
    factor: f64,
    load: Option<String>,
    open: Vec<(String, String)>,
    manifest: Option<String>,
    tcp: Option<String>,
    config: ServiceConfig,
}

/// Serializes manifest writes (TCP connection threads race otherwise)
/// and remembers where to write. `None` path disables persistence.
struct ManifestKeeper {
    path: Option<PathBuf>,
    lock: Mutex<()>,
}

impl ManifestKeeper {
    fn save(&self, service: &Service) {
        let Some(path) = &self.path else { return };
        let _guard = self.lock.lock().unwrap();
        if let Err(e) = manifest::save(path, &service.databases()) {
            eprintln!("tlc-serve: manifest {}: {e}", path.display());
        }
    }

    fn restore(&self, service: &Service) {
        let Some(path) = &self.path else { return };
        if !path.exists() {
            return;
        }
        match manifest::load(path) {
            Ok(entries) => {
                let (restored, failures) = manifest::restore(service, &entries);
                if restored > 0 {
                    eprintln!("tlc-serve: restored {restored} database(s) from manifest");
                }
                for failure in failures {
                    eprintln!("tlc-serve: manifest restore: {failure}");
                }
            }
            Err(e) => eprintln!("tlc-serve: manifest {}: {e}", path.display()),
        }
    }
}

const USAGE: &str = "usage: tlc-serve [OPTIONS]

  --factor F        generate an XMark database at scale factor F (default 0.05)
  --load FILE       serve FILE (registered as document(\"auction.xml\")) instead
  --open NAME=FILE  register FILE (TLCX snapshot or XML) as catalog database
                    NAME; repeatable
  --manifest FILE   persist the catalog (every sourced database + epoch) to
                    FILE and restore it at startup
  --tcp ADDR        listen on ADDR (e.g. 127.0.0.1:7001) instead of stdin
  --engine NAME     tlc | opt | costed | gtp | tax | nav (default tlc)
  --workers N       executor threads
  --queue N         admission queue depth
  --cache N         plan cache capacity in entries
  --match-cache-mb N  pattern-match cache byte budget in MiB (0 disables;
                    default 32)
  --batch-max N     max same-(db,epoch) jobs one worker claims per dispatch
                    (1 disables batching; default 8)
  --ir on|off       execute cached plans through the register-IR backend
                    (lowered once per plan, byte-identical output; default on)
  --shards N        split eligible queries into up to N interval-range shards
                    executed as parallel pool jobs and merged in document
                    order (0 disables; default 0)
  --shard-min N     anchor-candidate count below which a shardable query
                    still runs sequentially (default 512)
  --arena-kb N      per-request execution arena: retained-capacity budget in
                    KiB for the pooled buffer arenas workers recycle across
                    requests (0 disables pooling; default 256)
  --deadline-ms N   default per-request wall-clock budget
  --client-wait-ms N  max time a connection waits for a reply before
                    abandoning it (default: wait forever)
  --help            this text";

fn parse_engine(name: &str) -> Option<Engine> {
    match name.to_ascii_lowercase().as_str() {
        "tlc" => Some(Engine::Tlc),
        "opt" | "tlcopt" => Some(Engine::TlcOpt),
        "costed" | "opt*" => Some(Engine::TlcCosted),
        "gtp" => Some(Engine::Gtp),
        "tax" => Some(Engine::Tax),
        "nav" => Some(Engine::Nav),
        _ => None,
    }
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        factor: 0.05,
        load: None,
        open: Vec::new(),
        manifest: None,
        tcp: None,
        config: ServiceConfig::default(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| args.next().ok_or(format!("{flag} needs a value"));
        match arg.as_str() {
            "--factor" => {
                opts.factor = value("--factor")?.parse().map_err(|e| format!("--factor: {e}"))?
            }
            "--load" => opts.load = Some(value("--load")?),
            "--open" => {
                let spec = value("--open")?;
                let (name, file) =
                    spec.split_once('=').ok_or(format!("--open wants NAME=FILE, got {spec:?}"))?;
                opts.open.push((name.to_string(), file.to_string()));
            }
            "--manifest" => opts.manifest = Some(value("--manifest")?),
            "--tcp" => opts.tcp = Some(value("--tcp")?),
            "--engine" => {
                let name = value("--engine")?;
                opts.config.engine =
                    parse_engine(&name).ok_or(format!("unknown engine: {name}"))?;
            }
            "--workers" => {
                opts.config.workers =
                    value("--workers")?.parse().map_err(|e| format!("--workers: {e}"))?
            }
            "--queue" => {
                opts.config.queue_depth =
                    value("--queue")?.parse().map_err(|e| format!("--queue: {e}"))?
            }
            "--cache" => {
                opts.config.plan_cache_capacity =
                    value("--cache")?.parse().map_err(|e| format!("--cache: {e}"))?
            }
            "--match-cache-mb" => {
                let mb: usize = value("--match-cache-mb")?
                    .parse()
                    .map_err(|e| format!("--match-cache-mb: {e}"))?;
                opts.config.match_cache_bytes = mb << 20;
            }
            "--batch-max" => {
                opts.config.batch_max =
                    value("--batch-max")?.parse().map_err(|e| format!("--batch-max: {e}"))?
            }
            "--ir" => {
                opts.config.ir = match value("--ir")?.as_str() {
                    "on" | "true" | "1" => true,
                    "off" | "false" | "0" => false,
                    other => return Err(format!("--ir wants on|off, got {other:?}")),
                }
            }
            "--shards" => {
                opts.config.shard_max =
                    value("--shards")?.parse().map_err(|e| format!("--shards: {e}"))?
            }
            "--shard-min" => {
                opts.config.shard_min_candidates =
                    value("--shard-min")?.parse().map_err(|e| format!("--shard-min: {e}"))?
            }
            "--arena-kb" => {
                opts.config.arena_kb =
                    value("--arena-kb")?.parse().map_err(|e| format!("--arena-kb: {e}"))?
            }
            "--deadline-ms" => {
                let ms: u64 =
                    value("--deadline-ms")?.parse().map_err(|e| format!("--deadline-ms: {e}"))?;
                opts.config.default_deadline = Some(Duration::from_millis(ms));
            }
            "--client-wait-ms" => {
                let ms: u64 = value("--client-wait-ms")?
                    .parse()
                    .map_err(|e| format!("--client-wait-ms: {e}"))?;
                opts.config.client_wait = Some(Duration::from_millis(ms));
            }
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown flag: {other}")),
        }
    }
    Ok(opts)
}

fn build_database(opts: &Options) -> Result<xmldb::Database, String> {
    match &opts.load {
        // Snapshot or XML, decided by content — same loader `.open` uses.
        Some(path) => xmldb::load_path(Path::new(path)).map_err(|e| format!("{path}: {e}")),
        None => Ok(xmark::auction_database(opts.factor)),
    }
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            if msg.is_empty() {
                eprintln!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("tlc-serve: {msg}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let db = match build_database(&opts) {
        Ok(db) => Arc::new(db),
        Err(msg) => {
            eprintln!("tlc-serve: {msg}");
            return ExitCode::FAILURE;
        }
    };
    let engine = opts.config.engine;
    let keeper = Arc::new(ManifestKeeper {
        path: opts.manifest.as_ref().map(PathBuf::from),
        lock: Mutex::new(()),
    });
    let service = Arc::new(Service::new(db, opts.config));
    // Manifest first, explicit --open flags second: a flag naming a
    // restored database swaps it, so the command line always wins.
    keeper.restore(&service);
    for (name, file) in &opts.open {
        match service.open(name, Path::new(file)) {
            Ok(entry) => eprintln!(
                "tlc-serve: opened {name} from {file} ({} nodes)",
                entry.database().node_count()
            ),
            Err(e) => {
                eprintln!("tlc-serve: --open {name}={file}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    eprintln!(
        "tlc-serve: engine {}, {} workers, {} nodes loaded, {} database(s)",
        engine.name(),
        service.workers(),
        service.database().node_count(),
        service.databases().len(),
    );
    keeper.save(&service);

    match &opts.tcp {
        None => {
            let stdin = std::io::stdin();
            let stdout = std::io::stdout();
            let mut reader = stdin.lock();
            let mut writer = BufWriter::new(stdout.lock());
            let outcome = protocol::serve_connection(&service, &mut reader, &mut writer);
            keeper.save(&service);
            match outcome {
                Ok(served) => {
                    eprintln!("tlc-serve: served {served} queries");
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("tlc-serve: io error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Some(addr) => {
            let listener = match TcpListener::bind(addr) {
                Ok(l) => l,
                Err(e) => {
                    eprintln!("tlc-serve: bind {addr}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            eprintln!("tlc-serve: listening on {addr}");
            // One thread per connection; the worker pool bounds actual
            // execution concurrency, so connections are cheap.
            let mut next_id = 0u64;
            for stream in listener.incoming() {
                let stream = match stream {
                    Ok(s) => s,
                    Err(e) => {
                        eprintln!("tlc-serve: accept: {e}");
                        continue;
                    }
                };
                let service = Arc::clone(&service);
                let keeper = Arc::clone(&keeper);
                let id = next_id;
                next_id += 1;
                let spawned = std::thread::Builder::new()
                    .name(format!("tlc-serve-conn-{id}"))
                    .spawn(move || {
                        let peer = stream.peer_addr().ok();
                        let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
                        let mut writer = BufWriter::new(stream);
                        match protocol::serve_connection(&service, &mut reader, &mut writer) {
                            Ok(served) => {
                                eprintln!("tlc-serve: {peer:?} served {served} queries")
                            }
                            Err(e) => eprintln!("tlc-serve: {peer:?} io error: {e}"),
                        }
                        // The connection may have opened/reloaded/updated
                        // databases; snapshot the catalog it left behind.
                        keeper.save(&service);
                    });
                if let Err(e) = spawned {
                    eprintln!("tlc-serve: spawn: {e}");
                }
            }
            ExitCode::SUCCESS
        }
    }
}
