//! The line protocol `tlc-serve` speaks, shared with the CLI client.
//!
//! Requests are single lines:
//!
//! * a query — any line not starting with `.`, executed against the
//!   session's current database;
//! * `.open <name> <file>` — load a TLCX snapshot or XML file into the
//!   catalog under `name` (hot-swapping if the name exists) and switch
//!   this session to it;
//! * `.use <name>` — switch this session to a registered database;
//! * `.reload [<name>]` — re-read a database's source file and hot-swap
//!   the result in (defaults to the session's current database);
//! * `.drop <name>` — unregister a database and purge its cached plans
//!   and match entries; the session's current database (and the default
//!   database) cannot be dropped;
//! * `.insert <doc> <parent-ord> <xml-fragment>` — commit an in-place
//!   insert against the session's current database: the fragment becomes
//!   the last child of the node at `parent-ord` in document `doc`
//!   (see [`crate::Service::apply_update`]). The fragment is the raw rest
//!   of the line and may contain spaces;
//! * `.delete <doc> <ord>` — delete the subtree rooted at `ord`;
//! * `.settext <doc> <ord> [<text>]` — replace the node's text content
//!   (the raw rest of the line; empty clears it);
//! * `.explain <query>` — compile the query (raw rest of the line)
//!   against the session's current database without executing it and
//!   report the static-analysis view: the typed plan, its read-effect
//!   footprint, what class-liveness pruning removes, lint warnings, and
//!   the register-IR listing the plan lowers to (`== ir ==`; see
//!   [`crate::Service::explain`]);
//! * `.catalog` — list the registered databases;
//! * `.metrics` — the service's text metrics report;
//! * `.quit` — close this connection.
//!
//! The *current database* is per-connection state: two clients of one
//! server can sit on different databases, and `.use` in one session never
//! disturbs another. Catalog mutations (`.open`, `.reload`) are global —
//! every session sees the new snapshot on its next query.
//!
//! Responses are length-prefixed frames so payloads may span lines:
//!
//! ```text
//! OK <byte-len>\n<payload>\n        e.g.  OK 17\n<name>Ann</name>\n
//! ERR <message>\n                   message is single-line
//! ```
//!
//! [`serve_connection`] runs the server side of one connection over any
//! reader/writer pair (stdin/stdout or a TCP stream); [`read_response`] is
//! the client-side frame parser.

use crate::{Service, ServiceError, UpdateOp};
use std::io::{self, BufRead, Write};
use std::path::Path;
use std::sync::Arc;

/// Splits up to `n` leading whitespace-delimited words off `s`, returning
/// them plus the raw remainder (leading whitespace trimmed). The update
/// commands use this because their final argument — an XML fragment or
/// text content — may itself contain spaces that tokenizing would destroy.
fn split_words(s: &str, n: usize) -> (Vec<&str>, &str) {
    let mut rest = s.trim_start();
    let mut words = Vec::with_capacity(n);
    for _ in 0..n {
        if rest.is_empty() {
            break;
        }
        match rest.find(char::is_whitespace) {
            Some(i) => {
                words.push(&rest[..i]);
                rest = rest[i..].trim_start();
            }
            None => {
                words.push(rest);
                rest = "";
            }
        }
    }
    (words, rest)
}

/// Runs one update op against `db` and writes the outcome frame.
fn run_update(
    service: &Arc<Service>,
    writer: &mut impl Write,
    frame: &mut FrameBuf,
    db: &str,
    op: &UpdateOp,
) -> io::Result<()> {
    match service.apply_update(db, op) {
        Ok(o) => {
            let renumbered = if o.summary.renumbered > 0 {
                format!(", {} node(s) renumbered", o.summary.renumbered)
            } else {
                String::new()
            };
            frame.write_ok(
                writer,
                &format!(
                    "updated {db}: epoch {}, +{}/-{} node(s){renumbered}, {} plan(s) and {} match entr(ies) carried",
                    o.entry.epoch(),
                    o.summary.nodes_added,
                    o.summary.nodes_removed,
                    o.plans_seeded,
                    o.matches_seeded
                ),
            )
        }
        Err(e) => write_err(writer, &e.to_string()),
    }
}

/// A parsed response frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// `OK` with the payload bytes (result text or metrics report).
    Ok(String),
    /// `ERR` with the message.
    Err(String),
}

/// Writes an `OK` frame.
pub fn write_ok(w: &mut impl Write, payload: &str) -> io::Result<()> {
    write!(w, "OK {}\n{payload}\n", payload.len())?;
    w.flush()
}

/// Per-connection reusable response buffer: the `OK <len>\n<payload>\n`
/// envelope is assembled here and handed to the writer as one
/// `write_all`, and the buffer's capacity is recycled across replies
/// instead of re-formatting each frame into fresh allocations. One
/// instance lives for the whole [`serve_connection`] loop, so a
/// connection's largest reply sizes the buffer once.
#[derive(Debug, Default)]
pub struct FrameBuf {
    buf: String,
}

impl FrameBuf {
    /// Empty buffer; grows to the connection's largest reply and stays.
    pub fn new() -> FrameBuf {
        FrameBuf::default()
    }

    /// Writes an `OK` frame through the reusable buffer.
    pub fn write_ok(&mut self, w: &mut impl Write, payload: &str) -> io::Result<()> {
        use std::fmt::Write as _;
        self.buf.clear();
        let _ = writeln!(self.buf, "OK {}", payload.len());
        self.buf.push_str(payload);
        self.buf.push('\n');
        w.write_all(self.buf.as_bytes())?;
        w.flush()
    }

    /// Bytes currently retained for reuse.
    pub fn capacity(&self) -> usize {
        self.buf.capacity()
    }
}

/// Writes an `ERR` frame; newlines in the message are flattened to keep the
/// frame single-line.
pub fn write_err(w: &mut impl Write, message: &str) -> io::Result<()> {
    let flat: String =
        message.chars().map(|c| if c == '\n' || c == '\r' { ' ' } else { c }).collect();
    writeln!(w, "ERR {flat}")?;
    w.flush()
}

/// Reads one response frame from the server.
pub fn read_response(r: &mut impl BufRead) -> io::Result<Frame> {
    let mut header = String::new();
    if r.read_line(&mut header)? == 0 {
        return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "connection closed"));
    }
    let header = header.trim_end_matches(['\n', '\r']);
    if let Some(rest) = header.strip_prefix("OK ") {
        let len: usize = rest
            .parse()
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "bad OK length"))?;
        let mut payload = vec![0u8; len + 1]; // payload + trailing newline
        r.read_exact(&mut payload)?;
        payload.pop();
        String::from_utf8(payload)
            .map(Frame::Ok)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "payload not UTF-8"))
    } else if let Some(msg) = header.strip_prefix("ERR ") {
        Ok(Frame::Err(msg.to_string()))
    } else {
        Err(io::Error::new(io::ErrorKind::InvalidData, format!("bad frame header: {header}")))
    }
}

/// Serves one connection: reads request lines until `.quit` or EOF,
/// answering each with a frame. Returns the number of queries served.
///
/// Every session starts on [`crate::catalog::DEFAULT_DB`]; `.open` and
/// `.use` move this session only.
pub fn serve_connection(
    service: &Arc<Service>,
    reader: &mut impl BufRead,
    writer: &mut impl Write,
) -> io::Result<u64> {
    let mut served = 0;
    let mut current = service.default_database().to_string();
    let mut line = String::new();
    let mut frame = FrameBuf::new();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Ok(served); // EOF
        }
        let request = line.trim();
        match request {
            "" => continue,
            ".quit" => return Ok(served),
            ".metrics" => frame.write_ok(writer, &service.metrics_report())?,
            ".catalog" => frame.write_ok(writer, &service.catalog_report())?,
            dot if dot.starts_with('.') => {
                let mut words = dot.split_whitespace();
                let cmd = words.next().expect("non-empty dot line");
                let args: Vec<&str> = words.collect();
                match (cmd, args.as_slice()) {
                    (".open", [name, file]) => match service.open(name, Path::new(file)) {
                        Ok(entry) => {
                            current = name.to_string();
                            let db = entry.database();
                            frame.write_ok(
                                writer,
                                &format!(
                                    "opened {name}: epoch {}, {} document(s), {} nodes",
                                    entry.epoch(),
                                    db.document_count(),
                                    db.node_count()
                                ),
                            )?;
                        }
                        Err(e) => write_err(writer, &e.to_string())?,
                    },
                    (".open", _) => write_err(writer, "usage: .open <name> <file>")?,
                    (".use", [name]) => {
                        if service.has_database(name) {
                            current = name.to_string();
                            frame.write_ok(writer, &format!("using {name}"))?;
                        } else {
                            write_err(writer, &format!("unknown database: {name}"))?;
                        }
                    }
                    (".use", _) => write_err(writer, "usage: .use <name>")?,
                    (".reload", rest @ ([] | [_])) => {
                        let name = rest.first().copied().unwrap_or(current.as_str()).to_string();
                        match service.reload(&name) {
                            Ok((entry, invalidated)) => frame.write_ok(
                                writer,
                                &format!(
                                    "reloaded {name}: epoch {}, {invalidated} plan(s) invalidated",
                                    entry.epoch()
                                ),
                            )?,
                            Err(e) => write_err(writer, &e.to_string())?,
                        }
                    }
                    (".reload", _) => write_err(writer, "usage: .reload [<name>]")?,
                    (".drop", [name]) => {
                        if *name == current {
                            write_err(
                                writer,
                                &format!(
                                    "cannot drop the session's current database {name:?}; .use another first"
                                ),
                            )?;
                        } else {
                            match service.drop_database(name) {
                                Ok((plans, entries)) => frame.write_ok(
                                    writer,
                                    &format!(
                                        "dropped {name}: {plans} plan(s), {entries} match entr(ies) purged"
                                    ),
                                )?,
                                Err(e) => write_err(writer, &e.to_string())?,
                            }
                        }
                    }
                    (".drop", _) => write_err(writer, "usage: .drop <name>")?,
                    (".insert", _) => {
                        let tail = dot.strip_prefix(".insert").expect("matched cmd");
                        match split_words(tail, 2) {
                            (head, xml) if head.len() == 2 && !xml.is_empty() => {
                                match head[1].parse::<u32>() {
                                    Ok(parent) => {
                                        let op = UpdateOp::Insert {
                                            doc: head[0].to_string(),
                                            parent,
                                            xml: xml.to_string(),
                                        };
                                        run_update(service, writer, &mut frame, &current, &op)?;
                                    }
                                    Err(_) => {
                                        write_err(writer, "parent must be a pre ordinal (u32)")?
                                    }
                                }
                            }
                            _ => write_err(
                                writer,
                                "usage: .insert <doc> <parent-ord> <xml-fragment>",
                            )?,
                        }
                    }
                    (".explain", _) => {
                        let tail = dot.strip_prefix(".explain").expect("matched cmd").trim_start();
                        if tail.is_empty() {
                            write_err(writer, "usage: .explain <query>")?;
                        } else {
                            match service.explain(&current, tail) {
                                Ok(report) => frame.write_ok(writer, &report)?,
                                Err(e) => write_err(writer, &e.to_string())?,
                            }
                        }
                    }
                    (".delete", [doc, ord]) => match ord.parse::<u32>() {
                        Ok(pre) => {
                            let op = UpdateOp::Delete { doc: doc.to_string(), pre };
                            run_update(service, writer, &mut frame, &current, &op)?;
                        }
                        Err(_) => write_err(writer, "ord must be a pre ordinal (u32)")?,
                    },
                    (".delete", _) => write_err(writer, "usage: .delete <doc> <ord>")?,
                    (".settext", _) => {
                        let tail = dot.strip_prefix(".settext").expect("matched cmd");
                        match split_words(tail, 2) {
                            (head, text) if head.len() == 2 => match head[1].parse::<u32>() {
                                Ok(pre) => {
                                    let op = UpdateOp::SetText {
                                        doc: head[0].to_string(),
                                        pre,
                                        text: text.to_string(),
                                    };
                                    run_update(service, writer, &mut frame, &current, &op)?;
                                }
                                Err(_) => write_err(writer, "ord must be a pre ordinal (u32)")?,
                            },
                            _ => write_err(writer, "usage: .settext <doc> <ord> [<text>]")?,
                        }
                    }
                    _ => write_err(writer, &format!("unknown command: {dot}"))?,
                }
            }
            query => {
                served += 1;
                match service.execute_on(&current, query) {
                    Ok(resp) => frame.write_ok(writer, &resp.output)?,
                    Err(e @ ServiceError::ShuttingDown) => {
                        write_err(writer, &e.to_string())?;
                        return Ok(served);
                    }
                    Err(e) => write_err(writer, &e.to_string())?,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ServiceConfig;
    use std::io::BufReader;

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_ok(&mut buf, "<name>Ann</name>").unwrap();
        write_err(&mut buf, "multi\nline message").unwrap();
        let mut r = BufReader::new(&buf[..]);
        assert_eq!(read_response(&mut r).unwrap(), Frame::Ok("<name>Ann</name>".into()));
        assert_eq!(read_response(&mut r).unwrap(), Frame::Err("multi line message".into()));
    }

    #[test]
    fn frame_buf_matches_write_ok_and_reuses_capacity() {
        let mut plain = Vec::new();
        write_ok(&mut plain, "<a>1</a>").unwrap();
        write_ok(&mut plain, "x\ny").unwrap();
        let mut pooled = Vec::new();
        let mut frame = FrameBuf::new();
        frame.write_ok(&mut pooled, "<a>1</a>").unwrap();
        let cap = frame.capacity();
        assert!(cap > 0);
        frame.write_ok(&mut pooled, "x\ny").unwrap();
        // Byte-identical wire format, and the second (smaller) frame reused
        // the first frame's buffer instead of allocating.
        assert_eq!(plain, pooled);
        assert_eq!(frame.capacity(), cap);
        let mut r = BufReader::new(&pooled[..]);
        assert_eq!(read_response(&mut r).unwrap(), Frame::Ok("<a>1</a>".into()));
        assert_eq!(read_response(&mut r).unwrap(), Frame::Ok("x\ny".into()));
    }

    #[test]
    fn ok_payload_may_contain_newlines() {
        let mut buf = Vec::new();
        write_ok(&mut buf, "a\nb\nc").unwrap();
        let mut r = BufReader::new(&buf[..]);
        assert_eq!(read_response(&mut r).unwrap(), Frame::Ok("a\nb\nc".into()));
    }

    #[test]
    fn serve_connection_speaks_the_protocol() {
        let db = Arc::new(xmark::auction_database(0.001));
        let svc = Arc::new(Service::new(db, ServiceConfig::default()));
        let script = concat!(
            "FOR $p IN document(\"auction.xml\")//person RETURN $p/name\n",
            "NOT A QUERY\n",
            ".metrics\n",
            ".bogus\n",
            ".quit\n",
            "never reached\n",
        );
        let mut reader = BufReader::new(script.as_bytes());
        let mut out = Vec::new();
        let served = serve_connection(&svc, &mut reader, &mut out).unwrap();
        assert_eq!(served, 2); // the query + the bad query; dot-commands don't count
        let mut r = BufReader::new(&out[..]);
        let direct = baselines::run(
            baselines::Engine::Tlc,
            "FOR $p IN document(\"auction.xml\")//person RETURN $p/name",
            &svc.database(),
        )
        .unwrap();
        assert_eq!(read_response(&mut r).unwrap(), Frame::Ok(direct));
        assert!(matches!(read_response(&mut r).unwrap(), Frame::Err(m) if m.contains("compile")));
        assert!(matches!(read_response(&mut r).unwrap(), Frame::Ok(m) if m.contains("plan cache")));
        assert!(
            matches!(read_response(&mut r).unwrap(), Frame::Err(m) if m.contains("unknown command"))
        );
    }

    #[test]
    fn session_commands_drive_the_catalog() {
        let db = Arc::new(xmark::auction_database(0.001));
        let svc = Arc::new(Service::new(db, ServiceConfig::default()));
        let dir = std::env::temp_dir();
        let file = dir.join(format!("tlc_proto_{}.xml", std::process::id()));
        std::fs::write(&file, "<site><person><name>Zoe</name></person></site>").unwrap();
        let q = "FOR $p IN document(\"auction.xml\")//person RETURN $p/name";
        let script = format!(
            ".open second {}\n{q}\n.use main\n.use nowhere\n.reload second\n.reload\n.catalog\n.open second\n.quit\n",
            file.display()
        );
        let mut reader = BufReader::new(script.as_bytes());
        let mut out = Vec::new();
        let served = serve_connection(&svc, &mut reader, &mut out).unwrap();
        assert_eq!(served, 1);
        let mut r = BufReader::new(&out[..]);
        // .open loads the file and switches the session.
        assert!(
            matches!(read_response(&mut r).unwrap(), Frame::Ok(m) if m.starts_with("opened second: epoch 0"))
        );
        // The query runs against `second`, not `main`.
        assert_eq!(read_response(&mut r).unwrap(), Frame::Ok("<name>Zoe</name>".into()));
        assert_eq!(read_response(&mut r).unwrap(), Frame::Ok("using main".into()));
        assert!(
            matches!(read_response(&mut r).unwrap(), Frame::Err(m) if m.contains("unknown database"))
        );
        // Explicit reload of `second` bumps its epoch.
        assert!(
            matches!(read_response(&mut r).unwrap(), Frame::Ok(m) if m.starts_with("reloaded second: epoch 1"))
        );
        // Bare .reload targets the current db (`main`), which has no source.
        assert!(
            matches!(read_response(&mut r).unwrap(), Frame::Err(m) if m.contains("nothing to reload"))
        );
        assert!(
            matches!(read_response(&mut r).unwrap(), Frame::Ok(m) if m.contains("catalog: 2 database(s)"))
        );
        assert_eq!(read_response(&mut r).unwrap(), Frame::Err("usage: .open <name> <file>".into()));
        std::fs::remove_file(&file).ok();
    }

    #[test]
    fn update_commands_mutate_the_current_database() {
        let db = Arc::new(xmark::auction_database(0.001));
        let svc = Arc::new(Service::new(db, ServiceConfig::default()));
        let people = svc.database().nodes_with_tag("person").to_vec();
        assert!(people.len() >= 2, "scale 0.001 must have at least two persons");
        // The first <name> in document order after person[0] is its child
        // (xmark uses <name> under categories and items too).
        let name = *svc
            .database()
            .nodes_with_tag("name")
            .iter()
            .find(|n| n.pre > people[0].pre)
            .expect("person has a name");
        let script = format!(
            concat!(
                ".insert auction.xml {} <memo>hello world</memo>\n",
                "FOR $m IN document(\"auction.xml\")//memo RETURN $m\n",
                ".settext auction.xml {} Renamed\n",
                ".delete auction.xml {}\n",
                "FOR $p IN document(\"auction.xml\")//person RETURN $p/name\n",
                ".delete auction.xml abc\n",
                ".insert auction.xml 1\n",
                ".settext auction.xml\n",
                ".quit\n",
            ),
            people[0].pre, name.pre, people[1].pre
        );
        let mut reader = BufReader::new(script.as_bytes());
        let mut out = Vec::new();
        serve_connection(&svc, &mut reader, &mut out).unwrap();
        let mut r = BufReader::new(&out[..]);
        // Insert commits epoch 1; the fragment keeps its inner space.
        assert!(
            matches!(read_response(&mut r).unwrap(), Frame::Ok(m) if m.starts_with("updated main: epoch 1"))
        );
        assert_eq!(read_response(&mut r).unwrap(), Frame::Ok("<memo>hello world</memo>".into()));
        assert!(
            matches!(read_response(&mut r).unwrap(), Frame::Ok(m) if m.starts_with("updated main: epoch 2"))
        );
        assert!(
            matches!(read_response(&mut r).unwrap(), Frame::Ok(m) if m.starts_with("updated main: epoch 3"))
        );
        // The surviving person list reflects both the rename and the delete.
        match read_response(&mut r).unwrap() {
            Frame::Ok(m) => assert!(m.contains("<name>Renamed</name>"), "{m}"),
            other => panic!("expected name list, got {other:?}"),
        }
        assert_eq!(
            read_response(&mut r).unwrap(),
            Frame::Err("ord must be a pre ordinal (u32)".into())
        );
        assert_eq!(
            read_response(&mut r).unwrap(),
            Frame::Err("usage: .insert <doc> <parent-ord> <xml-fragment>".into())
        );
        assert_eq!(
            read_response(&mut r).unwrap(),
            Frame::Err("usage: .settext <doc> <ord> [<text>]".into())
        );
        // Three committed updates, each its own epoch.
        assert_eq!(svc.databases()[0].epoch, 3);
    }

    #[test]
    fn explain_command_reports_plan_and_lints() {
        let db = Arc::new(xmark::auction_database(0.001));
        let svc = Arc::new(Service::new(db, ServiceConfig::default()));
        let script = concat!(
            // absent tag on a required path → statically empty
            ".explain FOR $z IN document(\"auction.xml\")//zzz RETURN $z\n",
            // single-variable FOR → the translator's DupElim is a no-op
            ".explain FOR $s IN document(\"auction.xml\")/site RETURN $s\n",
            // $n is bound but never returned → dead Project column
            ".explain FOR $p IN document(\"auction.xml\")//person LET $n := $p/name RETURN <r>{$p/age}</r>\n",
            ".explain\n",
            ".explain NOT A QUERY\n",
            ".metrics\n",
            ".quit\n",
        );
        let mut reader = BufReader::new(script.as_bytes());
        let mut out = Vec::new();
        let served = serve_connection(&svc, &mut reader, &mut out).unwrap();
        assert_eq!(served, 0, ".explain compiles but never executes");
        let mut r = BufReader::new(&out[..]);
        match read_response(&mut r).unwrap() {
            Frame::Ok(m) => {
                assert!(m.contains("== plan"), "{m}");
                assert!(m.contains("== footprint =="), "{m}");
                assert!(m.contains("== ir =="), "{m}");
                assert!(m.contains("warning[empty-select]"), "{m}");
                assert!(m.contains("statically empty"), "{m}");
            }
            other => panic!("expected explain report, got {other:?}"),
        }
        match read_response(&mut r).unwrap() {
            Frame::Ok(m) => {
                assert!(m.contains("warning[redundant-dupelim]"), "{m}");
                assert!(m.contains("DupElim(s) removed"), "{m}");
            }
            other => panic!("expected explain report, got {other:?}"),
        }
        match read_response(&mut r).unwrap() {
            Frame::Ok(m) => {
                assert!(m.contains("warning[dead-project-column]"), "{m}");
            }
            other => panic!("expected explain report, got {other:?}"),
        }
        assert_eq!(read_response(&mut r).unwrap(), Frame::Err("usage: .explain <query>".into()));
        assert!(matches!(read_response(&mut r).unwrap(), Frame::Err(m) if m.contains("compile")));
        // The analyses feed the per-db metrics counters.
        match read_response(&mut r).unwrap() {
            Frame::Ok(m) => assert!(m.contains("lint(s) raised"), "{m}"),
            other => panic!("expected metrics report, got {other:?}"),
        }
    }

    #[test]
    fn drop_command_guards_current_and_default_databases() {
        let db = Arc::new(xmark::auction_database(0.001));
        let svc = Arc::new(Service::new(db, ServiceConfig::default()));
        let dir = std::env::temp_dir();
        let file = dir.join(format!("tlc_proto_drop_{}.xml", std::process::id()));
        std::fs::write(&file, "<site><person><name>Zoe</name></person></site>").unwrap();
        let script = format!(
            ".open doomed {0}\n.drop doomed\n.use main\n.drop doomed\n.drop main\n.drop\n.quit\n",
            file.display()
        );
        let mut reader = BufReader::new(script.as_bytes());
        let mut out = Vec::new();
        serve_connection(&svc, &mut reader, &mut out).unwrap();
        let mut r = BufReader::new(&out[..]);
        assert!(
            matches!(read_response(&mut r).unwrap(), Frame::Ok(m) if m.starts_with("opened doomed"))
        );
        // .open switched the session to `doomed`, so dropping it is refused.
        assert!(
            matches!(read_response(&mut r).unwrap(), Frame::Err(m) if m.contains("current database"))
        );
        assert_eq!(read_response(&mut r).unwrap(), Frame::Ok("using main".into()));
        // Off the session now: the drop succeeds and reports the purge.
        assert!(
            matches!(read_response(&mut r).unwrap(), Frame::Ok(m) if m.starts_with("dropped doomed"))
        );
        // `main` is both current and default; either guard refuses it.
        assert!(matches!(read_response(&mut r).unwrap(), Frame::Err(_)));
        assert_eq!(read_response(&mut r).unwrap(), Frame::Err("usage: .drop <name>".into()));
        assert!(!svc.has_database("doomed"));
        std::fs::remove_file(&file).ok();
    }
}
