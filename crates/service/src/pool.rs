//! The worker pool: bounded admission, channel dispatch, clean shutdown.
//!
//! Requests flow through a bounded `sync_channel`; `try_send` at admission
//! means a full queue rejects immediately ([`crate::ServiceError::Overloaded`])
//! instead of building an unbounded backlog — the service degrades by
//! shedding load, not by growing latency without limit.
//!
//! Each worker is a plain `std::thread` looping over the shared receiver
//! (taken through a `Mutex`, the classic std work-queue shape). A worker
//! picks a job up, re-checks the job's deadline (time spent queued counts
//! against it), runs the closure, and sends the result back over the job's
//! private reply channel. Deadline aborts inside execution are cooperative
//! (see `tlc::exec`), so a timed-out request returns a typed error and the
//! worker moves on — nothing is left wedged.
//!
//! Dropping the pool closes the job channel; workers drain what was already
//! admitted and exit, and `Drop` joins them all.
//!
//! **Abandonment.** The reply channel is a `sync_channel(1)`, so a worker's
//! send always succeeds (or observes disconnection) without blocking: a
//! caller that gave up waiting ([`crate::ServiceConfig::client_wait`]) and
//! dropped its receiver costs the worker nothing — the job's result is
//! discarded and the worker moves to the next job. Abandonment is a
//! client-side decision; the pool itself never cancels running work.

use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A unit of queued work: a closure producing a `T`, the reply slot, the
/// request's absolute deadline (checked again at dequeue), and the admission
/// timestamp the queue-wait measurement is taken from.
struct Job<T> {
    deadline: Option<Instant>,
    submitted: Instant,
    work: Box<dyn FnOnce() -> T + Send>,
    reply: SyncSender<Reply<T>>,
}

/// What the worker sends back. Every reply carries the measured
/// submit→dequeue wait, so the service can report queue pressure separately
/// from execution latency.
pub enum Reply<T> {
    /// The closure's result.
    Done {
        /// The closure's return value.
        value: T,
        /// How long the job sat in the queue before a worker picked it up.
        queue_wait: Duration,
    },
    /// The deadline had already passed when the job was dequeued; the
    /// closure never ran.
    ExpiredInQueue {
        /// How long the job sat in the queue before expiry was noticed.
        queue_wait: Duration,
    },
}

/// Why a submission failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The admission queue is at capacity.
    QueueFull,
    /// The pool is shutting down.
    Disconnected,
}

/// Fixed-size worker pool over a bounded job queue.
pub struct Pool<T: Send + 'static> {
    tx: Option<SyncSender<Job<T>>>,
    workers: Vec<JoinHandle<()>>,
}

impl<T: Send + 'static> Pool<T> {
    /// Spawns `workers` threads behind a queue admitting at most
    /// `queue_depth` waiting jobs.
    pub fn new(workers: usize, queue_depth: usize) -> Pool<T> {
        let (tx, rx) = sync_channel::<Job<T>>(queue_depth.max(1));
        let rx = Arc::new(Mutex::new(rx));
        let handles = (0..workers.max(1))
            .map(|i| {
                let rx = Arc::clone(&rx);
                std::thread::Builder::new()
                    .name(format!("tlc-service-worker-{i}"))
                    .spawn(move || worker_loop(rx))
                    .expect("spawn worker thread")
            })
            .collect();
        Pool { tx: Some(tx), workers: handles }
    }

    /// Queues `work`; returns the reply channel to block on. Fails fast if
    /// the queue is full.
    pub fn submit(
        &self,
        deadline: Option<Instant>,
        work: Box<dyn FnOnce() -> T + Send>,
    ) -> Result<Receiver<Reply<T>>, SubmitError> {
        let (reply_tx, reply_rx) = sync_channel(1);
        let job = Job { deadline, submitted: Instant::now(), work, reply: reply_tx };
        match self.tx.as_ref().expect("pool alive").try_send(job) {
            Ok(()) => Ok(reply_rx),
            Err(TrySendError::Full(_)) => Err(SubmitError::QueueFull),
            Err(TrySendError::Disconnected(_)) => Err(SubmitError::Disconnected),
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }
}

impl<T: Send + 'static> Drop for Pool<T> {
    fn drop(&mut self) {
        // Closing the channel ends the worker loops once the queue drains.
        drop(self.tx.take());
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop<T>(rx: Arc<Mutex<Receiver<Job<T>>>>) {
    loop {
        let job = match rx.lock().unwrap().recv() {
            Ok(j) => j,
            Err(_) => return, // channel closed: shut down
        };
        let queue_wait = job.submitted.elapsed();
        let reply = match job.deadline {
            Some(d) if Instant::now() >= d => Reply::ExpiredInQueue { queue_wait },
            _ => Reply::Done { value: (job.work)(), queue_wait },
        };
        // The requester may have given up (e.g. its own recv timeout);
        // a dead reply channel is not a worker error.
        let _ = job.reply.send(reply);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn executes_submitted_work() {
        let pool: Pool<i32> = Pool::new(2, 8);
        let rx = pool.submit(None, Box::new(|| 40 + 2)).unwrap();
        match rx.recv().unwrap() {
            Reply::Done { value, queue_wait } => {
                assert_eq!(value, 42);
                assert!(queue_wait < Duration::from_secs(5));
            }
            Reply::ExpiredInQueue { .. } => panic!("no deadline was set"),
        }
    }

    #[test]
    fn full_queue_rejects_immediately() {
        // One worker, queue depth 1: park the worker, fill the queue, then
        // the next submit must be rejected.
        let pool: Pool<()> = Pool::new(1, 1);
        let (block_tx, block_rx) = sync_channel::<()>(0);
        let _busy = pool
            .submit(
                None,
                Box::new(move || {
                    let _ = block_rx.recv();
                }),
            )
            .unwrap();
        // Wait for the worker to pick the blocking job up, then fill the queue.
        std::thread::sleep(Duration::from_millis(50));
        let _queued = pool.submit(None, Box::new(|| ())).unwrap();
        let rejected = pool.submit(None, Box::new(|| ()));
        assert_eq!(rejected.unwrap_err(), SubmitError::QueueFull);
        block_tx.send(()).unwrap();
    }

    #[test]
    fn queued_past_deadline_never_runs() {
        let pool: Pool<i32> = Pool::new(1, 4);
        let past = Instant::now() - Duration::from_millis(1);
        let rx = pool.submit(Some(past), Box::new(|| panic!("must not run"))).unwrap();
        assert!(matches!(rx.recv().unwrap(), Reply::ExpiredInQueue { .. }));
    }

    #[test]
    fn drop_joins_workers_cleanly() {
        let pool: Pool<u64> = Pool::new(4, 16);
        let receivers: Vec<_> =
            (0..8).map(|i| pool.submit(None, Box::new(move || i)).unwrap()).collect();
        drop(pool); // drains the queue, joins the threads
        for (i, rx) in receivers.into_iter().enumerate() {
            match rx.recv().unwrap() {
                Reply::Done { value, .. } => assert_eq!(value, i as u64),
                Reply::ExpiredInQueue { .. } => panic!("no deadline"),
            }
        }
    }

    #[test]
    fn worker_survives_an_abandoned_reply_channel() {
        // The caller drops its receiver before the job runs — the deadlock
        // risk a rendezvous reply channel would have. The worker must shrug
        // and keep serving.
        let pool: Pool<i32> = Pool::new(1, 4);
        let (block_tx, block_rx) = sync_channel::<()>(0);
        let gate = pool
            .submit(
                None,
                Box::new(move || {
                    let _ = block_rx.recv();
                    0
                }),
            )
            .unwrap();
        std::thread::sleep(Duration::from_millis(20)); // worker is now parked in the gate job
        let abandoned = pool.submit(None, Box::new(|| 7)).unwrap();
        drop(abandoned); // caller gives up while the job is still queued
        block_tx.send(()).unwrap(); // release the worker: it runs the abandoned job next
        drop(gate);
        // The same (sole) worker still answers later submissions.
        let rx = pool.submit(None, Box::new(|| 99)).unwrap();
        match rx.recv_timeout(Duration::from_secs(10)).unwrap() {
            Reply::Done { value, .. } => assert_eq!(value, 99),
            Reply::ExpiredInQueue { .. } => panic!("no deadline"),
        }
    }

    #[test]
    fn queue_wait_reflects_time_spent_queued() {
        // One busy worker: the second job must wait for the first to finish,
        // and its reported queue wait must cover that delay.
        let pool: Pool<()> = Pool::new(1, 4);
        let _busy =
            pool.submit(None, Box::new(|| std::thread::sleep(Duration::from_millis(60)))).unwrap();
        std::thread::sleep(Duration::from_millis(10)); // let the worker pick it up
        let rx = pool.submit(None, Box::new(|| ())).unwrap();
        match rx.recv().unwrap() {
            Reply::Done { queue_wait, .. } => {
                assert!(queue_wait >= Duration::from_millis(30), "waited only {queue_wait:?}");
            }
            Reply::ExpiredInQueue { .. } => panic!("no deadline"),
        }
    }
}
