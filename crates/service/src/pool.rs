//! The worker pool: bounded admission, batch-aware dispatch, clean shutdown.
//!
//! Requests wait in a bounded `VecDeque` behind a `Mutex` + `Condvar`; a
//! full queue rejects at admission ([`crate::ServiceError::Overloaded`])
//! instead of building an unbounded backlog — the service degrades by
//! shedding load, not by growing latency without limit.
//!
//! **Batching.** Each job may carry an opaque *group* key (the service uses
//! `(database, epoch)`). When a worker wakes it pops the front job and, if
//! batching is enabled (`batch_max > 1`), additionally extracts up to
//! `batch_max - 1` *same-group* jobs from anywhere in the queue, leaving
//! other groups in place and in order. The batch runs on that one worker
//! back to back, so consecutive executions share whatever per-snapshot
//! state warms between them — in this service the epoch-keyed match cache
//! and the CPU caches over one snapshot's index postings. Grouping never
//! delays admission or reorders jobs *within* a group, and a job's deadline
//! is still re-checked when its turn in the batch comes (time spent queued
//! and time spent behind batch-mates both count against it).
//!
//! Each worker is a plain `std::thread`. Deadline aborts inside execution
//! are cooperative (see `tlc::exec`), so a timed-out request returns a
//! typed error and the worker moves on — nothing is left wedged.
//!
//! Dropping the pool closes admission; workers drain what was already
//! admitted and exit, and `Drop` joins them all.
//!
//! **Abandonment.** The reply channel is a `sync_channel(1)`, so a worker's
//! send always succeeds (or observes disconnection) without blocking: a
//! caller that gave up waiting ([`crate::ServiceConfig::client_wait`]) and
//! dropped its receiver costs the worker nothing — the job's result is
//! discarded and the worker moves to the next job. Abandonment is a
//! client-side decision; the pool itself never cancels running work.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A unit of queued work: a closure producing a `T`, the reply slot, the
/// request's absolute deadline (checked again at dequeue), the admission
/// timestamp the queue-wait measurement is taken from, and the batching
/// group it may share a dispatch with.
struct Job<T> {
    deadline: Option<Instant>,
    submitted: Instant,
    group: Option<Arc<str>>,
    work: Box<dyn FnOnce() -> T + Send>,
    reply: SyncSender<Reply<T>>,
}

/// What the worker sends back. Every reply carries the measured
/// submit→dequeue wait, so the service can report queue pressure separately
/// from execution latency.
pub enum Reply<T> {
    /// The closure's result.
    Done {
        /// The closure's return value.
        value: T,
        /// How long the job sat in the queue before a worker picked it up.
        queue_wait: Duration,
    },
    /// The deadline had already passed when the job was dequeued; the
    /// closure never ran.
    ExpiredInQueue {
        /// How long the job sat in the queue before expiry was noticed.
        queue_wait: Duration,
    },
}

/// Why a submission failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The admission queue is at capacity.
    QueueFull,
    /// The pool is shutting down.
    Disconnected,
}

/// Cumulative dispatch counters; read through [`Pool::batch_stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Dispatches performed (each runs one or more jobs on one worker).
    pub batches: u64,
    /// Jobs run across all dispatches.
    pub jobs: u64,
    /// Largest batch dispatched so far.
    pub max_batch: u64,
}

/// Cumulative shard-admission counters; read through [`Pool::shard_stats`].
/// A *wave* is one [`Pool::submit_shards`] call — the shard jobs of one
/// request admitted atomically.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Shard waves admitted.
    pub waves: u64,
    /// Shard jobs admitted across all waves.
    pub jobs: u64,
    /// Largest wave admitted so far.
    pub max_wave: u64,
    /// Waves rejected whole because the queue could not take every job
    /// (the caller falls back to sequential execution).
    pub rejected_waves: u64,
}

struct State<T> {
    jobs: VecDeque<Job<T>>,
    open: bool,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    available: Condvar,
    batch_max: usize,
    batches: AtomicU64,
    batched_jobs: AtomicU64,
    max_batch: AtomicU64,
    shard_waves: AtomicU64,
    shard_jobs: AtomicU64,
    max_wave: AtomicU64,
    shard_rejected: AtomicU64,
}

/// Fixed-size worker pool over a bounded job queue with same-group
/// batch dispatch.
pub struct Pool<T: Send + 'static> {
    shared: Arc<Shared<T>>,
    queue_depth: usize,
    workers: Vec<JoinHandle<()>>,
}

impl<T: Send + 'static> Pool<T> {
    /// Spawns `workers` threads behind a queue admitting at most
    /// `queue_depth` waiting jobs, dispatching one job at a time.
    pub fn new(workers: usize, queue_depth: usize) -> Pool<T> {
        Pool::batched(workers, queue_depth, 1)
    }

    /// Like [`Pool::new`], but a worker picking up a job also claims up to
    /// `batch_max - 1` queued jobs of the same group and runs them back to
    /// back. `batch_max` ≤ 1 disables batching.
    pub fn batched(workers: usize, queue_depth: usize, batch_max: usize) -> Pool<T> {
        let shared = Arc::new(Shared {
            state: Mutex::new(State { jobs: VecDeque::new(), open: true }),
            available: Condvar::new(),
            batch_max: batch_max.max(1),
            batches: AtomicU64::new(0),
            batched_jobs: AtomicU64::new(0),
            max_batch: AtomicU64::new(0),
            shard_waves: AtomicU64::new(0),
            shard_jobs: AtomicU64::new(0),
            max_wave: AtomicU64::new(0),
            shard_rejected: AtomicU64::new(0),
        });
        let handles = (0..workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("tlc-service-worker-{i}"))
                    .spawn(move || worker_loop(shared))
                    .expect("spawn worker thread")
            })
            .collect();
        Pool { shared, queue_depth: queue_depth.max(1), workers: handles }
    }

    /// Queues `work` with no batching group; returns the reply channel to
    /// block on. Fails fast if the queue is full.
    pub fn submit(
        &self,
        deadline: Option<Instant>,
        work: Box<dyn FnOnce() -> T + Send>,
    ) -> Result<Receiver<Reply<T>>, SubmitError> {
        self.submit_grouped(deadline, None, work)
    }

    /// Queues `work` under an optional batching `group` (jobs sharing a
    /// group may be dispatched together); returns the reply channel to
    /// block on. Fails fast if the queue is full.
    pub fn submit_grouped(
        &self,
        deadline: Option<Instant>,
        group: Option<Arc<str>>,
        work: Box<dyn FnOnce() -> T + Send>,
    ) -> Result<Receiver<Reply<T>>, SubmitError> {
        let (reply_tx, reply_rx) = sync_channel(1);
        let job = Job { deadline, submitted: Instant::now(), group, work, reply: reply_tx };
        {
            let mut st = self.shared.state.lock().unwrap();
            if !st.open {
                return Err(SubmitError::Disconnected);
            }
            if st.jobs.len() >= self.queue_depth {
                return Err(SubmitError::QueueFull);
            }
            st.jobs.push_back(job);
        }
        self.shared.available.notify_one();
        Ok(reply_rx)
    }

    /// Queues one request's shard jobs **atomically**: either every job is
    /// admitted (in order, as one contiguous run) or none is and the whole
    /// wave is rejected with [`SubmitError::QueueFull`] — a partially
    /// admitted wave would wedge its caller, which must await every shard
    /// before it can merge. All jobs share `group`, so batch-aware dispatch
    /// lets one worker claim several shards of the same request back to
    /// back instead of interleaving unrelated work between them.
    pub fn submit_shards(
        &self,
        deadline: Option<Instant>,
        group: Option<Arc<str>>,
        works: Vec<Box<dyn FnOnce() -> T + Send>>,
    ) -> Result<Vec<Receiver<Reply<T>>>, SubmitError> {
        let submitted = Instant::now();
        let mut receivers = Vec::with_capacity(works.len());
        let mut jobs = Vec::with_capacity(works.len());
        for work in works {
            let (reply_tx, reply_rx) = sync_channel(1);
            receivers.push(reply_rx);
            jobs.push(Job { deadline, submitted, group: group.clone(), work, reply: reply_tx });
        }
        {
            let mut st = self.shared.state.lock().unwrap();
            if !st.open {
                return Err(SubmitError::Disconnected);
            }
            if st.jobs.len() + jobs.len() > self.queue_depth {
                self.shared.shard_rejected.fetch_add(1, Ordering::Relaxed);
                return Err(SubmitError::QueueFull);
            }
            let n = jobs.len() as u64;
            self.shared.shard_waves.fetch_add(1, Ordering::Relaxed);
            self.shared.shard_jobs.fetch_add(n, Ordering::Relaxed);
            self.shared.max_wave.fetch_max(n, Ordering::Relaxed);
            st.jobs.extend(jobs);
        }
        self.shared.available.notify_all();
        Ok(receivers)
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Cumulative dispatch counters.
    pub fn batch_stats(&self) -> BatchStats {
        BatchStats {
            batches: self.shared.batches.load(Ordering::Relaxed),
            jobs: self.shared.batched_jobs.load(Ordering::Relaxed),
            max_batch: self.shared.max_batch.load(Ordering::Relaxed),
        }
    }

    /// Cumulative shard-admission counters.
    pub fn shard_stats(&self) -> ShardStats {
        ShardStats {
            waves: self.shared.shard_waves.load(Ordering::Relaxed),
            jobs: self.shared.shard_jobs.load(Ordering::Relaxed),
            max_wave: self.shared.max_wave.load(Ordering::Relaxed),
            rejected_waves: self.shared.shard_rejected.load(Ordering::Relaxed),
        }
    }
}

impl<T: Send + 'static> Drop for Pool<T> {
    fn drop(&mut self) {
        // Closing admission ends the worker loops once the queue drains.
        self.shared.state.lock().unwrap().open = false;
        self.shared.available.notify_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

/// Cumulative arena-recycling counters; read through [`ArenaPool::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArenaPoolStats {
    /// Arenas handed out (recycled and fresh combined).
    pub checkouts: u64,
    /// Checkouts served by resetting a previously restored arena.
    pub reuses: u64,
    /// Arenas dropped instead of recycled: failed or cancelled jobs (see
    /// [`ArenaPool::discard`]) plus restores past the pool's capacity.
    pub discards: u64,
}

/// Recycles [`tlc::ExecArena`]s across requests and shard jobs.
///
/// Reset, don't free: a restored arena keeps its parked buffers, so one
/// request's allocations become the next request's capacity. Every job —
/// sequential request or single shard of a wave — checks out its own
/// arena, which keeps sibling shards allocation-disjoint (the PR 9
/// byte-identity argument never sees the arena). Jobs that fail or are
/// cancelled must [`ArenaPool::discard`] instead of restoring: their
/// arena died with the job's context and is never reused.
///
/// A `limit_bytes` of 0 disables recycling entirely — checkouts hand out
/// [`tlc::ExecArena::disabled`] instances, reproducing the seed
/// allocation behavior (the `--arena-kb 0` escape hatch).
pub struct ArenaPool {
    limit_bytes: usize,
    /// Most arenas kept parked; sized to the worker count, since at most
    /// that many jobs run (and restore) concurrently.
    capacity: usize,
    free: Mutex<Vec<tlc::ExecArena>>,
    checkouts: AtomicU64,
    reuses: AtomicU64,
    discards: AtomicU64,
}

impl ArenaPool {
    /// A pool handing out arenas capped at `limit_bytes` retained bytes,
    /// parking at most `capacity` of them between jobs.
    pub fn new(limit_bytes: usize, capacity: usize) -> ArenaPool {
        ArenaPool {
            limit_bytes,
            capacity: capacity.max(1),
            free: Mutex::new(Vec::new()),
            checkouts: AtomicU64::new(0),
            reuses: AtomicU64::new(0),
            discards: AtomicU64::new(0),
        }
    }

    /// An arena for one job, plus whether it was recycled (reset) rather
    /// than freshly built.
    pub fn checkout(&self) -> (tlc::ExecArena, bool) {
        self.checkouts.fetch_add(1, Ordering::Relaxed);
        if self.limit_bytes == 0 {
            return (tlc::ExecArena::disabled(), false);
        }
        match self.free.lock().unwrap().pop() {
            Some(mut arena) => {
                arena.reset();
                self.reuses.fetch_add(1, Ordering::Relaxed);
                (arena, true)
            }
            None => (tlc::ExecArena::with_limit(self.limit_bytes), false),
        }
    }

    /// Returns a successful job's arena for reuse. Past capacity (or with
    /// recycling disabled) the arena is dropped and counted as a discard.
    pub fn restore(&self, arena: tlc::ExecArena) {
        if self.limit_bytes > 0 {
            let mut free = self.free.lock().unwrap();
            if free.len() < self.capacity {
                free.push(arena);
                return;
            }
        }
        self.discards.fetch_add(1, Ordering::Relaxed);
    }

    /// Records that a job's arena died with it (error, cancellation, or
    /// deadline expiry) — the no-reuse-after-failure rule.
    pub fn discard(&self) {
        self.discards.fetch_add(1, Ordering::Relaxed);
    }

    /// Cumulative recycling counters.
    pub fn stats(&self) -> ArenaPoolStats {
        ArenaPoolStats {
            checkouts: self.checkouts.load(Ordering::Relaxed),
            reuses: self.reuses.load(Ordering::Relaxed),
            discards: self.discards.load(Ordering::Relaxed),
        }
    }

    /// The retained-byte cap of every arena this pool hands out.
    pub fn limit_bytes(&self) -> usize {
        self.limit_bytes
    }
}

fn worker_loop<T>(shared: Arc<Shared<T>>) {
    loop {
        let mut batch = {
            let mut st = shared.state.lock().unwrap();
            loop {
                if let Some(first) = st.jobs.pop_front() {
                    let mut batch = vec![first];
                    if shared.batch_max > 1 {
                        if let Some(group) = batch[0].group.clone() {
                            // Claim same-group jobs from anywhere in the
                            // queue; other groups keep their positions.
                            let mut i = 0;
                            while i < st.jobs.len() && batch.len() < shared.batch_max {
                                if st.jobs[i].group.as_deref() == Some(&*group) {
                                    batch.push(st.jobs.remove(i).expect("index in bounds"));
                                } else {
                                    i += 1;
                                }
                            }
                        }
                    }
                    break batch;
                }
                if !st.open {
                    return; // queue drained and admission closed: shut down
                }
                st = shared.available.wait(st).unwrap();
            }
        };
        shared.batches.fetch_add(1, Ordering::Relaxed);
        shared.batched_jobs.fetch_add(batch.len() as u64, Ordering::Relaxed);
        shared.max_batch.fetch_max(batch.len() as u64, Ordering::Relaxed);
        for job in batch.drain(..) {
            let queue_wait = job.submitted.elapsed();
            let reply = match job.deadline {
                Some(d) if Instant::now() >= d => Reply::ExpiredInQueue { queue_wait },
                _ => Reply::Done { value: (job.work)(), queue_wait },
            };
            // The requester may have given up (e.g. its own recv timeout);
            // a dead reply channel is not a worker error.
            let _ = job.reply.send(reply);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn executes_submitted_work() {
        let pool: Pool<i32> = Pool::new(2, 8);
        let rx = pool.submit(None, Box::new(|| 40 + 2)).unwrap();
        match rx.recv().unwrap() {
            Reply::Done { value, queue_wait } => {
                assert_eq!(value, 42);
                assert!(queue_wait < Duration::from_secs(5));
            }
            Reply::ExpiredInQueue { .. } => panic!("no deadline was set"),
        }
        let s = pool.batch_stats();
        assert_eq!((s.batches, s.jobs, s.max_batch), (1, 1, 1));
    }

    #[test]
    fn full_queue_rejects_immediately() {
        // One worker, queue depth 1: park the worker, fill the queue, then
        // the next submit must be rejected.
        let pool: Pool<()> = Pool::new(1, 1);
        let (block_tx, block_rx) = sync_channel::<()>(0);
        let _busy = pool
            .submit(
                None,
                Box::new(move || {
                    let _ = block_rx.recv();
                }),
            )
            .unwrap();
        // Wait for the worker to pick the blocking job up, then fill the queue.
        std::thread::sleep(Duration::from_millis(50));
        let _queued = pool.submit(None, Box::new(|| ())).unwrap();
        let rejected = pool.submit(None, Box::new(|| ()));
        assert_eq!(rejected.unwrap_err(), SubmitError::QueueFull);
        block_tx.send(()).unwrap();
    }

    #[test]
    fn queued_past_deadline_never_runs() {
        let pool: Pool<i32> = Pool::new(1, 4);
        let past = Instant::now() - Duration::from_millis(1);
        let rx = pool.submit(Some(past), Box::new(|| panic!("must not run"))).unwrap();
        assert!(matches!(rx.recv().unwrap(), Reply::ExpiredInQueue { .. }));
    }

    #[test]
    fn drop_joins_workers_cleanly() {
        let pool: Pool<u64> = Pool::new(4, 16);
        let receivers: Vec<_> =
            (0..8).map(|i| pool.submit(None, Box::new(move || i)).unwrap()).collect();
        drop(pool); // drains the queue, joins the threads
        for (i, rx) in receivers.into_iter().enumerate() {
            match rx.recv().unwrap() {
                Reply::Done { value, .. } => assert_eq!(value, i as u64),
                Reply::ExpiredInQueue { .. } => panic!("no deadline"),
            }
        }
    }

    #[test]
    fn worker_survives_an_abandoned_reply_channel() {
        // The caller drops its receiver before the job runs — the deadlock
        // risk a rendezvous reply channel would have. The worker must shrug
        // and keep serving.
        let pool: Pool<i32> = Pool::new(1, 4);
        let (block_tx, block_rx) = sync_channel::<()>(0);
        let gate = pool
            .submit(
                None,
                Box::new(move || {
                    let _ = block_rx.recv();
                    0
                }),
            )
            .unwrap();
        std::thread::sleep(Duration::from_millis(20)); // worker is now parked in the gate job
        let abandoned = pool.submit(None, Box::new(|| 7)).unwrap();
        drop(abandoned); // caller gives up while the job is still queued
        block_tx.send(()).unwrap(); // release the worker: it runs the abandoned job next
        drop(gate);
        // The same (sole) worker still answers later submissions.
        let rx = pool.submit(None, Box::new(|| 99)).unwrap();
        match rx.recv_timeout(Duration::from_secs(10)).unwrap() {
            Reply::Done { value, .. } => assert_eq!(value, 99),
            Reply::ExpiredInQueue { .. } => panic!("no deadline"),
        }
    }

    #[test]
    fn queue_wait_reflects_time_spent_queued() {
        // One busy worker: the second job must wait for the first to finish,
        // and its reported queue wait must cover that delay.
        let pool: Pool<()> = Pool::new(1, 4);
        let _busy =
            pool.submit(None, Box::new(|| std::thread::sleep(Duration::from_millis(60)))).unwrap();
        std::thread::sleep(Duration::from_millis(10)); // let the worker pick it up
        let rx = pool.submit(None, Box::new(|| ())).unwrap();
        match rx.recv().unwrap() {
            Reply::Done { queue_wait, .. } => {
                assert!(queue_wait >= Duration::from_millis(30), "waited only {queue_wait:?}");
            }
            Reply::ExpiredInQueue { .. } => panic!("no deadline"),
        }
    }

    #[test]
    fn same_group_jobs_dispatch_as_one_batch() {
        // One worker parked in a gate job; queue six jobs alternating
        // between two groups; when the worker frees up, each dispatch must
        // claim all same-group jobs (up to batch_max) in one go.
        let pool: Pool<usize> = Pool::batched(1, 16, 8);
        let (block_tx, block_rx) = sync_channel::<()>(0);
        let _gate = pool
            .submit(
                None,
                Box::new(move || {
                    let _ = block_rx.recv();
                    0
                }),
            )
            .unwrap();
        std::thread::sleep(Duration::from_millis(20)); // gate job is running
        let a: Arc<str> = Arc::from("dbA\u{1}0");
        let b: Arc<str> = Arc::from("dbB\u{1}0");
        let receivers: Vec<_> = [&a, &b, &a, &b, &a, &b]
            .iter()
            .enumerate()
            .map(|(i, g)| {
                pool.submit_grouped(None, Some(Arc::clone(g)), Box::new(move || i)).unwrap()
            })
            .collect();
        block_tx.send(()).unwrap();
        for (i, rx) in receivers.into_iter().enumerate() {
            match rx.recv_timeout(Duration::from_secs(10)).unwrap() {
                Reply::Done { value, .. } => assert_eq!(value, i),
                Reply::ExpiredInQueue { .. } => panic!("no deadline"),
            }
        }
        // Gate dispatch + one batch per group: 3 dispatches for 7 jobs,
        // with a largest batch of 3.
        let s = pool.batch_stats();
        assert_eq!((s.batches, s.jobs, s.max_batch), (3, 7, 3));
    }

    #[test]
    fn batching_preserves_within_group_order_and_other_groups() {
        // batch_max 2 with 4 same-group jobs: two dispatches of two, values
        // delivered in submission order within the group.
        let pool: Pool<usize> = Pool::batched(1, 16, 2);
        let (block_tx, block_rx) = sync_channel::<()>(0);
        let gate = pool
            .submit(
                None,
                Box::new(move || {
                    let _ = block_rx.recv();
                    0
                }),
            )
            .unwrap();
        std::thread::sleep(Duration::from_millis(20));
        let g: Arc<str> = Arc::from("db\u{1}7");
        let order = Arc::new(Mutex::new(Vec::new()));
        let receivers: Vec<_> = (0..4)
            .map(|i| {
                let order = Arc::clone(&order);
                pool.submit_grouped(
                    None,
                    Some(Arc::clone(&g)),
                    Box::new(move || {
                        order.lock().unwrap().push(i);
                        i
                    }),
                )
                .unwrap()
            })
            .collect();
        block_tx.send(()).unwrap();
        for rx in receivers {
            let _ = rx.recv_timeout(Duration::from_secs(10)).unwrap();
        }
        assert_eq!(*order.lock().unwrap(), vec![0, 1, 2, 3]);
        let s = pool.batch_stats();
        assert_eq!((s.batches, s.max_batch), (3, 2)); // gate + 2 batches of 2
        drop(gate);
    }

    #[test]
    fn deadline_is_rechecked_per_job_within_a_batch() {
        // Two same-group jobs: the first sleeps past the second's deadline,
        // so the second must expire in queue even though both were claimed
        // in one batch.
        let pool: Pool<u32> = Pool::batched(1, 16, 4);
        let (block_tx, block_rx) = sync_channel::<()>(0);
        let gate = pool
            .submit(
                None,
                Box::new(move || {
                    let _ = block_rx.recv();
                    0
                }),
            )
            .unwrap();
        std::thread::sleep(Duration::from_millis(20));
        let g: Arc<str> = Arc::from("db\u{1}0");
        let slow = pool
            .submit_grouped(
                None,
                Some(Arc::clone(&g)),
                Box::new(|| {
                    std::thread::sleep(Duration::from_millis(80));
                    1
                }),
            )
            .unwrap();
        let doomed = pool
            .submit_grouped(
                Some(Instant::now() + Duration::from_millis(20)),
                Some(Arc::clone(&g)),
                Box::new(|| panic!("deadline must expire first")),
            )
            .unwrap();
        block_tx.send(()).unwrap();
        assert!(matches!(
            slow.recv_timeout(Duration::from_secs(10)).unwrap(),
            Reply::Done { value: 1, .. }
        ));
        assert!(matches!(
            doomed.recv_timeout(Duration::from_secs(10)).unwrap(),
            Reply::ExpiredInQueue { .. }
        ));
        drop(gate);
    }

    #[test]
    fn shard_wave_admits_all_or_nothing() {
        // One worker parked in a gate job, queue depth 2: a 3-job wave must
        // be rejected whole (no partial admission), then a 2-job wave fits.
        let pool: Pool<usize> = Pool::new(1, 2);
        let (block_tx, block_rx) = sync_channel::<()>(0);
        let _gate = pool
            .submit(
                None,
                Box::new(move || {
                    let _ = block_rx.recv();
                    0
                }),
            )
            .unwrap();
        std::thread::sleep(Duration::from_millis(20));
        let works = |n: usize| -> Vec<Box<dyn FnOnce() -> usize + Send>> {
            (0..n).map(|i| Box::new(move || i) as Box<dyn FnOnce() -> usize + Send>).collect()
        };
        let g: Arc<str> = Arc::from("db\u{1}0\u{1}shard-1");
        let rejected = pool.submit_shards(None, Some(Arc::clone(&g)), works(3));
        assert_eq!(rejected.unwrap_err(), SubmitError::QueueFull);
        let admitted = pool.submit_shards(None, Some(Arc::clone(&g)), works(2)).unwrap();
        block_tx.send(()).unwrap();
        for (i, rx) in admitted.into_iter().enumerate() {
            match rx.recv_timeout(Duration::from_secs(10)).unwrap() {
                Reply::Done { value, .. } => assert_eq!(value, i),
                Reply::ExpiredInQueue { .. } => panic!("no deadline"),
            }
        }
        let s = pool.shard_stats();
        assert_eq!((s.waves, s.jobs, s.max_wave, s.rejected_waves), (1, 2, 2, 1));
    }

    #[test]
    fn shard_wave_batches_onto_one_worker_dispatch() {
        // Shard jobs share their group, so one freed worker claims the
        // whole wave as a single batch dispatch.
        let pool: Pool<usize> = Pool::batched(1, 16, 8);
        let (block_tx, block_rx) = sync_channel::<()>(0);
        let _gate = pool
            .submit(
                None,
                Box::new(move || {
                    let _ = block_rx.recv();
                    0
                }),
            )
            .unwrap();
        std::thread::sleep(Duration::from_millis(20));
        let g: Arc<str> = Arc::from("db\u{1}0\u{1}shard-2");
        let works: Vec<Box<dyn FnOnce() -> usize + Send>> =
            (0..3usize).map(|i| Box::new(move || i) as Box<dyn FnOnce() -> usize + Send>).collect();
        let receivers = pool.submit_shards(None, Some(g), works).unwrap();
        block_tx.send(()).unwrap();
        for rx in receivers {
            assert!(matches!(
                rx.recv_timeout(Duration::from_secs(10)).unwrap(),
                Reply::Done { .. }
            ));
        }
        let s = pool.batch_stats();
        assert_eq!((s.batches, s.jobs, s.max_batch), (2, 4, 3)); // gate + one 3-shard batch
    }

    #[test]
    fn arena_pool_recycles_restored_capacity() {
        let pool = ArenaPool::new(64 * 1024, 2);
        let (mut a, recycled) = pool.checkout();
        assert!(!recycled, "first checkout has nothing to recycle");
        let (mut buf, _) = a.take_nodes();
        buf.reserve(16);
        a.give_nodes(buf);
        pool.restore(a);
        let (a2, recycled) = pool.checkout();
        assert!(recycled);
        assert!(a2.retained_bytes() > 0, "parked capacity survives the pooled reset");
        pool.discard();
        let s = pool.stats();
        assert_eq!((s.checkouts, s.reuses, s.discards), (2, 1, 1));
    }

    #[test]
    fn disabled_arena_pool_hands_out_seed_arenas() {
        let pool = ArenaPool::new(0, 4);
        let (a, recycled) = pool.checkout();
        assert!(!recycled);
        assert_eq!(a.limit(), 0, "arena_kb 0 must reproduce the no-arena seed path");
        pool.restore(a); // dropped, not parked
        let (b, recycled) = pool.checkout();
        assert!(!recycled, "nothing is ever recycled at limit 0");
        assert_eq!(b.limit(), 0);
        assert_eq!(pool.stats().discards, 1);
    }

    #[test]
    fn arena_pool_capacity_bounds_parked_arenas() {
        let pool = ArenaPool::new(64 * 1024, 1);
        let (a, _) = pool.checkout();
        let (b, _) = pool.checkout();
        pool.restore(a);
        pool.restore(b); // over capacity: dropped and counted
        assert_eq!(pool.stats().discards, 1);
        let (_, recycled) = pool.checkout();
        assert!(recycled, "the one parked arena is still served");
    }

    #[test]
    fn submit_after_shutdown_is_disconnected() {
        let pool: Pool<i32> = Pool::new(1, 4);
        let shared = Arc::clone(&pool.shared);
        drop(pool);
        // Simulate a racing submitter observing the closed queue.
        let closed = !shared.state.lock().unwrap().open;
        assert!(closed);
    }
}
