//! The service's metrics registry.
//!
//! Aggregates three things across every request the service handles:
//!
//! * **latency** — a fixed-bucket log₂ histogram of per-request wall-clock
//!   times, from which count / mean / p50 / p95 / max are derived. Buckets
//!   are powers of two in microseconds (1 µs … ~64 s), so recording is two
//!   integer ops and the registry never allocates on the hot path;
//! * **plan cache** traffic — hits, misses, evictions (mirrored out of the
//!   cache so one report covers everything);
//! * **executor work** — the rolled-up [`ExecStats`] counters (index probes,
//!   nodes inspected, pattern matches, …) summed over all executions.
//!
//! Everything lives behind one `Mutex`; recording takes it for nanoseconds.
//! The per-query breakdown is capped so a hostile workload cannot grow the
//! registry without bound — overflow queries aggregate under `(other)`.

use std::collections::HashMap;
use std::sync::Mutex;
use std::time::Duration;
use tlc::ExecStats;

/// Number of log₂ buckets: bucket `i` covers `[2^i, 2^(i+1))` microseconds.
const BUCKETS: usize = 27; // 2^26 µs ≈ 67 s in the top finite bucket

/// Cap on distinct per-query entries; the rest fold into `(other)`.
const MAX_QUERY_ENTRIES: usize = 256;

/// Fixed-bucket latency histogram with exact count / sum / max.
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum_micros: u64,
    max_micros: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram { buckets: [0; BUCKETS], count: 0, sum_micros: 0, max_micros: 0 }
    }
}

impl Histogram {
    /// Records one latency observation.
    pub fn record(&mut self, latency: Duration) {
        let micros = latency.as_micros().min(u128::from(u64::MAX)) as u64;
        let bucket = (64 - micros.max(1).leading_zeros() as usize - 1).min(BUCKETS - 1);
        self.buckets[bucket] += 1;
        self.count += 1;
        self.sum_micros = self.sum_micros.saturating_add(micros);
        self.max_micros = self.max_micros.max(micros);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean latency, or zero when empty.
    pub fn mean(&self) -> Duration {
        if self.count == 0 {
            return Duration::ZERO;
        }
        Duration::from_micros(self.sum_micros / self.count)
    }

    /// Largest observation.
    pub fn max(&self) -> Duration {
        Duration::from_micros(self.max_micros)
    }

    /// Latency at quantile `q` (e.g. `0.5`, `0.95`), upper bucket bound —
    /// the histogram answers "no more than" with one-bucket resolution.
    pub fn quantile(&self, q: f64) -> Duration {
        if self.count == 0 {
            return Duration::ZERO;
        }
        let rank = ((self.count as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= rank {
                // Upper bound of bucket i, clamped by the true max.
                let upper = 1u64 << (i + 1).min(63);
                return Duration::from_micros(upper.min(self.max_micros.max(1)));
            }
        }
        self.max()
    }

    /// Merges another histogram into this one.
    pub fn absorb(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum_micros = self.sum_micros.saturating_add(other.sum_micros);
        self.max_micros = self.max_micros.max(other.max_micros);
    }
}

/// What happened to a request, for the outcome counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Executed and produced a result.
    Ok,
    /// Aborted on its wall-clock deadline.
    Deadline,
    /// Rejected at admission (queue full).
    Rejected,
    /// Compilation or execution error.
    Error,
    /// Admitted, but the caller stopped waiting for the reply (its
    /// client-side wait deadline expired); the job still ran or will run
    /// on a worker, its result discarded.
    Abandoned,
}

/// Per-database counters: plan-cache traffic split by catalog name, plus
/// the hot-swap activity (`swaps`, and how many cached plans each swap
/// invalidated). Keyed by database name in [`Snapshot::per_db`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DbCounters {
    /// Plan-cache hits for this database.
    pub hits: u64,
    /// Plan-cache misses for this database.
    pub misses: u64,
    /// Snapshot hot swaps published for this database.
    pub swaps: u64,
    /// Cached plans invalidated by those swaps (superseded epochs purged).
    pub invalidated: u64,
    /// In-place updates committed against this database.
    pub updates: u64,
    /// Cached plans carried (re-seeded) into post-update epochs because
    /// their footprint was provably disjoint from the mutation.
    pub plans_seeded: u64,
    /// Match-cache entries carried into post-update epochs.
    pub matches_seeded: u64,
    /// Of [`DbCounters::matches_seeded`], the entries only the *per-chain*
    /// precise footprints could prove safe — the whole-plan conservative
    /// footprint would have dropped them.
    pub matches_extra: u64,
    /// Compiled plans the liveness analysis rewrote (dead classes pruned)
    /// before caching.
    pub plans_pruned: u64,
    /// Operators (redundant DupElims, emptied Selects) the pruning pass
    /// removed outright across those plans.
    pub ops_eliminated: u64,
    /// Lint warnings raised while compiling plans for this database.
    pub lints: u64,
    /// Requests served by the intra-query sharding path (the per-database
    /// parallel-QPS numerator; the caller divides by its own wall clock).
    pub parallel_requests: u64,
}

#[derive(Debug, Default)]
struct QueryEntry {
    latency: Histogram,
    exec: ExecStats,
}

#[derive(Debug, Default)]
struct Inner {
    latency: Histogram,
    queue_wait: Histogram,
    per_query: HashMap<Box<str>, QueryEntry>,
    per_db: HashMap<Box<str>, DbCounters>,
    exec: ExecStats,
    ok: u64,
    deadline: u64,
    rejected: u64,
    errored: u64,
    abandoned: u64,
    cache_hits: u64,
    cache_misses: u64,
    cache_evictions: u64,
    ir_compiles: u64,
    ir_cache_hits: u64,
    ir_compile: Histogram,
    shards_executed: u64,
    shard_fallback_sequential: u64,
    merge: Histogram,
    arena_requests: u64,
    arena_hwm_sum: u64,
}

/// Thread-safe metrics registry; one per [`crate::Service`].
#[derive(Debug, Default)]
pub struct Metrics {
    inner: Mutex<Inner>,
}

impl Metrics {
    /// Fresh, zeroed registry.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Records one served request: its end-to-end latency, the executor
    /// counters it accumulated, and which query it was (`label` is the
    /// normalized query text).
    pub fn record_request(&self, label: &str, latency: Duration, stats: &ExecStats) {
        let mut m = self.inner.lock().unwrap();
        m.latency.record(latency);
        m.exec.absorb(stats);
        m.ok += 1;
        if stats.arena_bytes > 0 {
            m.arena_requests += 1;
            m.arena_hwm_sum = m.arena_hwm_sum.saturating_add(stats.arena_bytes);
        }
        let entry = if m.per_query.len() >= MAX_QUERY_ENTRIES && !m.per_query.contains_key(label) {
            m.per_query.entry("(other)".into()).or_default()
        } else {
            m.per_query.entry(label.into()).or_default()
        };
        entry.latency.record(latency);
        entry.exec.absorb(stats);
    }

    /// Records a non-success outcome.
    pub fn record_outcome(&self, outcome: Outcome) {
        let mut m = self.inner.lock().unwrap();
        match outcome {
            Outcome::Ok => m.ok += 1,
            Outcome::Deadline => m.deadline += 1,
            Outcome::Rejected => m.rejected += 1,
            Outcome::Error => m.errored += 1,
            Outcome::Abandoned => m.abandoned += 1,
        }
    }

    /// Records one request's submit→dequeue wait in the worker queue. Kept
    /// separate from [`Metrics::record_request`] because queue time is also
    /// measured for requests that never execute (deadline-expired in queue,
    /// failed execution) — queue pressure must count every admitted request.
    pub fn record_queue_wait(&self, wait: Duration) {
        self.inner.lock().unwrap().queue_wait.record(wait);
    }

    /// Records plan-cache traffic for one lookup against database `db`
    /// (`evictions` is the delta, not a total).
    pub fn record_cache(&self, db: &str, hit: bool, evictions: u64) {
        let mut m = self.inner.lock().unwrap();
        if hit {
            m.cache_hits += 1;
        } else {
            m.cache_misses += 1;
        }
        m.cache_evictions += evictions;
        let entry = m.per_db.entry(db.into()).or_default();
        if hit {
            entry.hits += 1;
        } else {
            entry.misses += 1;
        }
    }

    /// Records one snapshot hot swap of database `db` and how many cached
    /// plans (superseded epochs) the swap invalidated.
    pub fn record_swap(&self, db: &str, invalidated: u64) {
        let mut m = self.inner.lock().unwrap();
        let entry = m.per_db.entry(db.into()).or_default();
        entry.swaps += 1;
        entry.invalidated += invalidated;
    }

    /// Records one committed in-place update against `db` and how many
    /// plan-cache entries / match-cache entries the selective-invalidation
    /// pass carried into the new epoch instead of dropping.
    /// `matches_extra` is the subset of `matches_seeded` that only the
    /// per-chain precise footprints — not the conservative whole-plan
    /// check — could justify carrying.
    pub fn record_update(
        &self,
        db: &str,
        plans_seeded: u64,
        matches_seeded: u64,
        matches_extra: u64,
    ) {
        let mut m = self.inner.lock().unwrap();
        let entry = m.per_db.entry(db.into()).or_default();
        entry.updates += 1;
        entry.plans_seeded += plans_seeded;
        entry.matches_seeded += matches_seeded;
        entry.matches_extra += matches_extra;
    }

    /// Records one IR lowering: a cached plan was compiled into a
    /// [`tlc::vm::Program`] (this happens at most once per plan-cache
    /// entry), taking `took` of the requesting caller's wall clock.
    pub fn record_ir_compile(&self, took: Duration) {
        let mut m = self.inner.lock().unwrap();
        m.ir_compiles += 1;
        m.ir_compile.record(took);
    }

    /// Records one request that reused an already-lowered program instead
    /// of compiling (the IR analogue of a plan-cache hit).
    pub fn record_ir_cache_hit(&self) {
        self.inner.lock().unwrap().ir_cache_hits += 1;
    }

    /// Records one request served by the intra-query sharding path: how
    /// many shard jobs it ran and how long the document-order merge
    /// (concatenation + central serialization) took.
    pub fn record_sharded(&self, db: &str, shard_jobs: u64, merge: Duration) {
        let mut m = self.inner.lock().unwrap();
        m.shards_executed += shard_jobs;
        m.merge.record(merge);
        m.per_db.entry(db.into()).or_default().parallel_requests += 1;
    }

    /// Records one request that a sharding-enabled service executed
    /// sequentially anyway — the planner declined the plan, the anchor was
    /// too small, or the queue could not take the whole shard wave.
    pub fn record_shard_fallback(&self) {
        self.inner.lock().unwrap().shard_fallback_sequential += 1;
    }

    /// Records one compile-time analysis of a plan bound to `db`: whether
    /// the liveness pass pruned it, how many operators the pruning removed,
    /// and how many lint warnings the plan carries.
    pub fn record_analysis(&self, db: &str, pruned: bool, ops_eliminated: u64, lints: u64) {
        let mut m = self.inner.lock().unwrap();
        let entry = m.per_db.entry(db.into()).or_default();
        entry.plans_pruned += u64::from(pruned);
        entry.ops_eliminated += ops_eliminated;
        entry.lints += lints;
    }

    /// Point-in-time copy of the aggregate numbers.
    pub fn snapshot(&self) -> Snapshot {
        let m = self.inner.lock().unwrap();
        let mut per_db: Vec<(String, DbCounters)> =
            m.per_db.iter().map(|(k, v)| (k.to_string(), *v)).collect();
        per_db.sort_by(|a, b| a.0.cmp(&b.0));
        Snapshot {
            latency: m.latency.clone(),
            queue_wait: m.queue_wait.clone(),
            exec: m.exec,
            ok: m.ok,
            deadline: m.deadline,
            rejected: m.rejected,
            errored: m.errored,
            abandoned: m.abandoned,
            cache_hits: m.cache_hits,
            cache_misses: m.cache_misses,
            cache_evictions: m.cache_evictions,
            ir_compiles: m.ir_compiles,
            ir_cache_hits: m.ir_cache_hits,
            ir_compile: m.ir_compile.clone(),
            shards_executed: m.shards_executed,
            shard_fallback_sequential: m.shard_fallback_sequential,
            merge: m.merge.clone(),
            arena_requests: m.arena_requests,
            arena_hwm_sum: m.arena_hwm_sum,
            per_db,
        }
    }

    /// Renders the full text report: aggregate latency distribution,
    /// outcome and cache counters, rolled-up executor work, and a per-query
    /// latency table sorted by total time spent.
    pub fn report(&self) -> String {
        let m = self.inner.lock().unwrap();
        let mut out = String::new();
        out.push_str("== service metrics ==\n");
        out.push_str(&format!(
            "requests: {} ok, {} deadline-exceeded, {} rejected, {} errored, {} abandoned\n",
            m.ok, m.deadline, m.rejected, m.errored, m.abandoned
        ));
        let lookups = m.cache_hits + m.cache_misses;
        let rate = if lookups == 0 { 0.0 } else { m.cache_hits as f64 / lookups as f64 * 100.0 };
        out.push_str(&format!(
            "plan cache: {} hits / {} lookups ({rate:.1}% hit rate), {} evictions\n",
            m.cache_hits, lookups, m.cache_evictions
        ));
        let mut dbs: Vec<(&Box<str>, &DbCounters)> = m.per_db.iter().collect();
        dbs.sort_by(|a, b| a.0.cmp(b.0));
        for (name, c) in dbs {
            out.push_str(&format!(
                "  db {name}: {} hits / {} lookups, {} swap(s), {} plan(s) invalidated\n",
                c.hits,
                c.hits + c.misses,
                c.swaps,
                c.invalidated
            ));
            if c.updates > 0 {
                out.push_str(&format!(
                    "  db {name}: {} update(s), {} plan(s) and {} match entr(ies) carried across epochs\n",
                    c.updates, c.plans_seeded, c.matches_seeded
                ));
            }
            if c.parallel_requests > 0 {
                out.push_str(&format!(
                    "  db {name}: {} request(s) served by intra-query shards\n",
                    c.parallel_requests
                ));
            }
            if c.plans_pruned > 0 || c.ops_eliminated > 0 || c.lints > 0 || c.matches_extra > 0 {
                out.push_str(&format!(
                    "  db {name}: analyzer pruned {} plan(s) ({} operator(s) eliminated), {} lint(s) raised, {} match entr(ies) carried by precise footprints alone\n",
                    c.plans_pruned, c.ops_eliminated, c.lints, c.matches_extra
                ));
            }
        }
        out.push_str(&format!(
            "latency: count={} mean={:?} p50={:?} p95={:?} max={:?}\n",
            m.latency.count(),
            m.latency.mean(),
            m.latency.quantile(0.50),
            m.latency.quantile(0.95),
            m.latency.max()
        ));
        out.push_str(&format!(
            "queue wait: count={} mean={:?} p50={:?} p95={:?} max={:?}\n",
            m.queue_wait.count(),
            m.queue_wait.mean(),
            m.queue_wait.quantile(0.50),
            m.queue_wait.quantile(0.95),
            m.queue_wait.max()
        ));
        let e = &m.exec;
        out.push_str(&format!(
            "executor: {} pattern matches, {} probes, {} nodes inspected, {} candidate fetches, {} structural-join comparisons, {} trees built, {} subtrees materialized, {} join steps\n",
            e.pattern_matches, e.probes, e.nodes_inspected, e.candidate_fetches,
            e.struct_cmps, e.trees_built, e.subtrees_materialized, e.join_steps
        ));
        out.push_str(&format!(
            "executor match cache: {} hits / {} misses\n",
            e.match_cache_hits, e.match_cache_misses
        ));
        if m.arena_requests > 0 || e.fallback_allocs > 0 {
            let mean_kib = if m.arena_requests == 0 {
                0.0
            } else {
                m.arena_hwm_sum as f64 / m.arena_requests as f64 / 1024.0
            };
            out.push_str(&format!(
                "executor arena: {} arena-backed request(s), high-water mean {:.1} KiB / max {:.1} KiB, {} fallback alloc(s), {} recycled checkout(s)\n",
                m.arena_requests,
                mean_kib,
                e.arena_bytes as f64 / 1024.0,
                e.fallback_allocs,
                e.arena_resets
            ));
        }
        if m.ir_compiles > 0 || m.ir_cache_hits > 0 {
            out.push_str(&format!(
                "ir: {} program(s) compiled, {} compiled-program reuse(s), compile count={} mean={:?} p95={:?} max={:?}\n",
                m.ir_compiles,
                m.ir_cache_hits,
                m.ir_compile.count(),
                m.ir_compile.mean(),
                m.ir_compile.quantile(0.95),
                m.ir_compile.max()
            ));
        }
        if m.merge.count() > 0 || m.shard_fallback_sequential > 0 {
            out.push_str(&format!(
                "parallel: {} sharded request(s), {} shard job(s) executed, {} sequential fallback(s)\n",
                m.merge.count(),
                m.shards_executed,
                m.shard_fallback_sequential
            ));
            out.push_str(&format!(
                "shard merge: count={} mean={:?} p50={:?} p95={:?} max={:?}\n",
                m.merge.count(),
                m.merge.mean(),
                m.merge.quantile(0.50),
                m.merge.quantile(0.95),
                m.merge.max()
            ));
        }
        if !m.per_query.is_empty() {
            out.push_str(&format!(
                "{:>8} {:>10} {:>10} {:>10} {:>10}  query\n",
                "count", "mean", "p50", "p95", "max"
            ));
            let mut rows: Vec<(&Box<str>, &QueryEntry)> = m.per_query.iter().collect();
            rows.sort_by_key(|(_, e)| std::cmp::Reverse(e.latency.sum_micros));
            for (label, entry) in rows {
                let h = &entry.latency;
                let shown: String = if label.chars().count() > 60 {
                    let head: String = label.chars().take(59).collect();
                    format!("{head}…")
                } else {
                    label.to_string()
                };
                out.push_str(&format!(
                    "{:>8} {:>10} {:>10} {:>10} {:>10}  {}\n",
                    h.count(),
                    fmt(h.mean()),
                    fmt(h.quantile(0.50)),
                    fmt(h.quantile(0.95)),
                    fmt(h.max()),
                    shown
                ));
            }
        }
        out
    }
}

/// Aggregate counters captured by [`Metrics::snapshot`].
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Aggregate latency histogram.
    pub latency: Histogram,
    /// Submit→dequeue wait histogram (queue pressure, separate from
    /// execution latency; counts every admitted request, including those
    /// that expired in the queue).
    pub queue_wait: Histogram,
    /// Rolled-up executor counters.
    pub exec: ExecStats,
    /// Requests that produced a result.
    pub ok: u64,
    /// Requests aborted on deadline.
    pub deadline: u64,
    /// Requests rejected at admission.
    pub rejected: u64,
    /// Requests that failed to compile or execute.
    pub errored: u64,
    /// Requests whose caller gave up waiting (client-side wait deadline).
    pub abandoned: u64,
    /// Plan-cache hits.
    pub cache_hits: u64,
    /// Plan-cache misses.
    pub cache_misses: u64,
    /// Plan-cache evictions.
    pub cache_evictions: u64,
    /// Plans lowered into register-IR programs (at most once per
    /// plan-cache entry).
    pub ir_compiles: u64,
    /// Requests that reused an already-lowered program.
    pub ir_cache_hits: u64,
    /// Per-lowering compile-time histogram.
    pub ir_compile: Histogram,
    /// Shard jobs run by the intra-query sharding path, summed over every
    /// sharded request (stage jobs included).
    pub shards_executed: u64,
    /// Requests a sharding-enabled service ran sequentially anyway
    /// (unshardable plan, anchor below the cost threshold, or a full
    /// queue rejecting the shard wave).
    pub shard_fallback_sequential: u64,
    /// Per-request document-order merge times (shard-output concatenation
    /// plus central serialization); `merge.count()` is the number of
    /// sharded requests served.
    pub merge: Histogram,
    /// Requests whose executor drew from a live arena (`arena_bytes > 0`).
    pub arena_requests: u64,
    /// Sum of per-request arena high-water marks in bytes (divide by
    /// [`Snapshot::arena_requests`] for the mean; the max is
    /// `exec.arena_bytes`, which absorbs by maximum).
    pub arena_hwm_sum: u64,
    /// Per-database counters, sorted by database name.
    pub per_db: Vec<(String, DbCounters)>,
}

impl Snapshot {
    /// This database's counters, if any request touched it.
    pub fn db(&self, name: &str) -> Option<&DbCounters> {
        self.per_db.iter().find(|(n, _)| n == name).map(|(_, c)| c)
    }
}

impl Snapshot {
    /// Cache hit rate in `[0, 1]`; zero when no lookups happened.
    pub fn cache_hit_rate(&self) -> f64 {
        let lookups = self.cache_hits + self.cache_misses;
        if lookups == 0 {
            0.0
        } else {
            self.cache_hits as f64 / lookups as f64
        }
    }
}

fn fmt(d: Duration) -> String {
    let micros = d.as_micros();
    if micros < 1_000 {
        format!("{micros}µs")
    } else if micros < 1_000_000 {
        format!("{:.2}ms", micros as f64 / 1e3)
    } else {
        format!("{:.3}s", micros as f64 / 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_bracket_observations() {
        let mut h = Histogram::default();
        for micros in [100u64, 200, 300, 400, 100_000] {
            h.record(Duration::from_micros(micros));
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.max(), Duration::from_micros(100_000));
        // p50 upper bound must cover 300 µs but stay well under the outlier.
        let p50 = h.quantile(0.5);
        assert!(p50 >= Duration::from_micros(300), "{p50:?}");
        assert!(p50 <= Duration::from_micros(1024), "{p50:?}");
        // p95 of five observations is the outlier's bucket.
        assert!(h.quantile(0.95) >= Duration::from_micros(100_000));
        let mean = h.mean();
        assert!(mean >= Duration::from_micros(20_000) && mean <= Duration::from_micros(21_000));
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Histogram::default();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), Duration::ZERO);
        assert_eq!(h.quantile(0.95), Duration::ZERO);
    }

    #[test]
    fn report_contains_cache_and_latency_lines() {
        let m = Metrics::new();
        m.record_cache("main", false, 0);
        m.record_cache("main", true, 0);
        m.record_request("FOR $x ...", Duration::from_millis(2), &ExecStats::new());
        let r = m.report();
        assert!(r.contains("50.0% hit rate"), "{r}");
        assert!(r.contains("p95"), "{r}");
        assert!(r.contains("FOR $x ..."), "{r}");
    }

    #[test]
    fn per_db_counters_split_by_name_and_track_swaps() {
        let m = Metrics::new();
        m.record_cache("a", false, 0);
        m.record_cache("a", true, 0);
        m.record_cache("b", false, 0);
        m.record_swap("a", 3);
        m.record_swap("a", 2);
        m.record_outcome(Outcome::Abandoned);
        let s = m.snapshot();
        assert_eq!(s.abandoned, 1);
        assert_eq!(
            s.db("a"),
            Some(&DbCounters {
                hits: 1,
                misses: 1,
                swaps: 2,
                invalidated: 5,
                ..Default::default()
            })
        );
        assert_eq!(s.db("b"), Some(&DbCounters { misses: 1, ..Default::default() }));
        assert_eq!(s.db("c"), None);
        let r = m.report();
        assert!(r.contains("db a: 1 hits / 2 lookups, 2 swap(s), 5 plan(s) invalidated"), "{r}");
        assert!(r.contains("1 abandoned"), "{r}");
    }

    #[test]
    fn update_counters_track_seeding() {
        let m = Metrics::new();
        m.record_update("a", 3, 7, 2);
        m.record_update("a", 1, 0, 0);
        let s = m.snapshot();
        let c = s.db("a").unwrap();
        assert_eq!((c.updates, c.plans_seeded, c.matches_seeded, c.matches_extra), (2, 4, 7, 2));
        let r = m.report();
        assert!(r.contains("db a: 2 update(s), 4 plan(s) and 7 match entr(ies) carried"), "{r}");
        assert!(r.contains("2 match entr(ies) carried by precise footprints alone"), "{r}");
    }

    #[test]
    fn analysis_counters_only_report_when_nonzero() {
        let m = Metrics::new();
        m.record_cache("a", false, 0);
        assert!(!m.report().contains("analyzer pruned"), "no analysis recorded yet");
        m.record_analysis("a", true, 2, 3);
        m.record_analysis("a", false, 0, 1);
        let c = m.snapshot();
        let c = c.db("a").unwrap();
        assert_eq!((c.plans_pruned, c.ops_eliminated, c.lints), (1, 2, 4));
        let r = m.report();
        assert!(
            r.contains(
                "db a: analyzer pruned 1 plan(s) (2 operator(s) eliminated), 4 lint(s) raised"
            ),
            "{r}"
        );
    }

    #[test]
    fn ir_counters_only_report_when_nonzero() {
        let m = Metrics::new();
        assert!(!m.report().contains("ir:"), "no IR activity recorded yet");
        m.record_ir_compile(Duration::from_micros(40));
        m.record_ir_cache_hit();
        m.record_ir_cache_hit();
        let s = m.snapshot();
        assert_eq!((s.ir_compiles, s.ir_cache_hits, s.ir_compile.count()), (1, 2, 1));
        let r = m.report();
        assert!(r.contains("ir: 1 program(s) compiled, 2 compiled-program reuse(s)"), "{r}");
    }

    #[test]
    fn shard_counters_track_jobs_fallbacks_and_merge_times() {
        let m = Metrics::new();
        assert!(!m.report().contains("parallel:"), "no shard activity recorded yet");
        m.record_sharded("a", 5, Duration::from_micros(120));
        m.record_sharded("a", 9, Duration::from_micros(80));
        m.record_shard_fallback();
        let s = m.snapshot();
        assert_eq!((s.shards_executed, s.shard_fallback_sequential, s.merge.count()), (14, 1, 2));
        assert_eq!(s.db("a").unwrap().parallel_requests, 2);
        let r = m.report();
        assert!(
            r.contains("parallel: 2 sharded request(s), 14 shard job(s) executed, 1 sequential fallback(s)"),
            "{r}"
        );
        assert!(r.contains("shard merge: count=2"), "{r}");
        assert!(r.contains("db a: 2 request(s) served by intra-query shards"), "{r}");
    }

    #[test]
    fn arena_counters_only_report_when_active() {
        let m = Metrics::new();
        m.record_request("q", Duration::from_micros(10), &ExecStats::new());
        assert!(!m.report().contains("executor arena:"), "no arena activity recorded yet");
        let mut st = ExecStats::new();
        st.arena_bytes = 2048;
        st.fallback_allocs = 5;
        st.arena_resets = 1;
        m.record_request("q", Duration::from_micros(10), &st);
        let s = m.snapshot();
        assert_eq!((s.arena_requests, s.arena_hwm_sum), (1, 2048));
        let r = m.report();
        assert!(
            r.contains(
                "executor arena: 1 arena-backed request(s), high-water mean 2.0 KiB / max 2.0 KiB, 5 fallback alloc(s), 1 recycled checkout(s)"
            ),
            "{r}"
        );
    }

    #[test]
    fn per_query_table_is_capped() {
        let m = Metrics::new();
        for i in 0..(MAX_QUERY_ENTRIES + 50) {
            m.record_request(&format!("q{i}"), Duration::from_micros(10), &ExecStats::new());
        }
        let inner = m.inner.lock().unwrap();
        assert!(inner.per_query.len() <= MAX_QUERY_ENTRIES + 1);
        assert!(inner.per_query.contains_key("(other)"));
    }
}
