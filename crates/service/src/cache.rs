//! The LRU plan cache: normalized query text → compiled, optimized plan.
//!
//! The evaluation workload (x1…x20, Q1, Q2) is a repeated-template
//! workload: the same query texts arrive over and over. Compiling a query
//! (parse → translate → rewrite/optimize) costs the same every time while
//! the plan never changes for a fixed database schema, so the service
//! compiles once and executes many.
//!
//! **Keying.** The key is the *whitespace-normalized* query text: runs of
//! whitespace collapse to one space and the ends are trimmed, so the same
//! query sent indented, on one line, or with trailing newlines shares one
//! entry. Nothing semantic (no parse) happens during keying — a cache probe
//! on a miss costs one string scan.
//!
//! **Eviction.** Bounded LRU. Values are `Arc`ed, so evicting an entry that
//! a request is still executing merely drops the cache's reference; the
//! in-flight execution keeps the plan alive and completes normally.

use std::collections::HashMap;
use std::sync::Arc;

/// Collapses whitespace runs to single spaces and trims the ends — the
/// cache-key canonicalization.
pub fn normalize_query(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let mut in_ws = true; // leading whitespace is dropped
    for c in text.chars() {
        if c.is_whitespace() {
            if !in_ws {
                out.push(' ');
                in_ws = true;
            }
        } else {
            out.push(c);
            in_ws = false;
        }
    }
    if out.ends_with(' ') {
        out.pop();
    }
    out
}

/// Counters the cache maintains; read through [`LruCache::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found an entry.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
    /// Entries currently resident.
    pub len: usize,
    /// Configured capacity.
    pub capacity: usize,
}

/// A bounded least-recently-used map from normalized query text to shared
/// values. Recency is tracked with a monotonic stamp per entry plus an
/// ordered stamp → key index, so get/insert are O(log n).
#[derive(Debug)]
pub struct LruCache<V> {
    capacity: usize,
    next_stamp: u64,
    entries: HashMap<Box<str>, (Arc<V>, u64)>,
    by_stamp: std::collections::BTreeMap<u64, Box<str>>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl<V> LruCache<V> {
    /// Creates a cache holding at most `capacity` entries (min 1).
    pub fn new(capacity: usize) -> LruCache<V> {
        LruCache {
            capacity: capacity.max(1),
            next_stamp: 0,
            entries: HashMap::new(),
            by_stamp: std::collections::BTreeMap::new(),
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    fn touch(&mut self, key: &str) {
        let stamp = self.next_stamp;
        self.next_stamp += 1;
        if let Some((_, old)) = self.entries.get_mut(key) {
            self.by_stamp.remove(old);
            *old = stamp;
            self.by_stamp.insert(stamp, key.into());
        }
    }

    /// Looks `key` up (already normalized), refreshing its recency.
    pub fn get(&mut self, key: &str) -> Option<Arc<V>> {
        match self.entries.get(key) {
            Some((v, _)) => {
                let v = Arc::clone(v);
                self.hits += 1;
                self.touch(key);
                Some(v)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts `value` under `key` (already normalized), evicting the least
    /// recently used entry if at capacity. Returns the number of evictions
    /// performed (0 or 1).
    pub fn insert(&mut self, key: &str, value: Arc<V>) -> u64 {
        if self.entries.contains_key(key) {
            // Replace in place, refresh recency.
            let stamp_key = key.to_owned();
            self.touch(&stamp_key);
            if let Some((v, _)) = self.entries.get_mut(key) {
                *v = value;
            }
            return 0;
        }
        let mut evicted = 0;
        if self.entries.len() >= self.capacity {
            if let Some(oldest) = self.by_stamp.keys().next().copied() {
                let victim = self.by_stamp.remove(&oldest).expect("stamp present");
                self.entries.remove(&victim);
                self.evictions += 1;
                evicted = 1;
            }
        }
        let stamp = self.next_stamp;
        self.next_stamp += 1;
        self.entries.insert(key.into(), (value, stamp));
        self.by_stamp.insert(stamp, key.into());
        evicted
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            len: self.entries.len(),
            capacity: self.capacity,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization_collapses_whitespace() {
        assert_eq!(normalize_query("  FOR  $x\n\tIN doc  "), "FOR $x IN doc");
        assert_eq!(normalize_query("a b"), "a b");
        assert_eq!(normalize_query(""), "");
        assert_eq!(normalize_query("   \n\t "), "");
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c: LruCache<i32> = LruCache::new(2);
        c.insert("a", Arc::new(1));
        c.insert("b", Arc::new(2));
        assert!(c.get("a").is_some()); // refresh a: b is now LRU
        c.insert("c", Arc::new(3)); // evicts b
        assert!(c.get("a").is_some());
        assert!(c.get("b").is_none());
        assert!(c.get("c").is_some());
        let s = c.stats();
        assert_eq!(s.evictions, 1);
        assert_eq!(s.len, 2);
    }

    #[test]
    fn evicted_value_survives_while_referenced() {
        let mut c: LruCache<String> = LruCache::new(1);
        c.insert("a", Arc::new("alive".to_string()));
        let held = c.get("a").unwrap();
        c.insert("b", Arc::new("other".to_string())); // evicts a
        assert!(c.get("a").is_none());
        assert_eq!(&*held, "alive"); // the Arc keeps it usable
    }

    #[test]
    fn reinsert_replaces_without_eviction() {
        let mut c: LruCache<i32> = LruCache::new(2);
        c.insert("a", Arc::new(1));
        assert_eq!(c.insert("a", Arc::new(9)), 0);
        assert_eq!(*c.get("a").unwrap(), 9);
        assert_eq!(c.stats().len, 1);
        assert_eq!(c.stats().evictions, 0);
    }

    #[test]
    fn hit_and_miss_counters_track_lookups() {
        let mut c: LruCache<i32> = LruCache::new(4);
        assert!(c.get("x").is_none());
        c.insert("x", Arc::new(1));
        assert!(c.get("x").is_some());
        assert!(c.get("x").is_some());
        let s = c.stats();
        assert_eq!((s.hits, s.misses), (2, 1));
    }
}
