//! The LRU plan cache: normalized query text → compiled, optimized plan.
//!
//! The evaluation workload (x1…x20, Q1, Q2) is a repeated-template
//! workload: the same query texts arrive over and over. Compiling a query
//! (parse → translate → rewrite/optimize) costs the same every time while
//! the plan never changes for a fixed database schema, so the service
//! compiles once and executes many.
//!
//! **Keying.** The key is `(database name, epoch, whitespace-normalized
//! query text)`, composed by [`plan_key`]. The text component collapses
//! whitespace runs to one space and trims the ends, so the same query sent
//! indented, on one line, or with trailing newlines shares one entry.
//! Nothing semantic (no parse) happens during keying — a cache probe on a
//! miss costs one string scan. The database name and **epoch** components
//! exist because compiled plans bind the tag ids of the store they were
//! compiled against: after a catalog hot swap (see [`crate::catalog`]) the
//! same text against the same name must key differently, so a stale plan
//! can never be served against the new store.
//!
//! **Eviction.** Bounded LRU. Values are `Arc`ed, so evicting an entry that
//! a request is still executing merely drops the cache's reference; the
//! in-flight execution keeps the plan alive and completes normally. On a
//! hot swap the service additionally purges the superseded epoch's entries
//! eagerly ([`LruCache::purge_where`]) — they could never be *served*
//! again (the key mismatch guarantees that), but they would otherwise
//! squat in the LRU until capacity pressure evicted them.

use std::collections::HashMap;
use std::sync::Arc;

/// Collapses whitespace runs to single spaces and trims the ends — the
/// cache-key canonicalization.
pub fn normalize_query(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let mut in_ws = true; // leading whitespace is dropped
    for c in text.chars() {
        if c.is_whitespace() {
            if !in_ws {
                out.push(' ');
                in_ws = true;
            }
        } else {
            out.push(c);
            in_ws = false;
        }
    }
    if out.ends_with(' ') {
        out.pop();
    }
    out
}

/// Composes the cache key for `normalized` query text compiled against one
/// published snapshot of database `db` at `epoch`. The `\u{1}` separator
/// cannot occur in a database name (the catalog validates names to
/// printable ASCII), so a query string can never forge another database's
/// key prefix.
pub fn plan_key(db: &str, epoch: u64, normalized: &str) -> String {
    format!("{db}\u{1}{epoch}\u{1}{normalized}")
}

/// The key prefix shared by every entry of database `db` at `epoch`; keys
/// for other epochs of the same database match [`db_prefix`] but not this.
pub fn epoch_prefix(db: &str, epoch: u64) -> String {
    format!("{db}\u{1}{epoch}\u{1}")
}

/// The key prefix shared by every entry of database `db`, any epoch.
pub fn db_prefix(db: &str) -> String {
    format!("{db}\u{1}")
}

/// Counters the cache maintains; read through [`LruCache::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found an entry.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
    /// Entries currently resident.
    pub len: usize,
    /// Configured capacity.
    pub capacity: usize,
}

/// A bounded least-recently-used map from normalized query text to shared
/// values. Recency is tracked with a monotonic stamp per entry plus an
/// ordered stamp → key index, so get/insert are O(log n).
#[derive(Debug)]
pub struct LruCache<V> {
    capacity: usize,
    next_stamp: u64,
    entries: HashMap<Box<str>, (Arc<V>, u64)>,
    by_stamp: std::collections::BTreeMap<u64, Box<str>>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl<V> LruCache<V> {
    /// Creates a cache holding at most `capacity` entries (min 1).
    pub fn new(capacity: usize) -> LruCache<V> {
        LruCache {
            capacity: capacity.max(1),
            next_stamp: 0,
            entries: HashMap::new(),
            by_stamp: std::collections::BTreeMap::new(),
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    fn touch(&mut self, key: &str) {
        let stamp = self.next_stamp;
        self.next_stamp += 1;
        if let Some((_, old)) = self.entries.get_mut(key) {
            self.by_stamp.remove(old);
            *old = stamp;
            self.by_stamp.insert(stamp, key.into());
        }
    }

    /// Looks `key` up (already normalized), refreshing its recency.
    pub fn get(&mut self, key: &str) -> Option<Arc<V>> {
        match self.entries.get(key) {
            Some((v, _)) => {
                let v = Arc::clone(v);
                self.hits += 1;
                self.touch(key);
                Some(v)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts `value` under `key` (already normalized), evicting the least
    /// recently used entry if at capacity. Returns the number of evictions
    /// performed (0 or 1).
    pub fn insert(&mut self, key: &str, value: Arc<V>) -> u64 {
        if self.entries.contains_key(key) {
            // Replace in place, refresh recency.
            let stamp_key = key.to_owned();
            self.touch(&stamp_key);
            if let Some((v, _)) = self.entries.get_mut(key) {
                *v = value;
            }
            return 0;
        }
        let mut evicted = 0;
        if self.entries.len() >= self.capacity {
            if let Some(oldest) = self.by_stamp.keys().next().copied() {
                let victim = self.by_stamp.remove(&oldest).expect("stamp present");
                self.entries.remove(&victim);
                self.evictions += 1;
                evicted = 1;
            }
        }
        let stamp = self.next_stamp;
        self.next_stamp += 1;
        self.entries.insert(key.into(), (value, stamp));
        self.by_stamp.insert(stamp, key.into());
        evicted
    }

    /// Removes every entry whose key satisfies `pred`, returning how many
    /// were dropped. This is the hot-swap invalidation hook: after a new
    /// epoch is published, the service purges the superseded epoch's plans
    /// in one sweep. Not counted as evictions — eviction measures capacity
    /// pressure, invalidation measures swaps.
    pub fn purge_where(&mut self, pred: impl Fn(&str) -> bool) -> u64 {
        let victims: Vec<Box<str>> = self.entries.keys().filter(|k| pred(k)).cloned().collect();
        for key in &victims {
            if let Some((_, stamp)) = self.entries.remove(key) {
                self.by_stamp.remove(&stamp);
            }
        }
        victims.len() as u64
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            len: self.entries.len(),
            capacity: self.capacity,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization_collapses_whitespace() {
        assert_eq!(normalize_query("  FOR  $x\n\tIN doc  "), "FOR $x IN doc");
        assert_eq!(normalize_query("a b"), "a b");
        assert_eq!(normalize_query(""), "");
        assert_eq!(normalize_query("   \n\t "), "");
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c: LruCache<i32> = LruCache::new(2);
        c.insert("a", Arc::new(1));
        c.insert("b", Arc::new(2));
        assert!(c.get("a").is_some()); // refresh a: b is now LRU
        c.insert("c", Arc::new(3)); // evicts b
        assert!(c.get("a").is_some());
        assert!(c.get("b").is_none());
        assert!(c.get("c").is_some());
        let s = c.stats();
        assert_eq!(s.evictions, 1);
        assert_eq!(s.len, 2);
    }

    #[test]
    fn evicted_value_survives_while_referenced() {
        let mut c: LruCache<String> = LruCache::new(1);
        c.insert("a", Arc::new("alive".to_string()));
        let held = c.get("a").unwrap();
        c.insert("b", Arc::new("other".to_string())); // evicts a
        assert!(c.get("a").is_none());
        assert_eq!(&*held, "alive"); // the Arc keeps it usable
    }

    #[test]
    fn reinsert_replaces_without_eviction() {
        let mut c: LruCache<i32> = LruCache::new(2);
        c.insert("a", Arc::new(1));
        assert_eq!(c.insert("a", Arc::new(9)), 0);
        assert_eq!(*c.get("a").unwrap(), 9);
        assert_eq!(c.stats().len, 1);
        assert_eq!(c.stats().evictions, 0);
    }

    #[test]
    fn plan_keys_separate_databases_and_epochs() {
        let text = "FOR $x IN doc RETURN $x";
        assert_ne!(plan_key("a", 0, text), plan_key("b", 0, text));
        assert_ne!(plan_key("a", 0, text), plan_key("a", 1, text));
        assert!(plan_key("a", 3, text).starts_with(&epoch_prefix("a", 3)));
        assert!(plan_key("a", 3, text).starts_with(&db_prefix("a")));
        assert!(!plan_key("a", 3, text).starts_with(&epoch_prefix("a", 2)));
        // "ab" must not look like a stale entry of database "a".
        assert!(!plan_key("ab", 0, text).starts_with(&db_prefix("a")));
    }

    #[test]
    fn purge_drops_matching_entries_only() {
        let mut c: LruCache<i32> = LruCache::new(8);
        c.insert(&plan_key("a", 0, "q1"), Arc::new(1));
        c.insert(&plan_key("a", 0, "q2"), Arc::new(2));
        c.insert(&plan_key("a", 1, "q1"), Arc::new(3));
        c.insert(&plan_key("b", 0, "q1"), Arc::new(4));
        let stale =
            |k: &str| k.starts_with(&db_prefix("a")) && !k.starts_with(&epoch_prefix("a", 1));
        assert_eq!(c.purge_where(stale), 2);
        assert!(c.get(&plan_key("a", 0, "q1")).is_none());
        assert!(c.get(&plan_key("a", 1, "q1")).is_some());
        assert!(c.get(&plan_key("b", 0, "q1")).is_some());
        let s = c.stats();
        assert_eq!(s.len, 2);
        assert_eq!(s.evictions, 0, "invalidation is not eviction");
        // Purged stamps are gone too: inserting past capacity still evicts
        // exactly one live entry.
        for i in 0..7 {
            c.insert(&format!("fill{i}"), Arc::new(i));
        }
        assert_eq!(c.stats().len, 8);
    }

    #[test]
    fn hit_and_miss_counters_track_lookups() {
        let mut c: LruCache<i32> = LruCache::new(4);
        assert!(c.get("x").is_none());
        c.insert("x", Arc::new(1));
        assert!(c.get("x").is_some());
        assert!(c.get("x").is_some());
        let s = c.stats();
        assert_eq!((s.hits, s.misses), (2, 1));
    }
}
