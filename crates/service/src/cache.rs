//! The LRU plan cache: normalized query text → compiled, optimized plan.
//!
//! The evaluation workload (x1…x20, Q1, Q2) is a repeated-template
//! workload: the same query texts arrive over and over. Compiling a query
//! (parse → translate → rewrite/optimize) costs the same every time while
//! the plan never changes for a fixed database schema, so the service
//! compiles once and executes many.
//!
//! **Keying.** The key is `(database name, epoch, whitespace-normalized
//! query text)`, composed by [`plan_key`]. The text component collapses
//! whitespace runs to one space and trims the ends, so the same query sent
//! indented, on one line, or with trailing newlines shares one entry.
//! Nothing semantic (no parse) happens during keying — a cache probe on a
//! miss costs one string scan. The database name and **epoch** components
//! exist because compiled plans bind the tag ids of the store they were
//! compiled against: after a catalog hot swap (see [`crate::catalog`]) the
//! same text against the same name must key differently, so a stale plan
//! can never be served against the new store.
//!
//! **Eviction.** Bounded LRU. Values are `Arc`ed, so evicting an entry that
//! a request is still executing merely drops the cache's reference; the
//! in-flight execution keeps the plan alive and completes normally. On a
//! hot swap the service additionally purges the superseded epoch's entries
//! eagerly ([`LruCache::purge_where`]) — they could never be *served*
//! again (the key mismatch guarantees that), but they would otherwise
//! squat in the LRU until capacity pressure evicted them.
//!
//! The same [`LruCache`] (with its optional byte budget) and the same
//! `(database, epoch)` key-prefix scheme also back the **pattern-match
//! cache** ([`MatchStore`] / [`ScopedMatchCache`]): APT-fingerprint chain
//! keys → materialized result-tree sets, consulted by the executor through
//! [`tlc::MatchCache`].

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Collapses whitespace runs to single spaces and trims the ends — the
/// cache-key canonicalization.
pub fn normalize_query(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let mut in_ws = true; // leading whitespace is dropped
    for c in text.chars() {
        if c.is_whitespace() {
            if !in_ws {
                out.push(' ');
                in_ws = true;
            }
        } else {
            out.push(c);
            in_ws = false;
        }
    }
    if out.ends_with(' ') {
        out.pop();
    }
    out
}

/// Composes the cache key for `normalized` query text compiled against one
/// published snapshot of database `db` at `epoch`. The `\u{1}` separator
/// cannot occur in a database name (the catalog validates names to
/// printable ASCII), so a query string can never forge another database's
/// key prefix.
pub fn plan_key(db: &str, epoch: u64, normalized: &str) -> String {
    format!("{db}\u{1}{epoch}\u{1}{normalized}")
}

/// The key prefix shared by every entry of database `db` at `epoch`; keys
/// for other epochs of the same database match [`db_prefix`] but not this.
pub fn epoch_prefix(db: &str, epoch: u64) -> String {
    format!("{db}\u{1}{epoch}\u{1}")
}

/// The key prefix shared by every entry of database `db`, any epoch.
pub fn db_prefix(db: &str) -> String {
    format!("{db}\u{1}")
}

/// A plan-cache value: the compiled, verified plan plus its lazily-lowered
/// register program (see [`tlc::vm`]).
///
/// The program is compiled at most once per cache entry — i.e. once per
/// `(database, epoch, normalized text)` — on the first request that
/// executes the entry with the IR backend enabled, and shared by every
/// later request through the `Arc`. Because the whole `CachedPlan` is the
/// `Arc`ed cache value, an entry carried across an update epoch (the
/// footprint-disjointness carry in [`crate::Service::apply_update`])
/// brings its compiled program along for free. A plan the lowerer rejects
/// records `None` once and the service falls back to the tree walker for
/// that entry without retrying per request.
#[derive(Debug)]
pub struct CachedPlan {
    plan: Arc<tlc::Plan>,
    program: OnceLock<Option<Arc<tlc::vm::Program>>>,
}

impl CachedPlan {
    /// Wraps a freshly compiled plan; the program is lowered on demand.
    pub fn new(plan: Arc<tlc::Plan>) -> CachedPlan {
        CachedPlan { plan, program: OnceLock::new() }
    }

    /// The verified logical plan.
    pub fn plan(&self) -> &Arc<tlc::Plan> {
        &self.plan
    }

    /// The lowered register program, compiling it on first call (`None`
    /// when the lowerer declined the plan). The second component is the
    /// time *this* call spent compiling — `Some` exactly when this call
    /// performed the one-time lowering, so the caller can record the
    /// compile in its metrics without double counting.
    pub fn program(&self) -> (Option<Arc<tlc::vm::Program>>, Option<Duration>) {
        let mut compile_time = None;
        let program = self.program.get_or_init(|| {
            let started = Instant::now();
            let compiled = tlc::vm::lower(&self.plan).ok().map(Arc::new);
            compile_time = Some(started.elapsed());
            compiled
        });
        (program.clone(), compile_time)
    }
}

/// Counters the cache maintains; read through [`LruCache::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found an entry.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
    /// Entries currently resident.
    pub len: usize,
    /// Configured capacity.
    pub capacity: usize,
    /// Sum of the resident entries' declared costs (0 unless weighted
    /// inserts are used).
    pub bytes: usize,
    /// Configured byte budget; 0 means entry count is the only bound.
    pub byte_budget: usize,
}

/// One resident entry: the shared value, its recency stamp, and the byte
/// cost it was inserted with (0 for unweighted inserts).
#[derive(Debug)]
struct Entry<V> {
    value: Arc<V>,
    stamp: u64,
    cost: usize,
}

/// A bounded least-recently-used map from normalized query text to shared
/// values. Recency is tracked with a monotonic stamp per entry plus an
/// ordered stamp → key index, so get/insert are O(log n).
///
/// Two bounds compose: a maximum entry *count* (always on) and an optional
/// **byte budget** ([`LruCache::with_byte_budget`]) under which each entry
/// carries a caller-declared cost and inserts evict the LRU tail until the
/// resident total fits. The byte budget exists for the match cache, whose
/// values (materialized result-tree sets) vary in size by orders of
/// magnitude — counting entries alone would let a few giant results hold
/// the memory of thousands of small ones.
#[derive(Debug)]
pub struct LruCache<V> {
    capacity: usize,
    byte_budget: Option<usize>,
    bytes: usize,
    next_stamp: u64,
    entries: HashMap<Box<str>, Entry<V>>,
    by_stamp: std::collections::BTreeMap<u64, Box<str>>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl<V> LruCache<V> {
    /// Creates a cache holding at most `capacity` entries (min 1).
    pub fn new(capacity: usize) -> LruCache<V> {
        LruCache {
            capacity: capacity.max(1),
            byte_budget: None,
            bytes: 0,
            next_stamp: 0,
            entries: HashMap::new(),
            by_stamp: std::collections::BTreeMap::new(),
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Creates a cache bounded by both entry count and a byte budget over
    /// the costs passed to [`LruCache::insert_weighted`]. An entry whose
    /// cost alone exceeds the budget is declined rather than cached.
    pub fn with_byte_budget(capacity: usize, budget: usize) -> LruCache<V> {
        let mut cache = LruCache::new(capacity);
        cache.byte_budget = Some(budget.max(1));
        cache
    }

    fn touch(&mut self, key: &str) {
        let stamp = self.next_stamp;
        self.next_stamp += 1;
        if let Some(e) = self.entries.get_mut(key) {
            self.by_stamp.remove(&e.stamp);
            e.stamp = stamp;
            self.by_stamp.insert(stamp, key.into());
        }
    }

    /// Looks `key` up (already normalized), refreshing its recency.
    pub fn get(&mut self, key: &str) -> Option<Arc<V>> {
        match self.entries.get(key) {
            Some(e) => {
                let v = Arc::clone(&e.value);
                self.hits += 1;
                self.touch(key);
                Some(v)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts `value` under `key` (already normalized) with cost 0,
    /// evicting the least recently used entry if at capacity. Returns the
    /// number of evictions performed.
    pub fn insert(&mut self, key: &str, value: Arc<V>) -> u64 {
        self.insert_weighted(key, value, 0)
    }

    /// Inserts `value` under `key` declaring `cost` bytes, evicting LRU
    /// entries until both the entry count and the byte budget (when
    /// configured) are satisfied. An entry larger than the whole budget is
    /// declined — caching it would empty the cache for one unlikely-to-fit
    /// tenant. Returns the number of evictions performed.
    pub fn insert_weighted(&mut self, key: &str, value: Arc<V>, cost: usize) -> u64 {
        if self.byte_budget.is_some_and(|b| cost > b) {
            return 0;
        }
        if self.entries.contains_key(key) {
            // Replace in place, refresh recency, re-cost.
            let stamp_key = key.to_owned();
            self.touch(&stamp_key);
            if let Some(e) = self.entries.get_mut(key) {
                self.bytes = self.bytes - e.cost + cost;
                e.value = value;
                e.cost = cost;
            }
            return self.evict_while_over_budget();
        }
        let mut evicted = 0;
        if self.entries.len() >= self.capacity {
            evicted += self.evict_oldest();
        }
        while self.byte_budget.is_some_and(|b| self.bytes + cost > b) && !self.entries.is_empty() {
            evicted += self.evict_oldest();
        }
        let stamp = self.next_stamp;
        self.next_stamp += 1;
        self.bytes += cost;
        self.entries.insert(key.into(), Entry { value, stamp, cost });
        self.by_stamp.insert(stamp, key.into());
        evicted
    }

    fn evict_oldest(&mut self) -> u64 {
        let Some(oldest) = self.by_stamp.keys().next().copied() else { return 0 };
        let victim = self.by_stamp.remove(&oldest).expect("stamp present");
        if let Some(e) = self.entries.remove(&victim) {
            self.bytes -= e.cost;
        }
        self.evictions += 1;
        1
    }

    /// Used after an in-place replacement grows an entry: the replaced key
    /// holds the newest stamp, so the loop sheds colder entries first and
    /// terminates because a sole remaining entry's cost fits the budget
    /// (oversized costs were declined up front).
    fn evict_while_over_budget(&mut self) -> u64 {
        let mut evicted = 0;
        while self.byte_budget.is_some_and(|b| self.bytes > b) && self.entries.len() > 1 {
            evicted += self.evict_oldest();
        }
        evicted
    }

    /// Looks `key` up without refreshing recency or counting a hit/miss,
    /// returning the value and its declared cost. This is the inspection
    /// path used when *carrying* entries across an update epoch — a carry
    /// is bookkeeping, not workload traffic, so it must not skew the hit
    /// rate or the LRU order.
    pub fn peek(&self, key: &str) -> Option<(Arc<V>, usize)> {
        self.entries.get(key).map(|e| (Arc::clone(&e.value), e.cost))
    }

    /// Snapshots every resident entry whose key starts with `prefix`, as
    /// `(key, value)` pairs. Like [`LruCache::peek`], this touches neither
    /// the counters nor the recency order; it exists so the service can
    /// enumerate one epoch's entries and decide which survive a mutation.
    pub fn collect_prefixed(&self, prefix: &str) -> Vec<(Box<str>, Arc<V>)> {
        self.entries
            .iter()
            .filter(|(k, _)| k.starts_with(prefix))
            .map(|(k, e)| (k.clone(), Arc::clone(&e.value)))
            .collect()
    }

    /// Removes every entry whose key satisfies `pred`, returning how many
    /// were dropped. This is the hot-swap invalidation hook: after a new
    /// epoch is published, the service purges the superseded epoch's plans
    /// in one sweep. Not counted as evictions — eviction measures capacity
    /// pressure, invalidation measures swaps.
    pub fn purge_where(&mut self, pred: impl Fn(&str) -> bool) -> u64 {
        let victims: Vec<Box<str>> = self.entries.keys().filter(|k| pred(k)).cloned().collect();
        for key in &victims {
            if let Some(e) = self.entries.remove(key) {
                self.by_stamp.remove(&e.stamp);
                self.bytes -= e.cost;
            }
        }
        victims.len() as u64
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            len: self.entries.len(),
            capacity: self.capacity,
            bytes: self.bytes,
            byte_budget: self.byte_budget.unwrap_or(0),
        }
    }
}

/// Entry-count ceiling for the match store; the byte budget is the bound
/// that actually matters, this just caps index bookkeeping.
const MATCH_STORE_MAX_ENTRIES: usize = 65_536;

/// The service-wide **pattern-match cache**: APT-fingerprint chain keys
/// (see [`tlc::match_chain_key`]) → materialized result-tree sets, shared
/// by every worker and byte-budgeted because values vary in size by orders
/// of magnitude.
///
/// Keys are scoped with the same `(database, epoch)` prefix scheme as plan
/// keys ([`epoch_prefix`]), which is the whole soundness story: a hot swap
/// bumps the epoch, so entries matched against the superseded snapshot can
/// never be *served* again, and [`MatchStore::purge_where`] drops them
/// eagerly at swap time (counted as invalidations, not evictions).
#[derive(Debug)]
pub struct MatchStore {
    inner: Mutex<LruCache<Vec<tlc::ResultTree>>>,
    invalidated: AtomicU64,
    seeded: AtomicU64,
}

impl MatchStore {
    /// A store bounded by `byte_budget` over the approximate heap size of
    /// the cached result trees.
    pub fn new(byte_budget: usize) -> MatchStore {
        MatchStore {
            inner: Mutex::new(LruCache::with_byte_budget(MATCH_STORE_MAX_ENTRIES, byte_budget)),
            invalidated: AtomicU64::new(0),
            seeded: AtomicU64::new(0),
        }
    }

    /// Current cache counters (hits, misses, evictions, bytes, budget).
    pub fn stats(&self) -> CacheStats {
        self.inner.lock().unwrap().stats()
    }

    /// Entries dropped by invalidation sweeps so far.
    pub fn invalidated(&self) -> u64 {
        self.invalidated.load(Ordering::Relaxed)
    }

    /// Entries carried into a later epoch by [`MatchStore::carry`] so far.
    pub fn seeded(&self) -> u64 {
        self.seeded.load(Ordering::Relaxed)
    }

    /// Carries match entries across an update epoch: for each bare chain
    /// key in `chain_keys`, if `{from_prefix}{key}` is resident its value
    /// is re-inserted under `{to_prefix}{key}` at the same cost. Returns
    /// how many entries were carried. The caller is responsible for only
    /// passing chain keys whose entries provably survive the mutation (see
    /// [`tlc::match_chain_keys`] and [`tlc::Footprint`]); this method is
    /// pure key plumbing.
    pub fn carry(&self, from_prefix: &str, to_prefix: &str, chain_keys: &[String]) -> u64 {
        let mut inner = self.inner.lock().unwrap();
        let mut carried = 0u64;
        for key in chain_keys {
            if let Some((value, cost)) = inner.peek(&format!("{from_prefix}{key}")) {
                inner.insert_weighted(&format!("{to_prefix}{key}"), value, cost);
                carried += 1;
            }
        }
        drop(inner);
        self.seeded.fetch_add(carried, Ordering::Relaxed);
        carried
    }

    /// Invalidation sweep: removes every entry whose key satisfies `pred`,
    /// returning how many were dropped.
    pub fn purge_where(&self, pred: impl Fn(&str) -> bool) -> u64 {
        let dropped = self.inner.lock().unwrap().purge_where(pred);
        self.invalidated.fetch_add(dropped, Ordering::Relaxed);
        dropped
    }
}

/// A [`MatchStore`] view scoped to one `(database, epoch)` snapshot — the
/// object handed to the executor as its [`tlc::MatchCache`]. The executor
/// keys by APT-fingerprint chain alone; the scope prefixes every key, so
/// two databases (or two epochs of one) can never exchange entries even
/// when their queries fingerprint identically.
#[derive(Debug)]
pub struct ScopedMatchCache {
    store: Arc<MatchStore>,
    prefix: String,
}

impl ScopedMatchCache {
    /// A view of `store` for database `db` at `epoch`.
    pub fn new(store: Arc<MatchStore>, db: &str, epoch: u64) -> ScopedMatchCache {
        ScopedMatchCache { store, prefix: epoch_prefix(db, epoch) }
    }
}

impl tlc::MatchCache for ScopedMatchCache {
    fn get(&self, key: &str) -> Option<Arc<Vec<tlc::ResultTree>>> {
        self.store.inner.lock().unwrap().get(&format!("{}{key}", self.prefix))
    }

    fn put(&self, key: &str, trees: &[tlc::ResultTree]) {
        let cost = std::mem::size_of::<Vec<tlc::ResultTree>>()
            + trees.iter().map(tlc::ResultTree::approx_bytes).sum::<usize>();
        self.store.inner.lock().unwrap().insert_weighted(
            &format!("{}{key}", self.prefix),
            Arc::new(trees.to_vec()),
            cost,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization_collapses_whitespace() {
        assert_eq!(normalize_query("  FOR  $x\n\tIN doc  "), "FOR $x IN doc");
        assert_eq!(normalize_query("a b"), "a b");
        assert_eq!(normalize_query(""), "");
        assert_eq!(normalize_query("   \n\t "), "");
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c: LruCache<i32> = LruCache::new(2);
        c.insert("a", Arc::new(1));
        c.insert("b", Arc::new(2));
        assert!(c.get("a").is_some()); // refresh a: b is now LRU
        c.insert("c", Arc::new(3)); // evicts b
        assert!(c.get("a").is_some());
        assert!(c.get("b").is_none());
        assert!(c.get("c").is_some());
        let s = c.stats();
        assert_eq!(s.evictions, 1);
        assert_eq!(s.len, 2);
    }

    #[test]
    fn evicted_value_survives_while_referenced() {
        let mut c: LruCache<String> = LruCache::new(1);
        c.insert("a", Arc::new("alive".to_string()));
        let held = c.get("a").unwrap();
        c.insert("b", Arc::new("other".to_string())); // evicts a
        assert!(c.get("a").is_none());
        assert_eq!(&*held, "alive"); // the Arc keeps it usable
    }

    #[test]
    fn reinsert_replaces_without_eviction() {
        let mut c: LruCache<i32> = LruCache::new(2);
        c.insert("a", Arc::new(1));
        assert_eq!(c.insert("a", Arc::new(9)), 0);
        assert_eq!(*c.get("a").unwrap(), 9);
        assert_eq!(c.stats().len, 1);
        assert_eq!(c.stats().evictions, 0);
    }

    #[test]
    fn plan_keys_separate_databases_and_epochs() {
        let text = "FOR $x IN doc RETURN $x";
        assert_ne!(plan_key("a", 0, text), plan_key("b", 0, text));
        assert_ne!(plan_key("a", 0, text), plan_key("a", 1, text));
        assert!(plan_key("a", 3, text).starts_with(&epoch_prefix("a", 3)));
        assert!(plan_key("a", 3, text).starts_with(&db_prefix("a")));
        assert!(!plan_key("a", 3, text).starts_with(&epoch_prefix("a", 2)));
        // "ab" must not look like a stale entry of database "a".
        assert!(!plan_key("ab", 0, text).starts_with(&db_prefix("a")));
    }

    #[test]
    fn purge_drops_matching_entries_only() {
        let mut c: LruCache<i32> = LruCache::new(8);
        c.insert(&plan_key("a", 0, "q1"), Arc::new(1));
        c.insert(&plan_key("a", 0, "q2"), Arc::new(2));
        c.insert(&plan_key("a", 1, "q1"), Arc::new(3));
        c.insert(&plan_key("b", 0, "q1"), Arc::new(4));
        let stale =
            |k: &str| k.starts_with(&db_prefix("a")) && !k.starts_with(&epoch_prefix("a", 1));
        assert_eq!(c.purge_where(stale), 2);
        assert!(c.get(&plan_key("a", 0, "q1")).is_none());
        assert!(c.get(&plan_key("a", 1, "q1")).is_some());
        assert!(c.get(&plan_key("b", 0, "q1")).is_some());
        let s = c.stats();
        assert_eq!(s.len, 2);
        assert_eq!(s.evictions, 0, "invalidation is not eviction");
        // Purged stamps are gone too: inserting past capacity still evicts
        // exactly one live entry.
        for i in 0..7 {
            c.insert(&format!("fill{i}"), Arc::new(i));
        }
        assert_eq!(c.stats().len, 8);
    }

    #[test]
    fn byte_budget_evicts_lru_until_the_new_entry_fits() {
        let mut c: LruCache<i32> = LruCache::with_byte_budget(16, 100);
        assert_eq!(c.insert_weighted("a", Arc::new(1), 40), 0);
        assert_eq!(c.insert_weighted("b", Arc::new(2), 40), 0);
        assert!(c.get("a").is_some()); // refresh a: b is now LRU
                                       // 40 + 40 + 30 > 100 → evicts b (the LRU), keeps a.
        assert_eq!(c.insert_weighted("c", Arc::new(3), 30), 1);
        assert!(c.get("a").is_some());
        assert!(c.get("b").is_none());
        assert!(c.get("c").is_some());
        let s = c.stats();
        assert_eq!((s.bytes, s.byte_budget, s.len, s.evictions), (70, 100, 2, 1));
    }

    #[test]
    fn oversized_entries_are_declined_not_cached() {
        let mut c: LruCache<i32> = LruCache::with_byte_budget(16, 100);
        c.insert_weighted("small", Arc::new(1), 10);
        assert_eq!(c.insert_weighted("huge", Arc::new(2), 101), 0);
        assert!(c.get("huge").is_none());
        assert!(c.get("small").is_some(), "declining must not disturb residents");
        assert_eq!(c.stats().bytes, 10);
    }

    #[test]
    fn replacement_recosts_and_sheds_colder_entries() {
        let mut c: LruCache<i32> = LruCache::with_byte_budget(16, 100);
        c.insert_weighted("a", Arc::new(1), 30);
        c.insert_weighted("b", Arc::new(2), 30);
        c.insert_weighted("c", Arc::new(3), 30);
        // Re-insert c at a larger cost: a (coldest) goes, b and c stay.
        c.insert_weighted("c", Arc::new(4), 60);
        assert!(c.get("a").is_none());
        assert!(c.get("b").is_some());
        assert_eq!(*c.get("c").unwrap(), 4);
        assert_eq!(c.stats().bytes, 90);
    }

    #[test]
    fn purge_releases_bytes() {
        let mut c: LruCache<i32> = LruCache::with_byte_budget(16, 100);
        c.insert_weighted(&plan_key("a", 0, "q"), Arc::new(1), 40);
        c.insert_weighted(&plan_key("b", 0, "q"), Arc::new(2), 25);
        assert_eq!(c.purge_where(|k| k.starts_with(&db_prefix("a"))), 1);
        assert_eq!(c.stats().bytes, 25);
    }

    #[test]
    fn scoped_match_caches_isolate_databases_and_epochs() {
        use tlc::MatchCache as _;
        let store = Arc::new(MatchStore::new(1 << 20));
        let a0 = ScopedMatchCache::new(Arc::clone(&store), "a", 0);
        let a1 = ScopedMatchCache::new(Arc::clone(&store), "a", 1);
        let b0 = ScopedMatchCache::new(Arc::clone(&store), "b", 0);
        a0.put("Sfp", &[]);
        assert!(a0.get("Sfp").is_some());
        assert!(a1.get("Sfp").is_none(), "epochs must not share entries");
        assert!(b0.get("Sfp").is_none(), "databases must not share entries");
        // Swap `a` to epoch 1: purge its superseded entries only.
        let live = epoch_prefix("a", 1);
        let all = db_prefix("a");
        assert_eq!(store.purge_where(|k| k.starts_with(&all) && !k.starts_with(&live)), 1);
        assert_eq!(store.invalidated(), 1);
        assert!(a0.get("Sfp").is_none());
        assert_eq!(store.stats().bytes, 0);
    }

    #[test]
    fn peek_and_collect_disturb_neither_stats_nor_recency() {
        let mut c: LruCache<i32> = LruCache::new(2);
        c.insert("a", Arc::new(1));
        c.insert("b", Arc::new(2));
        assert_eq!(c.peek("a").map(|(v, cost)| (*v, cost)), Some((1, 0)));
        assert!(c.peek("zzz").is_none());
        let mut keys: Vec<Box<str>> = c.collect_prefixed("").into_iter().map(|(k, _)| k).collect();
        keys.sort();
        assert_eq!(keys, vec!["a".into(), "b".into()]);
        assert_eq!(c.collect_prefixed("a").len(), 1);
        let s = c.stats();
        assert_eq!((s.hits, s.misses), (0, 0), "peeks must not count as lookups");
        // `a` was peeked but not touched, so it is still the LRU victim.
        c.insert("c", Arc::new(3));
        assert!(c.peek("a").is_none());
        assert!(c.peek("b").is_some());
    }

    #[test]
    fn carry_copies_entries_under_the_new_epoch_prefix() {
        use tlc::MatchCache as _;
        let store = Arc::new(MatchStore::new(1 << 20));
        let e0 = ScopedMatchCache::new(Arc::clone(&store), "db", 0);
        let e1 = ScopedMatchCache::new(Arc::clone(&store), "db", 1);
        e0.put("Sfp", &[]);
        e0.put("Sother", &[]);
        let keys = vec!["Sfp".to_string(), "Snever-cached".to_string()];
        let carried = store.carry(&epoch_prefix("db", 0), &epoch_prefix("db", 1), &keys);
        assert_eq!(carried, 1, "only resident keys carry");
        assert_eq!(store.seeded(), 1);
        assert!(e1.get("Sfp").is_some(), "carried entry must serve the new epoch");
        assert!(e1.get("Sother").is_none(), "uncarried keys stay stale-only");
        // The old epoch's copies still exist until the caller purges them.
        assert!(e0.get("Sfp").is_some());
    }

    #[test]
    fn unweighted_cache_reports_zero_budget() {
        let mut c: LruCache<i32> = LruCache::new(2);
        c.insert("a", Arc::new(1));
        let s = c.stats();
        assert_eq!((s.bytes, s.byte_budget), (0, 0));
    }

    #[test]
    fn hit_and_miss_counters_track_lookups() {
        let mut c: LruCache<i32> = LruCache::new(4);
        assert!(c.get("x").is_none());
        c.insert("x", Arc::new(1));
        assert!(c.get("x").is_some());
        assert!(c.get("x").is_some());
        let s = c.stats();
        assert_eq!((s.hits, s.misses), (2, 1));
    }
}
