//! The multi-database catalog: named databases behind epoch-versioned,
//! hot-swappable handles.
//!
//! The service used to pin one `Arc<Database>` for the process lifetime, so
//! one `tlc-serve` could serve exactly one document set and picking up a
//! regenerated store meant a restart. The catalog is the layer that removes
//! both limits: it owns a registry of **named databases**, each published
//! through a [`CatalogEntry`] that pairs the `Arc<Database>` with a
//! monotonically increasing **epoch**.
//!
//! **Publishing is arc-swap-style.** Every name maps to a slot whose current
//! entry sits behind a `Mutex<Arc<CatalogEntry>>`; readers lock only long
//! enough to clone the `Arc` (clone-on-read), writers lock only long enough
//! to store a new one. A swap ([`Catalog::register`] on an existing name,
//! [`Catalog::open`], [`Catalog::reload`]) therefore never blocks in-flight
//! requests: work that resolved the old entry keeps executing against the
//! old `Arc<Database>` until it finishes, while every resolve after the
//! swap sees the new database under the next epoch. The old store is freed
//! when its last in-flight reference drops.
//!
//! **Epochs are correctness, not bookkeeping.** Compiled plans bind the
//! [`xmldb::TagId`]s of the database they were compiled against, and two
//! loads of even the *same* XML may assign different ids. The epoch is what
//! lets the plan cache key on `(database, epoch, query)` so a plan compiled
//! before a swap can never be served after it — see
//! [`crate::cache::plan_key`] and the swap hook in [`crate::Service`].
//!
//! The catalog itself is engine-agnostic and does no caching; it is shared
//! by the service (which layers the plan cache and metrics on top) and by
//! `tlc-shell`'s local session.

use std::collections::HashMap;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use xmldb::Database;

/// Name under which [`crate::Service::new`] registers the database it is
/// constructed with; sessions start with this database selected.
pub const DEFAULT_DB: &str = "main";

/// Errors the catalog reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CatalogError {
    /// The database name is empty or contains non-printable/whitespace
    /// characters (names travel through the whitespace-split line protocol).
    InvalidName(String),
    /// No database is registered under this name.
    Unknown(String),
    /// The database was registered in-memory, so there is no file to
    /// reload it from.
    NoSource(String),
    /// Loading the source file failed (I/O, parse, or snapshot decode).
    Load {
        /// The database the load was for.
        name: String,
        /// The underlying loader error.
        message: String,
    },
}

impl fmt::Display for CatalogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CatalogError::InvalidName(n) => {
                write!(f, "invalid database name {n:?} (printable, no whitespace)")
            }
            CatalogError::Unknown(n) => write!(f, "unknown database {n:?}"),
            CatalogError::NoSource(n) => {
                write!(f, "database {n:?} was registered in-memory; nothing to reload")
            }
            CatalogError::Load { name, message } => write!(f, "loading {name:?}: {message}"),
        }
    }
}

impl std::error::Error for CatalogError {}

/// One published snapshot of a named database: the immutable pairing of
/// `(name, epoch, Arc<Database>)`. Cloning is cheap; holding an entry pins
/// the store it points at across any number of later swaps.
#[derive(Debug, Clone)]
pub struct CatalogEntry {
    name: Arc<str>,
    epoch: u64,
    db: Arc<Database>,
}

impl CatalogEntry {
    /// The catalog name this entry was published under.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The publish generation: 0 at first registration, +1 per swap.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The database snapshot this entry pins.
    pub fn database(&self) -> &Arc<Database> {
        &self.db
    }

    /// The name as the shared allocation (cheap to clone into responses).
    pub(crate) fn shared_name(&self) -> Arc<str> {
        Arc::clone(&self.name)
    }
}

/// One registry slot. The slot outlives every entry published into it:
/// `current` is the arc-swap cell, `source` remembers where the data came
/// from (for [`Catalog::reload`]), `swaps` counts publishes after the first.
struct Slot {
    current: Mutex<Arc<CatalogEntry>>,
    source: Mutex<Option<PathBuf>>,
    swaps: AtomicU64,
}

/// A point-in-time description of one catalog slot, for listings.
#[derive(Debug, Clone)]
pub struct CatalogRow {
    /// Database name.
    pub name: String,
    /// Current epoch.
    pub epoch: u64,
    /// Swaps performed since registration.
    pub swaps: u64,
    /// Documents in the current snapshot.
    pub documents: usize,
    /// Nodes in the current snapshot.
    pub nodes: usize,
    /// File the database was loaded from, if any.
    pub source: Option<PathBuf>,
}

/// The registry of named, epoch-versioned databases. See the module docs.
#[derive(Default)]
pub struct Catalog {
    slots: RwLock<HashMap<Box<str>, Arc<Slot>>>,
}

fn validate(name: &str) -> Result<(), CatalogError> {
    if name.is_empty() || !name.chars().all(|c| c.is_ascii_graphic()) {
        return Err(CatalogError::InvalidName(name.to_string()));
    }
    Ok(())
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Registers `db` under `name`, or — if the name exists — publishes it
    /// as the next epoch (a hot swap). Returns the published entry.
    pub fn register(
        &self,
        name: &str,
        db: Arc<Database>,
    ) -> Result<Arc<CatalogEntry>, CatalogError> {
        self.install(name, db, None)
    }

    /// Loads `path` (TLCX snapshot or XML, sniffed by content) and publishes
    /// it under `name` — registering a new database or hot-swapping an
    /// existing one. The path is remembered as the slot's reload source.
    pub fn open(&self, name: &str, path: &Path) -> Result<Arc<CatalogEntry>, CatalogError> {
        self.open_at(name, path, 0)
    }

    /// Like [`Catalog::open`], but when the name is *new* its first entry
    /// is published at `epoch` instead of 0. This is the manifest-restore
    /// path (see [`crate::manifest`]): a restarted server re-publishes each
    /// database at the epoch it last reached, so epochs stay monotonic for
    /// any client that recorded `(name, epoch)` pairs across the restart.
    /// If the name already exists, `epoch` is ignored and this is an
    /// ordinary hot swap.
    pub fn open_at(
        &self,
        name: &str,
        path: &Path,
        epoch: u64,
    ) -> Result<Arc<CatalogEntry>, CatalogError> {
        validate(name)?;
        let db = xmldb::load_path(path)
            .map_err(|e| CatalogError::Load { name: name.to_string(), message: e.to_string() })?;
        self.install_at(name, Arc::new(db), Some(path.to_path_buf()), epoch)
    }

    /// Re-reads `name`'s source file and publishes the result as the next
    /// epoch. In-flight requests keep the entry they resolved; the old
    /// store is dropped once the last of them finishes.
    pub fn reload(&self, name: &str) -> Result<Arc<CatalogEntry>, CatalogError> {
        let slot = self.slot(name)?;
        let source = slot
            .source
            .lock()
            .unwrap()
            .clone()
            .ok_or_else(|| CatalogError::NoSource(name.to_string()))?;
        let db = xmldb::load_path(&source)
            .map_err(|e| CatalogError::Load { name: name.to_string(), message: e.to_string() })?;
        self.install(name, Arc::new(db), None)
    }

    /// Unregisters `name`, dropping its slot. In-flight work holding the
    /// entry keeps its snapshot alive until it finishes; later resolves
    /// fail with [`CatalogError::Unknown`].
    pub fn remove(&self, name: &str) -> Result<(), CatalogError> {
        if self.slots.write().unwrap().remove(name).is_none() {
            return Err(CatalogError::Unknown(name.to_string()));
        }
        Ok(())
    }

    /// Resolves the current entry for `name` (clone-on-read: the returned
    /// `Arc` stays valid across any later swap).
    pub fn resolve(&self, name: &str) -> Result<Arc<CatalogEntry>, CatalogError> {
        let slot = self.slot(name)?;
        let entry = Arc::clone(&slot.current.lock().unwrap());
        Ok(entry)
    }

    /// Whether `name` is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.slots.read().unwrap().contains_key(name)
    }

    /// Number of registered databases.
    pub fn len(&self) -> usize {
        self.slots.read().unwrap().len()
    }

    /// True when no database is registered.
    pub fn is_empty(&self) -> bool {
        self.slots.read().unwrap().is_empty()
    }

    /// Point-in-time listing of every slot, sorted by name.
    pub fn list(&self) -> Vec<CatalogRow> {
        let slots: Vec<(Box<str>, Arc<Slot>)> = {
            let map = self.slots.read().unwrap();
            map.iter().map(|(k, v)| (k.clone(), Arc::clone(v))).collect()
        };
        let mut rows: Vec<CatalogRow> = slots
            .into_iter()
            .map(|(name, slot)| {
                let entry = Arc::clone(&slot.current.lock().unwrap());
                CatalogRow {
                    name: name.into(),
                    epoch: entry.epoch,
                    swaps: slot.swaps.load(Ordering::Relaxed),
                    documents: entry.db.document_count(),
                    nodes: entry.db.node_count(),
                    source: slot.source.lock().unwrap().clone(),
                }
            })
            .collect();
        rows.sort_by(|a, b| a.name.cmp(&b.name));
        rows
    }

    fn slot(&self, name: &str) -> Result<Arc<Slot>, CatalogError> {
        self.slots
            .read()
            .unwrap()
            .get(name)
            .cloned()
            .ok_or_else(|| CatalogError::Unknown(name.to_string()))
    }

    /// The one publish path: creates the slot on first sight, otherwise
    /// swaps the current entry in under the next epoch. `source`, when
    /// given, becomes (or replaces) the slot's reload source.
    fn install(
        &self,
        name: &str,
        db: Arc<Database>,
        source: Option<PathBuf>,
    ) -> Result<Arc<CatalogEntry>, CatalogError> {
        self.install_at(name, db, source, 0)
    }

    /// As [`Catalog::install`], with a caller-chosen epoch for the *first*
    /// publication of a new name (swaps of existing names ignore it).
    fn install_at(
        &self,
        name: &str,
        db: Arc<Database>,
        source: Option<PathBuf>,
        start_epoch: u64,
    ) -> Result<Arc<CatalogEntry>, CatalogError> {
        validate(name)?;
        let mut slots = self.slots.write().unwrap();
        if let Some(slot) = slots.get(name) {
            let slot = Arc::clone(slot);
            drop(slots); // publish outside the map lock: only this slot is touched
            let entry = {
                let mut current = slot.current.lock().unwrap();
                let entry = Arc::new(CatalogEntry {
                    name: Arc::clone(&current.name),
                    epoch: current.epoch + 1,
                    db,
                });
                *current = Arc::clone(&entry);
                entry
            };
            slot.swaps.fetch_add(1, Ordering::Relaxed);
            if source.is_some() {
                *slot.source.lock().unwrap() = source;
            }
            Ok(entry)
        } else {
            let entry = Arc::new(CatalogEntry { name: name.into(), epoch: start_epoch, db });
            let slot = Arc::new(Slot {
                current: Mutex::new(Arc::clone(&entry)),
                source: Mutex::new(source),
                swaps: AtomicU64::new(0),
            });
            slots.insert(name.into(), slot);
            Ok(entry)
        }
    }
}

/// Renders a catalog listing as the text block `.catalog` returns.
pub fn render(rows: &[CatalogRow]) -> String {
    let mut out = format!("catalog: {} database(s)\n", rows.len());
    for r in rows {
        let source = match &r.source {
            Some(p) => format!(", source {}", p.display()),
            None => ", in-memory".to_string(),
        };
        out.push_str(&format!(
            "  {}: epoch {}, {} swap(s), {} document(s), {} nodes{}\n",
            r.name, r.epoch, r.swaps, r.documents, r.nodes, source
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_db(xml: &str) -> Arc<Database> {
        let mut db = Database::new();
        db.load_xml("auction.xml", xml).unwrap();
        Arc::new(db)
    }

    #[test]
    fn register_resolve_and_list() {
        let cat = Catalog::new();
        cat.register("a", tiny_db("<r><x/></r>")).unwrap();
        cat.register("b", tiny_db("<r><x/><x/></r>")).unwrap();
        assert!(cat.contains("a") && cat.contains("b") && !cat.contains("c"));
        assert_eq!(cat.len(), 2);
        let a = cat.resolve("a").unwrap();
        assert_eq!((a.name(), a.epoch()), ("a", 0));
        let rows = cat.list();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].name, "a"); // sorted
        assert!(render(&rows).contains("b: epoch 0"));
        assert!(matches!(cat.resolve("c"), Err(CatalogError::Unknown(_))));
    }

    #[test]
    fn swap_bumps_epoch_and_pins_old_readers() {
        let cat = Catalog::new();
        cat.register("d", tiny_db("<r><x/></r>")).unwrap();
        let old = cat.resolve("d").unwrap();
        let new = cat.register("d", tiny_db("<r><x/><x/><x/></r>")).unwrap();
        assert_eq!(new.epoch(), 1);
        // The held entry still reads the old snapshot.
        assert_eq!(old.database().nodes_with_tag("x").len(), 1);
        assert_eq!(cat.resolve("d").unwrap().database().nodes_with_tag("x").len(), 3);
        assert_eq!(cat.list()[0].swaps, 1);
    }

    #[test]
    fn remove_drops_the_slot_but_pins_held_entries() {
        let cat = Catalog::new();
        cat.register("gone", tiny_db("<r><x/></r>")).unwrap();
        let held = cat.resolve("gone").unwrap();
        cat.remove("gone").unwrap();
        assert!(!cat.contains("gone"));
        assert!(matches!(cat.resolve("gone"), Err(CatalogError::Unknown(_))));
        assert!(matches!(cat.remove("gone"), Err(CatalogError::Unknown(_))));
        // The held entry still reads its snapshot.
        assert_eq!(held.database().nodes_with_tag("x").len(), 1);
        // Re-registering starts a fresh slot at epoch 0.
        assert_eq!(cat.register("gone", tiny_db("<r/>")).unwrap().epoch(), 0);
    }

    #[test]
    fn names_are_validated() {
        let cat = Catalog::new();
        for bad in ["", "two words", "tab\there", "é"] {
            assert!(matches!(
                cat.register(bad, tiny_db("<r/>")),
                Err(CatalogError::InvalidName(_))
            ));
        }
    }

    #[test]
    fn reload_requires_a_source() {
        let cat = Catalog::new();
        cat.register("mem", tiny_db("<r/>")).unwrap();
        assert!(matches!(cat.reload("mem"), Err(CatalogError::NoSource(_))));
        assert!(matches!(cat.reload("ghost"), Err(CatalogError::Unknown(_))));
    }

    #[test]
    fn open_and_reload_from_disk() {
        let path = std::env::temp_dir().join(format!("catalog_open_{}.xml", std::process::id()));
        std::fs::write(&path, "<r><v>1</v></r>").unwrap();
        let cat = Catalog::new();
        let e0 = cat.open("disk", &path).unwrap();
        assert_eq!(e0.epoch(), 0);
        assert_eq!(e0.database().nodes_with_tag("v").len(), 1);
        // Edit the file, reload: next epoch, new content, old entry intact.
        std::fs::write(&path, "<r><v>1</v><v>2</v></r>").unwrap();
        let e1 = cat.reload("disk").unwrap();
        assert_eq!(e1.epoch(), 1);
        assert_eq!(e1.database().nodes_with_tag("v").len(), 2);
        assert_eq!(e0.database().nodes_with_tag("v").len(), 1);
        // Opening a missing file is a typed load error.
        assert!(matches!(
            cat.open("nope", std::path::Path::new("/nonexistent/x.xml")),
            Err(CatalogError::Load { .. })
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn open_at_restores_a_recorded_epoch_for_new_names_only() {
        let path = std::env::temp_dir().join(format!("catalog_openat_{}.xml", std::process::id()));
        std::fs::write(&path, "<r><v>1</v></r>").unwrap();
        let cat = Catalog::new();
        let restored = cat.open_at("hist", &path, 7).unwrap();
        assert_eq!(restored.epoch(), 7);
        // A later swap continues from there.
        assert_eq!(cat.open("hist", &path).unwrap().epoch(), 8);
        // open_at on an existing name is an ordinary swap: epoch ignored.
        assert_eq!(cat.open_at("hist", &path, 3).unwrap().epoch(), 9);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn concurrent_swaps_and_reads_stay_coherent() {
        let cat = Arc::new(Catalog::new());
        cat.register("hot", tiny_db("<r><x/></r>")).unwrap();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let cat = Arc::clone(&cat);
                s.spawn(move || {
                    for _ in 0..50 {
                        let e = cat.resolve("hot").unwrap();
                        // Whatever snapshot we pinned stays internally valid.
                        assert!(!e.database().nodes_with_tag("x").is_empty());
                    }
                });
            }
            for _ in 0..2 {
                let cat = Arc::clone(&cat);
                s.spawn(move || {
                    for _ in 0..25 {
                        cat.register("hot", tiny_db("<r><x/><x/></r>")).unwrap();
                    }
                });
            }
        });
        assert_eq!(cat.resolve("hot").unwrap().epoch(), 50);
    }
}
