#![warn(missing_docs)]

//! # service — the concurrent query-service layer
//!
//! Everything below this crate evaluates one query at a time from scratch:
//! parse → translate → optimize → execute through `baselines::run`. This
//! crate turns that library into a long-lived, thread-safe **service** that
//! owns a catalog of named databases and serves many clients at once:
//!
//! * **catalog** ([`catalog`]) — a registry of named databases, each
//!   published through an epoch-versioned [`catalog::CatalogEntry`] that
//!   can be **hot-swapped** (reloaded from disk, replaced in memory)
//!   without dropping in-flight requests: work that resolved the old entry
//!   finishes against the old `Arc<Database>`, new requests see the new
//!   epoch. Queries route to a database by name; [`catalog::DEFAULT_DB`]
//!   is the one the service is constructed with.
//! * **plan cache** ([`cache`]) — a bounded LRU from `(database, epoch,
//!   whitespace-normalized query text)` to the compiled, optimized TLC
//!   plan. The evaluation workload is a repeated-template workload, so
//!   compile-once/execute-many removes the whole front half of the
//!   pipeline from the hot path. The epoch in the key is what makes hot
//!   swap sound: plans bind tag ids of the store they were compiled
//!   against, and a superseded epoch's entries can never be served again
//!   (they are also purged eagerly at swap time).
//! * **match cache** ([`cache::MatchStore`]) — an epoch-keyed,
//!   byte-budgeted LRU of *pattern-match results*: the executor consults it
//!   through [`tlc::MatchCache`] keyed by canonical APT fingerprints
//!   ([`tlc::match_chain_key`]), so repeated templates skip the structural
//!   joins entirely, not just compilation. Keys carry the same
//!   `(database, epoch)` prefix as plan keys, making stale hits across hot
//!   swaps impossible; swaps purge superseded entries eagerly.
//! * **worker pool** ([`pool`]) — a fixed set of executor threads behind a
//!   bounded admission queue. A full queue rejects new work immediately
//!   ([`ServiceError::Overloaded`]) instead of queueing without bound.
//!   Dispatch is **batch-aware**: a worker picking up a job also claims
//!   queued jobs of the same `(database, epoch)` group (up to
//!   [`ServiceConfig::batch_max`]) and runs them back to back, sharing the
//!   snapshot's warm match-cache entries and index postings.
//! * **deadlines** — every request can carry a wall-clock budget; time
//!   spent queued counts against it. The TLC executor checks the deadline
//!   between operators ([`tlc::execute_with_deadline`]), so an over-budget
//!   query aborts cleanly with [`ServiceError::DeadlineExceeded`] and frees
//!   its worker instead of wedging it. Independently, a caller can bound
//!   how long it *waits* for an admitted job
//!   ([`ServiceConfig::client_wait`]); giving up returns
//!   [`ServiceError::Abandoned`] while the worker finishes the job and
//!   discards the reply.
//! * **metrics** ([`metrics`]) — per-query latency histograms (count /
//!   mean / p50 / p95 / max), plan-cache hit rate, per-database hit/miss/
//!   swap/invalidation counters, and rolled-up [`tlc::ExecStats`]
//!   counters, dumped as a text report.
//!
//! The read path of every store is immutable after load, so any number of
//! workers share each `Arc<Database>` with no synchronization at all; the
//! only mutable state on the query path is the catalog's publish cell and
//! the cache/metrics registries. The compile-time assertions at the bottom
//! of this module pin the `Send + Sync` requirements the design rests on.
//!
//! ```
//! use std::sync::Arc;
//! let db = Arc::new(xmark::auction_database(0.001));
//! let svc = service::Service::new(db, service::ServiceConfig::default());
//! let q = r#"FOR $p IN document("auction.xml")//person RETURN $p/name"#;
//! let first = svc.execute(q).unwrap();
//! let second = svc.execute(q).unwrap(); // plan comes from the cache
//! assert!(!first.cache_hit && second.cache_hit);
//! assert_eq!(first.output, second.output);
//! ```

pub mod cache;
pub mod catalog;
pub mod manifest;
pub mod metrics;
pub mod pool;
pub mod protocol;

use baselines::Engine;
use cache::{CacheStats, CachedPlan, LruCache};
use catalog::{Catalog, CatalogEntry, CatalogError, DEFAULT_DB};
use metrics::{Metrics, Outcome, Snapshot};
use pool::{Pool, Reply, SubmitError};
use std::fmt;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::RecvTimeoutError;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use tlc::par::{
    plan_shards, resolve_path, run_shard, run_shard_vm, ShardEnv, ShardPlan, ShardPolicy,
};
use tlc::{AnchorRange, ExecStats, Plan, ResultTree};
use xmldb::Database;

/// Configuration for a [`Service`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Engine used to compile and execute queries. Plan-based engines get
    /// plan caching; [`Engine::Nav`] is interpreted per request.
    pub engine: Engine,
    /// Executor threads.
    pub workers: usize,
    /// Bounded admission-queue depth (requests waiting beyond the ones
    /// being executed). Submissions past it fail with
    /// [`ServiceError::Overloaded`].
    pub queue_depth: usize,
    /// Plan-cache capacity in entries.
    pub plan_cache_capacity: usize,
    /// Wall-clock budget applied to requests that do not carry their own;
    /// `None` means unlimited.
    pub default_deadline: Option<Duration>,
    /// Client-side bound on how long a caller blocks waiting for an
    /// *admitted* job's reply. `None` parks until the reply arrives (the
    /// pre-catalog behavior); `Some(limit)` makes the caller give up with
    /// [`ServiceError::Abandoned`] after `limit` — the worker still runs
    /// the job to completion and discards the reply. Abandoned requests
    /// are counted in [`metrics::Snapshot::abandoned`].
    pub client_wait: Option<Duration>,
    /// Byte budget for the epoch-keyed pattern-match cache shared by all
    /// workers (approximate heap bytes of the cached result trees). `0`
    /// disables the cache entirely — every request then re-runs its
    /// structural matches, which is the right baseline for benchmarking.
    pub match_cache_bytes: usize,
    /// Upper bound on how many same-`(database, epoch)` jobs one worker
    /// claims per dispatch (see [`pool::Pool::batched`]). `1` disables
    /// batching; batching never delays admission, it only co-locates
    /// already-queued work so consecutive executions share the snapshot's
    /// warm match-cache entries and index postings.
    pub batch_max: usize,
    /// Execute cached plans through the register-IR backend ([`tlc::vm`]):
    /// each plan-cache entry is lowered once into a verified
    /// [`tlc::vm::Program`] (fused operator spines, compiled match-cache
    /// probes) and every execution replays it, byte-identical to the tree
    /// walker. `false` forces the tree-walking executor — the comparison
    /// baseline for benchmarking. Plans the lowerer declines fall back to
    /// the tree walk either way.
    pub ir: bool,
    /// Upper bound on intra-query shards per execution wave
    /// ([`tlc::par::ShardPolicy::max_shards`]). `0` (the default) disables
    /// sharding entirely; values of 2+ let eligible requests split their
    /// anchor candidates into up to this many range windows, executed as
    /// independent pool jobs and merged back in document order. Plans the
    /// shard planner declines run sequentially either way.
    pub shard_max: usize,
    /// Anchor-candidate count below which a shardable plan still executes
    /// sequentially — per-shard setup cannot amortize on small inputs
    /// ([`tlc::par::ShardPolicy::min_candidates`]).
    pub shard_min_candidates: usize,
    /// Retained-byte budget, in KiB, of each pooled execution arena
    /// ([`tlc::ExecArena`]); the `--arena-kb` flag. Every request (and
    /// every shard job) checks a private arena out of a service-wide
    /// [`pool::ArenaPool`] and successful jobs return it reset-not-freed,
    /// so one request's buffer allocations become the next one's capacity.
    /// `0` disables recycling entirely — the seed allocation behavior.
    pub arena_kb: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        let workers = std::thread::available_parallelism().map_or(4, |n| n.get()).min(8);
        ServiceConfig {
            engine: Engine::Tlc,
            workers,
            queue_depth: workers * 4,
            plan_cache_capacity: 128,
            default_deadline: None,
            client_wait: None,
            match_cache_bytes: 32 << 20,
            batch_max: 8,
            ir: true,
            shard_max: 0,
            shard_min_candidates: 512,
            arena_kb: tlc::DEFAULT_ARENA_BYTES / 1024,
        }
    }
}

/// Errors a request can come back with.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceError {
    /// The query failed to parse or translate.
    Compile(tlc::Error),
    /// The plan failed during execution.
    Execute(tlc::Error),
    /// The request exceeded its wall-clock deadline (queued time included).
    DeadlineExceeded,
    /// The admission queue was full.
    Overloaded {
        /// The configured queue depth that was exhausted.
        queue_depth: usize,
    },
    /// The service is shutting down.
    ShuttingDown,
    /// A catalog operation failed (unknown database, bad name, load error).
    Catalog(CatalogError),
    /// The caller's client-side wait deadline expired before the admitted
    /// job replied; the job itself still runs, its result discarded.
    Abandoned {
        /// How long the caller waited before giving up.
        waited: Duration,
    },
    /// The operation is not supported for the configured engine (e.g.
    /// preparing a plan for the interpreted NAV engine).
    Unsupported(String),
    /// An in-place update ([`Service::apply_update`]) was rejected by the
    /// update engine or referenced an unknown document.
    Update(String),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Compile(e) => write!(f, "compile error: {e}"),
            ServiceError::Execute(e) => write!(f, "execution error: {e}"),
            ServiceError::DeadlineExceeded => write!(f, "deadline exceeded"),
            ServiceError::Overloaded { queue_depth } => {
                write!(f, "service overloaded (queue depth {queue_depth} exhausted)")
            }
            ServiceError::ShuttingDown => write!(f, "service is shutting down"),
            ServiceError::Catalog(e) => write!(f, "catalog error: {e}"),
            ServiceError::Abandoned { waited } => {
                write!(f, "caller abandoned the request after waiting {waited:?}")
            }
            ServiceError::Unsupported(m) => write!(f, "unsupported: {m}"),
            ServiceError::Update(m) => write!(f, "update error: {m}"),
        }
    }
}

impl std::error::Error for ServiceError {}

/// A compiled, cached plan: the result of [`Service::prepare`]. Cheap to
/// clone and valid for the service's lifetime — eviction from the cache
/// does not invalidate handles already given out, and a catalog hot swap
/// does not either: the handle pins the [`CatalogEntry`] (database
/// snapshot + epoch) it was compiled against, so executing it keeps
/// reading the snapshot its tag ids belong to even after a swap.
#[derive(Debug, Clone)]
pub struct PlanHandle {
    entry: Arc<CatalogEntry>,
    normalized: Arc<str>,
    cached: Arc<CachedPlan>,
}

impl PlanHandle {
    /// The normalized query text this plan was compiled from (the text
    /// component of the cache key).
    pub fn query(&self) -> &str {
        &self.normalized
    }

    /// The compiled plan.
    pub fn plan(&self) -> &Plan {
        self.cached.plan()
    }

    /// The catalog name of the database this plan binds.
    pub fn database(&self) -> &str {
        self.entry.name()
    }

    /// The epoch of the snapshot this plan was compiled against.
    pub fn epoch(&self) -> u64 {
        self.entry.epoch()
    }
}

/// One served request's result.
#[derive(Debug, Clone)]
pub struct Response {
    /// Serialized query result, byte-identical to what the single-threaded
    /// `baselines::run` produces for the same engine.
    pub output: String,
    /// Executor counters for this request.
    pub stats: ExecStats,
    /// Whether the plan came out of the cache (always `true` for
    /// [`Service::execute_prepared`], always `false` for NAV).
    pub cache_hit: bool,
    /// Catalog name of the database that served this request.
    pub db_name: Arc<str>,
    /// Epoch of the snapshot that served this request — the correctness
    /// witness for hot-swap tests: compare the output against the
    /// single-threaded reference for *this* epoch's store.
    pub db_epoch: u64,
    /// End-to-end time: admission + queue + execute + serialize.
    pub total_time: Duration,
}

type WorkResult = Result<(String, ExecStats), ServiceError>;

/// Shard jobs flow through the same pool as whole requests, so they share
/// [`WorkResult`]; their tree slices travel through a side slot instead of
/// the reply's string (which stays empty), because only the caller — which
/// holds every shard of the wave — can merge and serialize them.
type ShardSlot = Arc<Mutex<Option<Vec<ResultTree>>>>;
type ShardWork = Box<dyn FnOnce() -> WorkResult + Send>;

/// Why a shard wave did not produce a merged result.
enum ShardFail {
    /// The queue could not take the whole wave; run sequentially instead.
    Overflow,
    /// A real failure to surface to the caller (deadline, execution error,
    /// shutdown, abandonment).
    Fatal(ServiceError),
}

/// Stores a finished shard's trees in its side slot (success) or raises
/// the shared cancel flag (failure) — on the worker thread, so siblings
/// start winding down before the caller even sees the reply. A successful
/// shard's arena goes back to the pool; a failed (or cancelled) shard's
/// arena already died with its context, so only the discard is recorded —
/// no arena is ever reused across a cancelled shard wave.
fn deposit(
    result: tlc::Result<(Vec<ResultTree>, ExecStats, tlc::ExecArena)>,
    slot: &ShardSlot,
    cancel: &AtomicBool,
    arenas: &pool::ArenaPool,
) -> WorkResult {
    match result {
        Ok((trees, st, arena)) => {
            arenas.restore(arena);
            *slot.lock().unwrap() = Some(trees);
            Ok((String::new(), st))
        }
        Err(e) => {
            arenas.discard();
            cancel.store(true, Ordering::Relaxed);
            Err(match e {
                tlc::Error::DeadlineExceeded => ServiceError::DeadlineExceeded,
                other => ServiceError::Execute(other),
            })
        }
    }
}

/// Keeps the most informative of two shard errors: the first root cause
/// beats later ones, and anything beats a sibling's `Cancelled` (which
/// only says *someone else* failed first).
fn prefer_root_cause(first: &mut Option<ServiceError>, e: ServiceError) {
    let cancelled =
        |err: &ServiceError| matches!(err, ServiceError::Execute(tlc::Error::Cancelled));
    match first {
        None => *first = Some(e),
        Some(cur) if cancelled(cur) && !cancelled(&e) => *first = Some(e),
        Some(_) => {}
    }
}

/// One node-level mutation for [`Service::apply_update`]. Documents are
/// addressed by logical name, nodes by their pre ordinal within the
/// document (the `pre` component of [`xmldb::NodeId`], as reported by
/// query results and the shell's node listings).
#[derive(Debug, Clone, PartialEq)]
pub enum UpdateOp {
    /// Parse `xml` (one rooted fragment) and splice it in as the **last
    /// child** of the node at `parent`.
    Insert {
        /// Logical document name within the target database.
        doc: String,
        /// Pre ordinal of the element the fragment becomes a child of.
        parent: u32,
        /// The fragment text; must parse to a single rooted element.
        xml: String,
    },
    /// Remove the node at `pre` and its entire subtree.
    Delete {
        /// Logical document name within the target database.
        doc: String,
        /// Pre ordinal of the subtree root to remove.
        pre: u32,
    },
    /// Replace the text content of the node at `pre` (a text node, an
    /// attribute, or a leaf element).
    SetText {
        /// Logical document name within the target database.
        doc: String,
        /// Pre ordinal of the node whose content is replaced.
        pre: u32,
        /// The new content.
        text: String,
    },
}

impl UpdateOp {
    /// The logical document name the operation targets.
    pub fn doc(&self) -> &str {
        match self {
            UpdateOp::Insert { doc, .. }
            | UpdateOp::Delete { doc, .. }
            | UpdateOp::SetText { doc, .. } => doc,
        }
    }
}

/// What one committed update did: the new catalog entry, the update
/// engine's summary, and how the selective-invalidation pass treated the
/// caches (see [`Service::apply_update`]).
#[derive(Debug, Clone)]
pub struct UpdateOutcome {
    /// The entry published for the post-update epoch.
    pub entry: Arc<CatalogEntry>,
    /// The update engine's account of the mutation.
    pub summary: xmldb::UpdateSummary,
    /// Cached plans carried into the new epoch (footprint provably
    /// disjoint from the mutation).
    pub plans_seeded: u64,
    /// Match-cache entries carried into the new epoch.
    pub matches_seeded: u64,
    /// Of those, entries only the per-chain precise footprints could prove
    /// safe — the conservative whole-plan footprint would have dropped
    /// them.
    pub matches_extra: u64,
    /// Plan-cache entries of superseded epochs purged after seeding.
    pub plans_invalidated: u64,
}

/// The concurrent query service. See the crate docs for the architecture.
///
/// `Service` is `Send + Sync`; wrap it in an `Arc` to share across
/// connection handlers. Dropping it drains admitted requests and joins the
/// worker threads.
pub struct Service {
    catalog: Catalog,
    engine: Engine,
    ir: bool,
    cache: Mutex<LruCache<CachedPlan>>,
    matches: Option<Arc<cache::MatchStore>>,
    metrics: Metrics,
    pool: Pool<WorkResult>,
    default_deadline: Option<Duration>,
    client_wait: Option<Duration>,
    queue_depth: usize,
    shard_max: usize,
    shard_min_candidates: usize,
    /// Recycles per-request execution arenas across batched jobs and shard
    /// waves (reset, don't free). Shared with every work closure.
    arenas: Arc<pool::ArenaPool>,
    /// Monotonic per-request suffix for shard batching groups, so one
    /// request's shards batch together without coalescing with another's.
    shard_seq: AtomicU64,
    /// Serializes [`Service::apply_update`] commits so two concurrent
    /// updates cannot clone the same base snapshot and silently lose one
    /// of the two mutations. Reads never take this lock.
    commit: Mutex<()>,
}

impl Service {
    /// Builds a service over a loaded database, registered in the catalog
    /// as [`DEFAULT_DB`].
    pub fn new(db: Arc<Database>, config: ServiceConfig) -> Service {
        let catalog = Catalog::new();
        catalog.register(DEFAULT_DB, db).expect("default name is valid");
        let matches = (config.match_cache_bytes > 0)
            .then(|| Arc::new(cache::MatchStore::new(config.match_cache_bytes)));
        Service {
            catalog,
            engine: config.engine,
            ir: config.ir,
            cache: Mutex::new(LruCache::new(config.plan_cache_capacity)),
            matches,
            metrics: Metrics::new(),
            pool: Pool::batched(config.workers, config.queue_depth, config.batch_max),
            default_deadline: config.default_deadline,
            client_wait: config.client_wait,
            queue_depth: config.queue_depth,
            shard_max: config.shard_max,
            shard_min_candidates: config.shard_min_candidates,
            arenas: Arc::new(pool::ArenaPool::new(
                config.arena_kb.saturating_mul(1024),
                config.workers.max(1),
            )),
            shard_seq: AtomicU64::new(0),
            commit: Mutex::new(()),
        }
    }

    /// The current snapshot of the default database ([`DEFAULT_DB`]).
    pub fn database(&self) -> Arc<Database> {
        Arc::clone(self.entry(DEFAULT_DB).expect("default db registered").database())
    }

    /// The name every session starts on.
    pub fn default_database(&self) -> &'static str {
        DEFAULT_DB
    }

    /// Whether `name` is a registered database.
    pub fn has_database(&self, name: &str) -> bool {
        self.catalog.contains(name)
    }

    /// Point-in-time listing of the catalog.
    pub fn databases(&self) -> Vec<catalog::CatalogRow> {
        self.catalog.list()
    }

    /// The catalog listing as text (`.catalog` in the wire protocol).
    pub fn catalog_report(&self) -> String {
        catalog::render(&self.catalog.list())
    }

    /// Loads a file (TLCX snapshot or XML) and publishes it under `name`,
    /// registering a new database or hot-swapping an existing one. Stale
    /// cached plans are invalidated before this returns.
    pub fn open(&self, name: &str, path: &Path) -> Result<Arc<CatalogEntry>, ServiceError> {
        let entry = self.catalog.open(name, path).map_err(ServiceError::Catalog)?;
        self.after_swap(&entry);
        Ok(entry)
    }

    /// Like [`Service::open`], but a *new* name is published at `epoch`
    /// instead of 0 — the manifest-restore path ([`crate::manifest`]),
    /// which keeps epochs monotonic across a server restart. Existing
    /// names hot-swap as usual (the epoch argument is ignored).
    pub fn open_at(
        &self,
        name: &str,
        path: &Path,
        epoch: u64,
    ) -> Result<Arc<CatalogEntry>, ServiceError> {
        // A restored first publication has nothing cached to purge and is
        // not a swap; only a pre-existing name takes the swap bookkeeping.
        let existed = self.catalog.contains(name);
        let entry = self.catalog.open_at(name, path, epoch).map_err(ServiceError::Catalog)?;
        if existed {
            self.after_swap(&entry);
        }
        Ok(entry)
    }

    /// Publishes an in-memory database under `name` (hot swap if the name
    /// exists). This is the programmatic equivalent of [`Service::open`].
    pub fn install(
        &self,
        name: &str,
        db: Arc<Database>,
    ) -> Result<Arc<CatalogEntry>, ServiceError> {
        let entry = self.catalog.register(name, db).map_err(ServiceError::Catalog)?;
        self.after_swap(&entry);
        Ok(entry)
    }

    /// Re-reads `name`'s source file and hot-swaps the result in. Returns
    /// the new entry and how many cached plans the swap invalidated.
    /// In-flight requests finish against the snapshot they resolved.
    pub fn reload(&self, name: &str) -> Result<(Arc<CatalogEntry>, u64), ServiceError> {
        let entry = self.catalog.reload(name).map_err(ServiceError::Catalog)?;
        let invalidated = self.after_swap(&entry);
        Ok((entry, invalidated))
    }

    /// Post-publish bookkeeping: purge plans *and match-cache entries* of
    /// superseded epochs (the epoch-keyed caches could never serve them,
    /// but they would squat in their LRUs) and record the swap. First
    /// registrations (epoch 0) are not swaps and purge nothing.
    fn after_swap(&self, entry: &CatalogEntry) -> u64 {
        if entry.epoch() == 0 {
            return 0;
        }
        let live = cache::epoch_prefix(entry.name(), entry.epoch());
        let all = cache::db_prefix(entry.name());
        let stale = |key: &str| key.starts_with(&all) && !key.starts_with(&live);
        let invalidated = self.cache.lock().unwrap().purge_where(stale);
        if let Some(store) = &self.matches {
            store.purge_where(stale);
        }
        self.metrics.record_swap(entry.name(), invalidated);
        invalidated
    }

    /// Unregisters `name` from the catalog and purges every cached plan
    /// and match-cache entry it owned, returning `(plans, match entries)`
    /// purged. The default database cannot be dropped — the service is
    /// constructed around it and every session starts there. In-flight
    /// requests holding the entry finish against their pinned snapshot.
    pub fn drop_database(&self, name: &str) -> Result<(u64, u64), ServiceError> {
        if name == DEFAULT_DB {
            return Err(ServiceError::Unsupported(format!(
                "cannot drop the default database {DEFAULT_DB:?}"
            )));
        }
        self.catalog.remove(name).map_err(ServiceError::Catalog)?;
        let prefix = cache::db_prefix(name);
        let plans = self.cache.lock().unwrap().purge_where(|k| k.starts_with(&prefix));
        let entries =
            self.matches.as_ref().map_or(0, |s| s.purge_where(|k| k.starts_with(&prefix)));
        Ok((plans, entries))
    }

    /// Commits one node-level mutation against database `db` as a
    /// **copy-on-write epoch**: the current snapshot is cloned, the update
    /// engine ([`xmldb::update`]) mutates the clone in place (maintaining
    /// both indexes incrementally), and the result is published as the
    /// next epoch. In-flight readers keep the snapshot they resolved;
    /// nothing they hold changes under them.
    ///
    /// Unlike a wholesale hot swap, an update knows exactly what it
    /// touched, so the caches are **selectively** invalidated rather than
    /// flushed: every cached plan of the superseded epoch whose static
    /// [`tlc::Footprint`] is provably disjoint from the mutation — it
    /// never reads the mutated document, or none of the mutation's
    /// affected tags appears in its patterns — is carried into the new
    /// epoch's key space, together with its match-cache entries
    /// ([`tlc::match_chain_keys`]). Match entries additionally embed node
    /// ordinals, so when the update had to renumber
    /// ([`xmldb::UpdateSummary::renumbered`]) nothing in the mutated
    /// document's match entries survives, while plans (which bind only tag
    /// ids and document names) still carry. Everything not carried is
    /// purged.
    ///
    /// Updates serialize against each other on an internal commit lock;
    /// queries never take it.
    pub fn apply_update(&self, db: &str, op: &UpdateOp) -> Result<UpdateOutcome, ServiceError> {
        let _commit = self.commit.lock().unwrap();
        let base = self.entry(db)?;
        let mut next: Database = (**base.database()).clone();
        let doc =
            next.document_by_name(op.doc()).map_err(|e| ServiceError::Update(e.to_string()))?;
        let summary = match op {
            UpdateOp::Insert { parent, xml, .. } => {
                xmldb::insert_subtree(&mut next, doc, *parent, xml)
            }
            UpdateOp::Delete { pre, .. } => xmldb::delete_subtree(&mut next, doc, *pre),
            UpdateOp::SetText { pre, text, .. } => xmldb::set_text(&mut next, doc, *pre, text),
        }
        .map_err(|e| ServiceError::Update(e.to_string()))?;
        let entry = self.catalog.register(db, Arc::new(next)).map_err(ServiceError::Catalog)?;
        // Seed the new epoch before purging the old one, so a plan or
        // match entry that survives is never even transiently absent.
        let old_prefix = cache::epoch_prefix(entry.name(), base.epoch());
        let new_prefix = cache::epoch_prefix(entry.name(), entry.epoch());
        let all = cache::db_prefix(entry.name());
        let stale = |key: &str| key.starts_with(&all) && !key.starts_with(&new_prefix);
        let mut plans_seeded = 0u64;
        let mut carry_keys: Vec<String> = Vec::new();
        let mut extra_keys: Vec<String> = Vec::new();
        let plans_invalidated = {
            let mut plans = self.cache.lock().unwrap();
            for (key, cached) in plans.collect_prefixed(&old_prefix) {
                let fp = tlc::plan_footprint(cached.plan());
                let disjoint = !fp.overlaps(op.doc(), &summary.affected_tags);
                if disjoint {
                    let text = &key[old_prefix.len()..];
                    // Re-seeding the same `Arc<CachedPlan>` carries the
                    // lazily-lowered IR program across the epoch for free:
                    // plans (and programs) bind tag ids and document
                    // names, never node ordinals, so footprint
                    // disjointness covers both.
                    plans.insert(&format!("{new_prefix}{text}"), cached.clone());
                    plans_seeded += 1;
                }
                // Match entries embed node ordinals; a renumbering update
                // invalidates every entry reading the mutated document,
                // footprint disjointness notwithstanding.
                if !fp.docs.contains(op.doc()) || (summary.renumbered == 0 && disjoint) {
                    carry_keys.extend(tlc::match_chain_keys(cached.plan()));
                } else {
                    // The whole-plan footprint overlaps the mutation, but a
                    // plan mixes chains over several documents and tag sets:
                    // the per-chain precise footprints can still prove
                    // individual cached chains untouched.
                    for (chain_key, cfp) in tlc::match_chain_footprints(cached.plan()) {
                        let chain_disjoint = !cfp.overlaps(op.doc(), &summary.affected_tags);
                        if !cfp.docs.contains(op.doc())
                            || (summary.renumbered == 0 && chain_disjoint)
                        {
                            extra_keys.push(chain_key);
                        }
                    }
                }
            }
            plans.purge_where(stale)
        };
        let (matches_seeded, matches_extra) = self.matches.as_ref().map_or((0, 0), |store| {
            carry_keys.sort();
            carry_keys.dedup();
            extra_keys.sort();
            extra_keys.dedup();
            extra_keys.retain(|k| carry_keys.binary_search(k).is_err());
            let carried = store.carry(&old_prefix, &new_prefix, &carry_keys);
            let extra = store.carry(&old_prefix, &new_prefix, &extra_keys);
            store.purge_where(stale);
            (carried + extra, extra)
        });
        self.metrics.record_swap(entry.name(), plans_invalidated);
        self.metrics.record_update(entry.name(), plans_seeded, matches_seeded, matches_extra);
        Ok(UpdateOutcome {
            entry,
            summary,
            plans_seeded,
            matches_seeded,
            matches_extra,
            plans_invalidated,
        })
    }

    fn entry(&self, db: &str) -> Result<Arc<CatalogEntry>, ServiceError> {
        self.catalog.resolve(db).map_err(ServiceError::Catalog)
    }

    /// Compiles `query` against `db` and renders the static-analysis view
    /// (`.explain` in the wire protocol): the compiled plan, its inferred
    /// type (per-class cardinalities, root, order), its read-effect
    /// footprint, what class-liveness pruning removes, and every lint
    /// warning. The plan cache is bypassed so the report always describes
    /// the *unpruned* translation of what the user wrote.
    pub fn explain(&self, db: &str, query: &str) -> Result<String, ServiceError> {
        if self.engine == Engine::Nav {
            return Err(ServiceError::Unsupported(
                "NAV is interpreted per request; nothing to explain".into(),
            ));
        }
        let entry = self.entry(db)?;
        let database = entry.database();
        let plan =
            baselines::plan_for(self.engine, query, database).map_err(ServiceError::Compile)?;
        let t = tlc::analyze(&plan).map_err(|e| ServiceError::Compile(tlc::Error::Analyze(e)))?;
        let fp = tlc::plan_footprint(&plan);
        let (pruned, report) = tlc::prune_with_report(&plan);
        let lints = tlc::lint(&plan, database);
        self.metrics.record_analysis(
            entry.name(),
            report.changed(),
            report.ops_eliminated() as u64,
            lints.len() as u64,
        );
        let interner = database.interner();
        let mut out = String::new();
        out.push_str(&format!(
            "== plan ({} operator(s), engine {:?}) ==\n{}",
            plan.operator_count(),
            self.engine,
            plan.display(Some(database))
        ));
        let classes: Vec<String> = t.classes.iter().map(|(l, c)| format!("{l}:{c:?}")).collect();
        out.push_str(&format!(
            "== type ==\nclasses: {}\nroot: {}\norder: {:?}\n",
            if classes.is_empty() { "(none)".to_string() } else { classes.join(" ") },
            t.root.map_or_else(|| "(none)".to_string(), |r| r.to_string()),
            t.order
        ));
        out.push_str("== footprint ==\n");
        out.push_str(&format!("docs: {}\n", join_or_none(fp.docs.iter().cloned())));
        for (doc, tags) in &fp.doc_tags {
            let names = join_or_none(tags.iter().map(|&t| interner.name(t).to_string()));
            out.push_str(&format!("tags[{doc}]: {names}\n"));
        }
        out.push_str(&format!(
            "steps: {} child, {} descendant; {} value predicate(s)\n",
            fp.child_steps,
            fp.descendant_steps,
            fp.preds.len()
        ));
        out.push_str("== liveness ==\n");
        if report.changed() {
            out.push_str(&format!(
                "pruned: {} DupElim(s) removed, {} select(s) eliminated, {} star subtree(s) dropped, {} dead Project column(s)\n",
                report.dupelims_removed,
                report.selects_eliminated,
                report.star_subtrees_pruned,
                report.dead_project_columns.len()
            ));
            out.push_str(&format!("pruned plan:\n{}", pruned.display(Some(database))));
        } else {
            out.push_str("nothing to prune\n");
        }
        out.push_str("== lints ==\n");
        if lints.is_empty() {
            out.push_str("no warnings\n");
        } else {
            for l in &lints {
                out.push_str(&format!("{l}\n"));
            }
        }
        out.push_str("== ir ==\n");
        if !self.ir {
            out.push_str("ir backend disabled; this plan executes on the tree walker\n");
        } else {
            match tlc::vm::lower(&plan) {
                Ok(prog) => out.push_str(&prog.display(Some(database))),
                Err(e) => out.push_str(&format!(
                    "not lowered ({e}); this plan executes on the tree walker\n"
                )),
            }
        }
        Ok(out)
    }

    /// The configured engine.
    pub fn engine(&self) -> Engine {
        self.engine
    }

    /// Compiles `query` against the default database (or fetches its
    /// cached plan) without executing it.
    ///
    /// The returned handle can be executed any number of times with
    /// [`Service::execute_prepared`]; textually different spellings of the
    /// same query (whitespace aside) share one cache entry. The handle
    /// pins the snapshot it was compiled against, so it stays valid — and
    /// keeps answering from that snapshot — across hot swaps.
    pub fn prepare(&self, query: &str) -> Result<PlanHandle, ServiceError> {
        self.prepare_on(DEFAULT_DB, query)
    }

    /// Like [`Service::prepare`] against a named catalog database.
    pub fn prepare_on(&self, db: &str, query: &str) -> Result<PlanHandle, ServiceError> {
        self.prepare_inner(db, query).map(|(handle, _)| handle)
    }

    /// Like [`Service::prepare_on`], also reporting whether the plan was
    /// cached.
    fn prepare_inner(&self, db: &str, query: &str) -> Result<(PlanHandle, bool), ServiceError> {
        if self.engine == Engine::Nav {
            return Err(ServiceError::Unsupported(
                "NAV is interpreted per request; nothing to prepare".into(),
            ));
        }
        let entry = self.entry(db)?;
        let normalized = cache::normalize_query(query);
        let key = cache::plan_key(entry.name(), entry.epoch(), &normalized);
        if let Some(cached) = self.cache.lock().unwrap().get(&key) {
            self.metrics.record_cache(entry.name(), true, 0);
            return Ok((PlanHandle { entry, normalized: normalized.into(), cached }, true));
        }
        // Compile outside the cache lock: compilation is the expensive part,
        // and holding the lock would serialize concurrent misses. Two racing
        // misses both compile; the loser's insert replaces in place, which
        // is harmless (plans for the same text and epoch are
        // interchangeable). A swap racing this compile is harmless too: the
        // entry we resolved pins the old snapshot, the insert lands under
        // the old epoch's key, and no later lookup (which keys on the new
        // epoch) can retrieve it.
        let plan = Arc::new(
            baselines::plan_for(self.engine, query, entry.database())
                .map_err(ServiceError::Compile)?,
        );
        // Gate the cache behind the static LC dataflow analysis: a plan that
        // fails verification would be served to every later request for the
        // same text, so a poisoned plan must never enter the LRU.
        tlc::analyze::verify(&plan).map_err(|e| ServiceError::Compile(tlc::Error::Analyze(e)))?;
        // Liveness-prune the compiled plan before caching — for every
        // engine, not just the optimizing ones: the rewrite only removes
        // provably dead work and is re-verified here, and the equivalence
        // suite pins byte-identical output. Lints are counted against the
        // *unpruned* plan (they describe what the user wrote).
        let lints = tlc::lint(&plan, entry.database()).len() as u64;
        let (pruned, report) = tlc::prune_with_report(&plan);
        let changed = report.changed() && tlc::analyze::verify(&pruned).is_ok();
        self.metrics.record_analysis(entry.name(), changed, report.ops_eliminated() as u64, lints);
        let plan = if changed { Arc::new(pruned) } else { plan };
        // The cache entry couples the plan with its lazily-lowered IR
        // program: whoever executes the entry first pays the one-time
        // lowering, every later request (and every epoch the entry is
        // carried into) reuses it through the shared Arc.
        let cached = Arc::new(CachedPlan::new(plan));
        let evictions = self.cache.lock().unwrap().insert(&key, Arc::clone(&cached));
        self.metrics.record_cache(entry.name(), false, evictions);
        Ok((PlanHandle { entry, normalized: normalized.into(), cached }, false))
    }

    /// Compiles (through the plan cache) and executes `query` against the
    /// default database under the default deadline.
    pub fn execute(&self, query: &str) -> Result<Response, ServiceError> {
        self.execute_opts(DEFAULT_DB, query, self.default_deadline)
    }

    /// Like [`Service::execute`] against a named catalog database.
    pub fn execute_on(&self, db: &str, query: &str) -> Result<Response, ServiceError> {
        self.execute_opts(db, query, self.default_deadline)
    }

    /// Like [`Service::execute`] with an explicit wall-clock budget for
    /// this request alone.
    pub fn execute_with_deadline(
        &self,
        query: &str,
        budget: Duration,
    ) -> Result<Response, ServiceError> {
        self.execute_opts(DEFAULT_DB, query, Some(budget))
    }

    /// Like [`Service::execute_on`] with an explicit wall-clock budget.
    pub fn execute_on_with_deadline(
        &self,
        db: &str,
        query: &str,
        budget: Duration,
    ) -> Result<Response, ServiceError> {
        self.execute_opts(db, query, Some(budget))
    }

    fn execute_opts(
        &self,
        db: &str,
        query: &str,
        budget: Option<Duration>,
    ) -> Result<Response, ServiceError> {
        let admitted = Instant::now();
        let deadline = budget.map(|b| admitted + b);
        if self.engine == Engine::Nav {
            // Interpreted engine: no plan, no cache; the deadline still
            // guards queue time (checked at dequeue). The resolved entry
            // pins the snapshot for the whole interpretation.
            let entry = self.entry(db)?;
            let snapshot = Arc::clone(entry.database());
            let text = query.to_string();
            let label = cache::normalize_query(query);
            let work: Box<dyn FnOnce() -> WorkResult + Send> = Box::new(move || {
                baselines::run(Engine::Nav, &text, &snapshot)
                    .map(|out| (out, ExecStats::new()))
                    .map_err(ServiceError::Execute)
            });
            return self.dispatch(label, false, &entry, admitted, deadline, work);
        }
        let (handle, cached) = self.prepare_inner(db, query)?;
        self.execute_handle(&handle, cached, admitted, deadline)
    }

    /// Executes a prepared plan under the default deadline, against the
    /// snapshot the handle was compiled on (hot swaps do not redirect it).
    pub fn execute_prepared(&self, handle: &PlanHandle) -> Result<Response, ServiceError> {
        let admitted = Instant::now();
        let deadline = self.default_deadline.map(|b| admitted + b);
        self.execute_handle(handle, true, admitted, deadline)
    }

    fn execute_handle(
        &self,
        handle: &PlanHandle,
        cached: bool,
        admitted: Instant,
        deadline: Option<Instant>,
    ) -> Result<Response, ServiceError> {
        let db = Arc::clone(handle.entry.database());
        let plan = Arc::clone(handle.cached.plan());
        // Resolve the IR program on the caller's thread: lowering happens
        // at most once per cache entry ([`CachedPlan::program`]), and doing
        // it here keeps the worker pool's throughput independent of
        // compile spikes. `None` (IR off, or the lowerer declined the
        // plan) falls back to the tree walker below.
        let program = if self.ir {
            let (program, compile_time) = handle.cached.program();
            match compile_time {
                Some(took) => self.metrics.record_ir_compile(took),
                None if program.is_some() => self.metrics.record_ir_cache_hit(),
                None => {}
            }
            program
        } else {
            None
        };
        // Intra-query sharding: decided on the caller's thread, before any
        // pool submission, so shard jobs are ordinary pool work and a
        // worker never blocks waiting on work it would itself have to run.
        if self.shard_max >= 2 {
            let policy = ShardPolicy {
                max_shards: self.shard_max,
                min_candidates: self.shard_min_candidates,
            };
            match plan_shards(handle.entry.database(), handle.cached.plan(), policy) {
                Ok(sp) => {
                    match self.execute_sharded_handle(
                        handle,
                        &sp,
                        program.clone(),
                        cached,
                        admitted,
                        deadline,
                    ) {
                        Ok(resp) => return Ok(resp),
                        // A full queue rejects the whole wave; the request
                        // still runs, sequentially, below.
                        Err(ShardFail::Overflow) => self.metrics.record_shard_fallback(),
                        Err(ShardFail::Fatal(e)) => return Err(e),
                    }
                }
                Err(_) => self.metrics.record_shard_fallback(),
            }
        }
        // The executor sees the match store through a view scoped to this
        // request's `(database, epoch)` — the scoping, not the executor,
        // is what makes serving across hot swaps impossible.
        let match_cache: Option<Arc<dyn tlc::MatchCache>> = self.matches.as_ref().map(|store| {
            Arc::new(cache::ScopedMatchCache::new(
                Arc::clone(store),
                handle.entry.name(),
                handle.entry.epoch(),
            )) as Arc<dyn tlc::MatchCache>
        });
        let arenas = Arc::clone(&self.arenas);
        let work: Box<dyn FnOnce() -> WorkResult + Send> = Box::new(move || {
            let (arena, recycled) = arenas.checkout();
            let mut ctx = tlc::ExecCtx::new();
            ctx.deadline = deadline;
            ctx.cache = match_cache;
            ctx.arena = arena;
            ctx.stats.arena_resets = recycled as u64;
            let result = match &program {
                Some(prog) => tlc::vm::run(&db, prog, &mut ctx),
                None => tlc::execute_with_ctx(&db, &plan, &mut ctx),
            };
            match result {
                Ok(trees) => {
                    let output = tlc::serialize_results(&db, &trees);
                    // Park the result buffer and capture the counters only
                    // then, so the reported high-water mark covers it; the
                    // arena goes back to the pool for the next request.
                    ctx.free_trees(trees);
                    let stats = ctx.stats;
                    arenas.restore(std::mem::take(&mut ctx.arena));
                    Ok((output, stats))
                }
                Err(e) => {
                    // Failed or cancelled: the arena dies with the context.
                    arenas.discard();
                    Err(match e {
                        tlc::Error::DeadlineExceeded => ServiceError::DeadlineExceeded,
                        other => ServiceError::Execute(other),
                    })
                }
            }
        });
        self.dispatch(
            handle.normalized.to_string(),
            cached,
            &handle.entry,
            admitted,
            deadline,
            work,
        )
    }

    /// Runs one request through the intra-query sharding path: stage waves
    /// (each join's right child, computed once) through the worker pool,
    /// then the final anchor-sharded wave with stage results injected, then
    /// the document-order merge on the caller's thread. The register-IR
    /// backend runs whole programs per shard instead of staging. Output is
    /// byte-identical to the sequential path.
    fn execute_sharded_handle(
        &self,
        handle: &PlanHandle,
        sp: &ShardPlan,
        program: Option<Arc<tlc::vm::Program>>,
        cache_hit: bool,
        admitted: Instant,
        deadline: Option<Instant>,
    ) -> Result<Response, ShardFail> {
        let db = Arc::clone(handle.entry.database());
        let plan = Arc::clone(handle.cached.plan());
        let cancel = Arc::new(AtomicBool::new(false));
        let seq = self.shard_seq.fetch_add(1, Ordering::Relaxed);
        let group: Arc<str> = Arc::from(
            format!("{}\u{1}{}\u{1}shard-{seq}", handle.entry.name(), handle.entry.epoch())
                .as_str(),
        );
        let mut stats = ExecStats::new();
        let mut shard_jobs = 0u64;
        let mut tmp_slot = 1u64; // slot 0 is the sequential path's
        let parts: Vec<Vec<ResultTree>> = match program {
            Some(prog) => {
                // Whole program per shard: a lowered program has no
                // injection point, so each shard re-derives the right
                // sides under its own anchor window.
                let lcl = sp.anchor_lcl;
                let wave: Vec<(ShardSlot, ShardWork)> = sp
                    .ranges
                    .iter()
                    .enumerate()
                    .map(|(i, r)| {
                        let slot: ShardSlot = Arc::new(Mutex::new(None));
                        let (db, prog, cancel, slot2, arenas) = (
                            Arc::clone(&db),
                            Arc::clone(&prog),
                            Arc::clone(&cancel),
                            Arc::clone(&slot),
                            Arc::clone(&self.arenas),
                        );
                        let anchor = AnchorRange { lcl, range: *r };
                        let tmp = tmp_slot + i as u64;
                        let work: ShardWork = Box::new(move || {
                            // Each shard checks out its own arena — sibling
                            // shards stay allocation-disjoint.
                            let (arena, recycled) = arenas.checkout();
                            let env = ShardEnv {
                                tmp_slot: tmp,
                                deadline,
                                cancel: Some(Arc::clone(&cancel)),
                                arena,
                            };
                            let result = run_shard_vm(&db, &prog, anchor, env).map(
                                |(trees, mut st, arena)| {
                                    st.arena_resets = recycled as u64;
                                    (trees, st, arena)
                                },
                            );
                            deposit(result, &slot2, &cancel, &arenas)
                        });
                        (slot, work)
                    })
                    .collect();
                shard_jobs += wave.len() as u64;
                self.shard_wave(&group, deadline, &cancel, wave, &mut stats)?
            }
            None => {
                let mut injected: Vec<(usize, Arc<Vec<ResultTree>>)> = Vec::new();
                for stage in &sp.stages {
                    let key = std::ptr::from_ref(resolve_path(&plan, &stage.path)) as usize;
                    let windows: Vec<Option<AnchorRange>> = match stage.anchor_lcl {
                        Some(lcl) => stage
                            .ranges
                            .iter()
                            .map(|r| Some(AnchorRange { lcl, range: *r }))
                            .collect(),
                        None => vec![None],
                    };
                    let wave = self.walk_wave_jobs(
                        &db,
                        &plan,
                        &stage.path,
                        &windows,
                        &injected,
                        tmp_slot,
                        deadline,
                        &cancel,
                    );
                    tmp_slot += wave.len() as u64;
                    shard_jobs += wave.len() as u64;
                    let stage_parts =
                        self.shard_wave(&group, deadline, &cancel, wave, &mut stats)?;
                    let trees: Vec<ResultTree> = stage_parts.into_iter().flatten().collect();
                    injected.push((key, Arc::new(trees)));
                }
                let lcl = sp.anchor_lcl;
                let windows: Vec<Option<AnchorRange>> =
                    sp.ranges.iter().map(|r| Some(AnchorRange { lcl, range: *r })).collect();
                let wave = self.walk_wave_jobs(
                    &db,
                    &plan,
                    &[],
                    &windows,
                    &injected,
                    tmp_slot,
                    deadline,
                    &cancel,
                );
                shard_jobs += wave.len() as u64;
                self.shard_wave(&group, deadline, &cancel, wave, &mut stats)?
            }
        };
        // The document-order merge: concatenate the per-shard tree slices
        // in window order and serialize centrally, exactly once — the same
        // serializer call the sequential path makes, on the same tree
        // sequence, so the bytes cannot differ.
        let merge_start = Instant::now();
        let trees: Vec<ResultTree> = parts.into_iter().flatten().collect();
        let output = tlc::serialize_results(&db, &trees);
        self.metrics.record_sharded(handle.entry.name(), shard_jobs, merge_start.elapsed());
        let total_time = admitted.elapsed();
        self.metrics.record_request(&handle.normalized, total_time, &stats);
        Ok(Response {
            output,
            stats,
            cache_hit,
            db_name: handle.entry.shared_name(),
            db_epoch: handle.entry.epoch(),
            total_time,
        })
    }

    /// Builds one tree-walk shard wave: one job per anchor window (or a
    /// single unwindowed job), each resolving `path` inside the shared
    /// plan and running with the stage results gathered so far injected.
    #[allow(clippy::too_many_arguments)]
    fn walk_wave_jobs(
        &self,
        db: &Arc<Database>,
        plan: &Arc<Plan>,
        path: &[usize],
        windows: &[Option<AnchorRange>],
        injected: &[(usize, Arc<Vec<ResultTree>>)],
        tmp_slot_base: u64,
        deadline: Option<Instant>,
        cancel: &Arc<AtomicBool>,
    ) -> Vec<(ShardSlot, ShardWork)> {
        windows
            .iter()
            .enumerate()
            .map(|(i, anchor)| {
                let slot: ShardSlot = Arc::new(Mutex::new(None));
                let (db, plan, cancel, slot2, arenas) = (
                    Arc::clone(db),
                    Arc::clone(plan),
                    Arc::clone(cancel),
                    Arc::clone(&slot),
                    Arc::clone(&self.arenas),
                );
                let (path, injected, anchor) = (path.to_vec(), injected.to_vec(), *anchor);
                let tmp = tmp_slot_base + i as u64;
                let work: ShardWork = Box::new(move || {
                    let sub = resolve_path(&plan, &path);
                    let (arena, recycled) = arenas.checkout();
                    let env = ShardEnv {
                        tmp_slot: tmp,
                        deadline,
                        cancel: Some(Arc::clone(&cancel)),
                        arena,
                    };
                    let result =
                        run_shard(&db, sub, anchor, injected, env).map(|(trees, mut st, arena)| {
                            st.arena_resets = recycled as u64;
                            (trees, st, arena)
                        });
                    deposit(result, &slot2, &cancel, &arenas)
                });
                (slot, work)
            })
            .collect()
    }

    /// Submits one wave of shard jobs atomically and awaits every reply,
    /// returning the per-shard tree slices in window order. Any failure
    /// (including a deadline expiry in the queue) raises the shared cancel
    /// flag so running siblings stop at tick granularity; every reply is
    /// still awaited before the error propagates, so no shard work is left
    /// orphaned. When several shards fail, the first *root-cause* error
    /// wins — a sibling's `Cancelled` is only reported if nothing better
    /// arrives.
    fn shard_wave(
        &self,
        group: &Arc<str>,
        deadline: Option<Instant>,
        cancel: &Arc<AtomicBool>,
        wave: Vec<(ShardSlot, ShardWork)>,
        stats: &mut ExecStats,
    ) -> Result<Vec<Vec<ResultTree>>, ShardFail> {
        let (slots, works): (Vec<_>, Vec<_>) = wave.into_iter().unzip();
        let receivers = self.pool.submit_shards(deadline, Some(Arc::clone(group)), works).map_err(
            |e| match e {
                SubmitError::QueueFull => ShardFail::Overflow,
                SubmitError::Disconnected => ShardFail::Fatal(ServiceError::ShuttingDown),
            },
        )?;
        let mut first_err: Option<ServiceError> = None;
        let mut parts: Vec<Vec<ResultTree>> = Vec::with_capacity(slots.len());
        for (rx, slot) in receivers.into_iter().zip(slots) {
            let reply = match self.client_wait {
                None => match rx.recv() {
                    Ok(reply) => reply,
                    Err(_) => return Err(ShardFail::Fatal(ServiceError::ShuttingDown)),
                },
                Some(limit) => match rx.recv_timeout(limit) {
                    Ok(reply) => reply,
                    Err(RecvTimeoutError::Timeout) => {
                        // Stop waiting for the whole request; the flag makes
                        // still-running siblings bail out early, and workers
                        // shrug at the dropped reply channels.
                        cancel.store(true, Ordering::Relaxed);
                        self.metrics.record_outcome(Outcome::Abandoned);
                        return Err(ShardFail::Fatal(ServiceError::Abandoned { waited: limit }));
                    }
                    Err(RecvTimeoutError::Disconnected) => {
                        return Err(ShardFail::Fatal(ServiceError::ShuttingDown))
                    }
                },
            };
            match reply {
                Reply::Done { value: Ok((_, st)), queue_wait } => {
                    self.metrics.record_queue_wait(queue_wait);
                    stats.absorb(&st);
                    parts.push(slot.lock().unwrap().take().unwrap_or_default());
                }
                Reply::Done { value: Err(e), queue_wait } => {
                    self.metrics.record_queue_wait(queue_wait);
                    cancel.store(true, Ordering::Relaxed);
                    prefer_root_cause(&mut first_err, e);
                }
                Reply::ExpiredInQueue { queue_wait } => {
                    self.metrics.record_queue_wait(queue_wait);
                    cancel.store(true, Ordering::Relaxed);
                    prefer_root_cause(&mut first_err, ServiceError::DeadlineExceeded);
                }
            }
        }
        match first_err {
            Some(e) => {
                self.metrics.record_outcome(match e {
                    ServiceError::DeadlineExceeded => Outcome::Deadline,
                    _ => Outcome::Error,
                });
                Err(ShardFail::Fatal(e))
            }
            None => Ok(parts),
        }
    }

    fn dispatch(
        &self,
        label: String,
        cache_hit: bool,
        entry: &Arc<CatalogEntry>,
        admitted: Instant,
        deadline: Option<Instant>,
        work: Box<dyn FnOnce() -> WorkResult + Send>,
    ) -> Result<Response, ServiceError> {
        // Group queued jobs by `(database, epoch)`: a worker that drains a
        // group back to back keeps one snapshot's match-cache entries and
        // index postings warm instead of interleaving unrelated stores.
        let group: Arc<str> = Arc::from(format!("{}\u{1}{}", entry.name(), entry.epoch()).as_str());
        let rx = self.pool.submit_grouped(deadline, Some(group), work).map_err(|e| match e {
            SubmitError::QueueFull => {
                self.metrics.record_outcome(Outcome::Rejected);
                ServiceError::Overloaded { queue_depth: self.queue_depth }
            }
            SubmitError::Disconnected => ServiceError::ShuttingDown,
        })?;
        // Wait for the reply — bounded when a client-side wait deadline is
        // configured. Giving up leaves the job to finish on its worker
        // (the reply channel is buffered, so the worker never blocks on a
        // departed caller).
        let reply = match self.client_wait {
            None => rx.recv().map_err(|_| ServiceError::ShuttingDown)?,
            Some(limit) => match rx.recv_timeout(limit) {
                Ok(reply) => reply,
                Err(RecvTimeoutError::Timeout) => {
                    self.metrics.record_outcome(Outcome::Abandoned);
                    return Err(ServiceError::Abandoned { waited: limit });
                }
                Err(RecvTimeoutError::Disconnected) => return Err(ServiceError::ShuttingDown),
            },
        };
        let total_time = admitted.elapsed();
        match reply {
            Reply::Done { value: Ok((output, stats)), queue_wait } => {
                self.metrics.record_queue_wait(queue_wait);
                self.metrics.record_request(&label, total_time, &stats);
                Ok(Response {
                    output,
                    stats,
                    cache_hit,
                    db_name: entry.shared_name(),
                    db_epoch: entry.epoch(),
                    total_time,
                })
            }
            Reply::Done { value: Err(e), queue_wait } => {
                self.metrics.record_queue_wait(queue_wait);
                self.metrics.record_outcome(match e {
                    ServiceError::DeadlineExceeded => Outcome::Deadline,
                    _ => Outcome::Error,
                });
                Err(e)
            }
            Reply::ExpiredInQueue { queue_wait } => {
                self.metrics.record_queue_wait(queue_wait);
                self.metrics.record_outcome(Outcome::Deadline);
                Err(ServiceError::DeadlineExceeded)
            }
        }
    }

    /// Plan-cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.lock().unwrap().stats()
    }

    /// Match-cache counters, or `None` when the cache is disabled
    /// (`match_cache_bytes == 0`).
    pub fn match_cache_stats(&self) -> Option<CacheStats> {
        self.matches.as_ref().map(|s| s.stats())
    }

    /// Batch-dispatch counters from the worker pool.
    pub fn batch_stats(&self) -> pool::BatchStats {
        self.pool.batch_stats()
    }

    /// Shard-admission counters from the worker pool.
    pub fn shard_stats(&self) -> pool::ShardStats {
        self.pool.shard_stats()
    }

    /// Arena-pool recycling counters.
    pub fn arena_stats(&self) -> pool::ArenaPoolStats {
        self.arenas.stats()
    }

    /// Aggregate metrics snapshot.
    pub fn metrics_snapshot(&self) -> Snapshot {
        self.metrics.snapshot()
    }

    /// The full text metrics report (`.metrics` in the wire protocol):
    /// request/cache/latency counters, match-cache and batch-dispatch
    /// lines, followed by the catalog listing.
    pub fn metrics_report(&self) -> String {
        let mut report = self.metrics.report();
        match self.match_cache_stats() {
            Some(s) => {
                let lookups = s.hits + s.misses;
                let rate = if lookups == 0 { 0.0 } else { s.hits as f64 / lookups as f64 * 100.0 };
                let invalidated = self.matches.as_ref().map_or(0, |m| m.invalidated());
                report.push_str(&format!(
                    "match cache: {} hits / {lookups} lookups ({rate:.1}% hit rate), {} evictions, {invalidated} invalidated, {} entr(ies), {}/{} bytes\n",
                    s.hits, s.evictions, s.len, s.bytes, s.byte_budget
                ));
            }
            None => report.push_str("match cache: disabled\n"),
        }
        let b = self.pool.batch_stats();
        report.push_str(&format!(
            "batch dispatch: {} batch(es) over {} job(s), max batch {}\n",
            b.batches, b.jobs, b.max_batch
        ));
        let sh = self.pool.shard_stats();
        if sh.waves > 0 || sh.rejected_waves > 0 {
            report.push_str(&format!(
                "shard dispatch: {} wave(s) over {} shard job(s), max wave {}, {} wave(s) rejected\n",
                sh.waves, sh.jobs, sh.max_wave, sh.rejected_waves
            ));
        }
        if self.arenas.limit_bytes() == 0 {
            report.push_str("arena pool: disabled (arena-kb 0)\n");
        } else {
            let a = self.arenas.stats();
            let rate =
                if a.checkouts == 0 { 0.0 } else { a.reuses as f64 / a.checkouts as f64 * 100.0 };
            report.push_str(&format!(
                "arena pool: {} checkout(s), {} reuse(s) ({rate:.1}% reuse rate), {} discard(s), {} KiB/arena limit\n",
                a.checkouts, a.reuses, a.discards,
                self.arenas.limit_bytes() / 1024
            ));
        }
        report.push_str(&self.catalog_report());
        report
    }

    /// Number of executor threads.
    pub fn workers(&self) -> usize {
        self.pool.workers()
    }
}

fn join_or_none(items: impl Iterator<Item = String>) -> String {
    let v: Vec<String> = items.collect();
    if v.is_empty() {
        "(none)".to_string()
    } else {
        v.join(", ")
    }
}

// The concurrency contract, checked at compile time: plans and the database
// are freely shareable across worker threads, and the service itself can be
// wrapped in an Arc and used from any number of connection handlers.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Plan>();
    assert_send_sync::<Database>();
    assert_send_sync::<ExecStats>();
    assert_send_sync::<Service>();
    assert_send_sync::<PlanHandle>();
    assert_send_sync::<Catalog>();
    assert_send_sync::<CatalogEntry>();
    assert_send_sync::<CachedPlan>();
    assert_send_sync::<tlc::vm::Program>();
    assert_send_sync::<pool::ArenaPool>();
};

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_service(config: ServiceConfig) -> Service {
        let db = Arc::new(xmark::auction_database(0.001));
        Service::new(db, config)
    }

    const Q: &str = r#"FOR $p IN document("auction.xml")//person RETURN $p/name"#;

    #[test]
    fn execute_matches_direct_run() {
        let svc = tiny_service(ServiceConfig::default());
        let direct = baselines::run(Engine::Tlc, Q, &svc.database()).unwrap();
        let resp = svc.execute(Q).unwrap();
        assert_eq!(resp.output, direct);
        assert!(!resp.cache_hit);
        assert_eq!(&*resp.db_name, DEFAULT_DB);
        assert_eq!(resp.db_epoch, 0);
        assert!(svc.execute(Q).unwrap().cache_hit);
    }

    #[test]
    fn prepare_then_execute_prepared() {
        let svc = tiny_service(ServiceConfig::default());
        let handle = svc.prepare(Q).unwrap();
        assert!(handle.plan().operator_count() > 0);
        let a = svc.execute_prepared(&handle).unwrap();
        let b = svc.execute_prepared(&handle).unwrap();
        assert_eq!(a.output, b.output);
    }

    #[test]
    fn compile_errors_are_typed() {
        let svc = tiny_service(ServiceConfig::default());
        match svc.execute("THIS IS NOT XQUERY") {
            Err(ServiceError::Compile(_)) => {}
            other => panic!("expected compile error, got {other:?}"),
        }
    }

    #[test]
    fn zero_budget_deadline_exceeds() {
        let svc = tiny_service(ServiceConfig::default());
        match svc.execute_with_deadline(Q, Duration::ZERO) {
            Err(ServiceError::DeadlineExceeded) => {}
            other => panic!("expected deadline error, got {other:?}"),
        }
        // The worker is still healthy afterwards.
        assert!(svc.execute(Q).is_ok());
        assert!(svc.metrics_snapshot().deadline >= 1);
    }

    #[test]
    fn nav_engine_is_served_uncached() {
        let svc = tiny_service(ServiceConfig { engine: Engine::Nav, ..Default::default() });
        let resp = svc.execute(Q).unwrap();
        let direct = baselines::run(Engine::Nav, Q, &svc.database()).unwrap();
        assert_eq!(resp.output, direct);
        assert!(!resp.cache_hit);
        assert!(matches!(svc.prepare(Q), Err(ServiceError::Unsupported(_))));
    }

    #[test]
    fn metrics_report_reflects_traffic() {
        let svc = tiny_service(ServiceConfig::default());
        svc.execute(Q).unwrap();
        svc.execute(Q).unwrap();
        let report = svc.metrics_report();
        assert!(report.contains("50.0% hit rate"), "{report}");
        assert!(report.contains("queue wait: count=2"), "{report}");
        let snap = svc.metrics_snapshot();
        assert_eq!(snap.ok, 2);
        assert!(snap.exec.pattern_matches > 0);
        assert_eq!(snap.queue_wait.count(), 2);
        // The catalog listing rides along in the report.
        assert!(report.contains("catalog: 1 database(s)"), "{report}");
    }

    #[test]
    fn install_hot_swaps_and_invalidates_cached_plans() {
        let svc = tiny_service(ServiceConfig::default());
        svc.execute(Q).unwrap();
        assert!(svc.execute(Q).unwrap().cache_hit);
        let swapped = svc.install(DEFAULT_DB, Arc::new(xmark::auction_database(0.002))).unwrap();
        assert_eq!(swapped.epoch(), 1);
        // Same text, new epoch: must recompile against the new snapshot.
        let resp = svc.execute(Q).unwrap();
        assert!(!resp.cache_hit, "stale plan served across a hot swap");
        assert_eq!(resp.db_epoch, 1);
        let direct = baselines::run(Engine::Tlc, Q, &svc.database()).unwrap();
        assert_eq!(resp.output, direct);
        let snap = svc.metrics_snapshot();
        let counters = snap.db(DEFAULT_DB).expect("per-db counters");
        assert_eq!(counters.swaps, 1);
        assert_eq!(counters.invalidated, 1);
    }

    #[test]
    fn prepared_handle_pins_its_snapshot_across_swaps() {
        let svc = tiny_service(ServiceConfig::default());
        let handle = svc.prepare(Q).unwrap();
        let before = svc.execute_prepared(&handle).unwrap();
        svc.install(DEFAULT_DB, Arc::new(xmark::auction_database(0.002))).unwrap();
        // The handle still answers — from the old snapshot it was compiled
        // against, which its entry keeps alive.
        let after = svc.execute_prepared(&handle).unwrap();
        assert_eq!(before.output, after.output);
        assert_eq!(after.db_epoch, 0);
        assert_eq!(svc.execute(Q).unwrap().db_epoch, 1);
    }

    #[test]
    fn execute_on_unknown_database_is_a_catalog_error() {
        let svc = tiny_service(ServiceConfig::default());
        match svc.execute_on("nope", Q) {
            Err(ServiceError::Catalog(CatalogError::Unknown(name))) => {
                assert_eq!(name, "nope");
            }
            other => panic!("expected unknown-database error, got {other:?}"),
        }
    }

    #[test]
    fn match_cache_serves_repeats_byte_identically() {
        let svc = tiny_service(ServiceConfig::default());
        let cold = svc.execute(Q).unwrap();
        assert!(cold.stats.match_cache_misses > 0, "{:?}", cold.stats);
        let warm = svc.execute(Q).unwrap();
        assert_eq!(warm.output, cold.output);
        assert!(warm.stats.match_cache_hits > 0, "{:?}", warm.stats);
        assert_eq!(warm.stats.pattern_matches, 0, "warm run must skip structural matching");
        let s = svc.match_cache_stats().expect("cache enabled by default");
        assert!(s.hits > 0 && s.bytes > 0, "{s:?}");
        let report = svc.metrics_report();
        assert!(report.contains("match cache:"), "{report}");
        assert!(report.contains("batch dispatch:"), "{report}");
    }

    #[test]
    fn disabled_match_cache_rematches_every_request() {
        let svc = tiny_service(ServiceConfig { match_cache_bytes: 0, ..Default::default() });
        svc.execute(Q).unwrap();
        let again = svc.execute(Q).unwrap();
        assert!(again.cache_hit, "plan cache stays on");
        assert_eq!(again.stats.match_cache_hits, 0);
        assert!(again.stats.pattern_matches > 0);
        assert!(svc.match_cache_stats().is_none());
        assert!(svc.metrics_report().contains("match cache: disabled"));
    }

    #[test]
    fn hot_swap_invalidates_match_entries() {
        let svc = tiny_service(ServiceConfig::default());
        svc.execute(Q).unwrap();
        assert!(svc.match_cache_stats().unwrap().len > 0);
        svc.install(DEFAULT_DB, Arc::new(xmark::auction_database(0.002))).unwrap();
        let store = svc.matches.as_ref().unwrap();
        assert!(store.invalidated() > 0, "swap must purge superseded match entries");
        assert_eq!(svc.match_cache_stats().unwrap().len, 0);
        // The first request after the swap re-matches against the new
        // snapshot and must agree with the single-threaded reference.
        let resp = svc.execute(Q).unwrap();
        assert_eq!(resp.db_epoch, 1);
        assert!(resp.stats.match_cache_hits == 0, "{:?}", resp.stats);
        let direct = baselines::run(Engine::Tlc, Q, &svc.database()).unwrap();
        assert_eq!(resp.output, direct);
    }

    #[test]
    fn drop_database_purges_both_caches_and_rejects_default() {
        let svc = tiny_service(ServiceConfig::default());
        svc.install("side", Arc::new(xmark::auction_database(0.001))).unwrap();
        svc.execute_on("side", Q).unwrap();
        let (plans, entries) = svc.drop_database("side").unwrap();
        assert_eq!(plans, 1);
        assert!(entries > 0, "match entries for the dropped db must go");
        assert!(!svc.has_database("side"));
        assert!(matches!(
            svc.execute_on("side", Q),
            Err(ServiceError::Catalog(CatalogError::Unknown(_)))
        ));
        assert!(matches!(svc.drop_database(DEFAULT_DB), Err(ServiceError::Unsupported(_))));
        assert!(matches!(
            svc.drop_database("never-there"),
            Err(ServiceError::Catalog(CatalogError::Unknown(_)))
        ));
        // The default database is untouched.
        assert!(svc.execute(Q).is_ok());
    }

    #[test]
    fn concurrent_same_template_traffic_batches_and_agrees() {
        let svc = Arc::new(tiny_service(ServiceConfig {
            workers: 2,
            queue_depth: 64,
            ..Default::default()
        }));
        let reference = baselines::run(Engine::Tlc, Q, &svc.database()).unwrap();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let svc = Arc::clone(&svc);
                let reference = reference.clone();
                s.spawn(move || {
                    for _ in 0..8 {
                        let resp = svc.execute(Q).unwrap();
                        assert_eq!(resp.output, reference);
                    }
                });
            }
        });
        let b = svc.batch_stats();
        assert_eq!(b.jobs, 32);
        assert!(b.batches <= b.jobs);
        let s = svc.match_cache_stats().unwrap();
        assert!(s.hits > 0, "{s:?}");
    }

    #[test]
    fn apply_update_seeds_disjoint_plans_and_match_entries() {
        let svc = tiny_service(ServiceConfig::default());
        const QB: &str = r#"FOR $i IN document("auction.xml")//item RETURN $i/location"#;
        svc.execute(Q).unwrap();
        svc.execute(QB).unwrap();
        assert!(svc.execute(QB).unwrap().cache_hit);
        let person = svc.database().nodes_with_tag("person")[0];
        let op = UpdateOp::Insert {
            doc: "auction.xml".into(),
            parent: person.pre,
            xml: "<phone>555-0100</phone>".into(),
        };
        let outcome = svc.apply_update(DEFAULT_DB, &op).unwrap();
        assert_eq!(outcome.entry.epoch(), 1);
        assert!(outcome.summary.nodes_added >= 1);
        assert_eq!(outcome.plans_seeded, 1, "only the item/location plan is disjoint");
        assert!(outcome.matches_seeded > 0, "its match entries must carry too");
        // The disjoint query survives the epoch with both caches warm: the
        // plan is served from the seeded entry and the match cache skips
        // structural matching entirely.
        let warm = svc.execute(QB).unwrap();
        assert!(warm.cache_hit, "seeded plan must hit across the update epoch");
        assert_eq!(warm.db_epoch, 1);
        assert!(warm.stats.match_cache_hits > 0, "{:?}", warm.stats);
        assert_eq!(warm.stats.pattern_matches, 0, "carried match entry skips matching");
        // The overlapping query (person is on the mutation's ancestor
        // chain) must recompile and re-match.
        let qa = svc.execute(Q).unwrap();
        assert!(!qa.cache_hit, "overlapping plan must not survive the mutation");
        // Both answers agree with the single-threaded reference against
        // the post-update snapshot.
        assert_eq!(warm.output, baselines::run(Engine::Tlc, QB, &svc.database()).unwrap());
        assert_eq!(qa.output, baselines::run(Engine::Tlc, Q, &svc.database()).unwrap());
        // And the new snapshot actually contains the inserted node.
        assert!(!svc.database().nodes_with_tag("phone").is_empty());
        let snap = svc.metrics_snapshot();
        let c = snap.db(DEFAULT_DB).expect("per-db counters");
        assert_eq!((c.updates, c.plans_seeded), (1, 1));
        assert!(c.matches_seeded > 0);
        assert!(svc.metrics_report().contains("carried across epochs"));
    }

    #[test]
    fn renumbering_update_carries_plans_but_drops_match_entries() {
        let svc = tiny_service(ServiceConfig::default());
        let mut db = Database::new();
        db.load_xml("t.xml", "<r><a>seed</a><b>keep</b></r>").unwrap();
        svc.install("side", Arc::new(db)).unwrap();
        let qb = r#"FOR $b IN document("t.xml")//b RETURN $b"#;
        let reference = svc.execute_on("side", qb).unwrap().output;
        // Hammer inserts under <a> until the gap numbering is exhausted
        // and the engine renumbers.
        let mut renumber = None;
        for _ in 0..64 {
            let a = svc.entry("side").unwrap().database().nodes_with_tag("a")[0];
            let op = UpdateOp::Insert { doc: "t.xml".into(), parent: a.pre, xml: "<x/>".into() };
            let outcome = svc.apply_update("side", &op).unwrap();
            if outcome.summary.renumbered > 0 {
                renumber = Some(outcome);
                break;
            }
            // Until then, the disjoint <b> plan and its match entries ride
            // along every epoch.
            assert_eq!(outcome.plans_seeded, 1);
            assert!(outcome.matches_seeded > 0);
        }
        let outcome = renumber.expect("64 inserts under one parent must renumber");
        // Plans bind only tag ids and document names, so the <b> plan
        // still carries; match entries embed node ordinals, which the
        // renumbering moved, so none survive.
        assert_eq!(outcome.plans_seeded, 1);
        assert_eq!(outcome.matches_seeded, 0, "renumbering must drop match entries");
        let resp = svc.execute_on("side", qb).unwrap();
        assert!(resp.cache_hit, "plan survives the renumbering epoch");
        assert_eq!(resp.stats.match_cache_hits, 0, "{:?}", resp.stats);
        assert!(resp.stats.pattern_matches > 0, "must re-match against new ordinals");
        assert_eq!(resp.output, reference, "<b> subtree is untouched by the updates");
    }

    #[test]
    fn apply_update_rejections_are_typed() {
        let svc = tiny_service(ServiceConfig::default());
        let bad_doc = UpdateOp::Delete { doc: "nope.xml".into(), pre: 1 };
        assert!(matches!(svc.apply_update(DEFAULT_DB, &bad_doc), Err(ServiceError::Update(_))));
        let root = UpdateOp::Delete { doc: "auction.xml".into(), pre: 0 };
        assert!(matches!(svc.apply_update(DEFAULT_DB, &root), Err(ServiceError::Update(_))));
        let no_db = UpdateOp::SetText { doc: "auction.xml".into(), pre: 1, text: "x".into() };
        assert!(matches!(
            svc.apply_update("ghost", &no_db),
            Err(ServiceError::Catalog(CatalogError::Unknown(_)))
        ));
        // A failed update publishes nothing.
        assert_eq!(svc.entry(DEFAULT_DB).unwrap().epoch(), 0);
    }

    #[test]
    fn ir_backend_serves_byte_identically_and_compiles_once() {
        let svc = tiny_service(ServiceConfig::default());
        let direct = baselines::run(Engine::Tlc, Q, &svc.database()).unwrap();
        let cold = svc.execute(Q).unwrap();
        let warm = svc.execute(Q).unwrap();
        assert_eq!(cold.output, direct);
        assert_eq!(warm.output, direct);
        let snap = svc.metrics_snapshot();
        assert_eq!(snap.ir_compiles, 1, "one lowering per cache entry");
        assert!(snap.ir_cache_hits >= 1, "repeat must reuse the program");
        assert_eq!(snap.ir_compile.count(), 1);
        assert!(svc.metrics_report().contains("ir: 1 program(s) compiled"));
    }

    #[test]
    fn ir_off_forces_the_tree_walker() {
        let on = tiny_service(ServiceConfig::default());
        let off = tiny_service(ServiceConfig { ir: false, ..Default::default() });
        assert_eq!(on.execute(Q).unwrap().output, off.execute(Q).unwrap().output);
        let snap = off.metrics_snapshot();
        assert_eq!((snap.ir_compiles, snap.ir_cache_hits), (0, 0));
        assert!(!off.metrics_report().contains("ir:"), "no IR line without IR traffic");
    }

    #[test]
    fn ir_program_rides_plan_carry_across_update_epochs() {
        let svc = tiny_service(ServiceConfig::default());
        const QB: &str = r#"FOR $i IN document("auction.xml")//item RETURN $i/location"#;
        svc.execute(QB).unwrap();
        assert_eq!(svc.metrics_snapshot().ir_compiles, 1);
        let person = svc.database().nodes_with_tag("person")[0];
        let op = UpdateOp::Insert {
            doc: "auction.xml".into(),
            parent: person.pre,
            xml: "<phone>555-0100</phone>".into(),
        };
        let outcome = svc.apply_update(DEFAULT_DB, &op).unwrap();
        assert_eq!(outcome.plans_seeded, 1);
        let warm = svc.execute(QB).unwrap();
        assert!(warm.cache_hit);
        assert_eq!(warm.db_epoch, 1);
        assert_eq!(warm.output, baselines::run(Engine::Tlc, QB, &svc.database()).unwrap());
        let snap = svc.metrics_snapshot();
        assert_eq!(snap.ir_compiles, 1, "carried entry must not re-lower");
        assert!(snap.ir_cache_hits >= 1, "post-update execution reuses the carried program");
    }

    #[test]
    fn explain_renders_the_ir_section() {
        let svc = tiny_service(ServiceConfig::default());
        let report = svc.explain(DEFAULT_DB, Q).unwrap();
        assert!(report.contains("== ir =="), "{report}");
        assert!(report.contains("program:"), "{report}");
        assert!(report.contains("registers:"), "{report}");
        let off = tiny_service(ServiceConfig { ir: false, ..Default::default() });
        let report = off.explain(DEFAULT_DB, Q).unwrap();
        assert!(report.contains("ir backend disabled"), "{report}");
    }

    #[test]
    fn client_wait_deadline_abandons_slow_replies() {
        // A zero client wait can't lose the race reliably on a fast
        // machine, so retry a few times; one abandonment is enough.
        let svc =
            tiny_service(ServiceConfig { client_wait: Some(Duration::ZERO), ..Default::default() });
        let mut abandoned = false;
        for _ in 0..32 {
            if let Err(ServiceError::Abandoned { waited }) = svc.execute(Q) {
                assert_eq!(waited, Duration::ZERO);
                abandoned = true;
                break;
            }
        }
        assert!(abandoned, "zero-wait client never abandoned a reply");
        assert!(svc.metrics_snapshot().abandoned >= 1);
        // The pool survives abandonment: a patient caller still gets served.
        let patient = tiny_service(ServiceConfig {
            client_wait: Some(Duration::from_secs(60)),
            ..Default::default()
        });
        assert!(patient.execute(Q).is_ok());
    }

    fn sharded_config(ir: bool) -> ServiceConfig {
        ServiceConfig {
            shard_max: 4,
            shard_min_candidates: 1,
            workers: 2,
            queue_depth: 32,
            ir,
            ..Default::default()
        }
    }

    #[test]
    fn sharded_execution_is_byte_identical_on_both_backends() {
        const QJ: &str = r#"FOR $p IN document("auction.xml")//person
                            WHERE $p/age > 25 RETURN $p/name"#;
        for ir in [false, true] {
            let svc = tiny_service(sharded_config(ir));
            for q in [Q, QJ] {
                let direct = baselines::run(Engine::Tlc, q, &svc.database()).unwrap();
                let resp = svc.execute(q).unwrap();
                assert_eq!(resp.output, direct, "ir={ir}: sharded output diverged");
            }
            let snap = svc.metrics_snapshot();
            assert!(snap.shards_executed >= 2, "ir={ir}: no shards ran: {snap:?}");
            assert_eq!(snap.merge.count(), snap.db(DEFAULT_DB).unwrap().parallel_requests);
            assert!(snap.db(DEFAULT_DB).unwrap().parallel_requests >= 1);
            let sh = svc.shard_stats();
            assert!(sh.waves >= 1 && sh.jobs == snap.shards_executed, "{sh:?}");
            let report = svc.metrics_report();
            assert!(report.contains("parallel:"), "{report}");
            assert!(report.contains("shard dispatch:"), "{report}");
            assert!(report.contains("shard merge:"), "{report}");
        }
    }

    #[test]
    fn unshardable_plans_fall_back_sequentially() {
        const SORTED: &str = r#"FOR $p IN document("auction.xml")//person
                                ORDER BY $p/name RETURN $p/name"#;
        let svc = tiny_service(sharded_config(true));
        let direct = baselines::run(Engine::Tlc, SORTED, &svc.database()).unwrap();
        let resp = svc.execute(SORTED).unwrap();
        assert_eq!(resp.output, direct);
        let snap = svc.metrics_snapshot();
        assert!(snap.shard_fallback_sequential >= 1, "{snap:?}");
        assert_eq!(snap.shards_executed, 0, "a sort must never shard");
    }

    #[test]
    fn sharded_zero_budget_deadline_exceeds_without_orphans() {
        let svc = tiny_service(sharded_config(false));
        match svc.execute_with_deadline(Q, Duration::ZERO) {
            Err(ServiceError::DeadlineExceeded) => {}
            other => panic!("expected deadline error, got {other:?}"),
        }
        // Every admitted shard job was awaited (expired in queue or
        // cancelled), so the pool is idle and healthy for the next request.
        let ok = svc.execute(Q).unwrap();
        assert!(!ok.output.is_empty());
        assert!(svc.metrics_snapshot().deadline >= 1);
    }

    #[test]
    fn update_mid_sweep_never_tears_sharded_reads() {
        // A writer bumps the epoch via in-place updates while sharded
        // readers sweep; every answer must match the single-threaded
        // reference for the exact epoch that served it — a torn read
        // (shards straddling two snapshots) could match neither.
        let svc = Arc::new(tiny_service(sharded_config(false)));
        let mut snapshots: Vec<(u64, Arc<Database>)> = vec![(0, svc.database())];
        let answers: Vec<(u64, String)> = std::thread::scope(|s| {
            let readers: Vec<_> = (0..2)
                .map(|_| {
                    let svc = Arc::clone(&svc);
                    s.spawn(move || {
                        let mut seen = Vec::new();
                        for _ in 0..20 {
                            let resp = svc.execute(Q).unwrap();
                            seen.push((resp.db_epoch, resp.output));
                        }
                        seen
                    })
                })
                .collect();
            for i in 0..6 {
                let parent = svc.database().nodes_with_tag("person")[i].pre;
                let op = UpdateOp::Insert {
                    doc: "auction.xml".into(),
                    parent,
                    xml: format!("<phone>555-{i:04}</phone>"),
                };
                let outcome = svc.apply_update(DEFAULT_DB, &op).unwrap();
                snapshots.push((outcome.entry.epoch(), Arc::clone(outcome.entry.database())));
                std::thread::sleep(Duration::from_millis(2));
            }
            readers.into_iter().flat_map(|r| r.join().unwrap()).collect()
        });
        assert!(!answers.is_empty());
        for (epoch, output) in answers {
            let snapshot = &snapshots.iter().find(|(e, _)| *e == epoch).unwrap().1;
            let reference = baselines::run(Engine::Tlc, Q, snapshot).unwrap();
            assert_eq!(output, reference, "epoch {epoch}: torn or stale sharded read");
        }
    }
}
