#![warn(missing_docs)]

//! # service — the concurrent query-service layer
//!
//! Everything below this crate evaluates one query at a time from scratch:
//! parse → translate → optimize → execute through `baselines::run`. This
//! crate turns that library into a long-lived, thread-safe **service** that
//! owns a shared [`xmldb::Database`] and serves many clients at once:
//!
//! * **plan cache** ([`cache`]) — a bounded LRU from whitespace-normalized
//!   query text to the compiled, optimized TLC plan. The evaluation
//!   workload is a repeated-template workload, so compile-once/execute-many
//!   removes the whole front half of the pipeline from the hot path.
//! * **worker pool** ([`pool`]) — a fixed set of executor threads behind a
//!   bounded admission queue. A full queue rejects new work immediately
//!   ([`ServiceError::Overloaded`]) instead of queueing without bound.
//! * **deadlines** — every request can carry a wall-clock budget; time
//!   spent queued counts against it. The TLC executor checks the deadline
//!   between operators ([`tlc::execute_with_deadline`]), so an over-budget
//!   query aborts cleanly with [`ServiceError::DeadlineExceeded`] and frees
//!   its worker instead of wedging it.
//! * **metrics** ([`metrics`]) — per-query latency histograms (count /
//!   mean / p50 / p95 / max), plan-cache hit rate, and rolled-up
//!   [`tlc::ExecStats`] counters, dumped as a text report.
//!
//! The read path of the store is immutable after load, so any number of
//! workers share one `Arc<Database>` with no synchronization at all. The
//! compile-time assertions at the bottom of this module pin the `Send +
//! Sync` requirements the design rests on.
//!
//! ```
//! use std::sync::Arc;
//! let db = Arc::new(xmark::auction_database(0.001));
//! let svc = service::Service::new(db, service::ServiceConfig::default());
//! let q = r#"FOR $p IN document("auction.xml")//person RETURN $p/name"#;
//! let first = svc.execute(q).unwrap();
//! let second = svc.execute(q).unwrap(); // plan comes from the cache
//! assert!(!first.cache_hit && second.cache_hit);
//! assert_eq!(first.output, second.output);
//! ```

pub mod cache;
pub mod metrics;
pub mod pool;
pub mod protocol;

use baselines::Engine;
use cache::{CacheStats, LruCache};
use metrics::{Metrics, Outcome, Snapshot};
use pool::{Pool, Reply, SubmitError};
use std::fmt;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use tlc::{ExecStats, Plan};
use xmldb::Database;

/// Configuration for a [`Service`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Engine used to compile and execute queries. Plan-based engines get
    /// plan caching; [`Engine::Nav`] is interpreted per request.
    pub engine: Engine,
    /// Executor threads.
    pub workers: usize,
    /// Bounded admission-queue depth (requests waiting beyond the ones
    /// being executed). Submissions past it fail with
    /// [`ServiceError::Overloaded`].
    pub queue_depth: usize,
    /// Plan-cache capacity in entries.
    pub plan_cache_capacity: usize,
    /// Wall-clock budget applied to requests that do not carry their own;
    /// `None` means unlimited.
    pub default_deadline: Option<Duration>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        let workers = std::thread::available_parallelism().map_or(4, |n| n.get()).min(8);
        ServiceConfig {
            engine: Engine::Tlc,
            workers,
            queue_depth: workers * 4,
            plan_cache_capacity: 128,
            default_deadline: None,
        }
    }
}

/// Errors a request can come back with.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceError {
    /// The query failed to parse or translate.
    Compile(tlc::Error),
    /// The plan failed during execution.
    Execute(tlc::Error),
    /// The request exceeded its wall-clock deadline (queued time included).
    DeadlineExceeded,
    /// The admission queue was full.
    Overloaded {
        /// The configured queue depth that was exhausted.
        queue_depth: usize,
    },
    /// The service is shutting down.
    ShuttingDown,
    /// The operation is not supported for the configured engine (e.g.
    /// preparing a plan for the interpreted NAV engine).
    Unsupported(String),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Compile(e) => write!(f, "compile error: {e}"),
            ServiceError::Execute(e) => write!(f, "execution error: {e}"),
            ServiceError::DeadlineExceeded => write!(f, "deadline exceeded"),
            ServiceError::Overloaded { queue_depth } => {
                write!(f, "service overloaded (queue depth {queue_depth} exhausted)")
            }
            ServiceError::ShuttingDown => write!(f, "service is shutting down"),
            ServiceError::Unsupported(m) => write!(f, "unsupported: {m}"),
        }
    }
}

impl std::error::Error for ServiceError {}

/// A compiled, cached plan: the result of [`Service::prepare`]. Cheap to
/// clone and valid for the service's lifetime — eviction from the cache
/// does not invalidate handles already given out.
#[derive(Debug, Clone)]
pub struct PlanHandle {
    normalized: Arc<str>,
    plan: Arc<Plan>,
}

impl PlanHandle {
    /// The normalized query text this plan was compiled from (the cache key).
    pub fn query(&self) -> &str {
        &self.normalized
    }

    /// The compiled plan.
    pub fn plan(&self) -> &Plan {
        &self.plan
    }
}

/// One served request's result.
#[derive(Debug, Clone)]
pub struct Response {
    /// Serialized query result, byte-identical to what the single-threaded
    /// `baselines::run` produces for the same engine.
    pub output: String,
    /// Executor counters for this request.
    pub stats: ExecStats,
    /// Whether the plan came out of the cache (always `true` for
    /// [`Service::execute_prepared`], always `false` for NAV).
    pub cache_hit: bool,
    /// End-to-end time: admission + queue + execute + serialize.
    pub total_time: Duration,
}

type WorkResult = Result<(String, ExecStats), ServiceError>;

/// The concurrent query service. See the crate docs for the architecture.
///
/// `Service` is `Send + Sync`; wrap it in an `Arc` to share across
/// connection handlers. Dropping it drains admitted requests and joins the
/// worker threads.
pub struct Service {
    db: Arc<Database>,
    engine: Engine,
    cache: Mutex<LruCache<Plan>>,
    metrics: Metrics,
    pool: Pool<WorkResult>,
    default_deadline: Option<Duration>,
    queue_depth: usize,
}

impl Service {
    /// Builds a service over a loaded database.
    pub fn new(db: Arc<Database>, config: ServiceConfig) -> Service {
        Service {
            db,
            engine: config.engine,
            cache: Mutex::new(LruCache::new(config.plan_cache_capacity)),
            metrics: Metrics::new(),
            pool: Pool::new(config.workers, config.queue_depth),
            default_deadline: config.default_deadline,
            queue_depth: config.queue_depth,
        }
    }

    /// The shared database.
    pub fn database(&self) -> &Arc<Database> {
        &self.db
    }

    /// The configured engine.
    pub fn engine(&self) -> Engine {
        self.engine
    }

    /// Compiles `query` (or fetches its cached plan) without executing it.
    ///
    /// The returned handle can be executed any number of times with
    /// [`Service::execute_prepared`]; textually different spellings of the
    /// same query (whitespace aside) share one cache entry.
    pub fn prepare(&self, query: &str) -> Result<PlanHandle, ServiceError> {
        self.prepare_inner(query).map(|(handle, _)| handle)
    }

    /// Like [`Service::prepare`], also reporting whether the plan was cached.
    fn prepare_inner(&self, query: &str) -> Result<(PlanHandle, bool), ServiceError> {
        if self.engine == Engine::Nav {
            return Err(ServiceError::Unsupported(
                "NAV is interpreted per request; nothing to prepare".into(),
            ));
        }
        let normalized = cache::normalize_query(query);
        if let Some(plan) = self.cache.lock().unwrap().get(&normalized) {
            self.metrics.record_cache(true, 0);
            return Ok((PlanHandle { normalized: normalized.into(), plan }, true));
        }
        // Compile outside the cache lock: compilation is the expensive part,
        // and holding the lock would serialize concurrent misses. Two racing
        // misses both compile; the loser's insert replaces in place, which
        // is harmless (plans for the same text are interchangeable).
        let plan = Arc::new(
            baselines::plan_for(self.engine, query, &self.db).map_err(ServiceError::Compile)?,
        );
        // Gate the cache behind the static LC dataflow analysis: a plan that
        // fails verification would be served to every later request for the
        // same text, so a poisoned plan must never enter the LRU.
        tlc::analyze::verify(&plan).map_err(|e| ServiceError::Compile(tlc::Error::Analyze(e)))?;
        let evictions = self.cache.lock().unwrap().insert(&normalized, Arc::clone(&plan));
        self.metrics.record_cache(false, evictions);
        Ok((PlanHandle { normalized: normalized.into(), plan }, false))
    }

    /// Compiles (through the plan cache) and executes `query` under the
    /// default deadline.
    pub fn execute(&self, query: &str) -> Result<Response, ServiceError> {
        self.execute_opts(query, self.default_deadline)
    }

    /// Like [`Service::execute`] with an explicit wall-clock budget for
    /// this request alone.
    pub fn execute_with_deadline(
        &self,
        query: &str,
        budget: Duration,
    ) -> Result<Response, ServiceError> {
        self.execute_opts(query, Some(budget))
    }

    fn execute_opts(
        &self,
        query: &str,
        budget: Option<Duration>,
    ) -> Result<Response, ServiceError> {
        let admitted = Instant::now();
        let deadline = budget.map(|b| admitted + b);
        if self.engine == Engine::Nav {
            // Interpreted engine: no plan, no cache; the deadline still
            // guards queue time (checked at dequeue).
            let db = Arc::clone(&self.db);
            let text = query.to_string();
            let label = cache::normalize_query(query);
            let work: Box<dyn FnOnce() -> WorkResult + Send> = Box::new(move || {
                baselines::run(Engine::Nav, &text, &db)
                    .map(|out| (out, ExecStats::new()))
                    .map_err(ServiceError::Execute)
            });
            return self.dispatch(label, false, admitted, deadline, work);
        }
        let (handle, cached) = self.prepare_inner(query)?;
        self.execute_handle(&handle, cached, admitted, deadline)
    }

    /// Executes a prepared plan under the default deadline.
    pub fn execute_prepared(&self, handle: &PlanHandle) -> Result<Response, ServiceError> {
        let admitted = Instant::now();
        let deadline = self.default_deadline.map(|b| admitted + b);
        self.execute_handle(handle, true, admitted, deadline)
    }

    fn execute_handle(
        &self,
        handle: &PlanHandle,
        cached: bool,
        admitted: Instant,
        deadline: Option<Instant>,
    ) -> Result<Response, ServiceError> {
        let db = Arc::clone(&self.db);
        let plan = Arc::clone(&handle.plan);
        let work: Box<dyn FnOnce() -> WorkResult + Send> = Box::new(move || {
            let run = match deadline {
                Some(d) => tlc::execute_with_deadline(&db, &plan, d),
                None => tlc::execute(&db, &plan),
            };
            match run {
                Ok((trees, stats)) => Ok((tlc::serialize_results(&db, &trees), stats)),
                Err(tlc::Error::DeadlineExceeded) => Err(ServiceError::DeadlineExceeded),
                Err(e) => Err(ServiceError::Execute(e)),
            }
        });
        self.dispatch(handle.normalized.to_string(), cached, admitted, deadline, work)
    }

    fn dispatch(
        &self,
        label: String,
        cache_hit: bool,
        admitted: Instant,
        deadline: Option<Instant>,
        work: Box<dyn FnOnce() -> WorkResult + Send>,
    ) -> Result<Response, ServiceError> {
        let rx = self.pool.submit(deadline, work).map_err(|e| match e {
            SubmitError::QueueFull => {
                self.metrics.record_outcome(Outcome::Rejected);
                ServiceError::Overloaded { queue_depth: self.queue_depth }
            }
            SubmitError::Disconnected => ServiceError::ShuttingDown,
        })?;
        let reply = rx.recv().map_err(|_| ServiceError::ShuttingDown)?;
        let total_time = admitted.elapsed();
        match reply {
            Reply::Done { value: Ok((output, stats)), queue_wait } => {
                self.metrics.record_queue_wait(queue_wait);
                self.metrics.record_request(&label, total_time, &stats);
                Ok(Response { output, stats, cache_hit, total_time })
            }
            Reply::Done { value: Err(e), queue_wait } => {
                self.metrics.record_queue_wait(queue_wait);
                self.metrics.record_outcome(match e {
                    ServiceError::DeadlineExceeded => Outcome::Deadline,
                    _ => Outcome::Error,
                });
                Err(e)
            }
            Reply::ExpiredInQueue { queue_wait } => {
                self.metrics.record_queue_wait(queue_wait);
                self.metrics.record_outcome(Outcome::Deadline);
                Err(ServiceError::DeadlineExceeded)
            }
        }
    }

    /// Plan-cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.lock().unwrap().stats()
    }

    /// Aggregate metrics snapshot.
    pub fn metrics_snapshot(&self) -> Snapshot {
        self.metrics.snapshot()
    }

    /// The full text metrics report (`.metrics` in the wire protocol).
    pub fn metrics_report(&self) -> String {
        self.metrics.report()
    }

    /// Number of executor threads.
    pub fn workers(&self) -> usize {
        self.pool.workers()
    }
}

// The concurrency contract, checked at compile time: plans and the database
// are freely shareable across worker threads, and the service itself can be
// wrapped in an Arc and used from any number of connection handlers.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Plan>();
    assert_send_sync::<Database>();
    assert_send_sync::<ExecStats>();
    assert_send_sync::<Service>();
    assert_send_sync::<PlanHandle>();
};

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_service(config: ServiceConfig) -> Service {
        let db = Arc::new(xmark::auction_database(0.001));
        Service::new(db, config)
    }

    const Q: &str = r#"FOR $p IN document("auction.xml")//person RETURN $p/name"#;

    #[test]
    fn execute_matches_direct_run() {
        let svc = tiny_service(ServiceConfig::default());
        let direct = baselines::run(Engine::Tlc, Q, svc.database()).unwrap();
        let resp = svc.execute(Q).unwrap();
        assert_eq!(resp.output, direct);
        assert!(!resp.cache_hit);
        assert!(svc.execute(Q).unwrap().cache_hit);
    }

    #[test]
    fn prepare_then_execute_prepared() {
        let svc = tiny_service(ServiceConfig::default());
        let handle = svc.prepare(Q).unwrap();
        assert!(handle.plan().operator_count() > 0);
        let a = svc.execute_prepared(&handle).unwrap();
        let b = svc.execute_prepared(&handle).unwrap();
        assert_eq!(a.output, b.output);
    }

    #[test]
    fn compile_errors_are_typed() {
        let svc = tiny_service(ServiceConfig::default());
        match svc.execute("THIS IS NOT XQUERY") {
            Err(ServiceError::Compile(_)) => {}
            other => panic!("expected compile error, got {other:?}"),
        }
    }

    #[test]
    fn zero_budget_deadline_exceeds() {
        let svc = tiny_service(ServiceConfig::default());
        match svc.execute_with_deadline(Q, Duration::ZERO) {
            Err(ServiceError::DeadlineExceeded) => {}
            other => panic!("expected deadline error, got {other:?}"),
        }
        // The worker is still healthy afterwards.
        assert!(svc.execute(Q).is_ok());
        assert!(svc.metrics_snapshot().deadline >= 1);
    }

    #[test]
    fn nav_engine_is_served_uncached() {
        let svc = tiny_service(ServiceConfig { engine: Engine::Nav, ..Default::default() });
        let resp = svc.execute(Q).unwrap();
        let direct = baselines::run(Engine::Nav, Q, svc.database()).unwrap();
        assert_eq!(resp.output, direct);
        assert!(!resp.cache_hit);
        assert!(matches!(svc.prepare(Q), Err(ServiceError::Unsupported(_))));
    }

    #[test]
    fn metrics_report_reflects_traffic() {
        let svc = tiny_service(ServiceConfig::default());
        svc.execute(Q).unwrap();
        svc.execute(Q).unwrap();
        let report = svc.metrics_report();
        assert!(report.contains("50.0% hit rate"), "{report}");
        assert!(report.contains("queue wait: count=2"), "{report}");
        let snap = svc.metrics_snapshot();
        assert_eq!(snap.ok, 2);
        assert!(snap.exec.pattern_matches > 0);
        assert_eq!(snap.queue_wait.count(), 2);
    }
}
