//! Access-path indexes.
//!
//! The paper's experiments use exactly two access paths (§6.2):
//!
//! * *"We used an index on element tag name for all the queries, which
//!   returns the node identifiers given a tag name."* — [`TagIndex`].
//! * *"On all queries that had a condition on content we used a value index,
//!   which returns the node ids given a content value."* — [`ValueIndex`],
//!   which supports both exact-match lookups and numeric range scans.
//!
//! There is intentionally **no index on join values** (*"Unfortunately our
//! implementation does not support indices on join values"*), so value-join
//! queries pay full data-access cost, as in the paper.
//!
//! Both indexes return node-id lists in document order, which is what the
//! merge-based structural joins require.

use crate::node::{NodeId, NodeKind};
use crate::tag::TagId;
use std::collections::{BTreeMap, HashMap};

/// Tag-name index: interned tag → node ids in global document order.
#[derive(Debug, Default, Clone)]
pub struct TagIndex {
    map: HashMap<TagId, Vec<NodeId>>,
    empty: Vec<NodeId>,
}

impl TagIndex {
    /// Creates an empty index.
    pub fn new() -> Self {
        TagIndex::default()
    }

    /// Registers a node. Nodes must be inserted in document order (the
    /// database loads documents one at a time in pre order, so this holds).
    pub fn insert(&mut self, tag: TagId, id: NodeId) {
        let list = self.map.entry(tag).or_default();
        debug_assert!(list.last().is_none_or(|l| *l < id), "tag index must stay sorted");
        list.push(id);
    }

    /// All nodes with the given tag, in document order.
    pub fn get(&self, tag: TagId) -> &[NodeId] {
        self.map.get(&tag).unwrap_or(&self.empty)
    }

    /// Number of distinct tags indexed.
    pub fn tag_count(&self) -> usize {
        self.map.len()
    }

    /// Total number of postings.
    pub fn posting_count(&self) -> usize {
        self.map.values().map(Vec::len).sum()
    }

    /// Iterates every `(tag, postings)` pair, in no particular order. Used
    /// by the store checker ([`crate::check`]) to validate the index against
    /// the arenas.
    pub fn tags(&self) -> impl Iterator<Item = (TagId, &[NodeId])> {
        self.map.iter().map(|(t, v)| (*t, v.as_slice()))
    }

    /// Registers a node at its document-order position — the incremental
    /// counterpart of [`TagIndex::insert`] for in-place updates. Only the
    /// mutated tag's posting list is touched.
    pub fn insert_sorted(&mut self, tag: TagId, id: NodeId) {
        let list = self.map.entry(tag).or_default();
        match list.binary_search(&id) {
            Ok(_) => debug_assert!(false, "tag index already holds {id:?}"),
            Err(pos) => list.insert(pos, id),
        }
    }

    /// Removes one posting; returns whether it was present. Empty posting
    /// lists are dropped so the index holds no stray tags.
    pub fn remove(&mut self, tag: TagId, id: NodeId) -> bool {
        let Some(list) = self.map.get_mut(&tag) else {
            return false;
        };
        let Ok(pos) = list.binary_search(&id) else {
            return false;
        };
        list.remove(pos);
        if list.is_empty() {
            self.map.remove(&tag);
        }
        true
    }
}

/// Totally ordered `f64` wrapper so numbers can key a `BTreeMap`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OrdF64(pub f64);

impl Eq for OrdF64 {}
impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Content-value index over nodes with inline content (leaf elements,
/// attributes and text nodes).
#[derive(Debug, Default, Clone)]
pub struct ValueIndex {
    /// Exact string match: `(tag, value) → ids` (document order).
    exact: HashMap<(TagId, Box<str>), Vec<NodeId>>,
    /// Numeric index per tag for range predicates.
    numeric: HashMap<TagId, BTreeMap<OrdF64, Vec<NodeId>>>,
    empty: Vec<NodeId>,
}

impl ValueIndex {
    /// Creates an empty index.
    pub fn new() -> Self {
        ValueIndex::default()
    }

    /// Registers a node's inline content. Insertion must follow document
    /// order (same contract as [`TagIndex::insert`]).
    pub fn insert(&mut self, tag: TagId, kind: NodeKind, id: NodeId, content: &str) {
        debug_assert!(matches!(kind, NodeKind::Element | NodeKind::Attribute | NodeKind::Text));
        self.exact.entry((tag, content.into())).or_default().push(id);
        if let Ok(n) = content.trim().parse::<f64>() {
            self.numeric.entry(tag).or_default().entry(OrdF64(n)).or_default().push(id);
        }
    }

    /// Registers a node's inline content at its document-order position —
    /// the incremental counterpart of [`ValueIndex::insert`] for in-place
    /// updates.
    pub fn insert_sorted(&mut self, tag: TagId, id: NodeId, content: &str) {
        let list = self.exact.entry((tag, content.into())).or_default();
        if let Err(pos) = list.binary_search(&id) {
            list.insert(pos, id);
        }
        if let Ok(n) = content.trim().parse::<f64>() {
            let list = self.numeric.entry(tag).or_default().entry(OrdF64(n)).or_default();
            if let Err(pos) = list.binary_search(&id) {
                list.insert(pos, id);
            }
        }
    }

    /// Removes one node's content postings (exact and, when the content is
    /// numeric, the numeric tree); returns whether the exact posting was
    /// present. Emptied entries are dropped.
    pub fn remove(&mut self, tag: TagId, id: NodeId, content: &str) -> bool {
        let key = (tag, Box::from(content));
        let Some(list) = self.exact.get_mut(&key) else {
            return false;
        };
        let Ok(pos) = list.binary_search(&id) else {
            return false;
        };
        list.remove(pos);
        if list.is_empty() {
            self.exact.remove(&key);
        }
        if let Ok(n) = content.trim().parse::<f64>() {
            if let Some(tree) = self.numeric.get_mut(&tag) {
                if let Some(list) = tree.get_mut(&OrdF64(n)) {
                    if let Ok(pos) = list.binary_search(&id) {
                        list.remove(pos);
                    }
                    if list.is_empty() {
                        tree.remove(&OrdF64(n));
                    }
                }
                if tree.is_empty() {
                    self.numeric.remove(&tag);
                }
            }
        }
        true
    }

    /// Total number of exact-match postings (one per indexed node). Used by
    /// the store checker to prove the index holds nothing beyond the nodes
    /// the forward sweep accounted for.
    pub fn exact_posting_count(&self) -> usize {
        self.exact.values().map(Vec::len).sum()
    }

    /// Nodes whose tag is `tag` and whose inline content equals `value`.
    pub fn lookup_exact(&self, tag: TagId, value: &str) -> &[NodeId] {
        // Key by reference without allocating: HashMap<(TagId, Box<str>)>
        // cannot be probed with (&TagId, &str), so we pay one small
        // allocation per query compilation — not per tuple.
        self.exact.get(&(tag, Box::from(value))).map_or(&self.empty[..], Vec::as_slice)
    }

    /// Nodes with tag `tag` whose numeric value lies in `[lo, hi]`
    /// (either bound optional), in document order.
    pub fn lookup_range(&self, tag: TagId, lo: Option<f64>, hi: Option<f64>) -> Vec<NodeId> {
        let Some(tree) = self.numeric.get(&tag) else {
            return Vec::new();
        };
        use std::ops::Bound::*;
        let lo = lo.map_or(Unbounded, |v| Included(OrdF64(v)));
        let hi = hi.map_or(Unbounded, |v| Included(OrdF64(v)));
        let mut out: Vec<NodeId> =
            tree.range((lo, hi)).flat_map(|(_, v)| v.iter().copied()).collect();
        out.sort_unstable();
        out
    }

    /// Nodes with tag `tag` whose numeric value is strictly above/below a
    /// bound — convenience for `>` / `<` predicates.
    pub fn lookup_cmp(&self, tag: TagId, op: std::cmp::Ordering, value: f64) -> Vec<NodeId> {
        let Some(tree) = self.numeric.get(&tag) else {
            return Vec::new();
        };
        use std::cmp::Ordering::*;
        use std::ops::Bound::*;
        let range: (std::ops::Bound<OrdF64>, std::ops::Bound<OrdF64>) = match op {
            Less => (Unbounded, Excluded(OrdF64(value))),
            Greater => (Excluded(OrdF64(value)), Unbounded),
            Equal => (Included(OrdF64(value)), Included(OrdF64(value))),
        };
        let mut out: Vec<NodeId> = tree.range(range).flat_map(|(_, v)| v.iter().copied()).collect();
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::DocId;

    fn id(pre: u32) -> NodeId {
        NodeId::new(DocId(0), pre)
    }

    #[test]
    fn tag_index_returns_document_order() {
        let mut ti = TagIndex::new();
        let t = TagId(7);
        for pre in [1, 4, 9, 200] {
            ti.insert(t, id(pre));
        }
        assert_eq!(ti.get(t).len(), 4);
        assert!(ti.get(t).windows(2).all(|w| w[0] < w[1]));
        assert!(ti.get(TagId(99)).is_empty());
        assert_eq!(ti.tag_count(), 1);
        assert_eq!(ti.posting_count(), 4);
    }

    #[test]
    fn value_index_exact_lookup() {
        let mut vi = ValueIndex::new();
        let t = TagId(3);
        vi.insert(t, NodeKind::Element, id(2), "person0");
        vi.insert(t, NodeKind::Element, id(5), "person1");
        vi.insert(t, NodeKind::Element, id(8), "person0");
        assert_eq!(vi.lookup_exact(t, "person0"), &[id(2), id(8)]);
        assert!(vi.lookup_exact(t, "nobody").is_empty());
        assert!(vi.lookup_exact(TagId(4), "person0").is_empty());
    }

    #[test]
    fn value_index_numeric_range_and_cmp() {
        let mut vi = ValueIndex::new();
        let t = TagId(3);
        for (pre, v) in [(1, "10"), (2, "25.5"), (3, "40"), (4, "abc"), (5, "25.5")] {
            vi.insert(t, NodeKind::Element, id(pre), v);
        }
        assert_eq!(vi.lookup_range(t, Some(20.0), Some(30.0)), vec![id(2), id(5)]);
        assert_eq!(vi.lookup_cmp(t, std::cmp::Ordering::Greater, 25.5), vec![id(3)]);
        assert_eq!(vi.lookup_cmp(t, std::cmp::Ordering::Less, 25.5), vec![id(1)]);
        assert_eq!(vi.lookup_cmp(t, std::cmp::Ordering::Equal, 25.5), vec![id(2), id(5)]);
        // Non-numeric content is only reachable through exact lookup.
        assert_eq!(vi.lookup_exact(t, "abc"), &[id(4)]);
    }

    #[test]
    fn range_with_open_bounds() {
        let mut vi = ValueIndex::new();
        let t = TagId(1);
        for (pre, v) in [(1, "1"), (2, "2"), (3, "3")] {
            vi.insert(t, NodeKind::Element, id(pre), v);
        }
        assert_eq!(vi.lookup_range(t, None, None).len(), 3);
        assert_eq!(vi.lookup_range(t, Some(2.0), None).len(), 2);
        assert_eq!(vi.lookup_range(t, None, Some(1.5)).len(), 1);
        assert!(vi.lookup_range(TagId(9), None, None).is_empty());
    }
}
