//! Store invariant checker.
//!
//! An O(n) verifier for everything the engines assume about the store:
//!
//! * **Interval encoding** (the paper's Figure 13, Properties 1–4): every
//!   node's `(pre, end)` interval is well-formed (`pre <= end`, inside the
//!   document), children's intervals are properly nested inside — and
//!   disjoint within — their parent's, and `parent`/`level` agree with the
//!   nesting. One stack walk in pre order proves all of it at once: since
//!   pre order visits a node before its descendants, requiring each node's
//!   recorded parent to be exactly the innermost open interval establishes
//!   *containment ⇔ ancestorship* (what [`Document::is_ancestor`]'s two
//!   comparisons rely on) and sibling disjointness simultaneously.
//! * **Arena layout**: node 0 is the synthetic document root spanning the
//!   whole arena; attributes and text nodes are content-bearing leaves.
//! * **Index completeness**: the tag index holds exactly the non-root
//!   nodes (every node findable under its tag, every posting backed by a
//!   matching node, postings strictly in document order), and the value
//!   index covers exactly the content-bearing nodes, with numeric content
//!   also reachable through the numeric tree.
//!
//! Exposed to users as the `.check` shell command and the `experiments
//! check` subcommand; run against every generated XMark document in tests.

use crate::database::Database;
use crate::document::{Document, NodeRecord};
use crate::error::{Error, Result};
use crate::node::{DocId, NodeId, NodeKind};
use std::fmt;

/// What a successful [`check_database`] run covered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CheckReport {
    /// Documents walked.
    pub documents: usize,
    /// Total nodes verified (synthetic roots included).
    pub nodes: usize,
    /// Tag-index postings verified.
    pub tag_postings: usize,
    /// Value-index (exact) postings accounted for.
    pub value_postings: usize,
}

impl fmt::Display for CheckReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "store check OK: {} document(s), {} node(s), {} tag posting(s), {} value posting(s)",
            self.documents, self.nodes, self.tag_postings, self.value_postings
        )
    }
}

/// Verifies one document's interval encoding and arena layout in O(n).
pub fn check_document(doc: &Document) -> Result<()> {
    check_records(doc.name(), doc.records())
}

/// [`check_document`] over a raw record arena (what snapshot loading and the
/// tests hand-build).
///
/// Pre ords are sparse (gap numbering, see [`crate::document`]): the walk
/// verifies they strictly increase in arena order, that every interval is
/// properly nested inside — and disjoint within — its parent's, and that a
/// node's `end` slack never swallows a following node.
pub fn check_records(name: &str, records: &[NodeRecord]) -> Result<()> {
    let corrupt =
        |pre: u32, detail: String| Err(Error::Corrupt(format!("{name:?} node {pre}: {detail}")));
    let Some(root) = records.first() else {
        return Err(Error::Corrupt(format!("{name:?}: document has no records")));
    };
    if root.kind != NodeKind::DocRoot {
        return corrupt(0, format!("node 0 must be the document root, found {:?}", root.kind));
    }
    if root.pre != 0 || root.parent != u32::MAX || root.level != 0 {
        return corrupt(0, "document root must have ord 0, no parent, and level 0".into());
    }
    if root.end < records.last().expect("non-empty").pre {
        return corrupt(
            0,
            format!(
                "root interval ends at {} before last node ord {}",
                root.end,
                records.last().expect("non-empty").pre
            ),
        );
    }
    // The stack holds the arena indexes of the open intervals (ancestors of
    // the current node), innermost last.
    let mut stack: Vec<usize> = vec![0];
    for (i, rec) in records.iter().enumerate().skip(1) {
        let pre = rec.pre;
        if rec.kind == NodeKind::DocRoot {
            return corrupt(pre, "only node 0 may be a document root".into());
        }
        if pre <= records[i - 1].pre {
            return corrupt(pre, format!("pre ord not above predecessor {}", records[i - 1].pre));
        }
        // Property 1 (well-formed interval).
        if rec.end < pre {
            return corrupt(pre, format!("bad interval end {}", rec.end));
        }
        // Close every interval that ended before this node.
        while records[*stack.last().expect("root never popped")].end < pre {
            stack.pop();
        }
        let top = &records[*stack.last().expect("root interval spans the document")];
        // Property 2: the recorded parent must be the innermost open
        // interval. Combined with the nesting check below, this makes
        // interval containment coincide with ancestorship and forces sibling
        // intervals apart (a sibling's interval is closed before ours opens).
        if rec.parent != top.pre {
            return corrupt(
                pre,
                format!("parent is {} but innermost open interval is {}", rec.parent, top.pre),
            );
        }
        if rec.end > top.end {
            return corrupt(pre, format!("interval [{pre}, {}] escapes parent's", rec.end));
        }
        // Property 3/4 bookkeeping: levels count the open ancestors.
        if rec.level as usize != stack.len() {
            return corrupt(pre, format!("level {} but depth {}", rec.level, stack.len()));
        }
        match rec.kind {
            NodeKind::Attribute | NodeKind::Text => {
                // Leaves may carry end slack, but no descendant: the next
                // arena record must fall outside the interval.
                if records.get(i + 1).is_some_and(|n| n.pre <= rec.end) {
                    return corrupt(pre, format!("{:?} node must be a leaf", rec.kind));
                }
                if rec.content.is_none() {
                    return corrupt(pre, format!("{:?} node must carry content", rec.kind));
                }
            }
            NodeKind::Element | NodeKind::DocRoot => {}
        }
        stack.push(i);
    }
    Ok(())
}

/// Verifies every document plus the derived indexes; returns a coverage
/// report on success.
pub fn check_database(db: &Database) -> Result<CheckReport> {
    let mut report = CheckReport::default();
    let mut expected_tag_postings = 0usize;
    let mut expected_value_postings = 0usize;
    for d in 0..db.document_count() {
        let doc_id = DocId(d as u32);
        let doc = db.document(doc_id);
        check_document(doc)?;
        report.documents += 1;
        report.nodes += doc.len();
        // Forward sweep: every indexable node must be in its index.
        for rec in doc.records() {
            if rec.kind == NodeKind::DocRoot {
                continue;
            }
            let pre = rec.pre;
            let id = NodeId::new(doc_id, pre);
            if db.tag_index().get(rec.tag).binary_search(&id).is_err() {
                return Err(Error::Corrupt(format!(
                    "{:?} node {pre}: missing from the tag index under its tag",
                    doc.name()
                )));
            }
            expected_tag_postings += 1;
            if let Some(content) = &rec.content {
                if !db.value_index().lookup_exact(rec.tag, content).contains(&id) {
                    return Err(Error::Corrupt(format!(
                        "{:?} node {pre}: missing from the value index for its content",
                        doc.name()
                    )));
                }
                expected_value_postings += 1;
                if let Ok(n) = content.trim().parse::<f64>() {
                    if !db
                        .value_index()
                        .lookup_cmp(rec.tag, std::cmp::Ordering::Equal, n)
                        .contains(&id)
                    {
                        return Err(Error::Corrupt(format!(
                            "{:?} node {pre}: numeric content {n} not in the numeric index",
                            doc.name()
                        )));
                    }
                }
            }
        }
    }
    // Reverse sweep: every tag-index posting must be backed by a live node
    // with that tag, and postings must be strictly in document order.
    for (tag, postings) in db.tag_index().tags() {
        if let Some(w) = postings.windows(2).find(|w| w[0] >= w[1]) {
            return Err(Error::Corrupt(format!(
                "tag index postings out of document order near {:?}",
                w[0]
            )));
        }
        for id in postings {
            let doc = db.try_document(id.doc)?;
            let rec =
                doc.try_record(id.pre).ok_or(Error::NoSuchNode { doc: id.doc.0, pre: id.pre })?;
            if rec.tag != tag {
                return Err(Error::Corrupt(format!(
                    "tag index posting {id:?} points at a node with a different tag"
                )));
            }
            if rec.kind == NodeKind::DocRoot {
                return Err(Error::Corrupt(format!(
                    "tag index posting {id:?} points at a document root"
                )));
            }
        }
        report.tag_postings += postings.len();
    }
    // Counting both directions proves the indexes hold *exactly* the
    // indexable nodes — no omissions (forward), no strays (reverse + count).
    if report.tag_postings != expected_tag_postings {
        return Err(Error::Corrupt(format!(
            "tag index has {} postings but documents have {} indexable nodes",
            report.tag_postings, expected_tag_postings
        )));
    }
    if db.value_index().exact_posting_count() != expected_value_postings {
        return Err(Error::Corrupt(format!(
            "value index has {} postings but documents have {} content-bearing nodes",
            db.value_index().exact_posting_count(),
            expected_value_postings
        )));
    }
    report.value_postings = expected_value_postings;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tag::TagId;

    fn sample_db() -> Database {
        let mut db = Database::new();
        db.load_xml(
            "a.xml",
            r#"<site><person id="p0"><name>Ann</name><age>30</age></person>
               <person id="p1"><name>Bo</name></person></site>"#,
        )
        .unwrap();
        db.load_xml("b.xml", "<r><x>1</x><x>2</x><y/></r>").unwrap();
        db
    }

    #[test]
    fn well_formed_database_passes() {
        let db = sample_db();
        let report = check_database(&db).unwrap();
        assert_eq!(report.documents, 2);
        assert_eq!(report.nodes, db.node_count());
        assert_eq!(report.tag_postings, db.tag_index().posting_count());
        assert!(report.value_postings > 0);
        assert!(report.to_string().starts_with("store check OK"));
    }

    fn rec(kind: NodeKind, parent: u32, end: u32, level: u16, content: Option<&str>) -> NodeRecord {
        NodeRecord {
            tag: TagId(1),
            kind,
            content: content.map(Into::into),
            pre: 0,
            parent,
            end,
            level,
        }
    }

    fn valid_records() -> Vec<NodeRecord> {
        // doc_root [ a [ b, c ] ]  (b, c leaves with content); dense ords
        // (pre == arena index) are a valid special case of gap numbering.
        let mut records = vec![
            rec(NodeKind::DocRoot, u32::MAX, 3, 0, None),
            rec(NodeKind::Element, 0, 3, 1, None),
            rec(NodeKind::Element, 1, 2, 2, Some("x")),
            rec(NodeKind::Text, 1, 3, 2, Some("y")),
        ];
        for (i, r) in records.iter_mut().enumerate() {
            r.pre = i as u32;
        }
        records
    }

    #[test]
    fn hand_built_arena_passes() {
        check_records("ok.xml", &valid_records()).unwrap();
    }

    #[test]
    fn interval_escaping_parent_is_caught() {
        let mut r = valid_records();
        r[2].end = 3; // b's interval would swallow its sibling
        let err = check_records("bad.xml", &r).unwrap_err();
        assert!(matches!(err, Error::Corrupt(_)), "{err}");
    }

    #[test]
    fn wrong_parent_is_caught() {
        let mut r = valid_records();
        r[3].parent = 2; // c claims the leaf b as parent, but b's interval is closed
        let err = check_records("bad.xml", &r).unwrap_err();
        assert!(err.to_string().contains("innermost open interval"), "{err}");
    }

    #[test]
    fn wrong_level_is_caught() {
        let mut r = valid_records();
        r[3].level = 5;
        let err = check_records("bad.xml", &r).unwrap_err();
        assert!(err.to_string().contains("level"), "{err}");
    }

    #[test]
    fn non_leaf_text_is_caught() {
        // Give text node 3 a child of its own: its interval is no longer
        // empty, which the leaf rule must reject.
        let mut r = valid_records();
        let mut child = rec(NodeKind::Element, 3, 4, 3, None);
        child.pre = 4;
        r.push(child);
        r[0].end = 4;
        r[1].end = 4;
        r[3].end = 4;
        let err = check_records("bad.xml", &r).unwrap_err();
        assert!(err.to_string().contains("leaf"), "{err}");
    }

    #[test]
    fn root_interval_must_span_document() {
        let mut r = valid_records();
        r[0].end = 2;
        assert!(check_records("bad.xml", &r).is_err());
    }

    #[test]
    fn content_free_attribute_is_caught() {
        let mut r = valid_records();
        r[2] = rec(NodeKind::Attribute, 1, 2, 2, None);
        r[2].pre = 2;
        let err = check_records("bad.xml", &r).unwrap_err();
        assert!(err.to_string().contains("content"), "{err}");
    }
}
