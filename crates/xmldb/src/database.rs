//! The database: a named collection of documents plus their indexes.

use crate::document::{Document, DocumentBuilder};
use crate::error::{Error, Result};
use crate::index::{TagIndex, ValueIndex};
use crate::node::{DocId, NodeId, NodeKind};
use crate::tag::{TagId, TagInterner};
use std::collections::HashMap;

/// A native XML database: documents, a shared tag interner, and the two
/// access-path indexes of the paper's evaluation (tag index + value index).
///
/// `Clone` deep-copies everything — the copy-on-write commit path in the
/// service clones the database, applies [`crate::update`] mutations to the
/// copy, and publishes it as the next epoch.
#[derive(Debug, Clone)]
pub struct Database {
    interner: TagInterner,
    docs: Vec<Document>,
    names: HashMap<Box<str>, DocId>,
    tag_index: TagIndex,
    value_index: ValueIndex,
}

impl Default for Database {
    fn default() -> Self {
        Self::new()
    }
}

impl Database {
    /// Creates an empty database.
    pub fn new() -> Self {
        Database {
            interner: TagInterner::new(),
            docs: Vec::new(),
            names: HashMap::new(),
            tag_index: TagIndex::new(),
            value_index: ValueIndex::new(),
        }
    }

    /// The shared tag interner.
    pub fn interner(&self) -> &TagInterner {
        &self.interner
    }

    /// Starts building a document destined for this database.
    pub fn builder(&self, name: &str) -> DocumentBuilder {
        DocumentBuilder::new(name, &self.interner)
    }

    /// Inserts a finished document, indexing every node. Fails if a document
    /// with the same logical name is already loaded.
    pub fn insert(&mut self, doc: Document) -> Result<DocId> {
        if self.names.contains_key(doc.name()) {
            return Err(Error::DuplicateDocumentName(doc.name().to_string()));
        }
        let doc_id = DocId(self.docs.len() as u32);
        for rec in doc.records() {
            let id = NodeId::new(doc_id, rec.pre);
            match rec.kind {
                NodeKind::DocRoot => {}
                NodeKind::Element | NodeKind::Attribute | NodeKind::Text => {
                    self.tag_index.insert(rec.tag, id);
                    if let Some(content) = &rec.content {
                        self.value_index.insert(rec.tag, rec.kind, id, content);
                    }
                }
            }
        }
        self.names.insert(doc.name().into(), doc_id);
        self.docs.push(doc);
        Ok(doc_id)
    }

    /// Parses and loads an XML string under the given logical name.
    pub fn load_xml(&mut self, name: &str, xml: &str) -> Result<DocId> {
        let doc = crate::parse::parse_document(name, xml, &self.interner)?;
        self.insert(doc)
    }

    /// Resolves a logical document name (`auction.xml`).
    pub fn document_by_name(&self, name: &str) -> Result<DocId> {
        self.names.get(name).copied().ok_or_else(|| Error::UnknownDocumentName(name.to_string()))
    }

    /// Borrows a document.
    pub fn document(&self, id: DocId) -> &Document {
        &self.docs[id.0 as usize]
    }

    /// Fallible document access.
    pub fn try_document(&self, id: DocId) -> Result<&Document> {
        self.docs.get(id.0 as usize).ok_or(Error::NoSuchDocument(id.0))
    }

    /// Number of loaded documents.
    pub fn document_count(&self) -> usize {
        self.docs.len()
    }

    /// Total node count over all documents.
    pub fn node_count(&self) -> usize {
        self.docs.iter().map(Document::len).sum()
    }

    /// The synthetic root node of a document.
    pub fn root(&self, doc: DocId) -> NodeId {
        NodeId::new(doc, 0)
    }

    /// Borrows a node view.
    #[inline]
    pub fn node(&self, id: NodeId) -> NodeRef<'_> {
        NodeRef { db: self, id }
    }

    /// The tag index (document-ordered postings per tag).
    pub fn tag_index(&self) -> &TagIndex {
        &self.tag_index
    }

    /// The content-value index.
    pub fn value_index(&self) -> &ValueIndex {
        &self.value_index
    }

    /// All nodes with the given tag name, in document order. Unknown tags
    /// yield an empty slice.
    pub fn nodes_with_tag(&self, tag: &str) -> &[NodeId] {
        match self.interner.lookup(tag) {
            Some(t) => self.tag_index.get(t),
            None => &[],
        }
    }

    /// Mutable access to one document's arena plus both indexes, for the
    /// in-crate update engine (which must keep them consistent).
    pub(crate) fn update_parts(
        &mut self,
        doc: DocId,
    ) -> (&mut Document, &mut TagIndex, &mut ValueIndex) {
        (&mut self.docs[doc.0 as usize], &mut self.tag_index, &mut self.value_index)
    }

    /// Structural test: is `a` a proper ancestor of `d`?
    #[inline]
    pub fn is_ancestor(&self, a: NodeId, d: NodeId) -> bool {
        a.doc == d.doc && self.document(a.doc).is_ancestor(a.pre, d.pre)
    }

    /// Structural test: is `p` the parent of `c`?
    #[inline]
    pub fn is_parent(&self, p: NodeId, c: NodeId) -> bool {
        p.doc == c.doc && self.document(p.doc).parent(c.pre) == Some(p.pre)
    }
}

/// Borrowed, copyable view of a base node: the ergonomic access surface used
/// by all engines.
#[derive(Clone, Copy)]
pub struct NodeRef<'a> {
    db: &'a Database,
    id: NodeId,
}

impl<'a> NodeRef<'a> {
    /// The node id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The owning database.
    pub fn db(&self) -> &'a Database {
        self.db
    }

    fn doc(&self) -> &'a Document {
        self.db.document(self.id.doc)
    }

    /// Interned tag.
    pub fn tag(&self) -> TagId {
        self.doc().record(self.id.pre).tag
    }

    /// Tag name as text.
    pub fn tag_name(&self) -> Box<str> {
        self.db.interner.name(self.tag())
    }

    /// Node kind.
    pub fn kind(&self) -> NodeKind {
        self.doc().record(self.id.pre).kind
    }

    /// Depth in the document (root is 0).
    pub fn level(&self) -> u16 {
        self.doc().record(self.id.pre).level
    }

    /// Ord-space end of the subtree interval (may carry slack beyond the
    /// last descendant's ord; see [`crate::document`]).
    pub fn end(&self) -> u32 {
        self.doc().record(self.id.pre).end
    }

    /// Number of nodes in this subtree, including self.
    pub fn subtree_size(&self) -> usize {
        self.doc().subtree_size(self.id.pre)
    }

    /// Inline content, if the node has one.
    pub fn content(&self) -> Option<&'a str> {
        self.doc().record(self.id.pre).content.as_deref()
    }

    /// Full string value (inline + descendant text).
    pub fn string_value(&self) -> String {
        self.doc().string_value(self.id.pre)
    }

    /// Numeric value, when the content parses as a number.
    pub fn num_value(&self) -> Option<f64> {
        self.doc().num_value(self.id.pre)
    }

    /// Parent node.
    pub fn parent(&self) -> Option<NodeRef<'a>> {
        self.doc().parent(self.id.pre).map(|p| self.db.node(NodeId::new(self.id.doc, p)))
    }

    /// Direct children in document order.
    pub fn children(&self) -> impl Iterator<Item = NodeRef<'a>> + 'a {
        let db = self.db;
        let doc_id = self.id.doc;
        self.doc().children(self.id.pre).map(move |p| db.node(NodeId::new(doc_id, p)))
    }

    /// Every node in this subtree, in document order, including self.
    pub fn subtree(&self) -> impl Iterator<Item = NodeRef<'a>> + 'a {
        let db = self.db;
        let doc_id = self.id.doc;
        self.doc().subtree(self.id.pre).map(move |p| db.node(NodeId::new(doc_id, p)))
    }

    /// The attribute child with the given name (without `@`), if present.
    pub fn attribute(&self, name: &str) -> Option<NodeRef<'a>> {
        let tag = self.db.interner.lookup(&format!("@{name}"))?;
        self.children().find(|c| c.kind() == NodeKind::Attribute && c.tag() == tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_db() -> Database {
        let mut db = Database::new();
        db.load_xml(
            "auction.xml",
            r#"<site>
                 <person id="p0"><age>25</age><name>Ann</name></person>
                 <person id="p1"><name>Bo</name></person>
               </site>"#,
        )
        .unwrap();
        db
    }

    #[test]
    fn load_and_lookup_by_name() {
        let db = sample_db();
        assert_eq!(db.document_count(), 1);
        let d = db.document_by_name("auction.xml").unwrap();
        assert_eq!(d, DocId(0));
        assert!(db.document_by_name("other.xml").is_err());
    }

    #[test]
    fn duplicate_name_is_rejected() {
        let mut db = sample_db();
        assert!(db.load_xml("auction.xml", "<x/>").is_err());
    }

    #[test]
    fn tag_index_covers_all_elements() {
        let db = sample_db();
        assert_eq!(db.nodes_with_tag("person").len(), 2);
        assert_eq!(db.nodes_with_tag("name").len(), 2);
        assert_eq!(db.nodes_with_tag("age").len(), 1);
        assert_eq!(db.nodes_with_tag("@id").len(), 2);
        assert!(db.nodes_with_tag("zebra").is_empty());
    }

    #[test]
    fn value_index_finds_content() {
        let db = sample_db();
        let name_tag = db.interner().lookup("name").unwrap();
        assert_eq!(db.value_index().lookup_exact(name_tag, "Ann").len(), 1);
        let age_tag = db.interner().lookup("age").unwrap();
        assert_eq!(
            db.value_index().lookup_cmp(age_tag, std::cmp::Ordering::Greater, 20.0).len(),
            1
        );
    }

    #[test]
    fn node_ref_navigation() {
        let db = sample_db();
        let p0 = db.nodes_with_tag("person")[0];
        let n = db.node(p0);
        assert_eq!(&*n.tag_name(), "person");
        assert_eq!(n.attribute("id").unwrap().content(), Some("p0"));
        assert!(n.attribute("missing").is_none());
        let kids: Vec<Box<str>> = n.children().map(|c| c.tag_name()).collect();
        assert_eq!(kids.iter().map(|s| &**s).collect::<Vec<_>>(), vec!["@id", "age", "name"]);
        let age = n.children().find(|c| &*c.tag_name() == "age").unwrap();
        assert_eq!(age.num_value(), Some(25.0));
        assert_eq!(age.parent().unwrap().id(), p0);
    }

    #[test]
    fn structural_predicates() {
        let db = sample_db();
        let site = db.nodes_with_tag("site")[0];
        let persons = db.nodes_with_tag("person");
        let names = db.nodes_with_tag("name");
        assert!(db.is_ancestor(site, persons[0]));
        assert!(db.is_parent(site, persons[0]));
        assert!(db.is_ancestor(site, names[0]));
        assert!(!db.is_parent(site, names[0]));
        assert!(!db.is_ancestor(persons[1], names[0]));
    }
}
