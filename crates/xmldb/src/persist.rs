//! Binary persistence for the database.
//!
//! A compact little-endian format (`TLCX`, version 2) holding the interner
//! and every document's record arena; the tag and value indexes are rebuilt
//! on load (they are derived data). Useful for snapshotting generated XMark
//! databases so benchmark runs and shell sessions skip regeneration.
//!
//! Layout:
//!
//! ```text
//! magic "TLCX"  version:u32
//! interner:  count:u32, then count × (len:u32, utf8 bytes) in id order
//! documents: count:u32, then per document:
//!   name: len:u32, bytes
//!   records: count:u32, then per record:
//!     pre:u32 tag:u32 kind:u8 parent:u32 end:u32 level:u16
//!     content: flag:u8 [len:u32, bytes]
//! ```
//!
//! Version 1 (no `pre` field; `parent`/`end` are dense arena indexes) is
//! still read: its records are remapped into gap-spaced ord space on load,
//! exactly as the document builder numbers a fresh parse.

use crate::database::Database;
use crate::document::{remap_dense_to_ords, Document, NodeRecord};
use crate::error::{Error, Result};
use crate::node::NodeKind;
use crate::tag::TagId;
use std::io::{self, Read, Write};

const MAGIC: &[u8; 4] = b"TLCX";
const VERSION: u32 = 2;

fn io_err(e: io::Error) -> Error {
    Error::Parse { offset: 0, message: format!("persistence I/O: {e}") }
}

fn bad(message: impl Into<String>) -> Error {
    Error::Parse { offset: 0, message: message.into() }
}

fn w_u32(w: &mut impl Write, v: u32) -> Result<()> {
    w.write_all(&v.to_le_bytes()).map_err(io_err)
}

fn w_u16(w: &mut impl Write, v: u16) -> Result<()> {
    w.write_all(&v.to_le_bytes()).map_err(io_err)
}

fn w_u8(w: &mut impl Write, v: u8) -> Result<()> {
    w.write_all(&[v]).map_err(io_err)
}

fn w_str(w: &mut impl Write, s: &str) -> Result<()> {
    w_u32(w, s.len() as u32)?;
    w.write_all(s.as_bytes()).map_err(io_err)
}

fn r_u32(r: &mut impl Read) -> Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b).map_err(io_err)?;
    Ok(u32::from_le_bytes(b))
}

fn r_u16(r: &mut impl Read) -> Result<u16> {
    let mut b = [0u8; 2];
    r.read_exact(&mut b).map_err(io_err)?;
    Ok(u16::from_le_bytes(b))
}

fn r_u8(r: &mut impl Read) -> Result<u8> {
    let mut b = [0u8; 1];
    r.read_exact(&mut b).map_err(io_err)?;
    Ok(b[0])
}

fn r_str(r: &mut impl Read) -> Result<String> {
    let len = r_u32(r)? as usize;
    if len > 1 << 30 {
        return Err(bad("string length out of range"));
    }
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf).map_err(io_err)?;
    String::from_utf8(buf).map_err(|_| bad("invalid UTF-8 in snapshot"))
}

/// Writes a snapshot of the whole database.
pub fn save(db: &Database, w: &mut impl Write) -> Result<()> {
    w.write_all(MAGIC).map_err(io_err)?;
    w_u32(w, VERSION)?;
    // Interner, in id order (so ids survive the round trip unchanged).
    let tag_count = db.interner().len() as u32;
    w_u32(w, tag_count)?;
    for id in 0..tag_count {
        w_str(w, &db.interner().name(TagId(id)))?;
    }
    // Documents.
    w_u32(w, db.document_count() as u32)?;
    for d in 0..db.document_count() {
        let doc = db.document(crate::node::DocId(d as u32));
        w_str(w, doc.name())?;
        w_u32(w, doc.len() as u32)?;
        for rec in doc.records() {
            w_u32(w, rec.pre)?;
            w_u32(w, rec.tag.0)?;
            w_u8(w, kind_code(rec.kind))?;
            w_u32(w, rec.parent)?;
            w_u32(w, rec.end)?;
            w_u16(w, rec.level)?;
            match &rec.content {
                None => w_u8(w, 0)?,
                Some(c) => {
                    w_u8(w, 1)?;
                    w_str(w, c)?;
                }
            }
        }
    }
    Ok(())
}

/// Reads a snapshot into a fresh database (indexes rebuilt).
pub fn load(r: &mut impl Read) -> Result<Database> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic).map_err(io_err)?;
    if &magic != MAGIC {
        return Err(bad("not a TLCX snapshot"));
    }
    let version = r_u32(r)?;
    if version == 0 || version > VERSION {
        return Err(bad(format!("unsupported snapshot version {version}")));
    }
    let db = Database::new();
    let tag_count = r_u32(r)?;
    for expect in 0..tag_count {
        let name = r_str(r)?;
        let id = db.interner().intern(&name);
        if id.0 != expect {
            return Err(bad(format!("interner id mismatch for {name:?}")));
        }
    }
    let mut db = db;
    let doc_count = r_u32(r)?;
    for _ in 0..doc_count {
        let name = r_str(r)?;
        let rec_count = r_u32(r)? as usize;
        let mut records = Vec::with_capacity(rec_count);
        for idx in 0..rec_count {
            let pre = if version >= 2 { r_u32(r)? } else { idx as u32 };
            let tag = TagId(r_u32(r)?);
            if tag.0 >= tag_count {
                return Err(bad("record references an unknown tag"));
            }
            let kind = kind_from(r_u8(r)?)?;
            let parent = r_u32(r)?;
            let end = r_u32(r)?;
            let level = r_u16(r)?;
            let content = match r_u8(r)? {
                0 => None,
                1 => Some(r_str(r)?.into()),
                _ => return Err(bad("bad content flag")),
            };
            records.push(NodeRecord { tag, kind, content, pre, parent, end, level });
        }
        if version == 1 {
            remap_dense_to_ords(&mut records);
        }
        let doc = Document::from_parts(&name, records)?;
        db.insert(doc)?;
    }
    Ok(db)
}

/// Saves to a file path.
pub fn save_file(db: &Database, path: &std::path::Path) -> Result<()> {
    let file = std::fs::File::create(path).map_err(io_err)?;
    let mut w = std::io::BufWriter::new(file);
    save(db, &mut w)?;
    w.flush().map_err(io_err)
}

/// Loads from a file path.
pub fn load_file(path: &std::path::Path) -> Result<Database> {
    let file = std::fs::File::open(path).map_err(io_err)?;
    load(&mut std::io::BufReader::new(file))
}

/// Loads a database from `path`, accepting either on-disk form this
/// workspace produces: a binary `TLCX` snapshot (recognized by its magic
/// bytes, not the file extension) or plain XML text. XML is parsed and
/// registered as `document("auction.xml")` — the same convention
/// `tlc-serve --load` uses — so the evaluation workload runs unchanged
/// against any loaded file. This is the loader behind the catalog's
/// `.open`/`.reload`: a regenerated snapshot and a re-edited XML source
/// are interchangeable swap sources.
pub fn load_path(path: &std::path::Path) -> Result<Database> {
    let bytes = std::fs::read(path).map_err(io_err)?;
    if bytes.starts_with(MAGIC) {
        return load(&mut &bytes[..]);
    }
    let text = String::from_utf8(bytes)
        .map_err(|_| bad("file is neither a TLCX snapshot nor UTF-8 XML"))?;
    let mut db = Database::new();
    db.load_xml("auction.xml", &text)?;
    Ok(db)
}

fn kind_code(k: NodeKind) -> u8 {
    match k {
        NodeKind::DocRoot => 0,
        NodeKind::Element => 1,
        NodeKind::Attribute => 2,
        NodeKind::Text => 3,
    }
}

fn kind_from(code: u8) -> Result<NodeKind> {
    Ok(match code {
        0 => NodeKind::DocRoot,
        1 => NodeKind::Element,
        2 => NodeKind::Attribute,
        3 => NodeKind::Text,
        other => return Err(bad(format!("bad node kind {other}"))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_db() -> Database {
        let mut db = Database::new();
        db.load_xml(
            "a.xml",
            r#"<site><person id="p0"><name>Ann &amp; Co</name><age>30</age></person></site>"#,
        )
        .unwrap();
        db.load_xml("b.xml", "<r><x/><x/></r>").unwrap();
        db
    }

    #[test]
    fn round_trip_preserves_everything() {
        let db = sample_db();
        let mut buf = Vec::new();
        save(&db, &mut buf).unwrap();
        let loaded = load(&mut buf.as_slice()).unwrap();
        assert_eq!(loaded.document_count(), 2);
        assert_eq!(loaded.node_count(), db.node_count());
        // Serialization identical.
        for d in 0..2u32 {
            let a = crate::serialize::serialize_subtree(&db, db.root(crate::node::DocId(d)));
            let b =
                crate::serialize::serialize_subtree(&loaded, loaded.root(crate::node::DocId(d)));
            assert_eq!(a, b);
        }
        // Indexes rebuilt and usable.
        assert_eq!(loaded.nodes_with_tag("x").len(), 2);
        let age = loaded.interner().lookup("age").unwrap();
        assert_eq!(
            loaded.value_index().lookup_cmp(age, std::cmp::Ordering::Greater, 20.0).len(),
            1
        );
        // Invariants hold — full store check, so snapshot corruption that
        // slips past the per-record validation still fails loudly.
        let report = crate::check::check_database(&loaded).unwrap();
        assert_eq!(report.nodes, db.node_count());
        assert_eq!(crate::check::check_database(&db).unwrap(), report);
    }

    #[test]
    fn version_1_snapshots_are_remapped_to_ords() {
        // Hand-built v1 stream (dense indexes, no pre field):
        // interner [#doc, #text, a], one document <a>x</a>.
        let mut buf: Vec<u8> = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.extend_from_slice(&3u32.to_le_bytes());
        for tag in ["#doc", "#text", "a"] {
            buf.extend_from_slice(&(tag.len() as u32).to_le_bytes());
            buf.extend_from_slice(tag.as_bytes());
        }
        buf.extend_from_slice(&1u32.to_le_bytes()); // one document
        let name = "v1.xml";
        buf.extend_from_slice(&(name.len() as u32).to_le_bytes());
        buf.extend_from_slice(name.as_bytes());
        buf.extend_from_slice(&2u32.to_le_bytes()); // two records
                                                    // root: tag 0, DocRoot, parent MAX, end 1, level 0, no content
        buf.extend_from_slice(&0u32.to_le_bytes());
        buf.push(0);
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.extend_from_slice(&0u16.to_le_bytes());
        buf.push(0);
        // element a: tag 2, Element, parent 0, end 1, level 1, content "x"
        buf.extend_from_slice(&2u32.to_le_bytes());
        buf.push(1);
        buf.extend_from_slice(&0u32.to_le_bytes());
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.extend_from_slice(&1u16.to_le_bytes());
        buf.push(1);
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.push(b'x');
        let db = load(&mut buf.as_slice()).unwrap();
        crate::check::check_database(&db).unwrap();
        let a = db.nodes_with_tag("a");
        assert_eq!(a.len(), 1);
        assert_eq!(a[0].pre, crate::document::GAP, "dense index 1 remapped to one gap");
        assert_eq!(
            crate::serialize::serialize_subtree(&db, db.root(crate::node::DocId(0))),
            "<a>x</a>"
        );
    }

    #[test]
    fn corrupt_snapshots_are_rejected() {
        let db = sample_db();
        let mut buf = Vec::new();
        save(&db, &mut buf).unwrap();
        // Bad magic.
        let mut bad_magic = buf.clone();
        bad_magic[0] = b'X';
        assert!(load(&mut bad_magic.as_slice()).is_err());
        // Bad version.
        let mut bad_version = buf.clone();
        bad_version[4] = 99;
        assert!(load(&mut bad_version.as_slice()).is_err());
        // Truncated.
        let truncated = &buf[..buf.len() / 2];
        assert!(load(&mut &truncated[..]).is_err());
    }

    #[test]
    fn file_round_trip() {
        let db = sample_db();
        let path = std::env::temp_dir().join(format!("tlcx_test_{}.tlcx", std::process::id()));
        save_file(&db, &path).unwrap();
        let loaded = load_file(&path).unwrap();
        assert_eq!(loaded.node_count(), db.node_count());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_path_sniffs_snapshot_vs_xml() {
        let dir = std::env::temp_dir();
        let pid = std::process::id();
        // A snapshot, saved under a misleading extension: the magic decides.
        let snap = dir.join(format!("tlcx_sniff_{pid}.xml"));
        save_file(&sample_db(), &snap).unwrap();
        let from_snap = load_path(&snap).unwrap();
        assert_eq!(from_snap.document_count(), 2);
        // Plain XML: parsed and registered under the workload's name.
        let xml = dir.join(format!("tlcx_sniff_{pid}.txt"));
        std::fs::write(&xml, "<site><open_auction/></site>").unwrap();
        let from_xml = load_path(&xml).unwrap();
        assert_eq!(from_xml.document_count(), 1);
        assert!(from_xml.document_by_name("auction.xml").is_ok());
        assert_eq!(from_xml.nodes_with_tag("open_auction").len(), 1);
        // Neither: rejected with a typed error.
        let junk = dir.join(format!("tlcx_sniff_{pid}.bin"));
        std::fs::write(&junk, [0xFFu8, 0xFE, 0x00, 0x01]).unwrap();
        assert!(load_path(&junk).is_err());
        for p in [snap, xml, junk] {
            std::fs::remove_file(p).ok();
        }
    }
}
