//! A small hand-written XML parser.
//!
//! Supports the subset needed by the reproduction: elements, attributes
//! (single- or double-quoted), character data, the five predefined entities,
//! numeric character references, comments, processing instructions and an XML
//! declaration (both skipped), and CDATA sections. Namespaces, DTDs and
//! mixed-content whitespace trimming policies are out of scope; whitespace-only
//! text between elements is dropped, as is conventional for data-centric XML.

use crate::document::{Document, DocumentBuilder};
use crate::error::{Error, Result};
use crate::tag::TagInterner;

/// Parses `xml` into a [`Document`] named `name`, interning tags in `interner`.
pub fn parse_document(name: &str, xml: &str, interner: &TagInterner) -> Result<Document> {
    let mut p = Parser { input: xml.as_bytes(), pos: 0, interner };
    let mut builder = DocumentBuilder::new(name, interner);
    p.skip_prolog()?;
    p.parse_element(&mut builder)?;
    p.skip_misc();
    if p.pos != p.input.len() {
        return Err(p.err("trailing content after document element"));
    }
    builder.finish()
}

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
    interner: &'a TagInterner,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> Error {
        Error::Parse { offset: self.pos, message: message.to_string() }
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.input[self.pos..].starts_with(s.as_bytes())
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<()> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", c as char)))
        }
    }

    fn skip_prolog(&mut self) -> Result<()> {
        self.skip_ws();
        if self.starts_with("<?xml") {
            let end = self.find("?>").ok_or_else(|| self.err("unterminated XML declaration"))?;
            self.pos = end + 2;
        }
        self.skip_misc();
        if self.starts_with("<!DOCTYPE") {
            // Skip to the closing '>' (we do not support internal subsets).
            let end = self.find(">").ok_or_else(|| self.err("unterminated DOCTYPE"))?;
            self.pos = end + 1;
        }
        self.skip_misc();
        Ok(())
    }

    /// Skips whitespace, comments and processing instructions.
    fn skip_misc(&mut self) {
        loop {
            self.skip_ws();
            if self.starts_with("<!--") {
                match self.find("-->") {
                    Some(end) => self.pos = end + 3,
                    None => {
                        self.pos = self.input.len();
                        return;
                    }
                }
            } else if self.starts_with("<?") {
                match self.find("?>") {
                    Some(end) => self.pos = end + 2,
                    None => {
                        self.pos = self.input.len();
                        return;
                    }
                }
            } else {
                return;
            }
        }
    }

    fn find(&self, needle: &str) -> Option<usize> {
        let n = needle.as_bytes();
        self.input[self.pos..].windows(n.len()).position(|w| w == n).map(|i| i + self.pos)
    }

    fn name(&mut self) -> Result<&'a str> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || matches!(c, b'_' | b'-' | b'.' | b':') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.err("expected a name"));
        }
        std::str::from_utf8(&self.input[start..self.pos])
            .map_err(|_| self.err("invalid UTF-8 in name"))
    }

    fn parse_element(&mut self, b: &mut DocumentBuilder) -> Result<()> {
        self.expect(b'<')?;
        let tag_name = self.name()?;
        let tag = self.interner.intern(tag_name);
        b.start_element(tag);
        // Attributes.
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'/') => {
                    self.pos += 1;
                    self.expect(b'>')?;
                    b.end_element().map_err(|e| self.err(&e.to_string()))?;
                    return Ok(());
                }
                Some(b'>') => {
                    self.pos += 1;
                    break;
                }
                Some(_) => {
                    let attr_name = self.name()?;
                    let attr_tag = self.interner.intern(&format!("@{attr_name}"));
                    self.skip_ws();
                    self.expect(b'=')?;
                    self.skip_ws();
                    let quote = self.peek().ok_or_else(|| self.err("unterminated attribute"))?;
                    if quote != b'"' && quote != b'\'' {
                        return Err(self.err("attribute value must be quoted"));
                    }
                    self.pos += 1;
                    let start = self.pos;
                    while self.peek().is_some_and(|c| c != quote) {
                        self.pos += 1;
                    }
                    let raw = std::str::from_utf8(&self.input[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8 in attribute"))?;
                    self.expect(quote)?;
                    let value = unescape(raw).map_err(|m| self.err(&m))?;
                    b.attribute(attr_tag, &value);
                }
                None => return Err(self.err("unterminated start tag")),
            }
        }
        // Content.
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated element")),
                Some(b'<') => {
                    if self.starts_with("</") {
                        self.pos += 2;
                        let close = self.name()?;
                        if close != tag_name {
                            return Err(self.err(&format!(
                                "mismatched close tag: expected </{tag_name}>, found </{close}>"
                            )));
                        }
                        self.skip_ws();
                        self.expect(b'>')?;
                        b.end_element().map_err(|e| self.err(&e.to_string()))?;
                        return Ok(());
                    } else if self.starts_with("<!--") {
                        let end =
                            self.find("-->").ok_or_else(|| self.err("unterminated comment"))?;
                        self.pos = end + 3;
                    } else if self.starts_with("<![CDATA[") {
                        let end = self.find("]]>").ok_or_else(|| self.err("unterminated CDATA"))?;
                        let raw = std::str::from_utf8(&self.input[self.pos + 9..end])
                            .map_err(|_| self.err("invalid UTF-8 in CDATA"))?;
                        b.text(raw, self.interner);
                        self.pos = end + 3;
                    } else if self.starts_with("<?") {
                        let end = self.find("?>").ok_or_else(|| self.err("unterminated PI"))?;
                        self.pos = end + 2;
                    } else {
                        self.parse_element(b)?;
                    }
                }
                Some(_) => {
                    let start = self.pos;
                    while self.peek().is_some_and(|c| c != b'<') {
                        self.pos += 1;
                    }
                    let raw = std::str::from_utf8(&self.input[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8 in text"))?;
                    if !raw.trim().is_empty() {
                        let text = unescape(raw).map_err(|m| self.err(&m))?;
                        b.text(text.trim(), self.interner);
                    }
                }
            }
        }
    }
}

/// Replaces the predefined entities and numeric character references.
fn unescape(s: &str) -> std::result::Result<String, String> {
    if !s.contains('&') {
        return Ok(s.to_string());
    }
    let mut out = String::with_capacity(s.len());
    let mut rest = s;
    while let Some(idx) = rest.find('&') {
        out.push_str(&rest[..idx]);
        rest = &rest[idx..];
        let semi = rest.find(';').ok_or_else(|| "unterminated entity".to_string())?;
        let entity = &rest[1..semi];
        match entity {
            "amp" => out.push('&'),
            "lt" => out.push('<'),
            "gt" => out.push('>'),
            "quot" => out.push('"'),
            "apos" => out.push('\''),
            _ if entity.starts_with("#x") || entity.starts_with("#X") => {
                let code = u32::from_str_radix(&entity[2..], 16)
                    .map_err(|_| format!("bad character reference &{entity};"))?;
                out.push(char::from_u32(code).ok_or("invalid character reference")?);
            }
            _ if entity.starts_with('#') => {
                let code: u32 = entity[1..]
                    .parse()
                    .map_err(|_| format!("bad character reference &{entity};"))?;
                out.push(char::from_u32(code).ok_or("invalid character reference")?);
            }
            _ => return Err(format!("unknown entity &{entity};")),
        }
        rest = &rest[semi + 1..];
    }
    out.push_str(rest);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeKind;

    fn parse(xml: &str) -> (Document, TagInterner) {
        let i = TagInterner::new();
        let d = parse_document("t.xml", xml, &i).unwrap();
        (d, i)
    }

    #[test]
    fn simple_document() {
        let (d, i) = parse("<a><b>hi</b><c/></a>");
        d.check_invariants().unwrap();
        assert_eq!(d.len(), 4); // #doc, a, b, c
        let b = i.lookup("b").unwrap();
        let bn = d.pres().find(|&p| d.record(p).tag == b).unwrap();
        assert_eq!(d.record(bn).content.as_deref(), Some("hi"));
    }

    #[test]
    fn attributes_and_quotes() {
        let (d, i) = parse(r#"<a x="1" y='two'/>"#);
        let ax = i.lookup("@x").unwrap();
        let n = d.pres().find(|&p| d.record(p).tag == ax).unwrap();
        assert_eq!(d.record(n).kind, NodeKind::Attribute);
        assert_eq!(d.record(n).content.as_deref(), Some("1"));
        assert!(i.lookup("@y").is_some());
    }

    #[test]
    fn entities_are_unescaped() {
        let (d, i) = parse("<a>fish &amp; chips &lt;tasty&gt; &#65;&#x42;</a>");
        let a = i.lookup("a").unwrap();
        let n = d.pres().find(|&p| d.record(p).tag == a).unwrap();
        assert_eq!(d.record(n).content.as_deref(), Some("fish & chips <tasty> AB"));
    }

    #[test]
    fn prolog_comments_and_pis_are_skipped() {
        let (d, _) = parse("<?xml version=\"1.0\"?><!-- hi --><a><?pi data?><!-- x --><b/></a>");
        assert_eq!(d.len(), 3);
    }

    #[test]
    fn cdata_is_preserved_verbatim() {
        let (d, i) = parse("<a><![CDATA[1 < 2 & so]]></a>");
        let a = i.lookup("a").unwrap();
        let n = d.pres().find(|&p| d.record(p).tag == a).unwrap();
        assert_eq!(d.record(n).content.as_deref(), Some("1 < 2 & so"));
    }

    #[test]
    fn mixed_content_keeps_text_nodes() {
        let (d, i) = parse("<a>one<b/>two</a>");
        let text = i.text_tag();
        let texts: Vec<&str> = d
            .pres()
            .filter(|&p| d.record(p).tag == text)
            .map(|p| d.record(p).content.as_deref().unwrap())
            .collect();
        assert_eq!(texts, vec!["one", "two"]);
        assert_eq!(d.string_value(d.pre_at(1)), "onetwo");
    }

    #[test]
    fn errors_are_reported() {
        let i = TagInterner::new();
        for bad in ["<a>", "<a></b>", "<a x=1/>", "<a>&bogus;</a>", "<a/><b/>", "plain"] {
            assert!(parse_document("t", bad, &i).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn whitespace_only_text_is_dropped() {
        let (d, _) = parse("<a>\n  <b/>\n  <c/>\n</a>");
        assert_eq!(d.len(), 4);
    }

    #[test]
    fn doctype_is_skipped() {
        let (d, _) = parse("<!DOCTYPE site SYSTEM \"auction.dtd\"><a/>");
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn deep_nesting_round_trip() {
        let mut xml = String::new();
        for _ in 0..200 {
            xml.push_str("<d>");
        }
        xml.push('x');
        for _ in 0..200 {
            xml.push_str("</d>");
        }
        let (d, _) = parse(&xml);
        d.check_invariants().unwrap();
        assert_eq!(d.len(), 201);
        assert_eq!(d.record(d.pre_at(200)).level, 200);
    }
}
