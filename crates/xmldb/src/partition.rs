//! Range views over a snapshot's posting lists (intra-query sharding).
//!
//! The interval encoding (Fig. 13, DESIGN.md §3.1) makes every doc-ordered
//! posting list range-partitionable for free: a pre-order ordinal boundary
//! splits the list with two binary searches, so a shard is described by a
//! `(doc, lo, hi)` triple — no copying, no per-shard index structures.
//! [`RangePartition`] is that descriptor: a set of disjoint [`OrdRange`]s
//! that together cover a document (or one range per catalog document).
//! Shards borrow the same `Arc<Database>` snapshot a sequential execution
//! would read; a partition never outlives or mutates it.

use crate::database::Database;
use crate::node::{DocId, NodeId};

/// A half-open pre-order ordinal window `[lo, hi)` within one document.
///
/// Ordinals are the sparse `pre` values of [`NodeId`], so a range selects a
/// contiguous document-order run of nodes without enumerating them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OrdRange {
    /// The document the window lies in.
    pub doc: DocId,
    /// Inclusive lower pre-order ordinal.
    pub lo: u32,
    /// Exclusive upper pre-order ordinal.
    pub hi: u32,
}

impl OrdRange {
    /// The window covering all of `doc`.
    pub fn full(doc: DocId) -> OrdRange {
        OrdRange { doc, lo: 0, hi: u32::MAX }
    }

    /// Whether `id` falls inside this window.
    #[inline]
    pub fn contains(&self, id: NodeId) -> bool {
        id.doc == self.doc && self.lo <= id.pre && id.pre < self.hi
    }

    /// Restricts a doc-ordered posting list to this window: two binary
    /// searches returning a borrowed subslice — the "range view".
    pub fn slice<'a>(&self, postings: &'a [NodeId]) -> &'a [NodeId] {
        let lo = postings.partition_point(|n| (n.doc, n.pre) < (self.doc, self.lo));
        let hi = postings.partition_point(|n| (n.doc, n.pre) < (self.doc, self.hi));
        &postings[lo..hi]
    }
}

/// A set of disjoint, covering [`OrdRange`]s in document order — the cheap
/// shard descriptor an intra-query executor hands to its workers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RangePartition {
    ranges: Vec<OrdRange>,
}

impl RangePartition {
    /// The shard windows, in document order.
    pub fn ranges(&self) -> &[OrdRange] {
        &self.ranges
    }

    /// Number of shards.
    pub fn len(&self) -> usize {
        self.ranges.len()
    }

    /// Whether the partition has no shards (only possible for an empty
    /// catalog under [`RangePartition::by_document`]).
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// One full-document range per catalog document: the coarsest split,
    /// useful when a query spans several comparable documents.
    pub fn by_document(db: &Database) -> RangePartition {
        let ranges = (0..db.document_count()).map(|i| OrdRange::full(DocId(i as u32))).collect();
        RangePartition { ranges }
    }

    /// Splits `doc`'s slice of a doc-ordered posting list into `shards`
    /// equal-count pre-order windows. Boundaries sit on posting ordinals, so
    /// shard `i` sees exactly postings `[i·n/k, (i+1)·n/k)`; the first
    /// window opens at ordinal 0 and the last closes at `u32::MAX`, so the
    /// windows cover the whole document, not just the postings. When
    /// `shards` exceeds the posting count the tail windows come out empty —
    /// degenerate but valid (their slices are empty).
    pub fn split_postings(postings: &[NodeId], doc: DocId, shards: usize) -> RangePartition {
        let in_doc = OrdRange::full(doc).slice(postings);
        let k = shards.max(1);
        let n = in_doc.len();
        let mut ranges = Vec::with_capacity(k);
        let mut lo = 0u32;
        for i in 1..=k {
            let hi = if i == k {
                u32::MAX
            } else {
                let idx = i * n / k;
                if idx >= n {
                    u32::MAX
                } else {
                    in_doc[idx].pre
                }
            };
            ranges.push(OrdRange { doc, lo, hi });
            lo = hi;
        }
        RangePartition { ranges }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db_with(xml: &str) -> Database {
        let mut db = Database::new();
        db.load_xml("t.xml", xml).unwrap();
        db
    }

    #[test]
    fn split_is_disjoint_and_covering() {
        let db = db_with("<r><a/><a/><a/><a/><a/><a/><a/></r>");
        let doc = db.document_by_name("t.xml").unwrap();
        let postings = db.nodes_with_tag("a");
        for k in [1, 2, 3, 7, 20] {
            let part = RangePartition::split_postings(postings, doc, k);
            assert_eq!(part.len(), k);
            // Windows tile [0, MAX) without gaps or overlap.
            assert_eq!(part.ranges()[0].lo, 0);
            assert_eq!(part.ranges()[k - 1].hi, u32::MAX);
            for w in part.ranges().windows(2) {
                assert_eq!(w[0].hi, w[1].lo);
            }
            // Slice concatenation reproduces the doc's postings exactly.
            let rejoined: Vec<NodeId> =
                part.ranges().iter().flat_map(|r| r.slice(postings).to_vec()).collect();
            assert_eq!(rejoined, OrdRange::full(doc).slice(postings));
            // Equal-count split: shard sizes differ by at most one.
            let sizes: Vec<usize> = part.ranges().iter().map(|r| r.slice(postings).len()).collect();
            let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
            if k <= postings.len() {
                assert!(max - min <= 1, "k={k}: uneven split {sizes:?}");
            }
        }
    }

    #[test]
    fn more_shards_than_postings_yields_empty_tails() {
        let db = db_with("<r><a/><a/></r>");
        let doc = db.document_by_name("t.xml").unwrap();
        let postings = db.nodes_with_tag("a");
        let part = RangePartition::split_postings(postings, doc, 5);
        assert_eq!(part.len(), 5);
        let total: usize = part.ranges().iter().map(|r| r.slice(postings).len()).sum();
        assert_eq!(total, 2);
    }

    #[test]
    fn contains_respects_doc_and_window() {
        let db = db_with("<r><a/><b/></r>");
        let doc = db.document_by_name("t.xml").unwrap();
        let a = db.nodes_with_tag("a")[0];
        let r = OrdRange { doc, lo: a.pre, hi: a.pre + 1 };
        assert!(r.contains(a));
        assert!(!r.contains(NodeId { doc: DocId(9), pre: a.pre }));
        assert!(!OrdRange { doc, lo: a.pre + 1, hi: u32::MAX }.contains(a));
    }

    #[test]
    fn by_document_covers_the_catalog() {
        let mut db = Database::new();
        db.load_xml("a.xml", "<r><x/></r>").unwrap();
        db.load_xml("b.xml", "<r><x/><x/></r>").unwrap();
        let part = RangePartition::by_document(&db);
        assert_eq!(part.len(), 2);
        let all: Vec<NodeId> = db.nodes_with_tag("x").to_vec();
        let rejoined: Vec<NodeId> =
            part.ranges().iter().flat_map(|r| r.slice(&all).to_vec()).collect();
        assert_eq!(rejoined, all);
    }
}
