//! XML serialization of stored subtrees.

use crate::database::Database;
use crate::node::{NodeId, NodeKind};

/// Escapes character data.
pub fn escape_text(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            _ => out.push(c),
        }
    }
}

/// Escapes an attribute value (double-quoted context).
pub fn escape_attr(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '"' => out.push_str("&quot;"),
            _ => out.push(c),
        }
    }
}

/// Serializes the subtree rooted at `id` back to XML text.
///
/// Document roots serialize as their children concatenated. Output is
/// canonical enough for equality comparison across engines: attributes are
/// emitted in stored (document) order and no insignificant whitespace is
/// produced.
pub fn serialize_subtree(db: &Database, id: NodeId) -> String {
    let mut out = String::new();
    write_subtree(db, id, &mut out);
    out
}

fn write_subtree(db: &Database, id: NodeId, out: &mut String) {
    let node = db.node(id);
    match node.kind() {
        NodeKind::DocRoot => {
            for c in node.children() {
                write_subtree(db, c.id(), out);
            }
        }
        NodeKind::Text => {
            if let Some(t) = node.content() {
                escape_text(t, out);
            }
        }
        NodeKind::Attribute => {
            // A bare attribute serializes as name="value" (used when an
            // attribute node is itself a query result).
            let name = node.tag_name();
            out.push_str(&name[1..]);
            out.push_str("=\"");
            escape_attr(node.content().unwrap_or(""), out);
            out.push('"');
        }
        NodeKind::Element => {
            let name = node.tag_name();
            out.push('<');
            out.push_str(&name);
            let mut element_children = Vec::new();
            for c in node.children() {
                if c.kind() == NodeKind::Attribute {
                    out.push(' ');
                    let an = c.tag_name();
                    out.push_str(&an[1..]);
                    out.push_str("=\"");
                    escape_attr(c.content().unwrap_or(""), out);
                    out.push('"');
                } else if !(c.kind() == NodeKind::Text && c.content().unwrap_or("").is_empty()) {
                    // Empty text nodes (a `set_text` with "") produce no
                    // bytes; skipping them keeps the self-closing
                    // canonicalization below stable across a reparse.
                    element_children.push(c.id());
                }
            }
            // Empty inline content is indistinguishable from no content
            // after a parse round-trip; canonicalize to the self-closing
            // form.
            let inline = node.content().filter(|c| !c.is_empty());
            if element_children.is_empty() && inline.is_none() {
                out.push_str("/>");
                return;
            }
            out.push('>');
            if let Some(t) = inline {
                escape_text(t, out);
            }
            for c in element_children {
                write_subtree(db, c, out);
            }
            out.push_str("</");
            out.push_str(&name);
            out.push('>');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_is_stable() {
        let mut db = Database::new();
        let src = r#"<site><person id="p0"><age>25</age><name>Ann &amp; Co</name></person><empty/></site>"#;
        let d = db.load_xml("t.xml", src).unwrap();
        let first = serialize_subtree(&db, db.root(d));
        // Parsing the serialization again must serialize identically.
        let mut db2 = Database::new();
        let d2 = db2.load_xml("t.xml", &first).unwrap();
        let second = serialize_subtree(&db2, db2.root(d2));
        assert_eq!(first, second);
        assert!(first.contains("<age>25</age>"));
        assert!(first.contains("id=\"p0\""));
        assert!(first.contains("<empty/>"));
        assert!(first.contains("Ann &amp; Co"));
    }

    #[test]
    fn serializing_inner_subtree() {
        let mut db = Database::new();
        db.load_xml("t.xml", "<a><b c=\"1\">x</b><b c=\"2\">y</b></a>").unwrap();
        let b1 = db.nodes_with_tag("b")[1];
        assert_eq!(serialize_subtree(&db, b1), "<b c=\"2\">y</b>");
    }

    #[test]
    fn empty_text_children_do_not_block_self_closing() {
        let mut db = Database::new();
        let d = db.load_xml("t.xml", "<a><c>x<d/></c></a>").unwrap();
        // Blank the explicit text node, then delete its sibling: `c` is
        // left with only an empty text child, which a reparse cannot
        // represent — serialization must canonicalize to `<c/>`.
        let text = db.nodes_with_tag("#text")[0];
        crate::update::set_text(&mut db, d, text.pre, "").unwrap();
        let dd = db.nodes_with_tag("d")[0];
        crate::update::delete_subtree(&mut db, d, dd.pre).unwrap();
        let out = serialize_subtree(&db, db.root(d));
        assert_eq!(out, "<a><c/></a>");
        let mut db2 = Database::new();
        let d2 = db2.load_xml("t.xml", &out).unwrap();
        assert_eq!(serialize_subtree(&db2, db2.root(d2)), out);
    }

    #[test]
    fn attribute_node_serializes_as_pair() {
        let mut db = Database::new();
        db.load_xml("t.xml", "<a c=\"v&quot;\"/>").unwrap();
        let attr = db.nodes_with_tag("@c")[0];
        assert_eq!(serialize_subtree(&db, attr), "c=\"v&quot;\"");
    }
}
