//! Node identifiers and the structural predicates built on them.
//!
//! The paper's §5.1 (Figure 13) lists four properties a node identifier must
//! satisfy:
//!
//! 1. **Uniqueness** — `(document, pre ord)` is unique by construction.
//! 2. **Structural relationship** — with the interval encoding `(pre, end,
//!    level)`, ancestor/descendant is two comparisons and parent/child adds a
//!    level check; this is what makes merge-based structural joins possible.
//! 3. **Absolute document order** — pre ords increase strictly in document
//!    order, so a sequence of trees can be re-sorted into document order by
//!    root id alone (the paper's "sort-merge-sort" join relies on this).
//!    Ords are assigned sparsely (gap numbering, see [`crate::document`]) so
//!    in-place updates can usually label new nodes without renumbering —
//!    every property here is a pure comparison and survives the gaps.
//! 4. **Order within a class** — temporary nodes created during execution
//!    (join roots, aggregate results, constructed elements) only need to be
//!    sortable among members of the same logical class; [`TempId`] provides a
//!    per-class monotone counter and never forces renumbering of base nodes,
//!    exactly the design argued for against "Dynamic-Intervals".

use std::fmt;

/// Identifier of a loaded document within a [`crate::Database`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DocId(pub u32);

/// Identifier of a base (stored) node: document plus sparse pre ord.
///
/// Ordering on `NodeId` is `(doc, pre)`, i.e. global document order with
/// documents ordered by load time — Property 3 of Figure 13.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId {
    /// The owning document.
    pub doc: DocId,
    /// Sparse pre ord within the document (strictly increasing in document
    /// order; resolved to an arena slot via [`crate::Document::idx_of`]).
    pub pre: u32,
}

impl NodeId {
    /// Builds a node id from raw parts.
    pub fn new(doc: DocId, pre: u32) -> Self {
        NodeId { doc, pre }
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.doc.0, self.pre)
    }
}

/// Identifier for a temporary node produced during query execution.
///
/// Satisfies Properties 1 and 4 of Figure 13: unique (a global monotone
/// counter) and ordered consistently within any logical class (creation
/// order), but carries no interval — temporary nodes never participate in
/// structural joins, and they are not part of any original document so they
/// need no document order (see the discussion in §5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TempId(pub u64);

/// What a stored node is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeKind {
    /// A synthetic per-document root (`doc_root` in the paper's figures).
    DocRoot,
    /// An XML element.
    Element,
    /// An attribute, modelled as a child node whose tag is `@name`.
    Attribute,
    /// A text node (tag `#text`).
    Text,
}

/// Structural axis between two pattern-tree nodes: the `Rel_e` of Definition 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AxisRel {
    /// Immediate inclusion (`/` in XPath, single edge in the figures).
    Child,
    /// Inclusion at arbitrary depth (`//`, double edge in the figures).
    Descendant,
}

impl AxisRel {
    /// Evaluates the axis on interval-encoded nodes.
    ///
    /// `a_*` describe the candidate ancestor/parent, `d_*` the candidate
    /// descendant/child. Both nodes must belong to the same document; the
    /// caller checks that.
    #[inline]
    pub fn holds(self, a_pre: u32, a_end: u32, a_level: u16, d_pre: u32, d_level: u16) -> bool {
        let contains = a_pre < d_pre && d_pre <= a_end;
        match self {
            AxisRel::Descendant => contains,
            AxisRel::Child => contains && d_level == a_level + 1,
        }
    }
}

/// Interval test: is `(a_pre, a_end)` an ancestor of the node at `d_pre`?
#[inline]
pub fn is_ancestor(a_pre: u32, a_end: u32, d_pre: u32) -> bool {
    a_pre < d_pre && d_pre <= a_end
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_ids_order_by_document_then_pre() {
        let a = NodeId::new(DocId(0), 5);
        let b = NodeId::new(DocId(0), 9);
        let c = NodeId::new(DocId(1), 0);
        assert!(a < b);
        assert!(b < c);
    }

    #[test]
    fn axis_child_requires_level_adjacency() {
        // node 0 spans [0,10] at level 0; node 3 is at level 2.
        assert!(AxisRel::Descendant.holds(0, 10, 0, 3, 2));
        assert!(!AxisRel::Child.holds(0, 10, 0, 3, 2));
        assert!(AxisRel::Child.holds(0, 10, 0, 3, 1));
    }

    #[test]
    fn a_node_is_not_its_own_ancestor() {
        assert!(!is_ancestor(4, 9, 4));
        assert!(is_ancestor(4, 9, 5));
        assert!(is_ancestor(4, 9, 9));
        assert!(!is_ancestor(4, 9, 10));
    }

    #[test]
    fn display_is_doc_colon_pre() {
        assert_eq!(NodeId::new(DocId(2), 7).to_string(), "2:7");
    }
}
