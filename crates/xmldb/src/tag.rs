//! Tag-name interning.
//!
//! Every node label (element tag, attribute name, the synthetic `#text` and
//! `#doc` labels) is interned to a dense [`TagId`]. Pattern matching, the tag
//! index and all join predicates then work on `u32` comparisons instead of
//! string comparisons, which is what a production native XML store does.
//!
//! Attribute names are interned with a leading `@` (so `@person` and a
//! `person` element get distinct ids), mirroring how the paper writes
//! attribute pattern nodes (e.g. `@id`, `@person` in Figure 7).

use std::collections::HashMap;
use std::sync::RwLock;

/// Dense identifier for an interned node label.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TagId(pub u32);

/// Label of synthetic document-root nodes (`doc_root` in the paper's figures).
pub const DOC_TAG: &str = "#doc";
/// Label of text nodes.
pub const TEXT_TAG: &str = "#text";

/// A thread-safe string interner for node labels.
///
/// Interning is append-only: ids are never reused, and resolving an id is a
/// read-locked slice access. Lock poisoning is impossible in practice (no
/// code path panics while holding the lock), so guards are unwrapped.
#[derive(Debug, Default)]
pub struct TagInterner {
    inner: RwLock<InternerInner>,
}

impl Clone for TagInterner {
    fn clone(&self) -> Self {
        let inner = self.inner.read().unwrap();
        TagInterner { inner: RwLock::new(inner.clone()) }
    }
}

#[derive(Debug, Default, Clone)]
struct InternerInner {
    map: HashMap<Box<str>, TagId>,
    names: Vec<Box<str>>,
}

impl TagInterner {
    /// Creates an interner pre-seeded with the synthetic labels so that
    /// [`TagInterner::doc_tag`] and [`TagInterner::text_tag`] are constant.
    pub fn new() -> Self {
        let interner = TagInterner::default();
        let doc = interner.intern(DOC_TAG);
        let text = interner.intern(TEXT_TAG);
        debug_assert_eq!(doc, TagId(0));
        debug_assert_eq!(text, TagId(1));
        interner
    }

    /// Id of the synthetic `#doc` label.
    pub fn doc_tag(&self) -> TagId {
        TagId(0)
    }

    /// Id of the synthetic `#text` label.
    pub fn text_tag(&self) -> TagId {
        TagId(1)
    }

    /// Interns `name`, returning its stable id.
    pub fn intern(&self, name: &str) -> TagId {
        if let Some(id) = self.inner.read().unwrap().map.get(name) {
            return *id;
        }
        let mut inner = self.inner.write().unwrap();
        if let Some(id) = inner.map.get(name) {
            return *id;
        }
        let id = TagId(inner.names.len() as u32);
        inner.names.push(name.into());
        inner.map.insert(name.into(), id);
        id
    }

    /// Looks up a label without interning it. Returns `None` if the label has
    /// never been seen — useful for query compilation, where an unknown tag
    /// means the pattern can never match.
    pub fn lookup(&self, name: &str) -> Option<TagId> {
        self.inner.read().unwrap().map.get(name).copied()
    }

    /// Resolves an id back to its label.
    ///
    /// # Panics
    /// Panics if `id` was not produced by this interner.
    pub fn name(&self, id: TagId) -> Box<str> {
        self.inner.read().unwrap().names[id.0 as usize].clone()
    }

    /// Number of distinct labels interned so far.
    pub fn len(&self) -> usize {
        self.inner.read().unwrap().names.len()
    }

    /// True when only the synthetic labels are present.
    pub fn is_empty(&self) -> bool {
        self.len() <= 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let i = TagInterner::new();
        let a = i.intern("person");
        let b = i.intern("person");
        assert_eq!(a, b);
        assert_eq!(&*i.name(a), "person");
    }

    #[test]
    fn distinct_names_get_distinct_ids() {
        let i = TagInterner::new();
        let a = i.intern("person");
        let b = i.intern("open_auction");
        assert_ne!(a, b);
    }

    #[test]
    fn attribute_and_element_labels_are_distinct() {
        let i = TagInterner::new();
        assert_ne!(i.intern("person"), i.intern("@person"));
    }

    #[test]
    fn synthetic_labels_are_preseeded() {
        let i = TagInterner::new();
        assert_eq!(i.lookup(DOC_TAG), Some(i.doc_tag()));
        assert_eq!(i.lookup(TEXT_TAG), Some(i.text_tag()));
        assert!(i.is_empty());
        i.intern("x");
        assert!(!i.is_empty());
    }

    #[test]
    fn lookup_of_unknown_label_is_none() {
        let i = TagInterner::new();
        assert_eq!(i.lookup("never-seen"), None);
    }

    #[test]
    fn concurrent_interning_agrees() {
        let i = std::sync::Arc::new(TagInterner::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let i = i.clone();
            handles.push(std::thread::spawn(move || {
                (0..100).map(|k| i.intern(&format!("tag{}", k % 10))).collect::<Vec<_>>()
            }));
        }
        let results: Vec<Vec<TagId>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for w in results.windows(2) {
            assert_eq!(w[0], w[1]);
        }
    }
}
