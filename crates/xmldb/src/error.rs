//! Error type shared across the store.

use std::fmt;

/// Errors raised by the XML store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// The XML input was malformed. Carries a byte offset and a message.
    Parse {
        /// Byte offset of the error in the input.
        offset: usize,
        /// What went wrong.
        message: String,
    },
    /// A node id referred to a document that does not exist.
    NoSuchDocument(u32),
    /// A node id referred to a pre-order rank outside its document.
    NoSuchNode {
        /// The document id.
        doc: u32,
        /// The out-of-range pre rank.
        pre: u32,
    },
    /// A document with the given logical name was not found.
    UnknownDocumentName(String),
    /// A document with the given logical name is already loaded.
    DuplicateDocumentName(String),
    /// The document builder was used incorrectly (e.g. unbalanced pushes).
    Builder(String),
    /// The store checker ([`mod@crate::check`]) found a structural or index
    /// violation: the interval encoding, arena layout, or a derived index
    /// disagrees with the data.
    Corrupt(String),
    /// An in-place mutation ([`mod@crate::update`]) was rejected — e.g.
    /// deleting a document root or inserting under a text node.
    Update(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Parse { offset, message } => {
                write!(f, "XML parse error at byte {offset}: {message}")
            }
            Error::NoSuchDocument(d) => write!(f, "no document with id {d}"),
            Error::NoSuchNode { doc, pre } => {
                write!(f, "document {doc} has no node with pre rank {pre}")
            }
            Error::UnknownDocumentName(n) => write!(f, "no document named {n:?} is loaded"),
            Error::DuplicateDocumentName(n) => write!(f, "document named {n:?} already loaded"),
            Error::Builder(m) => write!(f, "document builder misuse: {m}"),
            Error::Corrupt(m) => write!(f, "store corruption: {m}"),
            Error::Update(m) => write!(f, "update rejected: {m}"),
        }
    }
}

impl std::error::Error for Error {}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, Error>;
