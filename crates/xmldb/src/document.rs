//! Pre-order arena documents and the streaming builder that creates them.
//!
//! A [`Document`] stores its nodes in a single vector laid out in document
//! (pre-) order: the vector index of a node is its pre-order rank, which is
//! also its [`crate::NodeId::pre`]. Together with the stored `(end, level)`
//! interval this gives O(1) structural-relationship tests (Property 2 of the
//! paper's Figure 13) and free document ordering (Property 3).
//!
//! Child navigation needs no explicit links: the first child of `i` is `i+1`
//! (when the interval is non-empty) and the next sibling of a child `c` is
//! `c.end + 1` (when still inside the parent's interval).

use crate::error::{Error, Result};
use crate::node::{DocId, NodeId, NodeKind};
use crate::tag::{TagId, TagInterner};

/// One stored node. Kept deliberately small; see the perf notes in DESIGN.md.
#[derive(Debug, Clone)]
pub struct NodeRecord {
    /// Interned label (`@name` for attributes, `#text`, `#doc`).
    pub tag: TagId,
    /// Node kind.
    pub kind: NodeKind,
    /// Inline text value. Present on attributes, text nodes, and elements
    /// whose only non-attribute child was a single text run (collapsed at
    /// build time, the common case for leaf elements like `<age>25</age>`).
    pub content: Option<Box<str>>,
    /// Pre rank of the parent; `u32::MAX` for the document root.
    pub parent: u32,
    /// Pre rank of the last descendant (== own pre for leaves).
    pub end: u32,
    /// Depth; the document root is level 0.
    pub level: u16,
}

const NO_PARENT: u32 = u32::MAX;

/// An immutable XML document in pre-order arena form.
///
/// Node 0 is always a synthetic [`NodeKind::DocRoot`] node (the `doc_root` of
/// the paper's pattern trees); the document element is its only child.
#[derive(Debug, Clone)]
pub struct Document {
    name: Box<str>,
    records: Vec<NodeRecord>,
}

impl Document {
    /// The logical name the document was loaded under (e.g. `auction.xml`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Total number of nodes, including the synthetic root.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True only for a degenerate document with nothing but the synthetic root.
    pub fn is_empty(&self) -> bool {
        self.records.len() <= 1
    }

    /// Borrow a record by pre rank.
    #[inline]
    pub fn record(&self, pre: u32) -> &NodeRecord {
        &self.records[pre as usize]
    }

    /// Fallible record lookup.
    pub fn try_record(&self, pre: u32) -> Option<&NodeRecord> {
        self.records.get(pre as usize)
    }

    /// All records in pre order.
    pub fn records(&self) -> &[NodeRecord] {
        &self.records
    }

    /// Parent pre rank, or `None` at the document root.
    #[inline]
    pub fn parent(&self, pre: u32) -> Option<u32> {
        let p = self.record(pre).parent;
        (p != NO_PARENT).then_some(p)
    }

    /// Iterates the direct children of `pre` in document order
    /// (attributes first — they are built before other children).
    pub fn children(&self, pre: u32) -> ChildIter<'_> {
        let rec = self.record(pre);
        ChildIter { doc: self, next: pre + 1, end: rec.end }
    }

    /// Number of direct children.
    pub fn child_count(&self, pre: u32) -> usize {
        self.children(pre).count()
    }

    /// Iterates every node in the subtree rooted at `pre` (inclusive).
    pub fn subtree(&self, pre: u32) -> impl Iterator<Item = u32> + '_ {
        pre..=self.record(pre).end
    }

    /// True iff `anc` is a proper ancestor of `desc`.
    #[inline]
    pub fn is_ancestor(&self, anc: u32, desc: u32) -> bool {
        anc < desc && desc <= self.record(anc).end
    }

    /// The concatenated text content of the subtree rooted at `pre`
    /// (inline contents plus text-node contents, in document order).
    pub fn string_value(&self, pre: u32) -> String {
        let mut out = String::new();
        for p in self.subtree(pre) {
            let rec = self.record(p);
            // Attribute values are not part of an element's string value.
            if rec.kind == NodeKind::Attribute && p != pre {
                continue;
            }
            if let Some(c) = &rec.content {
                out.push_str(c);
            }
        }
        out
    }

    /// The *typed* (numeric) value of a node, when its inline content parses
    /// as a number. Multi-child elements fall back to their string value.
    pub fn num_value(&self, pre: u32) -> Option<f64> {
        let rec = self.record(pre);
        match &rec.content {
            Some(c) => c.trim().parse().ok(),
            None => self.string_value(pre).trim().parse().ok(),
        }
    }

    /// Reconstructs a document from raw records (snapshot loading),
    /// validating all arena invariants.
    pub fn from_parts(name: &str, records: Vec<NodeRecord>) -> Result<Document> {
        let doc = Document { name: name.into(), records };
        doc.check_invariants()?;
        Ok(doc)
    }

    /// Validates internal invariants; used by tests and the property suite.
    pub fn check_invariants(&self) -> Result<()> {
        let fail = |m: String| Err(Error::Builder(m));
        if self.records.is_empty() {
            return fail("document has no root".into());
        }
        if self.records[0].kind != NodeKind::DocRoot {
            return fail("node 0 must be the synthetic document root".into());
        }
        for (i, rec) in self.records.iter().enumerate() {
            let i = i as u32;
            if (rec.end as usize) >= self.records.len() || rec.end < i {
                return fail(format!("node {i} has bad interval end {}", rec.end));
            }
            if i == 0 {
                if rec.parent != NO_PARENT || rec.level != 0 {
                    return fail("root must have no parent and level 0".into());
                }
                if rec.end as usize != self.records.len() - 1 {
                    return fail("root interval must span the document".into());
                }
                continue;
            }
            let parent = self.record(rec.parent);
            if !(rec.parent < i && i <= parent.end) {
                return fail(format!("node {i} outside parent interval"));
            }
            if rec.level != parent.level + 1 {
                return fail(format!("node {i} has non-adjacent level"));
            }
        }
        Ok(())
    }
}

/// Iterator over direct children (see [`Document::children`]).
pub struct ChildIter<'a> {
    doc: &'a Document,
    next: u32,
    end: u32,
}

impl Iterator for ChildIter<'_> {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        if self.next > self.end {
            return None;
        }
        let cur = self.next;
        self.next = self.doc.record(cur).end + 1;
        Some(cur)
    }
}

/// Streaming pre-order document builder.
///
/// Usage: `start_element` / `attribute` / `text` / `end_element`, then
/// [`DocumentBuilder::finish`]. The builder collapses a single trailing text
/// run into inline element content (so `<age>25</age>` becomes one node).
#[derive(Debug)]
pub struct DocumentBuilder {
    name: Box<str>,
    records: Vec<NodeRecord>,
    /// Stack of open element pre ranks.
    stack: Vec<u32>,
    /// Per open element: number of non-attribute children so far.
    child_counts: Vec<u32>,
}

impl DocumentBuilder {
    /// Starts a new document with the given logical name. The synthetic
    /// document root is created implicitly.
    pub fn new(name: &str, interner: &TagInterner) -> Self {
        let root = NodeRecord {
            tag: interner.doc_tag(),
            kind: NodeKind::DocRoot,
            content: None,
            parent: NO_PARENT,
            end: 0,
            level: 0,
        };
        DocumentBuilder {
            name: name.into(),
            records: vec![root],
            stack: vec![0],
            child_counts: vec![0],
        }
    }

    fn top(&self) -> u32 {
        *self.stack.last().expect("builder stack never empty before finish")
    }

    /// Opens a new element under the current node; returns its pre rank.
    pub fn start_element(&mut self, tag: TagId) -> u32 {
        let parent = self.top();
        let level = self.records[parent as usize].level + 1;
        let pre = self.records.len() as u32;
        self.records.push(NodeRecord {
            tag,
            kind: NodeKind::Element,
            content: None,
            parent,
            end: pre,
            level,
        });
        *self.child_counts.last_mut().unwrap() += 1;
        self.stack.push(pre);
        self.child_counts.push(0);
        pre
    }

    /// Adds an attribute to the currently open element. The caller interns
    /// the name *with* its `@` prefix (see [`crate::tag`]).
    pub fn attribute(&mut self, tag: TagId, value: &str) -> u32 {
        let parent = self.top();
        let level = self.records[parent as usize].level + 1;
        let pre = self.records.len() as u32;
        self.records.push(NodeRecord {
            tag,
            kind: NodeKind::Attribute,
            content: Some(value.into()),
            parent,
            end: pre,
            level,
        });
        pre
    }

    /// Adds a text run under the currently open element.
    pub fn text(&mut self, value: &str, interner: &TagInterner) -> u32 {
        let parent = self.top();
        let level = self.records[parent as usize].level + 1;
        let pre = self.records.len() as u32;
        self.records.push(NodeRecord {
            tag: interner.text_tag(),
            kind: NodeKind::Text,
            content: Some(value.into()),
            parent,
            end: pre,
            level,
        });
        *self.child_counts.last_mut().unwrap() += 1;
        pre
    }

    /// Convenience: `start_element` + `text` + `end_element` (which collapses
    /// to a single node with inline content).
    pub fn leaf(&mut self, tag: TagId, content: &str, interner: &TagInterner) -> u32 {
        let pre = self.start_element(tag);
        self.text(content, interner);
        self.end_element().expect("leaf is balanced");
        pre
    }

    /// Closes the current element, fixing up its interval.
    pub fn end_element(&mut self) -> Result<u32> {
        if self.stack.len() <= 1 {
            return Err(Error::Builder("end_element without matching start".into()));
        }
        let pre = self.stack.pop().unwrap();
        let non_attr_children = self.child_counts.pop().unwrap();
        let last = self.records.len() as u32 - 1;
        // Collapse `<e>text</e>` (possibly with attributes) into inline
        // content. The last record must be a *direct* text child of the
        // element being closed — with one nested element child, the arena's
        // last record can be a grandchild text run that must not be stolen.
        if non_attr_children == 1
            && self.records[last as usize].kind == NodeKind::Text
            && self.records[last as usize].parent == pre
        {
            let text = self.records.pop().unwrap();
            self.records[pre as usize].content = text.content;
        }
        let end = self.records.len() as u32 - 1;
        self.records[pre as usize].end = end;
        Ok(pre)
    }

    /// Finalizes the document. Fails if elements are still open.
    pub fn finish(mut self) -> Result<Document> {
        if self.stack.len() != 1 {
            return Err(Error::Builder(format!("{} unclosed element(s)", self.stack.len() - 1)));
        }
        self.records[0].end = self.records.len() as u32 - 1;
        let doc = Document { name: self.name, records: self.records };
        debug_assert!(doc.check_invariants().is_ok());
        Ok(doc)
    }
}

/// Borrowed view of a node inside a known document, convenient for callers
/// that hold a [`NodeId`].
#[derive(Clone, Copy)]
pub struct DocNode<'a> {
    /// The owning document.
    pub doc: &'a Document,
    /// The document's id in the database.
    pub doc_id: DocId,
    /// Pre rank within the document.
    pub pre: u32,
}

impl<'a> DocNode<'a> {
    /// The full node id.
    pub fn id(&self) -> NodeId {
        NodeId::new(self.doc_id, self.pre)
    }

    /// The record behind this view.
    pub fn record(&self) -> &'a NodeRecord {
        self.doc.record(self.pre)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build_sample() -> (Document, TagInterner) {
        // <site><person id="p0"><age>25</age><name>Ann</name></person>
        //       <person id="p1"><name>Bo</name></person></site>
        let i = TagInterner::new();
        let (site, person, age, name, at_id) = (
            i.intern("site"),
            i.intern("person"),
            i.intern("age"),
            i.intern("name"),
            i.intern("@id"),
        );
        let mut b = DocumentBuilder::new("sample.xml", &i);
        b.start_element(site);
        b.start_element(person);
        b.attribute(at_id, "p0");
        b.leaf(age, "25", &i);
        b.leaf(name, "Ann", &i);
        b.end_element().unwrap();
        b.start_element(person);
        b.attribute(at_id, "p1");
        b.leaf(name, "Bo", &i);
        b.end_element().unwrap();
        b.end_element().unwrap();
        (b.finish().unwrap(), i)
    }

    #[test]
    fn invariants_hold_for_sample() {
        let (doc, _) = build_sample();
        doc.check_invariants().unwrap();
    }

    #[test]
    fn leaf_text_is_collapsed_inline() {
        let (doc, i) = build_sample();
        let age = i.lookup("age").unwrap();
        let node = (0..doc.len() as u32).find(|&p| doc.record(p).tag == age).unwrap();
        assert_eq!(doc.record(node).content.as_deref(), Some("25"));
        assert_eq!(doc.record(node).end, node, "collapsed leaf spans itself");
        assert_eq!(doc.num_value(node), Some(25.0));
    }

    #[test]
    fn children_iterates_in_document_order() {
        let (doc, i) = build_sample();
        let person = i.lookup("person").unwrap();
        let site_children: Vec<u32> = doc.children(1).collect();
        assert_eq!(site_children.len(), 2);
        assert!(site_children.iter().all(|&c| doc.record(c).tag == person));
        assert!(site_children[0] < site_children[1]);
    }

    #[test]
    fn attributes_come_before_element_children() {
        let (doc, i) = build_sample();
        let person = i.lookup("person").unwrap();
        let p0 = (0..doc.len() as u32).find(|&p| doc.record(p).tag == person).unwrap();
        let kids: Vec<NodeKind> = doc.children(p0).map(|c| doc.record(c).kind).collect();
        assert_eq!(kids[0], NodeKind::Attribute);
        assert!(kids[1..].iter().all(|k| *k == NodeKind::Element));
    }

    #[test]
    fn string_value_concatenates_descendant_text_not_attributes() {
        let (doc, i) = build_sample();
        let person = i.lookup("person").unwrap();
        let p0 = (0..doc.len() as u32).find(|&p| doc.record(p).tag == person).unwrap();
        assert_eq!(doc.string_value(p0), "25Ann");
    }

    #[test]
    fn ancestor_test_matches_navigation() {
        let (doc, _) = build_sample();
        for a in 0..doc.len() as u32 {
            for d in 0..doc.len() as u32 {
                let nav = {
                    let mut cur = doc.parent(d);
                    let mut found = false;
                    while let Some(p) = cur {
                        if p == a {
                            found = true;
                            break;
                        }
                        cur = doc.parent(p);
                    }
                    found
                };
                assert_eq!(doc.is_ancestor(a, d), nav, "a={a} d={d}");
            }
        }
    }

    #[test]
    fn collapse_does_not_steal_grandchild_text() {
        // <li><t>head<k>kw</k>tail</t></li> — li has one element child whose
        // last descendant is a text run; collapsing must not move "tail"
        // onto li. (Regression: found by the xmark round-trip test.)
        let i = TagInterner::new();
        let (li, t, k) = (i.intern("li"), i.intern("t"), i.intern("k"));
        let mut b = DocumentBuilder::new("m.xml", &i);
        b.start_element(li);
        b.start_element(t);
        b.text("head", &i);
        b.leaf(k, "kw", &i);
        b.text("tail", &i);
        b.end_element().unwrap();
        b.end_element().unwrap();
        let doc = b.finish().unwrap();
        doc.check_invariants().unwrap();
        assert_eq!(doc.record(1).content, None, "li keeps no stolen content");
        assert_eq!(doc.string_value(1), "headkwtail");
        // t has three children: text, k, text.
        assert_eq!(doc.child_count(2), 3);
    }

    #[test]
    fn unbalanced_builder_fails() {
        let i = TagInterner::new();
        let mut b = DocumentBuilder::new("bad.xml", &i);
        b.start_element(i.intern("open"));
        assert!(b.finish().is_err());

        let mut b = DocumentBuilder::new("bad2.xml", &i);
        assert!(b.end_element().is_err());
    }

    #[test]
    fn subtree_covers_interval() {
        let (doc, i) = build_sample();
        let person = i.lookup("person").unwrap();
        let p0 = (0..doc.len() as u32).find(|&p| doc.record(p).tag == person).unwrap();
        let sub: Vec<u32> = doc.subtree(p0).collect();
        assert_eq!(sub.first(), Some(&p0));
        assert_eq!(*sub.last().unwrap(), doc.record(p0).end);
    }
}
