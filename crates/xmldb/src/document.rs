//! Pre-order arena documents and the streaming builder that creates them.
//!
//! A [`Document`] stores its nodes in a single vector laid out in document
//! (pre-) order. Each node carries a sparse *pre ord* ([`NodeRecord::pre`]):
//! a number that preserves pre-order but is assigned with gaps ([`GAP`]-spaced
//! at build time) so in-place insertion ([`crate::update`]) can usually label
//! new nodes without touching their neighbours' identifiers. Together with
//! the stored `(end, level)` interval this gives O(1) structural-relationship
//! tests (Property 2 of the paper's Figure 13) and document ordering by ord
//! comparison (Property 3) — both are pure comparisons, so they stay valid
//! under sparse numbering.
//!
//! `end` is an ord-space upper bound on the subtree: every descendant's ord
//! is `<= end`, every following node's ord is `> end`. Leaves keep slack
//! (`end >= pre`) for future insertions below them; the slack never contains
//! another node's ord, so interval tests are unaffected.
//!
//! Child navigation needs no explicit links: children of a node are found by
//! scanning forward in the arena and skipping each child's subtree (a
//! binary-search hop over its interval).

use crate::error::{Error, Result};
use crate::node::{DocId, NodeId, NodeKind};
use crate::tag::{TagId, TagInterner};

/// Gap left between consecutive pre ords at document build time. Each gap
/// absorbs up to `GAP - 1` nodes inserted after the labelled node before the
/// update engine has to renumber locally.
pub const GAP: u32 = 32;

/// The build-time gap for a document of `len` records: [`GAP`], shrunk when
/// `len * GAP` would overflow the `u32` ord space.
pub(crate) fn gap_for(len: usize) -> u32 {
    let len = (len as u32).max(1);
    GAP.min(u32::MAX / len).max(1)
}

/// One stored node. Kept deliberately small; see the perf notes in DESIGN.md.
#[derive(Debug, Clone)]
pub struct NodeRecord {
    /// Interned label (`@name` for attributes, `#text`, `#doc`).
    pub tag: TagId,
    /// Node kind.
    pub kind: NodeKind,
    /// Inline text value. Present on attributes, text nodes, and elements
    /// whose only non-attribute child was a single text run (collapsed at
    /// build time, the common case for leaf elements like `<age>25</age>`).
    pub content: Option<Box<str>>,
    /// Sparse pre ord: strictly increasing in document order, with gaps.
    pub pre: u32,
    /// Pre ord of the parent; `u32::MAX` for the document root.
    pub parent: u32,
    /// Ord-space end of the subtree interval (`>= pre`; may carry slack
    /// beyond the last descendant's ord, but never reaches the next
    /// non-descendant's ord).
    pub end: u32,
    /// Depth; the document root is level 0.
    pub level: u16,
}

const NO_PARENT: u32 = u32::MAX;

/// An immutable XML document in pre-order arena form.
///
/// Node 0 is always a synthetic [`NodeKind::DocRoot`] node (the `doc_root` of
/// the paper's pattern trees); the document element is its only child.
#[derive(Debug, Clone)]
pub struct Document {
    name: Box<str>,
    records: Vec<NodeRecord>,
}

impl Document {
    /// The logical name the document was loaded under (e.g. `auction.xml`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Total number of nodes, including the synthetic root.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True only for a degenerate document with nothing but the synthetic root.
    pub fn is_empty(&self) -> bool {
        self.records.len() <= 1
    }

    /// Arena index of the node with pre ord `pre`. O(1) for documents still
    /// carrying their build-time [`GAP`] spacing (the guess probe hits);
    /// falls back to binary search over the sorted ords after mutations.
    #[inline]
    pub fn idx_of(&self, pre: u32) -> Option<usize> {
        let guess = (pre / GAP) as usize;
        if let Some(r) = self.records.get(guess) {
            if r.pre == pre {
                return Some(guess);
            }
        }
        self.records.binary_search_by_key(&pre, |r| r.pre).ok()
    }

    /// Borrow a record by pre ord.
    ///
    /// # Panics
    /// Panics if no node has ord `pre`.
    #[inline]
    pub fn record(&self, pre: u32) -> &NodeRecord {
        match self.idx_of(pre) {
            Some(idx) => &self.records[idx],
            None => panic!("{:?} has no node with pre ord {pre}", self.name),
        }
    }

    /// Fallible record lookup by pre ord.
    pub fn try_record(&self, pre: u32) -> Option<&NodeRecord> {
        self.idx_of(pre).map(|i| &self.records[i])
    }

    /// All records in pre order.
    pub fn records(&self) -> &[NodeRecord] {
        &self.records
    }

    /// Mutable arena access for the in-crate update engine.
    pub(crate) fn records_mut(&mut self) -> &mut Vec<NodeRecord> {
        &mut self.records
    }

    /// Every node's pre ord, in document order.
    pub fn pres(&self) -> impl Iterator<Item = u32> + '_ {
        self.records.iter().map(|r| r.pre)
    }

    /// Pre ord of the node at arena index `idx`.
    pub fn pre_at(&self, idx: usize) -> u32 {
        self.records[idx].pre
    }

    /// Parent pre rank, or `None` at the document root.
    #[inline]
    pub fn parent(&self, pre: u32) -> Option<u32> {
        let p = self.record(pre).parent;
        (p != NO_PARENT).then_some(p)
    }

    /// Iterates the direct children of `pre` in document order
    /// (attributes first — they are built before other children).
    pub fn children(&self, pre: u32) -> ChildIter<'_> {
        let idx = self.idx_of(pre).unwrap_or(self.records.len());
        let end = self.records.get(idx).map_or(0, |r| r.end);
        ChildIter { doc: self, next_idx: idx.saturating_add(1), end }
    }

    /// Number of direct children.
    pub fn child_count(&self, pre: u32) -> usize {
        self.children(pre).count()
    }

    /// Arena index range `[start, end)` of the subtree rooted at ord `pre`;
    /// empty if no such node.
    pub(crate) fn subtree_idx_range(&self, pre: u32) -> (usize, usize) {
        let Some(idx) = self.idx_of(pre) else {
            return (0, 0);
        };
        let end = self.records[idx].end;
        let rest = &self.records[idx + 1..];
        (idx, idx + 1 + rest.partition_point(|r| r.pre <= end))
    }

    /// Iterates every node in the subtree rooted at `pre` (inclusive), by
    /// pre ord in document order.
    pub fn subtree(&self, pre: u32) -> impl Iterator<Item = u32> + '_ {
        let (start, end) = self.subtree_idx_range(pre);
        self.records[start..end].iter().map(|r| r.pre)
    }

    /// Number of nodes in the subtree rooted at `pre` (inclusive). Under
    /// sparse ords this is a real count, not `end - pre + 1`.
    pub fn subtree_size(&self, pre: u32) -> usize {
        let (start, end) = self.subtree_idx_range(pre);
        end - start
    }

    /// True iff `anc` is a proper ancestor of `desc`.
    #[inline]
    pub fn is_ancestor(&self, anc: u32, desc: u32) -> bool {
        anc < desc && desc <= self.record(anc).end
    }

    /// The concatenated text content of the subtree rooted at `pre`
    /// (inline contents plus text-node contents, in document order).
    pub fn string_value(&self, pre: u32) -> String {
        let (start, end) = self.subtree_idx_range(pre);
        let mut out = String::new();
        for (i, rec) in self.records[start..end].iter().enumerate() {
            // Attribute values are not part of an element's string value.
            if rec.kind == NodeKind::Attribute && i != 0 {
                continue;
            }
            if let Some(c) = &rec.content {
                out.push_str(c);
            }
        }
        out
    }

    /// The *typed* (numeric) value of a node, when its inline content parses
    /// as a number. Multi-child elements fall back to their string value.
    pub fn num_value(&self, pre: u32) -> Option<f64> {
        let rec = self.record(pre);
        match &rec.content {
            Some(c) => c.trim().parse().ok(),
            None => self.string_value(pre).trim().parse().ok(),
        }
    }

    /// Reconstructs a document from raw records (snapshot loading),
    /// validating all arena invariants.
    pub fn from_parts(name: &str, records: Vec<NodeRecord>) -> Result<Document> {
        let doc = Document { name: name.into(), records };
        doc.check_invariants()?;
        Ok(doc)
    }

    /// Validates internal invariants; used by tests and the property suite.
    pub fn check_invariants(&self) -> Result<()> {
        let fail = |m: String| Err(Error::Builder(m));
        if self.records.is_empty() {
            return fail("document has no root".into());
        }
        let root = &self.records[0];
        if root.kind != NodeKind::DocRoot {
            return fail("node 0 must be the synthetic document root".into());
        }
        if root.pre != 0 || root.parent != NO_PARENT || root.level != 0 {
            return fail("root must have ord 0, no parent, and level 0".into());
        }
        if root.end < self.records.last().expect("non-empty").pre {
            return fail("root interval must span the document".into());
        }
        for (i, rec) in self.records.iter().enumerate().skip(1) {
            if rec.pre <= self.records[i - 1].pre {
                return fail(format!("pre ords not increasing at arena index {i}"));
            }
            if rec.end < rec.pre {
                return fail(format!("node {} has bad interval end {}", rec.pre, rec.end));
            }
            let Some(pidx) = self.idx_of(rec.parent) else {
                return fail(format!("node {} has unknown parent ord {}", rec.pre, rec.parent));
            };
            let parent = &self.records[pidx];
            if !(parent.pre < rec.pre && rec.pre <= parent.end) {
                return fail(format!("node {} outside parent interval", rec.pre));
            }
            if rec.end > parent.end {
                return fail(format!("node {} escapes parent interval", rec.pre));
            }
            if rec.level != parent.level + 1 {
                return fail(format!("node {} has non-adjacent level", rec.pre));
            }
        }
        Ok(())
    }
}

/// Iterator over direct children (see [`Document::children`]).
pub struct ChildIter<'a> {
    doc: &'a Document,
    next_idx: usize,
    end: u32,
}

impl Iterator for ChildIter<'_> {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        let rec = self.doc.records.get(self.next_idx)?;
        if rec.pre > self.end {
            return None;
        }
        // Hop over this child's subtree: advance to the first arena slot
        // whose ord falls outside the child's interval.
        let rest = &self.doc.records[self.next_idx + 1..];
        self.next_idx += 1 + rest.partition_point(|r| r.pre <= rec.end);
        Some(rec.pre)
    }
}

/// Streaming pre-order document builder.
///
/// Usage: `start_element` / `attribute` / `text` / `end_element`, then
/// [`DocumentBuilder::finish`]. The builder collapses a single trailing text
/// run into inline element content (so `<age>25</age>` becomes one node).
///
/// While building, `pre`/`parent`/`end` hold dense arena indexes;
/// [`DocumentBuilder::finish`] remaps them into [`GAP`]-spaced ord space.
#[derive(Debug)]
pub struct DocumentBuilder {
    name: Box<str>,
    records: Vec<NodeRecord>,
    /// Stack of open element arena indexes.
    stack: Vec<u32>,
    /// Per open element: number of non-attribute children so far.
    child_counts: Vec<u32>,
}

impl DocumentBuilder {
    /// Starts a new document with the given logical name. The synthetic
    /// document root is created implicitly.
    pub fn new(name: &str, interner: &TagInterner) -> Self {
        let root = NodeRecord {
            tag: interner.doc_tag(),
            kind: NodeKind::DocRoot,
            content: None,
            pre: 0,
            parent: NO_PARENT,
            end: 0,
            level: 0,
        };
        DocumentBuilder {
            name: name.into(),
            records: vec![root],
            stack: vec![0],
            child_counts: vec![0],
        }
    }

    fn top(&self) -> u32 {
        *self.stack.last().expect("builder stack never empty before finish")
    }

    /// Opens a new element under the current node; returns its pre rank.
    pub fn start_element(&mut self, tag: TagId) -> u32 {
        let parent = self.top();
        let level = self.records[parent as usize].level + 1;
        let pre = self.records.len() as u32;
        self.records.push(NodeRecord {
            tag,
            kind: NodeKind::Element,
            content: None,
            pre,
            parent,
            end: pre,
            level,
        });
        *self.child_counts.last_mut().unwrap() += 1;
        self.stack.push(pre);
        self.child_counts.push(0);
        pre
    }

    /// Adds an attribute to the currently open element. The caller interns
    /// the name *with* its `@` prefix (see [`crate::tag`]).
    pub fn attribute(&mut self, tag: TagId, value: &str) -> u32 {
        let parent = self.top();
        let level = self.records[parent as usize].level + 1;
        let pre = self.records.len() as u32;
        self.records.push(NodeRecord {
            tag,
            kind: NodeKind::Attribute,
            content: Some(value.into()),
            pre,
            parent,
            end: pre,
            level,
        });
        pre
    }

    /// Adds a text run under the currently open element.
    pub fn text(&mut self, value: &str, interner: &TagInterner) -> u32 {
        let parent = self.top();
        let level = self.records[parent as usize].level + 1;
        let pre = self.records.len() as u32;
        self.records.push(NodeRecord {
            tag: interner.text_tag(),
            kind: NodeKind::Text,
            content: Some(value.into()),
            pre,
            parent,
            end: pre,
            level,
        });
        *self.child_counts.last_mut().unwrap() += 1;
        pre
    }

    /// Convenience: `start_element` + `text` + `end_element` (which collapses
    /// to a single node with inline content).
    pub fn leaf(&mut self, tag: TagId, content: &str, interner: &TagInterner) -> u32 {
        let pre = self.start_element(tag);
        self.text(content, interner);
        self.end_element().expect("leaf is balanced");
        pre
    }

    /// Closes the current element, fixing up its interval.
    pub fn end_element(&mut self) -> Result<u32> {
        if self.stack.len() <= 1 {
            return Err(Error::Builder("end_element without matching start".into()));
        }
        let pre = self.stack.pop().unwrap();
        let non_attr_children = self.child_counts.pop().unwrap();
        let last = self.records.len() as u32 - 1;
        // Collapse `<e>text</e>` (possibly with attributes) into inline
        // content. The last record must be a *direct* text child of the
        // element being closed — with one nested element child, the arena's
        // last record can be a grandchild text run that must not be stolen.
        if non_attr_children == 1
            && self.records[last as usize].kind == NodeKind::Text
            && self.records[last as usize].parent == pre
        {
            let text = self.records.pop().unwrap();
            self.records[pre as usize].content = text.content;
        }
        let end = self.records.len() as u32 - 1;
        self.records[pre as usize].end = end;
        Ok(pre)
    }

    /// Finalizes the document, remapping the dense build-time indexes into
    /// [`GAP`]-spaced pre ords. Fails if elements are still open.
    pub fn finish(mut self) -> Result<Document> {
        if self.stack.len() != 1 {
            return Err(Error::Builder(format!("{} unclosed element(s)", self.stack.len() - 1)));
        }
        self.records[0].end = self.records.len() as u32 - 1;
        remap_dense_to_ords(&mut self.records);
        let doc = Document { name: self.name, records: self.records };
        debug_assert!(doc.check_invariants().is_ok(), "{:?}", doc.check_invariants());
        Ok(doc)
    }
}

/// Remaps records whose `pre`/`parent`/`end` hold dense arena indexes (the
/// builder's working representation, also persistence format v1) into
/// gap-spaced ord space: `pre = idx * gap`, `end = (end_idx + 1) * gap - 1`.
/// A node's end slack stops just short of the next non-descendant's ord, so
/// interval containment is preserved exactly.
pub(crate) fn remap_dense_to_ords(records: &mut [NodeRecord]) {
    let gap = u64::from(gap_for(records.len()));
    for (idx, rec) in records.iter_mut().enumerate() {
        rec.pre = (idx as u64 * gap) as u32;
        if rec.parent != NO_PARENT {
            rec.parent = (u64::from(rec.parent) * gap) as u32;
        }
        rec.end = ((u64::from(rec.end) + 1) * gap - 1) as u32;
    }
}

/// Borrowed view of a node inside a known document, convenient for callers
/// that hold a [`NodeId`].
#[derive(Clone, Copy)]
pub struct DocNode<'a> {
    /// The owning document.
    pub doc: &'a Document,
    /// The document's id in the database.
    pub doc_id: DocId,
    /// Pre rank within the document.
    pub pre: u32,
}

impl<'a> DocNode<'a> {
    /// The full node id.
    pub fn id(&self) -> NodeId {
        NodeId::new(self.doc_id, self.pre)
    }

    /// The record behind this view.
    pub fn record(&self) -> &'a NodeRecord {
        self.doc.record(self.pre)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build_sample() -> (Document, TagInterner) {
        // <site><person id="p0"><age>25</age><name>Ann</name></person>
        //       <person id="p1"><name>Bo</name></person></site>
        let i = TagInterner::new();
        let (site, person, age, name, at_id) = (
            i.intern("site"),
            i.intern("person"),
            i.intern("age"),
            i.intern("name"),
            i.intern("@id"),
        );
        let mut b = DocumentBuilder::new("sample.xml", &i);
        b.start_element(site);
        b.start_element(person);
        b.attribute(at_id, "p0");
        b.leaf(age, "25", &i);
        b.leaf(name, "Ann", &i);
        b.end_element().unwrap();
        b.start_element(person);
        b.attribute(at_id, "p1");
        b.leaf(name, "Bo", &i);
        b.end_element().unwrap();
        b.end_element().unwrap();
        (b.finish().unwrap(), i)
    }

    #[test]
    fn invariants_hold_for_sample() {
        let (doc, _) = build_sample();
        doc.check_invariants().unwrap();
    }

    fn find_tag(doc: &Document, tag: TagId) -> u32 {
        doc.pres().find(|&p| doc.record(p).tag == tag).unwrap()
    }

    #[test]
    fn leaf_text_is_collapsed_inline() {
        let (doc, i) = build_sample();
        let age = i.lookup("age").unwrap();
        let node = find_tag(&doc, age);
        assert_eq!(doc.record(node).content.as_deref(), Some("25"));
        assert_eq!(doc.subtree_size(node), 1, "collapsed leaf has no descendants");
        assert_eq!(doc.num_value(node), Some(25.0));
    }

    #[test]
    fn pre_ords_are_gap_spaced() {
        let (doc, _) = build_sample();
        let pres: Vec<u32> = doc.pres().collect();
        assert_eq!(pres[0], 0, "root keeps ord 0");
        for (idx, &p) in pres.iter().enumerate() {
            assert_eq!(p, idx as u32 * GAP);
            assert_eq!(doc.idx_of(p), Some(idx));
        }
        assert_eq!(doc.idx_of(1), None, "slack ords resolve to no node");
    }

    #[test]
    fn children_iterates_in_document_order() {
        let (doc, i) = build_sample();
        let person = i.lookup("person").unwrap();
        let site = find_tag(&doc, i.lookup("site").unwrap());
        let site_children: Vec<u32> = doc.children(site).collect();
        assert_eq!(site_children.len(), 2);
        assert!(site_children.iter().all(|&c| doc.record(c).tag == person));
        assert!(site_children[0] < site_children[1]);
    }

    #[test]
    fn attributes_come_before_element_children() {
        let (doc, i) = build_sample();
        let p0 = find_tag(&doc, i.lookup("person").unwrap());
        let kids: Vec<NodeKind> = doc.children(p0).map(|c| doc.record(c).kind).collect();
        assert_eq!(kids[0], NodeKind::Attribute);
        assert!(kids[1..].iter().all(|k| *k == NodeKind::Element));
    }

    #[test]
    fn string_value_concatenates_descendant_text_not_attributes() {
        let (doc, i) = build_sample();
        let p0 = find_tag(&doc, i.lookup("person").unwrap());
        assert_eq!(doc.string_value(p0), "25Ann");
    }

    #[test]
    fn ancestor_test_matches_navigation() {
        let (doc, _) = build_sample();
        for a in doc.pres() {
            for d in doc.pres() {
                let nav = {
                    let mut cur = doc.parent(d);
                    let mut found = false;
                    while let Some(p) = cur {
                        if p == a {
                            found = true;
                            break;
                        }
                        cur = doc.parent(p);
                    }
                    found
                };
                assert_eq!(doc.is_ancestor(a, d), nav, "a={a} d={d}");
            }
        }
    }

    #[test]
    fn collapse_does_not_steal_grandchild_text() {
        // <li><t>head<k>kw</k>tail</t></li> — li has one element child whose
        // last descendant is a text run; collapsing must not move "tail"
        // onto li. (Regression: found by the xmark round-trip test.)
        let i = TagInterner::new();
        let (li, t, k) = (i.intern("li"), i.intern("t"), i.intern("k"));
        let mut b = DocumentBuilder::new("m.xml", &i);
        b.start_element(li);
        b.start_element(t);
        b.text("head", &i);
        b.leaf(k, "kw", &i);
        b.text("tail", &i);
        b.end_element().unwrap();
        b.end_element().unwrap();
        let doc = b.finish().unwrap();
        doc.check_invariants().unwrap();
        let li_pre = find_tag(&doc, li);
        let t_pre = find_tag(&doc, t);
        assert_eq!(doc.record(li_pre).content, None, "li keeps no stolen content");
        assert_eq!(doc.string_value(li_pre), "headkwtail");
        // t has three children: text, k, text.
        assert_eq!(doc.child_count(t_pre), 3);
    }

    #[test]
    fn unbalanced_builder_fails() {
        let i = TagInterner::new();
        let mut b = DocumentBuilder::new("bad.xml", &i);
        b.start_element(i.intern("open"));
        assert!(b.finish().is_err());

        let mut b = DocumentBuilder::new("bad2.xml", &i);
        assert!(b.end_element().is_err());
    }

    #[test]
    fn subtree_covers_interval() {
        let (doc, i) = build_sample();
        let p0 = find_tag(&doc, i.lookup("person").unwrap());
        let sub: Vec<u32> = doc.subtree(p0).collect();
        assert_eq!(sub.first(), Some(&p0));
        assert_eq!(sub.len(), doc.subtree_size(p0));
        // Every subtree ord is inside the interval; the end may carry slack.
        assert!(sub.iter().all(|&p| p <= doc.record(p0).end));
        // Everything outside the arena range is outside the interval.
        for p in doc.pres().filter(|p| !sub.contains(p)) {
            assert!(p < p0 || p > doc.record(p0).end);
        }
    }
}
