//! In-place update engine: node-level mutation over the interval encoding.
//!
//! Three mutations are supported — [`insert_subtree`], [`delete_subtree`]
//! and [`set_text`] — all operating directly on the pre-order arena while
//! keeping the tag and value indexes consistent *incrementally*: a mutation
//! only touches the posting lists of the tags it actually adds, removes, or
//! renumbers, never rebuilding an index wholesale.
//!
//! ## Gap numbering
//!
//! Documents are built with [`crate::document::GAP`]-spaced pre ords, so an
//! insertion can usually label the new nodes by subdividing the ord gap
//! between the insertion point and the parent's interval end:
//!
//! * the insertion point is always *after the last existing child* of the
//!   target parent, so the free ord range is `(last descendant ord,
//!   parent end]` once the slack carried by the nodes on the subtree's
//!   right spine is reclaimed (their `end`s are pulled back to the last
//!   real ord — a pure slack transfer that changes no structural relation);
//! * the `M` new nodes are placed at `lower + (j+1)·step` with
//!   `step = avail / (M+1)`, which nests their intervals strictly inside
//!   the parent's and leaves residual slack for the next insertion.
//!
//! When the gap is exhausted (`avail < M+1`) the engine falls back to
//! **local renumbering**: it walks up from the parent to the nearest
//! ancestor whose ord budget `end - pre` fits its post-insert subtree,
//! redistributes that subtree's ords evenly inside the ancestor's
//! (unchanged) interval, and — only if even the document element is too
//! tight — renumbers the whole document with fresh [`crate::document::GAP`]
//! spacing. Renumbered nodes have their postings moved to the new ords;
//! everything outside the renumbered slice keeps its identifier, which is
//! what makes selective cache invalidation upstream possible.
//!
//! Every mutation returns an [`UpdateSummary`] naming the tags whose
//! posting lists or query-visible content changed (mutated nodes, their
//! ancestors, and any renumbered nodes) — the conservative overlap set the
//! service layer uses to decide which cached plans survive the epoch swap.
//! In debug/test builds each mutation re-verifies the whole store with
//! [`crate::check::check_database`].

use crate::database::Database;
use crate::document::{gap_for, Document, NodeRecord};
use crate::error::{Error, Result};
use crate::node::{DocId, NodeId, NodeKind};
use crate::tag::TagId;

const NO_PARENT: u32 = u32::MAX;
/// Local-space sentinel: "attach to the insertion target".
const LOCAL_TOP: u32 = u32::MAX;

/// What one mutation did — consumed by the service layer to maintain
/// caches and by tests to assert incrementality.
#[derive(Debug, Clone)]
pub struct UpdateSummary {
    /// The mutated document.
    pub doc: DocId,
    /// Nodes added to the arena (fragment nodes plus any text node
    /// materialized from collapsed inline content).
    pub nodes_added: usize,
    /// Nodes removed from the arena.
    pub nodes_removed: usize,
    /// Pre-existing nodes whose pre ord changed (renumbering fallback);
    /// zero when the gap absorbed the mutation.
    pub renumbered: usize,
    /// Tags whose posting lists or query-visible content changed: tags of
    /// mutated nodes, of their ancestors, and of renumbered nodes. Sorted
    /// and deduplicated. A cached result whose tag footprint is disjoint
    /// from this set is provably unaffected by the mutation.
    pub affected_tags: Vec<TagId>,
}

/// Inserts a parsed XML fragment as the **last child** of `parent`.
///
/// The fragment must be a single well-formed element. If the parent is a
/// collapsed leaf (inline content, no child nodes) its content is first
/// materialized as an explicit text child, so the stored tree stays
/// structurally identical to what re-parsing its serialization yields.
pub fn insert_subtree(
    db: &mut Database,
    doc: DocId,
    parent: u32,
    xml: &str,
) -> Result<UpdateSummary> {
    let frag = crate::parse::parse_document("#fragment", xml, db.interner())?;
    let text_tag = db.interner().text_tag();
    let d = db.try_document(doc)?;
    let pidx = d.idx_of(parent).ok_or(Error::NoSuchNode { doc: doc.0, pre: parent })?;
    let prec = &d.records()[pidx];
    if !matches!(prec.kind, NodeKind::DocRoot | NodeKind::Element) {
        return Err(Error::Update(format!(
            "insert target {parent} is {:?}; only elements (or the document root) take children",
            prec.kind
        )));
    }
    let plevel = prec.level;
    let pend = prec.end;
    let uncollapse = prec.kind == NodeKind::Element && prec.content.is_some();

    // Build the new records in *local dense space*: `pre`/`parent`/`end`
    // hold 0-based positions among the inserted nodes (LOCAL_TOP parent =
    // the insertion target); the chosen numbering strategy maps them to
    // ord space below.
    let mut new_recs: Vec<NodeRecord> = Vec::new();
    if uncollapse {
        // Empty inline content (a prior `set_text` with "") carries no
        // bytes; materializing it would create an empty text node that a
        // serialize/reparse round trip cannot represent. Clear it instead.
        if let Some(content) = prec.content.clone().filter(|c| !c.is_empty()) {
            new_recs.push(NodeRecord {
                tag: text_tag,
                kind: NodeKind::Text,
                content: Some(content),
                pre: 0,
                parent: LOCAL_TOP,
                end: 0,
                level: plevel + 1,
            });
        }
    }
    let off = new_recs.len() as u32;
    for (j, rec) in frag.records().iter().enumerate().skip(1) {
        let (_, e) = frag.subtree_idx_range(rec.pre);
        let fp_idx = frag.idx_of(rec.parent).expect("fragment parent exists");
        new_recs.push(NodeRecord {
            tag: rec.tag,
            kind: rec.kind,
            content: rec.content.clone(),
            pre: (j as u32 - 1) + off,
            parent: if fp_idx == 0 { LOCAL_TOP } else { (fp_idx as u32 - 1) + off },
            end: (e as u32 - 2) + off,
            level: rec.level + plevel,
        });
    }
    let m = new_recs.len();

    // Insertion point: directly after the parent's last descendant.
    let (_, ins) = d.subtree_idx_range(parent);
    let lower = d.records()[ins - 1].pre;
    // Right spine of the parent's subtree: the nodes whose slack-bearing
    // `end`s cover `(lower, pend]` and must be reclaimed before new ords
    // can land there.
    let mut spine: Vec<usize> = Vec::new();
    let mut cur = ins - 1;
    while cur != pidx {
        spine.push(cur);
        let par = d.records()[cur].parent;
        cur = d.idx_of(par).expect("parent ord resolves");
    }
    let avail = pend - lower;

    let mut affected = Vec::new();
    ancestor_tags(d, parent, &mut affected);
    for r in &new_recs {
        affected.push(r.tag);
    }

    let renumbered;
    if u64::from(avail) > m as u64 {
        // Gap path: subdivide (lower, pend] among the M new nodes.
        let step = avail / (m as u32 + 1);
        for r in &mut new_recs {
            let local = r.pre;
            r.pre = lower + (local + 1) * step;
            r.parent = if r.parent == LOCAL_TOP { parent } else { lower + (r.parent + 1) * step };
            r.end = lower + (r.end + 2) * step - 1;
        }
        let (dm, ti, vi) = db.update_parts(doc);
        let recs = dm.records_mut();
        if uncollapse {
            let old = recs[pidx].content.take().expect("uncollapse implies content");
            vi.remove(recs[pidx].tag, NodeId::new(doc, parent), &old);
        }
        for &i in &spine {
            recs[i].end = lower;
        }
        recs.splice(ins..ins, new_recs);
        for r in &recs[ins..ins + m] {
            let id = NodeId::new(doc, r.pre);
            ti.insert_sorted(r.tag, id);
            if let Some(c) = &r.content {
                vi.insert_sorted(r.tag, id, c);
            }
        }
        renumbered = 0;
    } else {
        // Renumbering fallback: find the nearest ancestor whose ord budget
        // fits its post-insert subtree, then redistribute evenly.
        let mut anc_idx = pidx;
        let (slice_start, old_slice_end, base, g, root_end) = loop {
            let arec = &d.records()[anc_idx];
            let (s, e) = d.subtree_idx_range(arec.pre);
            let k = (e - s - 1 + m) as u64;
            let b = u64::from(arec.end - arec.pre);
            if anc_idx == 0 {
                // Whole document: fresh build-time spacing (root end grows
                // as needed — nothing constrains it from above).
                break (0, d.len(), 0u32, gap_for(d.len() + m), None);
            }
            if b > k {
                break (s, e, arec.pre, (b / (k + 1)) as u32, Some(arec.end));
            }
            anc_idx = d.idx_of(arec.parent).expect("ancestor ord resolves");
        };
        for r in &d.records()[slice_start..old_slice_end] {
            affected.push(r.tag);
        }
        renumbered = old_slice_end - slice_start - 1;

        let (dm, ti, vi) = db.update_parts(doc);
        let recs = dm.records_mut();
        // Drop the old postings of every node about to be renumbered.
        let old: Vec<(TagId, NodeId, Option<Box<str>>)> = recs[slice_start..old_slice_end]
            .iter()
            .filter(|r| r.kind != NodeKind::DocRoot)
            .map(|r| (r.tag, NodeId::new(doc, r.pre), r.content.clone()))
            .collect();
        for (t, id, c) in &old {
            ti.remove(*t, *id);
            if let Some(c) = c {
                vi.remove(*t, *id, c);
            }
        }
        if uncollapse {
            recs[pidx].content = None;
        }
        recs.splice(ins..ins, new_recs);
        renumber_slice(&mut recs[slice_start..old_slice_end + m], base, g, root_end);
        for r in &recs[slice_start..old_slice_end + m] {
            if r.kind == NodeKind::DocRoot {
                continue;
            }
            let id = NodeId::new(doc, r.pre);
            ti.insert_sorted(r.tag, id);
            if let Some(c) = &r.content {
                vi.insert_sorted(r.tag, id, c);
            }
        }
    }

    verify(db);
    affected.sort_unstable();
    affected.dedup();
    Ok(UpdateSummary { doc, nodes_added: m, nodes_removed: 0, renumbered, affected_tags: affected })
}

/// Deletes the subtree rooted at `pre` (the node itself and every
/// descendant). The document root cannot be deleted.
pub fn delete_subtree(db: &mut Database, doc: DocId, pre: u32) -> Result<UpdateSummary> {
    let d = db.try_document(doc)?;
    let idx = d.idx_of(pre).ok_or(Error::NoSuchNode { doc: doc.0, pre })?;
    if idx == 0 {
        return Err(Error::Update("cannot delete the document root".into()));
    }
    let (s, e) = d.subtree_idx_range(pre);
    let mut affected = Vec::new();
    ancestor_tags(d, d.records()[idx].parent, &mut affected);

    let (dm, ti, vi) = db.update_parts(doc);
    let removed: Vec<NodeRecord> = dm.records_mut().drain(s..e).collect();
    for r in &removed {
        let id = NodeId::new(doc, r.pre);
        ti.remove(r.tag, id);
        if let Some(c) = &r.content {
            vi.remove(r.tag, id, c);
        }
        affected.push(r.tag);
    }
    // Ancestors' intervals keep their (now partly slack) ends: every
    // remaining ord they covered is still covered, so no structural
    // relation among survivors changes.

    verify(db);
    affected.sort_unstable();
    affected.dedup();
    Ok(UpdateSummary {
        doc,
        nodes_added: 0,
        nodes_removed: removed.len(),
        renumbered: 0,
        affected_tags: affected,
    })
}

/// Replaces the inline content of a text node, attribute, or leaf element.
///
/// Elements that have non-attribute children are rejected — their text
/// lives in explicit text-node children, which are addressed directly.
pub fn set_text(db: &mut Database, doc: DocId, pre: u32, text: &str) -> Result<UpdateSummary> {
    let d = db.try_document(doc)?;
    let idx = d.idx_of(pre).ok_or(Error::NoSuchNode { doc: doc.0, pre })?;
    let rec = &d.records()[idx];
    match rec.kind {
        NodeKind::DocRoot => {
            return Err(Error::Update("cannot set text on the document root".into()))
        }
        NodeKind::Element => {
            let has_child = d.children(pre).any(|c| d.record(c).kind != NodeKind::Attribute);
            if has_child {
                return Err(Error::Update(format!(
                    "element {pre} has child nodes; set text on its text child instead"
                )));
            }
        }
        NodeKind::Attribute | NodeKind::Text => {}
    }
    let mut affected = Vec::new();
    ancestor_tags(d, pre, &mut affected);

    let (dm, _, vi) = db.update_parts(doc);
    let id = NodeId::new(doc, pre);
    let r = &mut dm.records_mut()[idx];
    if let Some(old) = r.content.take() {
        vi.remove(r.tag, id, &old);
    }
    r.content = Some(text.into());
    vi.insert_sorted(r.tag, id, text);

    verify(db);
    affected.sort_unstable();
    affected.dedup();
    Ok(UpdateSummary {
        doc,
        nodes_added: 0,
        nodes_removed: 0,
        renumbered: 0,
        affected_tags: affected,
    })
}

/// Pushes the tags of `pre` and all its ancestors (document root included)
/// onto `out`.
fn ancestor_tags(d: &Document, pre: u32, out: &mut Vec<TagId>) {
    let mut cur = pre;
    loop {
        let rec = d.record(cur);
        out.push(rec.tag);
        if rec.parent == NO_PARENT {
            break;
        }
        cur = rec.parent;
    }
}

/// Renumbers a contiguous pre-order subtree slice: `slice[0]` keeps ord
/// `base`; member `i` gets `base + i·g`. Parent and end links are
/// recomputed from the (always-correct) levels, so the slice's incoming
/// `pre`/`parent`/`end` values may be arbitrary. `root_end`, when given,
/// restores the slice root's original interval end (local renumbering keeps
/// the ancestor's interval fixed so nothing outside the slice moves).
fn renumber_slice(slice: &mut [NodeRecord], base: u32, g: u32, root_end: Option<u32>) {
    let n = slice.len();
    let mut parent_local: Vec<u32> = vec![LOCAL_TOP; n];
    let mut end_local: Vec<usize> = (0..n).collect();
    let mut stack: Vec<usize> = Vec::new();
    for i in 0..n {
        while let Some(&top) = stack.last() {
            if slice[top].level >= slice[i].level {
                end_local[top] = i - 1;
                stack.pop();
            } else {
                break;
            }
        }
        if let Some(&top) = stack.last() {
            parent_local[i] = top as u32;
        }
        stack.push(i);
    }
    while let Some(top) = stack.pop() {
        end_local[top] = n - 1;
    }
    let (base, g) = (u64::from(base), u64::from(g));
    for i in 0..n {
        let r = &mut slice[i];
        r.pre = (base + i as u64 * g) as u32;
        if parent_local[i] != LOCAL_TOP {
            r.parent = (base + u64::from(parent_local[i]) * g) as u32;
        }
        r.end = (base + (end_local[i] as u64 + 1) * g - 1) as u32;
    }
    if let Some(e) = root_end {
        slice[0].end = e;
    }
}

/// Debug/test-build verification: every mutation leaves a checkable store.
fn verify(db: &Database) {
    #[cfg(debug_assertions)]
    if let Err(e) = crate::check::check_database(db) {
        panic!("update left the store corrupt: {e}");
    }
    #[cfg(not(debug_assertions))]
    let _ = db;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serialize::serialize_subtree;

    fn sample() -> Database {
        let mut db = Database::new();
        db.load_xml(
            "auction.xml",
            r#"<site><person id="p0"><age>25</age><name>Ann</name></person><person id="p1"><name>Bo</name></person></site>"#,
        )
        .unwrap();
        db
    }

    fn root_xml(db: &Database) -> String {
        serialize_subtree(db, db.root(DocId(0)))
    }

    fn reparse_matches(db: &Database) {
        let xml = root_xml(db);
        let mut fresh = Database::new();
        fresh.load_xml("ref.xml", &xml).unwrap();
        assert_eq!(xml, serialize_subtree(&fresh, fresh.root(DocId(0))));
    }

    #[test]
    fn insert_appends_last_child_and_indexes_it() {
        let mut db = sample();
        let site = db.nodes_with_tag("site")[0];
        let s = insert_subtree(
            &mut db,
            DocId(0),
            site.pre,
            r#"<person id="p2"><name>Cy</name></person>"#,
        )
        .unwrap();
        assert_eq!(s.nodes_added, 3);
        assert_eq!(s.renumbered, 0, "first insert fits the build-time gap");
        assert_eq!(db.nodes_with_tag("person").len(), 3);
        assert_eq!(db.nodes_with_tag("name").len(), 3);
        let name_tag = db.interner().lookup("name").unwrap();
        assert_eq!(db.value_index().lookup_exact(name_tag, "Cy").len(), 1);
        let persons = db.nodes_with_tag("person");
        assert!(persons.windows(2).all(|w| w[0] < w[1]), "postings stay ordered");
        assert!(root_xml(&db).ends_with(r#"<person id="p2"><name>Cy</name></person></site>"#));
        reparse_matches(&db);
    }

    #[test]
    fn insert_into_collapsed_leaf_materializes_text() {
        let mut db = sample();
        let age = db.nodes_with_tag("age")[0];
        insert_subtree(&mut db, DocId(0), age.pre, "<note>verified</note>").unwrap();
        let age = db.nodes_with_tag("age")[0];
        assert_eq!(db.node(age).content(), None, "inline content moved to a text child");
        assert_eq!(db.node(age).string_value(), "25verified");
        assert!(root_xml(&db).contains("<age>25<note>verified</note></age>"));
        reparse_matches(&db);
    }

    #[test]
    fn gap_exhaustion_falls_back_to_renumbering() {
        let mut db = sample();
        let mut renumbered_total = 0usize;
        for i in 0..40 {
            let p1 = *db.nodes_with_tag("person").last().unwrap();
            let s =
                insert_subtree(&mut db, DocId(0), p1.pre, &format!("<watch>w{i}</watch>")).unwrap();
            renumbered_total += s.renumbered;
        }
        assert!(renumbered_total > 0, "40 inserts into one gap must renumber at least once");
        assert_eq!(db.nodes_with_tag("watch").len(), 40);
        let watches = db.nodes_with_tag("watch");
        assert!(watches.windows(2).all(|w| w[0] < w[1]));
        let watch_tag = db.interner().lookup("watch").unwrap();
        for i in 0..40 {
            assert_eq!(
                db.value_index().lookup_exact(watch_tag, &format!("w{i}")).len(),
                1,
                "value posting for w{i} survives renumbering"
            );
        }
        reparse_matches(&db);
    }

    #[test]
    fn delete_removes_subtree_and_postings() {
        let mut db = sample();
        let p0 = db.nodes_with_tag("person")[0];
        let s = delete_subtree(&mut db, DocId(0), p0.pre).unwrap();
        assert_eq!(s.nodes_removed, 4, "person, @id, age, name and nothing else");
        assert_eq!(db.nodes_with_tag("person").len(), 1);
        assert_eq!(db.nodes_with_tag("age").len(), 0);
        let name_tag = db.interner().lookup("name").unwrap();
        assert!(db.value_index().lookup_exact(name_tag, "Ann").is_empty());
        assert_eq!(db.value_index().lookup_exact(name_tag, "Bo").len(), 1);
        reparse_matches(&db);
    }

    #[test]
    fn set_text_moves_value_postings() {
        let mut db = sample();
        let age = db.nodes_with_tag("age")[0];
        set_text(&mut db, DocId(0), age.pre, "30").unwrap();
        assert_eq!(db.node(age).num_value(), Some(30.0));
        let age_tag = db.interner().lookup("age").unwrap();
        assert!(db.value_index().lookup_exact(age_tag, "25").is_empty());
        assert_eq!(db.value_index().lookup_exact(age_tag, "30").len(), 1);
        assert_eq!(
            db.value_index().lookup_cmp(age_tag, std::cmp::Ordering::Greater, 28.0).len(),
            1
        );
        reparse_matches(&db);
    }

    #[test]
    fn affected_tags_cover_mutation_and_ancestors() {
        let mut db = sample();
        let age = db.nodes_with_tag("age")[0];
        let s = set_text(&mut db, DocId(0), age.pre, "26").unwrap();
        let names: Vec<Box<str>> = s.affected_tags.iter().map(|t| db.interner().name(*t)).collect();
        for expect in ["age", "person", "site"] {
            assert!(names.iter().any(|n| &**n == expect), "{expect} missing from {names:?}");
        }
        assert!(!names.iter().any(|n| &**n == "name"), "untouched sibling tag not affected");
    }

    #[test]
    fn invalid_targets_are_rejected() {
        let mut db = sample();
        let age = db.nodes_with_tag("age")[0];
        let attr = db.nodes_with_tag("@id")[0];
        let site = db.nodes_with_tag("site")[0];
        assert!(insert_subtree(&mut db, DocId(0), attr.pre, "<x/>").is_err());
        assert!(insert_subtree(&mut db, DocId(0), 999_999, "<x/>").is_err());
        assert!(delete_subtree(&mut db, DocId(0), 0).is_err());
        assert!(set_text(&mut db, DocId(0), site.pre, "t").is_err());
        assert!(set_text(&mut db, DocId(0), 0, "t").is_err());
        let _ = age;
    }

    #[test]
    fn mixed_mutation_stream_round_trips() {
        let mut db = sample();
        let site = db.nodes_with_tag("site")[0];
        insert_subtree(&mut db, DocId(0), site.pre, "<open_auctions/>").unwrap();
        let oa = db.nodes_with_tag("open_auctions")[0];
        for i in 0..10 {
            let oa = db.nodes_with_tag("open_auctions")[0];
            insert_subtree(
                &mut db,
                DocId(0),
                oa.pre,
                &format!(r#"<open_auction id="a{i}"><initial>{i}.50</initial></open_auction>"#),
            )
            .unwrap();
        }
        let p0 = db.nodes_with_tag("person")[0];
        delete_subtree(&mut db, DocId(0), p0.pre).unwrap();
        let initial = db.nodes_with_tag("initial")[4];
        set_text(&mut db, DocId(0), initial.pre, "99.99").unwrap();
        assert_eq!(db.nodes_with_tag("open_auction").len(), 10);
        let init_tag = db.interner().lookup("initial").unwrap();
        assert_eq!(
            db.value_index().lookup_cmp(init_tag, std::cmp::Ordering::Greater, 50.0).len(),
            1
        );
        reparse_matches(&db);
        let _ = oa;
    }

    #[test]
    fn uncollapse_of_empty_inline_content_materializes_nothing() {
        let mut db = Database::new();
        let d = db.load_xml("t.xml", "<a><c>x</c></a>").unwrap();
        let c = db.nodes_with_tag("c")[0];
        set_text(&mut db, d, c.pre, "").unwrap();
        // Inserting under an element whose inline content is "" must not
        // create an empty text node — a reparse could never rebuild one.
        let s = insert_subtree(&mut db, d, c.pre, "<e/>").unwrap();
        assert_eq!(s.nodes_added, 1);
        let out = crate::serialize::serialize_subtree(&db, db.root(d));
        assert_eq!(out, "<a><c><e/></c></a>");
        reparse_matches(&db);
    }
}
