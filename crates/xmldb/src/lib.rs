#![warn(missing_docs)]

//! # xmldb — a TIMBER-like native XML store
//!
//! This crate is the storage substrate for the TLC reproduction. It mirrors
//! the architecture sketched in §5 of *"Tree Logical Classes for Efficient
//! Evaluation of XQuery"* (SIGMOD 2004):
//!
//! * **Interval-encoded node identifiers** satisfying the four properties of
//!   the paper's Figure 13: uniqueness, structural-relationship testing (for
//!   structural joins), absolute document order, and order-within-class for
//!   temporary nodes (see [`node::NodeId`] and [`node::TempId`]).
//! * **Pre-order arena documents** ([`document::Document`]): the vector index
//!   of a node *is* its pre-order rank, so document order is free and
//!   ancestor/descendant testing is two integer comparisons.
//! * **Tag-name and content-value indexes** ([`index`]): the paper's
//!   experiments "used an index on element tag name for all the queries" and
//!   "a value index on all queries that had a condition on content". There is
//!   deliberately no index on join values, matching the paper's setup.
//! * A small hand-written **XML parser and serializer** ([`parse`],
//!   [`serialize`]) since the reproduction builds everything from scratch.
//! * A **store invariant checker** ([`check`]): an O(n) verifier for the
//!   interval encoding, arena layout, and index completeness, run against
//!   generated and reloaded databases.
//!
//! Everything in the query engines (the TLC algebra as well as the TAX, GTP
//! and navigational baselines) sits on top of this one store, so measured
//! performance differences reflect algorithmic structure rather than storage
//! maturity.

pub mod check;
pub mod database;
pub mod document;
pub mod error;
pub mod index;
pub mod node;
pub mod parse;
pub mod partition;
pub mod persist;
pub mod serialize;
pub mod tag;
pub mod update;

pub use check::{check_database, check_document, CheckReport};
pub use database::{Database, NodeRef};
pub use document::{Document, DocumentBuilder};
pub use error::{Error, Result};
pub use index::{TagIndex, ValueIndex};
pub use node::{AxisRel, DocId, NodeId, NodeKind, TempId};
pub use partition::{OrdRange, RangePartition};
pub use persist::{load_file, load_path, save_file};
pub use tag::{TagId, TagInterner};
pub use update::{delete_subtree, insert_subtree, set_text, UpdateSummary};
