//! `tlc-shell` — an interactive console for the TLC reproduction.
//!
//! ```text
//! tlc-shell [--factor F | --load FILE.xml | --db FILE.tlcx]
//!           [--engine tlc|opt|gtp|tax|nav]
//! tlc-shell --connect HOST:PORT        # client for a running tlc-serve
//! ```
//!
//! Type a query (multi-line; finish with an empty line or `;`), or one of
//! the commands:
//!
//! ```text
//! .engine tlc|opt|costed|gtp|tax|nav  switch evaluator
//! .explain [<query>]            toggle plan display, or print the static
//!                               analysis report (type, footprint, liveness,
//!                               lints) for one query without running it
//! .stats                        toggle execution counters
//! .analyze                      toggle per-operator timings
//! .bench <name>                 run a Figure 15 workload query by name
//! .queries                      list the workload queries
//! .open <name> <file>           load a snapshot/XML as catalog database <name>
//! .use <name>                   switch the shell to a catalog database
//! .reload [<name>]              re-read a database's file and hot-swap it
//! .drop <name>                  unregister a catalog database
//! .catalog                      list the registered databases
//! .check                        verify store invariants and indexes
//! .insert <doc> <parent-ord> <xml>  append a parsed fragment under a node
//! .delete <doc> <ord>           delete a subtree
//! .settext <doc> <ord> [<text>] replace an element's text content
//! .save <file.tlcx>             snapshot the current database to disk
//! .serve <addr>                 share this database over TCP (tlc-serve protocol)
//! .help  .quit
//! ```
//!
//! The startup database (generated, `--load`ed, or `--db` snapshot) is
//! catalog entry `main`; queries and `.check`/`.save`/`.serve` act on
//! whichever database the shell is currently `.use`-ing.
//!
//! With `--connect` the shell sends each query line to a `tlc-serve`
//! process instead of evaluating locally; `.metrics` fetches the server's
//! metrics report and the catalog commands drive the server's catalog.

use baselines::Engine;
use service::catalog::{self, Catalog, DEFAULT_DB};
use std::io::{BufRead, Write};
use std::sync::Arc;

struct Shell {
    catalog: Catalog,
    current: String,
    engine: Engine,
    explain: bool,
    stats: bool,
    analyze: bool,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(addr) = flag(&args, "--connect") {
        std::process::exit(client(addr));
    }
    let engine = flag(&args, "--engine").map(parse_engine).unwrap_or(Engine::Tlc);
    let db = if let Some(file) = flag(&args, "--db") {
        match xmldb::load_file(std::path::Path::new(file)) {
            Ok(db) => {
                eprintln!("loaded snapshot {file}: {} nodes", db.node_count());
                db
            }
            Err(e) => {
                eprintln!("cannot load snapshot {file}: {e}");
                std::process::exit(1);
            }
        }
    } else if let Some(file) = flag(&args, "--load") {
        let text = std::fs::read_to_string(file).unwrap_or_else(|e| {
            eprintln!("cannot read {file}: {e}");
            std::process::exit(1);
        });
        let mut db = xmldb::Database::new();
        if let Err(e) = db.load_xml("auction.xml", &text) {
            eprintln!("cannot parse {file}: {e}");
            std::process::exit(1);
        }
        eprintln!("loaded {file} as document(\"auction.xml\"): {} nodes", db.node_count());
        db
    } else {
        let factor: f64 = flag(&args, "--factor").and_then(|f| f.parse().ok()).unwrap_or(0.01);
        eprintln!("generating XMark data at factor {factor} ...");
        let db = xmark::auction_database(factor);
        eprintln!("document(\"auction.xml\"): {} nodes", db.node_count());
        db
    };

    let shell_catalog = Catalog::new();
    shell_catalog.register(DEFAULT_DB, Arc::new(db)).expect("default name is valid");
    let mut shell = Shell {
        catalog: shell_catalog,
        current: DEFAULT_DB.to_string(),
        engine,
        explain: false,
        stats: false,
        analyze: false,
    };
    eprintln!("engine: {} — type .help for commands", shell.engine.name());

    let stdin = std::io::stdin();
    let mut buffer = String::new();
    loop {
        if buffer.is_empty() {
            if shell.current == DEFAULT_DB {
                eprint!("tlc> ");
            } else {
                eprint!("tlc:{}> ", shell.current);
            }
        } else {
            eprint!("...> ");
        }
        std::io::stderr().flush().ok();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {}
            Err(_) => break,
        }
        let trimmed = line.trim();
        if buffer.is_empty() && trimmed.starts_with('.') {
            if !shell.command(trimmed) {
                break;
            }
            continue;
        }
        if trimmed.is_empty() || trimmed.ends_with(';') {
            buffer.push_str(trimmed.trim_end_matches(';'));
            let query = buffer.trim().to_string();
            buffer.clear();
            if !query.is_empty() {
                shell.run(&query);
            }
            continue;
        }
        buffer.push_str(&line);
    }
}

fn flag<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).map(String::as_str)
}

/// Client mode: forward query lines to a running `tlc-serve` and print the
/// framed responses. Returns the process exit code.
fn client(addr: &str) -> i32 {
    use service::protocol::{read_response, Frame};
    let stream = match std::net::TcpStream::connect(addr) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot connect to {addr}: {e}");
            return 1;
        }
    };
    let mut reader = std::io::BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot clone connection: {e}");
            return 1;
        }
    });
    let mut writer = stream;
    eprintln!("connected to {addr}; one query per line, .metrics for the report, .quit to leave");
    let stdin = std::io::stdin();
    loop {
        eprint!("tlc@{addr}> ");
        std::io::stderr().flush().ok();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) | Err(_) => {
                let _ = writer.write_all(b".quit\n");
                return 0;
            }
            Ok(_) => {}
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        if writer
            .write_all(format!("{trimmed}\n").as_bytes())
            .and_then(|()| writer.flush())
            .is_err()
        {
            eprintln!("connection lost");
            return 1;
        }
        if trimmed == ".quit" {
            return 0;
        }
        match read_response(&mut reader) {
            Ok(Frame::Ok(payload)) => println!("{payload}"),
            Ok(Frame::Err(message)) => println!("error: {message}"),
            Err(e) => {
                eprintln!("connection lost: {e}");
                return 1;
            }
        }
    }
}

/// Splits up to `n` whitespace-separated words off `s`, returning them and
/// the raw (trimmed) remainder — `.insert` fragments and `.settext`
/// payloads may themselves contain spaces, so they must not be word-split.
fn split_words(s: &str, n: usize) -> (Vec<&str>, &str) {
    let mut words = Vec::new();
    let mut rest = s.trim_start();
    while words.len() < n {
        let Some(end) = rest.find(char::is_whitespace) else {
            if !rest.is_empty() {
                words.push(rest);
            }
            return (words, "");
        };
        words.push(&rest[..end]);
        rest = rest[end..].trim_start();
    }
    (words, rest.trim_end())
}

/// Comma-joins `items`, or renders `(none)` for an empty sequence —
/// keeps the `.explain` report's footprint lines readable.
fn join_or_none(items: impl Iterator<Item = String>) -> String {
    let joined: Vec<String> = items.collect();
    if joined.is_empty() {
        "(none)".to_string()
    } else {
        joined.join(", ")
    }
}

fn parse_engine(s: &str) -> Engine {
    match s.to_ascii_lowercase().as_str() {
        "opt" => Engine::TlcOpt,
        "costed" => Engine::TlcCosted,
        "gtp" => Engine::Gtp,
        "tax" => Engine::Tax,
        "nav" => Engine::Nav,
        _ => Engine::Tlc,
    }
}

impl Shell {
    /// The current database's published snapshot. The shell resolves per
    /// command/query, so a `.reload` is visible immediately.
    fn db(&self) -> Arc<xmldb::Database> {
        let entry = self.catalog.resolve(&self.current).expect("current db is registered");
        Arc::clone(entry.database())
    }

    /// Handles a dot-command; returns false to quit.
    fn command(&mut self, cmd: &str) -> bool {
        let mut parts = cmd.split_whitespace();
        match parts.next().unwrap_or("") {
            ".quit" | ".exit" => return false,
            ".open" => match (parts.next(), parts.next()) {
                (Some(name), Some(file)) => {
                    match self.catalog.open(name, std::path::Path::new(file)) {
                        Ok(entry) => {
                            self.current = name.to_string();
                            println!(
                                "opened {name}: epoch {}, {} document(s), {} nodes",
                                entry.epoch(),
                                entry.database().document_count(),
                                entry.database().node_count()
                            );
                        }
                        Err(e) => println!("error: {e}"),
                    }
                }
                _ => println!("usage: .open <name> <file>"),
            },
            ".use" => match parts.next() {
                Some(name) if self.catalog.contains(name) => {
                    self.current = name.to_string();
                    println!("using {name}");
                }
                Some(name) => println!("error: unknown database {name}"),
                None => println!("usage: .use <name>"),
            },
            ".reload" => {
                let name = parts.next().unwrap_or(&self.current).to_string();
                match self.catalog.reload(&name) {
                    Ok(entry) => println!("reloaded {name}: epoch {}", entry.epoch()),
                    Err(e) => println!("error: {e}"),
                }
            }
            ".drop" => match parts.next() {
                Some(name) if name == self.current => {
                    println!(
                        "error: cannot drop the shell's current database {name:?}; .use another first"
                    );
                }
                Some(name) => match self.catalog.remove(name) {
                    Ok(()) => println!("dropped {name}"),
                    Err(e) => println!("error: {e}"),
                },
                None => println!("usage: .drop <name>"),
            },
            ".catalog" => print!("{}", catalog::render(&self.catalog.list())),
            ".engine" => {
                if let Some(e) = parts.next() {
                    self.engine = parse_engine(e);
                }
                println!("engine: {}", self.engine.name());
            }
            ".explain" => {
                let tail = cmd.strip_prefix(".explain").unwrap_or_default().trim();
                if tail.is_empty() {
                    self.explain = !self.explain;
                    println!("explain: {}", self.explain);
                } else {
                    self.explain_query(tail);
                }
            }
            ".stats" => {
                self.stats = !self.stats;
                println!("stats: {}", self.stats);
            }
            ".analyze" => {
                self.analyze = !self.analyze;
                println!("analyze: {}", self.analyze);
            }
            ".save" => match parts.next() {
                Some(path) => match xmldb::save_file(&self.db(), std::path::Path::new(path)) {
                    Ok(()) => println!("snapshot written to {path}"),
                    Err(e) => println!("error: {e}"),
                },
                None => println!("usage: .save <file.tlcx>"),
            },
            ".check" => match xmldb::check_database(&self.db()) {
                Ok(report) => println!("{report}"),
                Err(e) => println!("error: {e}"),
            },
            ".insert" => {
                let tail = cmd.strip_prefix(".insert").unwrap_or_default();
                let (head, xml) = split_words(tail, 2);
                match (head.as_slice(), xml) {
                    ([doc, parent], xml) if !xml.is_empty() => match parent.parse::<u32>() {
                        Ok(parent) => {
                            self.mutate(doc, |db, d| xmldb::insert_subtree(db, d, parent, xml))
                        }
                        Err(_) => println!("error: parent must be a pre ordinal (u32)"),
                    },
                    _ => println!("usage: .insert <doc> <parent-ord> <xml-fragment>"),
                }
            }
            ".delete" => match (parts.next(), parts.next()) {
                (Some(doc), Some(ord)) => match ord.parse::<u32>() {
                    Ok(pre) => self.mutate(doc, |db, d| xmldb::delete_subtree(db, d, pre)),
                    Err(_) => println!("error: ord must be a pre ordinal (u32)"),
                },
                _ => println!("usage: .delete <doc> <ord>"),
            },
            ".settext" => {
                let tail = cmd.strip_prefix(".settext").unwrap_or_default();
                let (head, text) = split_words(tail, 2);
                match head.as_slice() {
                    [doc, ord] => match ord.parse::<u32>() {
                        Ok(pre) => self.mutate(doc, |db, d| xmldb::set_text(db, d, pre, text)),
                        Err(_) => println!("error: ord must be a pre ordinal (u32)"),
                    },
                    _ => println!("usage: .settext <doc> <ord> [<text>]"),
                }
            }
            ".queries" => {
                for q in queries::all_queries() {
                    println!("{:<6} {}", q.name, q.comment);
                }
            }
            ".bench" => match parts.next().and_then(queries::query) {
                Some(q) => self.run(q.text),
                None => println!("usage: .bench <x1..x20|Q1|Q2|x10a>"),
            },
            ".serve" => match parts.next() {
                Some(addr) => self.serve(addr),
                None => println!("usage: .serve <host:port>"),
            },
            ".help" => {
                println!(
                    ".engine tlc|opt|costed|gtp|tax|nav  switch evaluator\n\
                     .explain [<query>]            toggle plan display, or analyze a query\n\
                     .stats                        toggle execution counters\n\
                     .analyze                      toggle per-operator timings\n\
                     .bench <name>                 run a workload query\n\
                     .queries                      list workload queries\n\
                     .open <name> <file>           load snapshot/XML as database <name>\n\
                     .use <name>                   switch to a catalog database\n\
                     .reload [<name>]              re-read a database's file, hot-swap\n\
                     .drop <name>                  unregister a catalog database\n\
                     .catalog                      list registered databases\n\
                     .check                        verify store invariants and indexes\n\
                     .insert <doc> <parent-ord> <xml>  append a fragment under a node\n\
                     .delete <doc> <ord>           delete a subtree\n\
                     .settext <doc> <ord> [<text>] replace an element's text\n\
                     .save <file.tlcx>             snapshot the current database\n\
                     .serve <host:port>            share this database over TCP\n\
                     .quit                         leave"
                );
            }
            other => println!("unknown command {other}; try .help"),
        }
        true
    }

    /// Copy-on-write mutation of the current database: clone the published
    /// snapshot, apply `op` to document `doc` in the clone, publish it as
    /// the next epoch. A concurrent `.serve` reader mid-query keeps the
    /// snapshot it pinned; the next resolve sees the new one.
    fn mutate(
        &self,
        doc: &str,
        op: impl FnOnce(&mut xmldb::Database, xmldb::DocId) -> xmldb::Result<xmldb::UpdateSummary>,
    ) {
        let mut next: xmldb::Database = (*self.db()).clone();
        let result = next.document_by_name(doc).and_then(|d| op(&mut next, d));
        match result {
            Ok(summary) => match self.catalog.register(&self.current, Arc::new(next)) {
                Ok(entry) => {
                    let renumbered = if summary.renumbered > 0 {
                        format!(", {} node(s) renumbered", summary.renumbered)
                    } else {
                        String::new()
                    };
                    println!(
                        "updated {}: epoch {}, +{}/-{} node(s){renumbered}",
                        self.current,
                        entry.epoch(),
                        summary.nodes_added,
                        summary.nodes_removed
                    );
                }
                Err(e) => println!("error: {e}"),
            },
            Err(e) => println!("error: {e}"),
        }
    }

    /// Shares this shell's database over TCP in the background; the local
    /// prompt stays usable (both sides read the same immutable store).
    fn serve(&self, addr: &str) {
        let listener = match std::net::TcpListener::bind(addr) {
            Ok(l) => l,
            Err(e) => {
                println!("error: cannot bind {addr}: {e}");
                return;
            }
        };
        let config = service::ServiceConfig { engine: self.engine, ..Default::default() };
        let svc = Arc::new(service::Service::new(self.db(), config));
        println!(
            "serving on {addr} (engine {}, {} workers) — connect with: tlc-shell --connect {addr}",
            self.engine.name(),
            svc.workers()
        );
        std::thread::spawn(move || {
            for stream in listener.incoming().flatten() {
                let svc = Arc::clone(&svc);
                std::thread::spawn(move || {
                    let Ok(read_half) = stream.try_clone() else { return };
                    let mut reader = std::io::BufReader::new(read_half);
                    let mut writer = std::io::BufWriter::new(stream);
                    let _ = service::protocol::serve_connection(&svc, &mut reader, &mut writer);
                });
            }
        });
    }

    /// Prints the static analysis report for `query` — typed plan, read
    /// footprint, liveness-pruning outcome, lint warnings, and the
    /// register-IR listing — without executing it. Mirrors the server's
    /// `.explain <query>` report.
    fn explain_query(&self, query: &str) {
        if self.engine == Engine::Nav {
            println!("error: NAV is interpreted per request; nothing to explain");
            return;
        }
        let db = self.db();
        let plan = match baselines::plan_for(self.engine, query, &db) {
            Ok(plan) => plan,
            Err(e) => {
                println!("error: {e}");
                return;
            }
        };
        let t = match tlc::analyze(&plan) {
            Ok(t) => t,
            Err(e) => {
                println!("error: {}", tlc::Error::Analyze(e));
                return;
            }
        };
        let fp = tlc::plan_footprint(&plan);
        let (pruned, report) = tlc::prune_with_report(&plan);
        let lints = tlc::lint(&plan, &db);
        let interner = db.interner();
        println!("== plan ({} operator(s), engine {:?}) ==", plan.operator_count(), self.engine);
        print!("{}", plan.display(Some(&db)));
        let classes: Vec<String> = t.classes.iter().map(|(l, c)| format!("{l}:{c:?}")).collect();
        println!("== type ==");
        println!(
            "classes: {}",
            if classes.is_empty() { "(none)".to_string() } else { classes.join(" ") }
        );
        println!("root: {}", t.root.map_or_else(|| "(none)".to_string(), |r| r.to_string()));
        println!("order: {:?}", t.order);
        println!("== footprint ==");
        println!("docs: {}", join_or_none(fp.docs.iter().cloned()));
        for (doc, tags) in &fp.doc_tags {
            let names = join_or_none(tags.iter().map(|&t| interner.name(t).to_string()));
            println!("tags[{doc}]: {names}");
        }
        println!(
            "steps: {} child, {} descendant; {} value predicate(s)",
            fp.child_steps,
            fp.descendant_steps,
            fp.preds.len()
        );
        println!("== liveness ==");
        if report.changed() {
            println!(
                "pruned: {} DupElim(s) removed, {} select(s) eliminated, {} star subtree(s) dropped, {} dead Project column(s)",
                report.dupelims_removed,
                report.selects_eliminated,
                report.star_subtrees_pruned,
                report.dead_project_columns.len()
            );
            println!("pruned plan:");
            print!("{}", pruned.display(Some(&db)));
        } else {
            println!("nothing to prune");
        }
        println!("== lints ==");
        if lints.is_empty() {
            println!("no warnings");
        } else {
            for l in &lints {
                println!("{l}");
            }
        }
        println!("== ir ==");
        match tlc::vm::lower(&plan) {
            Ok(prog) => print!("{}", prog.display(Some(&db))),
            Err(e) => println!("not lowered ({e}); this plan executes on the tree walker"),
        }
    }

    fn run(&mut self, query: &str) {
        let started = std::time::Instant::now();
        // Pin the current snapshot for the whole run; a concurrent `.serve`
        // client reloading mid-query cannot pull the store out from under us.
        let db = self.db();
        if self.engine == Engine::Nav {
            match xquery::parse(query) {
                Ok(ast) => match baselines::evaluate_nav(&db, &ast) {
                    Ok((out, stats)) => {
                        println!("{out}");
                        if self.stats {
                            println!(
                                "-- {} nodes visited, {} tuples, {:?}",
                                stats.nodes_visited,
                                stats.tuples,
                                started.elapsed()
                            );
                        }
                    }
                    Err(e) => println!("error: {e}"),
                },
                Err(e) => println!("error: {e}"),
            }
            return;
        }
        match baselines::plan_for(self.engine, query, &db) {
            Ok(plan) => {
                if self.explain {
                    println!("{}", plan.display(Some(&db)));
                }
                if self.analyze {
                    match tlc::execute_traced(&db, &plan) {
                        Ok((trees, _, traces)) => {
                            println!("{}", tlc::serialize_results(&db, &trees));
                            println!("{}", tlc::render_trace(&traces));
                        }
                        Err(e) => println!("error: {e}"),
                    }
                    return;
                }
                match tlc::execute(&db, &plan) {
                    Ok((trees, stats)) => {
                        println!("{}", tlc::serialize_results(&db, &trees));
                        if self.stats {
                            println!(
                                "-- {} tree(s), {} pattern matches, {} probes, {} nodes inspected, \
                                 {} candidate fetches, {} structural-join comparisons, {:?}",
                                trees.len(),
                                stats.pattern_matches,
                                stats.probes,
                                stats.nodes_inspected,
                                stats.candidate_fetches,
                                stats.struct_cmps,
                                started.elapsed()
                            );
                            println!(
                                "-- arena: {} B high-water, {} fallback alloc(s)",
                                stats.arena_bytes, stats.fallback_allocs
                            );
                        }
                    }
                    Err(e) => println!("error: {e}"),
                }
            }
            Err(e) => println!("error: {e}"),
        }
    }
}
