//! Recursive-descent parser for the FLWOR fragment.

use crate::ast::*;
use crate::lexer::{LexError, Lexer, Tok};

/// Parse error: byte offset plus message.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Byte offset in the source.
    pub offset: usize,
    /// Explanation.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError { offset: e.offset, message: e.message }
    }
}

/// Parses a complete query.
pub fn parse(input: &str) -> Result<Flwor, ParseError> {
    let mut p = Parser { lx: Lexer::new(input) };
    let q = p.flwor()?;
    p.expect(Tok::Eof)?;
    Ok(q)
}

struct Parser<'a> {
    lx: Lexer<'a>,
}

impl<'a> Parser<'a> {
    fn err(&mut self, message: impl Into<String>) -> ParseError {
        ParseError { offset: self.lx.offset(), message: message.into() }
    }

    fn peek(&mut self) -> Result<Tok, ParseError> {
        Ok(self.lx.peek()?.clone())
    }

    fn next(&mut self) -> Result<Tok, ParseError> {
        Ok(self.lx.next_tok()?)
    }

    fn expect(&mut self, want: Tok) -> Result<(), ParseError> {
        let got = self.next()?;
        if got == want {
            Ok(())
        } else {
            Err(self.err(format!("expected {want}, found {got}")))
        }
    }

    fn eat(&mut self, want: &Tok) -> Result<bool, ParseError> {
        if self.peek()? == *want {
            self.next()?;
            return Ok(true);
        }
        Ok(false)
    }

    // ---------------- FLWOR ----------------

    fn flwor(&mut self) -> Result<Flwor, ParseError> {
        let mut bindings = Vec::new();
        loop {
            match self.peek()? {
                Tok::Kw("FOR") => {
                    self.next()?;
                    let var = self.var_name()?;
                    self.expect(Tok::Kw("IN"))?;
                    let source = self.binding_source()?;
                    bindings.push(Binding { kind: BindingKind::For, var, source });
                }
                Tok::Kw("LET") => {
                    self.next()?;
                    let var = self.var_name()?;
                    self.expect(Tok::Assign)?;
                    let source = self.binding_source()?;
                    bindings.push(Binding { kind: BindingKind::Let, var, source });
                }
                _ => break,
            }
        }
        if bindings.is_empty() {
            return Err(self.err("a query must start with FOR or LET"));
        }
        let where_expr = if self.eat(&Tok::Kw("WHERE"))? { Some(self.where_expr()?) } else { None };
        let order_by = if self.eat(&Tok::Kw("ORDER"))? {
            self.expect(Tok::Kw("BY"))?;
            let mut keys = vec![self.path()?];
            while self.eat(&Tok::Comma)? {
                keys.push(self.path()?);
            }
            let descending = match self.peek()? {
                Tok::Kw("DESCENDING") => {
                    self.next()?;
                    true
                }
                Tok::Kw("ASCENDING") => {
                    self.next()?;
                    false
                }
                _ => false,
            };
            Some(OrderBy { keys, descending })
        } else {
            None
        };
        self.expect(Tok::Kw("RETURN"))?;
        let ret = self.return_expr()?;
        Ok(Flwor { bindings, where_expr, order_by, ret })
    }

    fn var_name(&mut self) -> Result<String, ParseError> {
        match self.next()? {
            Tok::Var(v) => Ok(v),
            other => Err(self.err(format!("expected $variable, found {other}"))),
        }
    }

    fn binding_source(&mut self) -> Result<BindingSource, ParseError> {
        match self.peek()? {
            Tok::Kw("FOR") | Tok::Kw("LET") => Ok(BindingSource::Subquery(Box::new(self.flwor()?))),
            Tok::LParen => {
                self.next()?;
                let q = self.flwor()?;
                self.expect(Tok::RParen)?;
                Ok(BindingSource::Subquery(Box::new(q)))
            }
            _ => Ok(BindingSource::Path(self.path()?)),
        }
    }

    // ---------------- paths ----------------

    fn path(&mut self) -> Result<SimplePath, ParseError> {
        let root = match self.next()? {
            Tok::Kw("DOCUMENT") => {
                self.expect(Tok::LParen)?;
                let name = match self.next()? {
                    Tok::Str(s) => s,
                    other => return Err(self.err(format!("expected document name, found {other}"))),
                };
                self.expect(Tok::RParen)?;
                PathRoot::Document(name)
            }
            Tok::Var(v) => PathRoot::Var(v),
            other => return Err(self.err(format!("expected path root, found {other}"))),
        };
        let mut steps = Vec::new();
        loop {
            let axis = match self.peek()? {
                Tok::Slash => Axis::Child,
                Tok::DSlash => Axis::Descendant,
                _ => break,
            };
            self.next()?;
            let test = match self.next()? {
                Tok::At => match self.next()? {
                    Tok::Name(n) => NodeTest::Attribute(n),
                    Tok::Kw(k) => NodeTest::Attribute(k.to_ascii_lowercase()),
                    other => {
                        return Err(self.err(format!("expected attribute name, found {other}")))
                    }
                },
                Tok::Name(n) if n == "text" && self.peek()? == Tok::LParen => {
                    self.next()?;
                    self.expect(Tok::RParen)?;
                    NodeTest::Text
                }
                Tok::Name(n) => NodeTest::Tag(n),
                // Allow tags that collide with keywords (e.g. an element
                // named `to` or `from`).
                Tok::Kw(k) => NodeTest::Tag(k.to_ascii_lowercase()),
                other => return Err(self.err(format!("expected step test, found {other}"))),
            };
            let is_text = test == NodeTest::Text;
            steps.push(Step { axis, test });
            if is_text {
                break; // text() is always final
            }
        }
        Ok(SimplePath { root, steps })
    }

    // ---------------- WHERE ----------------

    fn where_expr(&mut self) -> Result<WhereExpr, ParseError> {
        let mut left = self.where_and()?;
        while self.eat(&Tok::Kw("OR"))? {
            let right = self.where_and()?;
            left = WhereExpr::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn where_and(&mut self) -> Result<WhereExpr, ParseError> {
        let mut left = self.where_primary()?;
        while self.eat(&Tok::Kw("AND"))? {
            let right = self.where_primary()?;
            left = WhereExpr::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn agg_func(name: &str) -> Option<AggFunc> {
        match name {
            "count" => Some(AggFunc::Count),
            "sum" => Some(AggFunc::Sum),
            "avg" => Some(AggFunc::Avg),
            "min" => Some(AggFunc::Min),
            "max" => Some(AggFunc::Max),
            _ => None,
        }
    }

    fn where_primary(&mut self) -> Result<WhereExpr, ParseError> {
        match self.peek()? {
            Tok::LParen => {
                self.next()?;
                let e = self.where_expr()?;
                self.expect(Tok::RParen)?;
                Ok(e)
            }
            Tok::Kw("EVERY") | Tok::Kw("SOME") => {
                let quant = if self.next()? == Tok::Kw("EVERY") {
                    Quantifier::Every
                } else {
                    Quantifier::Some
                };
                let var = self.var_name()?;
                self.expect(Tok::Kw("IN"))?;
                let path = self.path()?;
                self.expect(Tok::Kw("SATISFIES"))?;
                let cond_path = self.path()?;
                if cond_path.root != PathRoot::Var(var.clone()) {
                    return Err(self.err("SATISFIES condition must test the quantified variable"));
                }
                let op = self.cmp_op()?;
                let value = self.literal()?;
                Ok(WhereExpr::Quantified { quant, var, path, cond_path, op, value })
            }
            Tok::Kw("CONTAINS") => {
                self.next()?;
                self.expect(Tok::LParen)?;
                let path = self.path()?;
                self.expect(Tok::Comma)?;
                let value = self.literal()?;
                self.expect(Tok::RParen)?;
                Ok(WhereExpr::Comparison { path, op: CmpOp::Contains, value })
            }
            Tok::Name(n) => {
                if let Some(func) = Self::agg_func(&n) {
                    self.next()?;
                    self.expect(Tok::LParen)?;
                    let path = self.path()?;
                    self.expect(Tok::RParen)?;
                    let op = self.cmp_op()?;
                    let value = self.literal()?;
                    return Ok(WhereExpr::AggrComparison { func, path, op, value });
                }
                Err(self.err(format!("unexpected name {n} in WHERE")))
            }
            _ => {
                let left = self.path()?;
                let op = self.cmp_op()?;
                match self.peek()? {
                    Tok::Number(_) | Tok::Str(_) => {
                        let value = self.literal()?;
                        Ok(WhereExpr::Comparison { path: left, op, value })
                    }
                    _ => {
                        let right = self.path()?;
                        Ok(WhereExpr::ValueJoin { left, op, right })
                    }
                }
            }
        }
    }

    fn cmp_op(&mut self) -> Result<CmpOp, ParseError> {
        match self.next()? {
            Tok::Eq => Ok(CmpOp::Eq),
            Tok::Ne => Ok(CmpOp::Ne),
            Tok::Lt => Ok(CmpOp::Lt),
            Tok::Le => Ok(CmpOp::Le),
            Tok::Gt => Ok(CmpOp::Gt),
            Tok::Ge => Ok(CmpOp::Ge),
            other => Err(self.err(format!("expected comparison operator, found {other}"))),
        }
    }

    fn literal(&mut self) -> Result<Literal, ParseError> {
        match self.next()? {
            Tok::Number(n) => Ok(Literal::Number(n)),
            Tok::Str(s) => Ok(Literal::Str(s)),
            other => Err(self.err(format!("expected literal, found {other}"))),
        }
    }

    // ---------------- RETURN ----------------

    fn return_expr(&mut self) -> Result<ReturnExpr, ParseError> {
        match self.peek()? {
            Tok::Lt => self.constructor(),
            Tok::LBrace => {
                self.next()?;
                let inner = self.return_expr()?;
                self.expect(Tok::RBrace)?;
                Ok(inner)
            }
            _ => self.embedded_expr(),
        }
    }

    /// An expression valid inside `{ ... }` or as a bare RETURN body:
    /// path, aggregate call, or nested FLWOR.
    fn embedded_expr(&mut self) -> Result<ReturnExpr, ParseError> {
        match self.peek()? {
            Tok::Kw("FOR") | Tok::Kw("LET") => Ok(ReturnExpr::Subquery(Box::new(self.flwor()?))),
            Tok::Name(n) => {
                if let Some(func) = Self::agg_func(&n) {
                    self.next()?;
                    self.expect(Tok::LParen)?;
                    let path = self.path()?;
                    self.expect(Tok::RParen)?;
                    return Ok(ReturnExpr::Aggr(func, path));
                }
                Err(self.err(format!("unexpected name {n} in RETURN")))
            }
            _ => Ok(ReturnExpr::Path(self.path()?)),
        }
    }

    fn constructor(&mut self) -> Result<ReturnExpr, ParseError> {
        self.expect(Tok::Lt)?;
        let tag = match self.next()? {
            Tok::Name(n) => n,
            Tok::Kw(k) => k.to_ascii_lowercase(),
            other => return Err(self.err(format!("expected tag name, found {other}"))),
        };
        let mut attrs = Vec::new();
        loop {
            match self.peek()? {
                Tok::Gt => {
                    self.next()?;
                    break;
                }
                Tok::Slash => {
                    // Self-closing constructor.
                    self.next()?;
                    self.expect(Tok::Gt)?;
                    return Ok(ReturnExpr::Element { tag, attrs, children: Vec::new() });
                }
                Tok::Name(_) | Tok::Kw(_) => {
                    let name = match self.next()? {
                        Tok::Name(n) => n,
                        Tok::Kw(k) => k.to_ascii_lowercase(),
                        _ => unreachable!(),
                    };
                    self.expect(Tok::Eq)?;
                    self.expect(Tok::LBrace)?;
                    let value = self.path()?;
                    self.expect(Tok::RBrace)?;
                    attrs.push((name, value));
                }
                other => return Err(self.err(format!("unexpected {other} in start tag"))),
            }
        }
        // Content: raw text interleaved with embedded expressions and
        // nested constructors, until the matching close tag.
        let mut children = Vec::new();
        loop {
            let raw = self.lx.raw_text_until_markup();
            // The paper writes bare `$o/bidder` inside constructors; treat a
            // `$`-prefixed run inside raw text as an embedded path.
            let mut rest = raw.as_str();
            while let Some(dollar) = rest.find('$') {
                let before = &rest[..dollar];
                if !before.trim().is_empty() {
                    children.push(ReturnExpr::Text(before.trim().to_string()));
                }
                let after = &rest[dollar..];
                let end = after[1..]
                    .find(|c: char| {
                        !(c.is_ascii_alphanumeric() || matches!(c, '_' | '-' | '.' | '/' | '@'))
                    })
                    .map(|i| i + 1)
                    .unwrap_or(after.len());
                let expr_src = &after[..end];
                let mut sub = Parser { lx: Lexer::new(expr_src) };
                let path = sub.path()?;
                children.push(ReturnExpr::Path(path));
                rest = &after[end..];
            }
            if !rest.trim().is_empty() {
                children.push(ReturnExpr::Text(rest.trim().to_string()));
            }
            match self.peek()? {
                Tok::LBrace => {
                    self.next()?;
                    children.push(self.embedded_expr()?);
                    self.expect(Tok::RBrace)?;
                }
                Tok::LtSlash => {
                    self.next()?;
                    let close = match self.next()? {
                        Tok::Name(n) => n,
                        Tok::Kw(k) => k.to_ascii_lowercase(),
                        other => return Err(self.err(format!("expected close tag, found {other}"))),
                    };
                    if close != tag {
                        return Err(
                            self.err(format!("mismatched close tag </{close}>, expected </{tag}>"))
                        );
                    }
                    self.expect(Tok::Gt)?;
                    return Ok(ReturnExpr::Element { tag, attrs, children });
                }
                Tok::Lt => {
                    children.push(self.constructor()?);
                }
                Tok::Eof => return Err(self.err(format!("unterminated <{tag}> constructor"))),
                other => return Err(self.err(format!("unexpected {other} in element content"))),
            }
        }
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;

    /// The paper's Q1 (Figure 1), verbatim apart from ASCII quotes.
    pub const Q1: &str = r#"
        FOR $p IN document("auction.xml")//person
        FOR $o IN document("auction.xml")//open_auction
        WHERE count($o/bidder) > 5 AND $p/age > 25
          AND $p/@id = $o/bidder//@person
        RETURN
          <person name={$p/name/text()}> $o/bidder </person>"#;

    /// The paper's Q2 (Figure 3).
    pub const Q2: &str = r#"
        FOR $p IN document("auction.xml")//person
        LET $a := FOR $o IN document("auction.xml")//open_auction
                  WHERE count($o/bidder) > 5
                    AND $p/@id = $o/bidder//@person
                  RETURN <myauction> {$o/bidder}
                           <myquan>{$o/quantity/text()}</myquan>
                         </myauction>
        WHERE $p/age > 25
          AND EVERY $i IN $a/myquan SATISFIES $i > 2
        RETURN
          <person name={$p/name/text()}>{$a/bidder}</person>"#;

    #[test]
    fn parse_q1() {
        let q = parse(Q1).unwrap();
        assert_eq!(q.bindings.len(), 2);
        assert_eq!(q.bindings[0].var, "p");
        assert_eq!(q.bindings[1].var, "o");
        assert!(matches!(q.bindings[0].kind, BindingKind::For));
        // WHERE is a 3-way conjunction.
        let w = q.where_expr.as_ref().unwrap();
        let WhereExpr::And(l, r) = w else { panic!("expected AND, got {w:?}") };
        let WhereExpr::And(ll, lr) = &**l else { panic!() };
        assert!(matches!(&**ll, WhereExpr::AggrComparison { func: AggFunc::Count, .. }));
        assert!(matches!(&**lr, WhereExpr::Comparison { op: CmpOp::Gt, .. }));
        assert!(matches!(&**r, WhereExpr::ValueJoin { op: CmpOp::Eq, .. }));
        // RETURN is <person name={...}> $o/bidder </person>.
        let ReturnExpr::Element { tag, attrs, children } = &q.ret else { panic!() };
        assert_eq!(tag, "person");
        assert_eq!(attrs.len(), 1);
        assert_eq!(attrs[0].0, "name");
        assert!(attrs[0].1.ends_in_text());
        assert_eq!(children.len(), 1);
        let ReturnExpr::Path(p) = &children[0] else { panic!("got {children:?}") };
        assert_eq!(p.to_string(), "$o/bidder");
    }

    #[test]
    fn parse_q2() {
        let q = parse(Q2).unwrap();
        assert_eq!(q.bindings.len(), 2);
        assert!(matches!(q.bindings[1].kind, BindingKind::Let));
        let BindingSource::Subquery(inner) = &q.bindings[1].source else { panic!() };
        assert_eq!(inner.bindings.len(), 1);
        let ReturnExpr::Element { tag, children, .. } = &inner.ret else { panic!() };
        assert_eq!(tag, "myauction");
        assert_eq!(children.len(), 2);
        assert!(matches!(&children[1], ReturnExpr::Element { tag, .. } if tag == "myquan"));
        // Outer where has the EVERY quantifier.
        let w = q.where_expr.as_ref().unwrap();
        let WhereExpr::And(_, r) = w else { panic!() };
        assert!(matches!(
            &**r,
            WhereExpr::Quantified { quant: Quantifier::Every, var, .. } if var == "i"
        ));
    }

    #[test]
    fn parse_order_by() {
        let q = parse(
            "FOR $i IN document(\"a.xml\")//item ORDER BY $i/location DESCENDING RETURN $i/name",
        )
        .unwrap();
        let ob = q.order_by.unwrap();
        assert_eq!(ob.keys.len(), 1);
        assert!(ob.descending);
    }

    #[test]
    fn parse_multiple_order_keys_default_ascending() {
        let q = parse("FOR $i IN $d//item ORDER BY $i/a, $i/b RETURN $i").unwrap();
        let ob = q.order_by.unwrap();
        assert_eq!(ob.keys.len(), 2);
        assert!(!ob.descending);
    }

    #[test]
    fn parse_contains() {
        let q = parse(
            "FOR $i IN document(\"a.xml\")//item WHERE contains($i/description, \"gold\") RETURN $i/name",
        )
        .unwrap();
        assert!(matches!(
            q.where_expr.unwrap(),
            WhereExpr::Comparison { op: CmpOp::Contains, value: Literal::Str(s), .. } if s == "gold"
        ));
    }

    #[test]
    fn parse_aggregate_in_return() {
        let q = parse("FOR $r IN document(\"a.xml\")//regions RETURN count($r//item)").unwrap();
        assert!(matches!(q.ret, ReturnExpr::Aggr(AggFunc::Count, _)));
    }

    #[test]
    fn parse_nested_constructor_with_counts() {
        let q = parse(
            r#"FOR $s IN document("a.xml")/site
               RETURN <out><a>{count($s//person)}</a><b>{count($s//item)}</b></out>"#,
        )
        .unwrap();
        let ReturnExpr::Element { tag, children, .. } = &q.ret else { panic!() };
        assert_eq!(tag, "out");
        assert_eq!(children.len(), 2);
    }

    #[test]
    fn parse_some_quantifier() {
        let q = parse(
            "FOR $p IN $d//person WHERE SOME $i IN $p//interest SATISFIES $i = \"x\" RETURN $p/name",
        )
        .unwrap();
        assert!(matches!(
            q.where_expr.unwrap(),
            WhereExpr::Quantified { quant: Quantifier::Some, .. }
        ));
    }

    #[test]
    fn parse_or_and_precedence() {
        let q = parse("FOR $p IN $d//p WHERE $p/a > 1 AND $p/b > 2 OR $p/c > 3 RETURN $p").unwrap();
        // (a AND b) OR c
        assert!(matches!(q.where_expr.unwrap(), WhereExpr::Or(..)));
    }

    #[test]
    fn parse_self_closing_constructor() {
        let q = parse("FOR $p IN $d//p RETURN <empty/>").unwrap();
        assert!(matches!(q.ret, ReturnExpr::Element { ref children, .. } if children.is_empty()));
    }

    #[test]
    fn parse_literal_text_in_constructor() {
        let q = parse("FOR $p IN $d//p RETURN <out>hello</out>").unwrap();
        let ReturnExpr::Element { children, .. } = &q.ret else { panic!() };
        assert_eq!(children, &[ReturnExpr::Text("hello".into())]);
    }

    #[test]
    fn parse_attribute_path_predicate() {
        let q = parse("FOR $p IN $d//person WHERE $p/@id = \"person0\" RETURN $p/name").unwrap();
        let Some(WhereExpr::Comparison { path, .. }) = q.where_expr else { panic!() };
        assert_eq!(path.to_string(), "$p/@id");
    }

    #[test]
    fn reject_garbage() {
        for bad in [
            "",
            "RETURN $x",
            "FOR p IN $d//x RETURN $p",
            "FOR $p IN $d//x WHERE RETURN $p",
            "FOR $p IN $d//x RETURN <a></b>",
            "FOR $p IN $d//x RETURN <a>",
            "FOR $p IN $d//x WHERE EVERY $i IN $p/y SATISFIES $z > 1 RETURN $p",
            "FOR $p IN $d//x RETURN $p extra",
        ] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn keyword_like_tags_are_allowed_in_paths() {
        let q = parse("FOR $m IN $d//mail RETURN $m/from").unwrap();
        let ReturnExpr::Path(p) = &q.ret else { panic!() };
        assert_eq!(p.to_string(), "$m/from");
    }

    #[test]
    fn typographic_quotes_parse() {
        let q = parse("FOR $p IN document(\u{201c}auction.xml\u{201d})//person RETURN $p/name");
        assert!(q.is_ok());
    }
}

#[cfg(test)]
mod robustness {
    use super::*;

    /// Minimal splitmix64 so the fuzz-style tests stay dependency-free while
    /// remaining deterministic (fixed seeds, fixed case counts).
    struct Rng(u64);

    impl Rng {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        fn below(&mut self, n: usize) -> usize {
            (self.next() % n as u64) as usize
        }

        fn string(&mut self, alphabet: &[char], max_len: usize) -> String {
            let len = self.below(max_len + 1);
            (0..len).map(|_| alphabet[self.below(alphabet.len())]).collect()
        }
    }

    /// The parser must never panic, whatever bytes it is fed.
    #[test]
    fn parser_never_panics() {
        let alphabet: Vec<char> =
            (' '..='~').chain("\u{0}\t\n«»\u{201c}\u{201d}λ漢字\u{1F600}".chars()).collect();
        let mut rng = Rng(0x5EED_0001);
        for _ in 0..512 {
            let input = rng.string(&alphabet, 120);
            let _ = parse(&input);
        }
    }

    /// Structured garbage around a valid core must be rejected or parsed,
    /// never panicked on.
    #[test]
    fn structured_noise() {
        let alphabet: Vec<char> = "ABCZabcz$/@(){}<>=\"' ".chars().collect();
        let mut rng = Rng(0x5EED_0002);
        for _ in 0..512 {
            let prefix = rng.string(&alphabet, 24);
            let suffix = rng.string(&alphabet, 24);
            let q = format!("{prefix}FOR $p IN document(\"d.xml\")//person RETURN $p{suffix}");
            let _ = parse(&q);
        }
    }

    /// Any generated simple-path query parses, and the path round-trips
    /// through Display.
    #[test]
    fn generated_paths_round_trip() {
        let mut rng = Rng(0x5EED_0003);
        for _ in 0..256 {
            let mut path = String::from("$v");
            for _ in 0..1 + rng.below(4) {
                path.push_str(if rng.below(2) == 0 { "//" } else { "/" });
                let name_len = 1 + rng.below(8);
                for _ in 0..name_len {
                    path.push((b'a' + rng.below(26) as u8) as char);
                }
            }
            if rng.below(2) == 0 {
                path.push_str("/text()");
            }
            let q = format!("FOR $v IN document(\"d.xml\")//x RETURN {path}");
            let parsed = parse(&q).unwrap();
            let ReturnExpr::Path(p) = &parsed.ret else { panic!("expected path") };
            assert_eq!(p.to_string(), path);
        }
    }
}
