//! Abstract syntax for the Figure 5 FLWOR fragment.

use std::fmt;

/// A complete FLWOR expression (possibly nested inside another).
#[derive(Debug, Clone, PartialEq)]
pub struct Flwor {
    /// The FOR/LET bindings, in source order.
    pub bindings: Vec<Binding>,
    /// The WHERE expression, if present.
    pub where_expr: Option<WhereExpr>,
    /// The ORDER BY clause, if present.
    pub order_by: Option<OrderBy>,
    /// The RETURN expression.
    pub ret: ReturnExpr,
}

/// FOR vs LET.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BindingKind {
    /// `FOR $v IN ...` — iterates, one binding tuple per match.
    For,
    /// `LET $v := ...` — binds the whole sequence at once.
    Let,
}

/// One FOR or LET clause.
#[derive(Debug, Clone, PartialEq)]
pub struct Binding {
    /// FOR or LET.
    pub kind: BindingKind,
    /// Variable name without the `$`.
    pub var: String,
    /// What the variable binds to.
    pub source: BindingSource,
}

/// The right-hand side of a FOR/LET.
#[derive(Debug, Clone, PartialEq)]
pub enum BindingSource {
    /// A simple path.
    Path(SimplePath),
    /// A nested FLWOR (the paper's `NestedQuery` case).
    Subquery(Box<Flwor>),
}

/// Where a path starts.
#[derive(Debug, Clone, PartialEq)]
pub enum PathRoot {
    /// `document("name")` — the document root.
    Document(String),
    /// `$var` — a previously bound variable.
    Var(String),
}

/// Step axis: `/` or `//`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Axis {
    /// `/` — child.
    Child,
    /// `//` — descendant.
    Descendant,
}

/// A node test within a step.
#[derive(Debug, Clone, PartialEq)]
pub enum NodeTest {
    /// Element name test.
    Tag(String),
    /// `@name` attribute test.
    Attribute(String),
    /// Final `text()` step — selects the node's text value.
    Text,
}

/// One path step.
#[derive(Debug, Clone, PartialEq)]
pub struct Step {
    /// `/` vs `//`.
    pub axis: Axis,
    /// The node test.
    pub test: NodeTest,
}

/// A simple path: root plus steps, no branching predicates (the paper's SP).
#[derive(Debug, Clone, PartialEq)]
pub struct SimplePath {
    /// The root.
    pub root: PathRoot,
    /// The steps, in order.
    pub steps: Vec<Step>,
}

impl SimplePath {
    /// A path consisting of just a variable reference.
    pub fn var(name: &str) -> SimplePath {
        SimplePath { root: PathRoot::Var(name.to_string()), steps: Vec::new() }
    }

    /// True when the final step is `text()`.
    pub fn ends_in_text(&self) -> bool {
        matches!(self.steps.last(), Some(Step { test: NodeTest::Text, .. }))
    }

    /// The path without a trailing `text()` step (for pattern construction).
    pub fn without_text(&self) -> SimplePath {
        if self.ends_in_text() {
            SimplePath {
                root: self.root.clone(),
                steps: self.steps[..self.steps.len() - 1].to_vec(),
            }
        } else {
            self.clone()
        }
    }
}

/// Comparison operators (with the `contains` extension for x14).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `contains(haystack-path, "needle")` — substring test on string value.
    Contains,
}

/// A literal comparison operand.
#[derive(Debug, Clone, PartialEq)]
pub enum Literal {
    /// Numeric literal; comparisons are numeric.
    Number(f64),
    /// String literal; comparisons are string equality/ordering.
    Str(String),
}

/// Aggregate function names of the fragment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// `count(...)`
    Count,
    /// `sum(...)`
    Sum,
    /// `avg(...)`
    Avg,
    /// `min(...)`
    Min,
    /// `max(...)`
    Max,
}

impl AggFunc {
    /// Lowercase spelling, as written in queries.
    pub fn name(self) -> &'static str {
        match self {
            AggFunc::Count => "count",
            AggFunc::Sum => "sum",
            AggFunc::Avg => "avg",
            AggFunc::Min => "min",
            AggFunc::Max => "max",
        }
    }
}

/// EVERY vs SOME.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Quantifier {
    /// Universal: the filter must hold for all members.
    Every,
    /// Existential: at least one member suffices.
    Some,
}

/// The WHERE expression tree.
#[derive(Debug, Clone, PartialEq)]
pub enum WhereExpr {
    /// `SP op literal` — `SimplePredicateExpr`.
    Comparison {
        /// The tested path.
        path: SimplePath,
        /// The operator.
        op: CmpOp,
        /// The literal operand.
        value: Literal,
    },
    /// `agg(SP) op literal` — `AggrPredExpr`.
    AggrComparison {
        /// Aggregate function.
        func: AggFunc,
        /// Aggregated path.
        path: SimplePath,
        /// Comparison operator.
        op: CmpOp,
        /// Literal operand.
        value: Literal,
    },
    /// `SP op SP` — `ValueJoin`.
    ValueJoin {
        /// Left path.
        left: SimplePath,
        /// Operator.
        op: CmpOp,
        /// Right path.
        right: SimplePath,
    },
    /// `EVERY|SOME $v IN SP SATISFIES SP' op literal`.
    Quantified {
        /// EVERY or SOME.
        quant: Quantifier,
        /// The quantified variable (without `$`).
        var: String,
        /// The range path.
        path: SimplePath,
        /// The tested path inside SATISFIES (rooted at `var`).
        cond_path: SimplePath,
        /// Operator of the SATISFIES comparison.
        op: CmpOp,
        /// Literal operand of the SATISFIES comparison.
        value: Literal,
    },
    /// Conjunction.
    And(Box<WhereExpr>, Box<WhereExpr>),
    /// Disjunction.
    Or(Box<WhereExpr>, Box<WhereExpr>),
}

/// ORDER BY clause.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderBy {
    /// Sort key paths (major first).
    pub keys: Vec<SimplePath>,
    /// True for DESCENDING.
    pub descending: bool,
}

/// The RETURN expression tree.
#[derive(Debug, Clone, PartialEq)]
pub enum ReturnExpr {
    /// A path (possibly ending in `text()`); emits the selected nodes.
    Path(SimplePath),
    /// An aggregate over a path; emits one computed value.
    Aggr(AggFunc, SimplePath),
    /// An element constructor `<tag attr={SP}*> children </tag>`.
    Element {
        /// The constructed tag.
        tag: String,
        /// Attributes: name and value path.
        attrs: Vec<(String, SimplePath)>,
        /// Child content items, in order.
        children: Vec<ReturnExpr>,
    },
    /// Literal text content inside a constructor.
    Text(String),
    /// A nested FLWOR in return position.
    Subquery(Box<Flwor>),
}

impl fmt::Display for SimplePath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.root {
            PathRoot::Document(d) => write!(f, "document(\"{d}\")")?,
            PathRoot::Var(v) => write!(f, "${v}")?,
        }
        for s in &self.steps {
            match s.axis {
                Axis::Child => write!(f, "/")?,
                Axis::Descendant => write!(f, "//")?,
            }
            match &s.test {
                NodeTest::Tag(t) => write!(f, "{t}")?,
                NodeTest::Attribute(a) => write!(f, "@{a}")?,
                NodeTest::Text => write!(f, "text()")?,
            }
        }
        Ok(())
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
            CmpOp::Contains => "contains",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_display_round_trips_shape() {
        let p = SimplePath {
            root: PathRoot::Document("auction.xml".into()),
            steps: vec![
                Step { axis: Axis::Descendant, test: NodeTest::Tag("person".into()) },
                Step { axis: Axis::Child, test: NodeTest::Attribute("id".into()) },
            ],
        };
        assert_eq!(p.to_string(), "document(\"auction.xml\")//person/@id");
    }

    #[test]
    fn text_step_helpers() {
        let mut p = SimplePath::var("p");
        assert!(!p.ends_in_text());
        p.steps.push(Step { axis: Axis::Child, test: NodeTest::Tag("name".into()) });
        p.steps.push(Step { axis: Axis::Child, test: NodeTest::Text });
        assert!(p.ends_in_text());
        let q = p.without_text();
        assert_eq!(q.steps.len(), 1);
        assert!(!q.ends_in_text());
        assert_eq!(q.without_text(), q);
    }
}
