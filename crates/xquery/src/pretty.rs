//! Pretty-printing of queries back to FLWOR text.
//!
//! `parse(print(q))` reproduces `q` exactly (up to whitespace), which the
//! property suite checks — useful for debugging translated plans, echoing
//! queries in the shell, and generating queries programmatically.

use crate::ast::*;
use std::fmt;

/// Display adapter: renders the query as parseable FLWOR text.
pub struct PrettyQuery<'a>(pub &'a Flwor);

impl fmt::Display for PrettyQuery<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write_flwor(f, self.0, 0)
    }
}

fn pad(f: &mut fmt::Formatter<'_>, depth: usize) -> fmt::Result {
    write!(f, "{}", "  ".repeat(depth))
}

fn write_flwor(f: &mut fmt::Formatter<'_>, q: &Flwor, depth: usize) -> fmt::Result {
    for b in &q.bindings {
        pad(f, depth)?;
        match b.kind {
            BindingKind::For => write!(f, "FOR ${} IN ", b.var)?,
            BindingKind::Let => write!(f, "LET ${} := ", b.var)?,
        }
        match &b.source {
            BindingSource::Path(p) => writeln!(f, "{p}")?,
            BindingSource::Subquery(s) => {
                writeln!(f, "(")?;
                write_flwor(f, s, depth + 1)?;
                pad(f, depth)?;
                writeln!(f, ")")?;
            }
        }
    }
    if let Some(w) = &q.where_expr {
        pad(f, depth)?;
        write!(f, "WHERE ")?;
        write_where(f, w, false)?;
        writeln!(f)?;
    }
    if let Some(ob) = &q.order_by {
        pad(f, depth)?;
        write!(f, "ORDER BY ")?;
        for (i, k) in ob.keys.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{k}")?;
        }
        writeln!(f, "{}", if ob.descending { " DESCENDING" } else { " ASCENDING" })?;
    }
    pad(f, depth)?;
    write!(f, "RETURN ")?;
    write_return(f, &q.ret, depth)?;
    Ok(())
}

fn write_where(f: &mut fmt::Formatter<'_>, w: &WhereExpr, parens: bool) -> fmt::Result {
    if parens {
        write!(f, "(")?;
    }
    match w {
        WhereExpr::Comparison { path, op: CmpOp::Contains, value } => {
            write!(f, "contains({path}, {})", lit(value))?;
        }
        WhereExpr::Comparison { path, op, value } => {
            write!(f, "{path} {op} {}", lit(value))?;
        }
        WhereExpr::AggrComparison { func, path, op, value } => {
            write!(f, "{}({path}) {op} {}", func.name(), lit(value))?;
        }
        WhereExpr::ValueJoin { left, op, right } => write!(f, "{left} {op} {right}")?,
        WhereExpr::Quantified { quant, var, path, cond_path, op, value } => {
            let q = match quant {
                Quantifier::Every => "EVERY",
                Quantifier::Some => "SOME",
            };
            write!(f, "{q} ${var} IN {path} SATISFIES {cond_path} {op} {}", lit(value))?;
        }
        WhereExpr::And(a, b) => {
            write_where(f, a, matches!(**a, WhereExpr::Or(..)))?;
            write!(f, " AND ")?;
            write_where(f, b, matches!(**b, WhereExpr::Or(..) | WhereExpr::And(..)))?;
        }
        WhereExpr::Or(a, b) => {
            write_where(f, a, false)?;
            write!(f, " OR ")?;
            write_where(f, b, matches!(**b, WhereExpr::Or(..)))?;
        }
    }
    if parens {
        write!(f, ")")?;
    }
    Ok(())
}

fn lit(l: &Literal) -> String {
    match l {
        Literal::Number(n) => {
            if n.fract() == 0.0 && n.abs() < 1e15 {
                format!("{}", *n as i64)
            } else {
                format!("{n}")
            }
        }
        Literal::Str(s) => format!("{s:?}"),
    }
}

fn write_return(f: &mut fmt::Formatter<'_>, r: &ReturnExpr, depth: usize) -> fmt::Result {
    match r {
        ReturnExpr::Path(p) => write!(f, "{p}"),
        ReturnExpr::Aggr(func, p) => write!(f, "{}({p})", func.name()),
        ReturnExpr::Text(t) => write!(f, "{t}"),
        ReturnExpr::Subquery(s) => {
            writeln!(f)?;
            write_flwor(f, s, depth + 1)
        }
        ReturnExpr::Element { tag, attrs, children } => {
            write!(f, "<{tag}")?;
            for (name, path) in attrs {
                write!(f, " {name}={{{path}}}")?;
            }
            if children.is_empty() {
                return write!(f, "/>");
            }
            write!(f, ">")?;
            for c in children {
                match c {
                    ReturnExpr::Text(t) => write!(f, "{t}")?,
                    ReturnExpr::Element { .. } => write_return(f, c, depth)?,
                    other => {
                        write!(f, "{{")?;
                        write_return(f, other, depth)?;
                        write!(f, "}}")?;
                    }
                }
            }
            write!(f, "</{tag}>")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn round_trip(q: &str) {
        let ast = parse(q).unwrap_or_else(|e| panic!("parse {q}: {e}"));
        let printed = PrettyQuery(&ast).to_string();
        let reparsed = parse(&printed).unwrap_or_else(|e| panic!("reparse {printed}: {e}"));
        assert_eq!(ast, reparsed, "print→parse must be stable:\n{printed}");
    }

    #[test]
    fn round_trips_the_workload_shapes() {
        for q in [
            r#"FOR $p IN document("a.xml")//person RETURN $p/name"#,
            r#"FOR $p IN document("a.xml")//person WHERE $p/age > 25 RETURN $p/name"#,
            r#"FOR $p IN document("a.xml")//person
               WHERE count($p/watches/watch) > 2 AND $p/@id = "person0"
               RETURN <r name={$p/name/text()}>{$p/age}</r>"#,
            r#"FOR $p IN document("a.xml")//person
               WHERE $p/age > 25 OR $p/age < 18 AND contains($p/name, "x")
               ORDER BY $p/name DESCENDING
               RETURN $p"#,
            r#"FOR $p IN document("a.xml")//person
               LET $a := FOR $o IN document("a.xml")//open_auction
                         WHERE $p/@id = $o/bidder//@person
                         RETURN <mya>{$o/quantity/text()}</mya>
               WHERE EVERY $i IN $a/mya SATISFIES $i > 2
               RETURN <out>{$a/mya}</out>"#,
        ] {
            round_trip(q);
        }
    }

    #[test]
    fn round_trips_the_full_benchmark_suite_texts() {
        // The 23 workload queries live in the queries crate; here we check a
        // representative Q2 verbatim (the suite's round-trip is covered by
        // the integration tests).
        round_trip(crate::parser::tests::Q2);
    }

    #[test]
    fn printed_form_is_readable() {
        let ast = parse(r#"FOR $p IN document("a.xml")//person WHERE $p/age > 25 RETURN $p/name"#)
            .unwrap();
        let printed = PrettyQuery(&ast).to_string();
        assert!(printed.contains("FOR $p IN document(\"a.xml\")//person"));
        assert!(printed.contains("WHERE $p/age > 25"));
        assert!(printed.contains("RETURN $p/name"));
    }
}
