#![warn(missing_docs)]

//! # xquery — front-end for the paper's XQuery fragment
//!
//! Figure 5 of the paper defines the FLWOR fragment its translation algorithm
//! accepts:
//!
//! ```text
//! FLWOR        ::= ForLetClause WhereClause? OrderBy? ReturnClause
//! ForClause    ::= FOR $var IN (SimplePath | FLWOR)
//! LetClause    ::= LET $var := (SimplePath | FLWOR)
//! WhereExpr    ::= SimplePredicate | AggrPredicate | ValueJoin
//!                | EVERY/SOME ... SATISFIES ... | AND | OR
//! ReturnExpr   ::= SP | FLWOR | Aggr(SP) | <tag attr={SP}*> ReturnExpr* </tag>
//! ```
//!
//! Paths are *simple paths* (no branching predicates) made of `/`, `//`,
//! name tests, attribute tests (`@name`) and a final `text()`. The paper
//! notes that branching predicates can always be rewritten into this form in
//! a FLWOR context, so nothing is lost.
//!
//! One extension: the comparison operator set includes `contains` (used by
//! the XMark query x14, which the paper's Figure 15 runs — "contains on
//! desc"); see DESIGN.md §4.
//!
//! The crate has no dependencies and no knowledge of the store or the
//! algebra; it produces a plain [`ast::Flwor`] that the `tlc` and
//! `baselines` crates compile.

pub mod ast;
pub mod lexer;
pub mod parser;
pub mod pretty;

pub use ast::{
    AggFunc, Axis, Binding, BindingKind, BindingSource, CmpOp, Flwor, Literal, NodeTest, OrderBy,
    PathRoot, Quantifier, ReturnExpr, SimplePath, Step, WhereExpr,
};
pub use parser::{parse, ParseError};
pub use pretty::PrettyQuery;
