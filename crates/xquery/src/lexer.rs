//! Tokenizer for the FLWOR fragment.
//!
//! The lexer is pull-based with one token of lookahead, plus a *raw* mode
//! ([`Lexer::raw_text_until_markup`]) that the parser uses inside element
//! constructors, where character data must be consumed verbatim rather than
//! tokenized.

use std::fmt;

/// Lexical tokens.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// A keyword (stored uppercase: `FOR`, `LET`, `IN`, ...).
    Kw(&'static str),
    /// `$name`.
    Var(String),
    /// A bare name (tag names, function names).
    Name(String),
    /// A quoted string.
    Str(String),
    /// A numeric literal.
    Number(f64),
    /// `:=`
    Assign,
    /// `/`
    Slash,
    /// `//`
    DSlash,
    /// `@`
    At,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `</`
    LtSlash,
    /// `,`
    Comma,
    /// End of input.
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Kw(k) => write!(f, "{k}"),
            Tok::Var(v) => write!(f, "${v}"),
            Tok::Name(n) => write!(f, "{n}"),
            Tok::Str(s) => write!(f, "{s:?}"),
            Tok::Number(n) => write!(f, "{n}"),
            Tok::Assign => write!(f, ":="),
            Tok::Slash => write!(f, "/"),
            Tok::DSlash => write!(f, "//"),
            Tok::At => write!(f, "@"),
            Tok::LParen => write!(f, "("),
            Tok::RParen => write!(f, ")"),
            Tok::LBrace => write!(f, "{{"),
            Tok::RBrace => write!(f, "}}"),
            Tok::Lt => write!(f, "<"),
            Tok::Le => write!(f, "<="),
            Tok::Gt => write!(f, ">"),
            Tok::Ge => write!(f, ">="),
            Tok::Eq => write!(f, "="),
            Tok::Ne => write!(f, "!="),
            Tok::LtSlash => write!(f, "</"),
            Tok::Comma => write!(f, ","),
            Tok::Eof => write!(f, "<eof>"),
        }
    }
}

const KEYWORDS: &[&str] = &[
    "FOR",
    "LET",
    "IN",
    "WHERE",
    "RETURN",
    "ORDER",
    "BY",
    "EVERY",
    "SOME",
    "SATISFIES",
    "AND",
    "OR",
    "ASCENDING",
    "DESCENDING",
    "DOCUMENT",
    "CONTAINS",
];

/// Lexer error: position and message.
#[derive(Debug, Clone, PartialEq)]
pub struct LexError {
    /// Byte offset.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

/// The tokenizer.
pub struct Lexer<'a> {
    input: &'a str,
    pos: usize,
    peeked: Option<(Tok, usize)>,
}

impl<'a> Lexer<'a> {
    /// Creates a lexer over `input`.
    pub fn new(input: &'a str) -> Self {
        Lexer { input, pos: 0, peeked: None }
    }

    /// Current byte offset (start of the peeked token if one is buffered).
    pub fn offset(&self) -> usize {
        self.peeked.as_ref().map_or(self.pos, |(_, at)| *at)
    }

    fn err(&self, message: impl Into<String>) -> LexError {
        LexError { offset: self.pos, message: message.into() }
    }

    fn bytes(&self) -> &'a [u8] {
        self.input.as_bytes()
    }

    fn skip_ws(&mut self) {
        while self.bytes().get(self.pos).is_some_and(|b| b.is_ascii_whitespace()) {
            self.pos += 1;
        }
    }

    /// Peeks the next token without consuming it.
    pub fn peek(&mut self) -> Result<&Tok, LexError> {
        if self.peeked.is_none() {
            self.skip_ws();
            let at = self.pos;
            let tok = self.lex()?;
            self.peeked = Some((tok, at));
        }
        Ok(&self.peeked.as_ref().unwrap().0)
    }

    /// Consumes and returns the next token.
    pub fn next_tok(&mut self) -> Result<Tok, LexError> {
        if let Some((tok, _)) = self.peeked.take() {
            return Ok(tok);
        }
        self.skip_ws();
        self.lex()
    }

    /// Raw mode for constructor content: consumes characters verbatim until
    /// one of `<`, `{` or end of input, returning them. Any peeked token is
    /// "un-lexed" first (constructors are entered right after consuming `>`,
    /// so in practice nothing is buffered).
    pub fn raw_text_until_markup(&mut self) -> String {
        if let Some((_, at)) = self.peeked.take() {
            self.pos = at;
        }
        let start = self.pos;
        while let Some(&b) = self.bytes().get(self.pos) {
            if b == b'<' || b == b'{' {
                break;
            }
            self.pos += 1;
        }
        self.input[start..self.pos].to_string()
    }

    fn lex(&mut self) -> Result<Tok, LexError> {
        let Some(&b) = self.bytes().get(self.pos) else {
            return Ok(Tok::Eof);
        };
        match b {
            b'$' => {
                self.pos += 1;
                let name = self.lex_name_raw();
                if name.is_empty() {
                    return Err(self.err("expected variable name after '$'"));
                }
                Ok(Tok::Var(name))
            }
            b'"' | b'\'' => self.lex_string(b as char),
            b'0'..=b'9' => self.lex_number(),
            b':' => {
                if self.bytes().get(self.pos + 1) == Some(&b'=') {
                    self.pos += 2;
                    Ok(Tok::Assign)
                } else {
                    Err(self.err("expected ':='"))
                }
            }
            b'/' => {
                self.pos += 1;
                if self.bytes().get(self.pos) == Some(&b'/') {
                    self.pos += 1;
                    Ok(Tok::DSlash)
                } else {
                    Ok(Tok::Slash)
                }
            }
            b'@' => {
                self.pos += 1;
                Ok(Tok::At)
            }
            b'(' => {
                self.pos += 1;
                Ok(Tok::LParen)
            }
            b')' => {
                self.pos += 1;
                Ok(Tok::RParen)
            }
            b'{' => {
                self.pos += 1;
                Ok(Tok::LBrace)
            }
            b'}' => {
                self.pos += 1;
                Ok(Tok::RBrace)
            }
            b',' => {
                self.pos += 1;
                Ok(Tok::Comma)
            }
            b'=' => {
                self.pos += 1;
                Ok(Tok::Eq)
            }
            b'!' => {
                if self.bytes().get(self.pos + 1) == Some(&b'=') {
                    self.pos += 2;
                    Ok(Tok::Ne)
                } else {
                    Err(self.err("expected '!='"))
                }
            }
            b'<' => {
                self.pos += 1;
                match self.bytes().get(self.pos) {
                    Some(b'=') => {
                        self.pos += 1;
                        Ok(Tok::Le)
                    }
                    Some(b'/') => {
                        self.pos += 1;
                        Ok(Tok::LtSlash)
                    }
                    _ => Ok(Tok::Lt),
                }
            }
            b'>' => {
                self.pos += 1;
                if self.bytes().get(self.pos) == Some(&b'=') {
                    self.pos += 1;
                    Ok(Tok::Ge)
                } else {
                    Ok(Tok::Gt)
                }
            }
            _ if b.is_ascii_alphabetic() || b == b'_' => {
                let name = self.lex_name_raw();
                let upper = name.to_ascii_uppercase();
                if let Some(kw) = KEYWORDS.iter().find(|k| **k == upper) {
                    Ok(Tok::Kw(kw))
                } else {
                    Ok(Tok::Name(name))
                }
            }
            // Typographic quotes, as they appear in the paper's listings.
            _ if self.input[self.pos..].starts_with('\u{201c}') => self.lex_string('\u{201c}'),
            _ => Err(self.err(format!("unexpected character {:?}", b as char))),
        }
    }

    fn lex_name_raw(&mut self) -> String {
        let start = self.pos;
        while let Some(&b) = self.bytes().get(self.pos) {
            if b.is_ascii_alphanumeric() || matches!(b, b'_' | b'-' | b'.') {
                self.pos += 1;
            } else {
                break;
            }
        }
        self.input[start..self.pos].to_string()
    }

    fn lex_string(&mut self, open: char) -> Result<Tok, LexError> {
        let close = if open == '\u{201c}' { '\u{201d}' } else { open };
        self.pos += open.len_utf8();
        let start = self.pos;
        let rest = &self.input[self.pos..];
        match rest.find(close) {
            Some(idx) => {
                let s = rest[..idx].to_string();
                self.pos = start + idx + close.len_utf8();
                Ok(Tok::Str(s))
            }
            None => Err(self.err("unterminated string literal")),
        }
    }

    fn lex_number(&mut self) -> Result<Tok, LexError> {
        let start = self.pos;
        while self.bytes().get(self.pos).is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.bytes().get(self.pos) == Some(&b'.')
            && self.bytes().get(self.pos + 1).is_some_and(|b| b.is_ascii_digit())
        {
            self.pos += 1;
            while self.bytes().get(self.pos).is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = &self.input[start..self.pos];
        text.parse::<f64>().map(Tok::Number).map_err(|_| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<Tok> {
        let mut l = Lexer::new(s);
        let mut out = Vec::new();
        loop {
            let t = l.next_tok().unwrap();
            let done = t == Tok::Eof;
            out.push(t);
            if done {
                return out;
            }
        }
    }

    #[test]
    fn basic_tokens() {
        let t = toks("FOR $p IN document(\"a.xml\")//person");
        assert_eq!(
            t,
            vec![
                Tok::Kw("FOR"),
                Tok::Var("p".into()),
                Tok::Kw("IN"),
                Tok::Kw("DOCUMENT"),
                Tok::LParen,
                Tok::Str("a.xml".into()),
                Tok::RParen,
                Tok::DSlash,
                Tok::Name("person".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn keywords_are_case_insensitive() {
        assert_eq!(toks("for")[0], Tok::Kw("FOR"));
        assert_eq!(toks("Return")[0], Tok::Kw("RETURN"));
        assert_eq!(toks("satisfies")[0], Tok::Kw("SATISFIES"));
    }

    #[test]
    fn comparison_operators() {
        assert_eq!(
            toks("< <= > >= = !=")[..6],
            [Tok::Lt, Tok::Le, Tok::Gt, Tok::Ge, Tok::Eq, Tok::Ne]
        );
    }

    #[test]
    fn numbers_and_strings() {
        assert_eq!(toks("25")[0], Tok::Number(25.0));
        assert_eq!(toks("2.5")[0], Tok::Number(2.5));
        assert_eq!(toks("'hi'")[0], Tok::Str("hi".into()));
        assert_eq!(toks("\u{201c}auction.xml\u{201d}")[0], Tok::Str("auction.xml".into()));
    }

    #[test]
    fn close_tag_token() {
        assert_eq!(toks("</person")[0], Tok::LtSlash);
    }

    #[test]
    fn raw_text_mode() {
        let mut l = Lexer::new("hello world{$x}");
        assert_eq!(l.raw_text_until_markup(), "hello world");
        assert_eq!(l.next_tok().unwrap(), Tok::LBrace);
    }

    #[test]
    fn raw_text_after_peek_rewinds() {
        let mut l = Lexer::new("word <b");
        let _ = l.peek().unwrap();
        assert_eq!(l.raw_text_until_markup(), "word ");
        assert_eq!(l.next_tok().unwrap(), Tok::Lt);
    }

    #[test]
    fn errors() {
        let mut l = Lexer::new("&");
        assert!(l.next_tok().is_err());
        let mut l = Lexer::new("\"unterminated");
        assert!(l.next_tok().is_err());
        let mut l = Lexer::new(": x");
        assert!(l.next_tok().is_err());
    }

    #[test]
    fn assign_and_braces() {
        assert_eq!(toks(":= { }")[..3], [Tok::Assign, Tok::LBrace, Tok::RBrace]);
    }
}
