//! Execution counters.
//!
//! Cheap counters threaded through matching and the operators; the ablation
//! benches and the redundancy discussion in EXPERIMENTS.md read them to show
//! *why* plans differ (e.g. how many pattern-match probes each algebra runs
//! for the same query — the paper's "redundant accesses" argument).

/// Counters accumulated during one plan execution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Index probes performed by pattern matching (one per bound-node ×
    /// pattern-child candidate lookup).
    pub probes: u64,
    /// Candidate nodes individually inspected (axis/predicate checks).
    pub nodes_inspected: u64,
    /// Full APT matches executed (one per Select evaluation).
    pub pattern_matches: u64,
    /// Trees produced by all operators combined.
    pub trees_built: u64,
    /// Base subtrees materialized (copied) into intermediate results —
    /// TAX's "early materialization" cost shows up here.
    pub subtrees_materialized: u64,
    /// Value-join key comparisons/merge steps.
    pub join_steps: u64,
    /// Candidate lists fetched from a tag or value index by pattern
    /// matching (one per index access, before interval slicing). This is
    /// the work a match-cache hit amortizes away — the denominator that
    /// makes hit rates interpretable.
    pub candidate_fetches: u64,
    /// Structural-join element comparisons: interval binary-search steps
    /// plus per-candidate axis/level tests inside pattern matching.
    pub struct_cmps: u64,
    /// Select/Filter evaluations answered from the match cache.
    pub match_cache_hits: u64,
    /// Select/Filter evaluations that probed the match cache and ran the
    /// structural match (populating the cache afterwards).
    pub match_cache_misses: u64,
    /// Buffer requests the execution arena could not serve from a recycled
    /// free list — each one hit the global allocator. With the arena
    /// disabled every buffer request counts here (the seed behavior).
    pub fallback_allocs: u64,
    /// High-water mark of capacity bytes parked in the execution arena
    /// during this request (see [`crate::ExecArena::high_water`]).
    /// [`ExecStats::absorb`] takes the max — the widest arena of a shard
    /// wave — where every other counter sums.
    pub arena_bytes: u64,
    /// 1 when this request ran on a recycled (reset) pooled arena, 0 on a
    /// fresh one; absorbed shard stats sum to the per-wave recycle count.
    pub arena_resets: u64,
}

impl ExecStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        ExecStats::default()
    }

    /// Adds another stats bundle into this one.
    pub fn absorb(&mut self, other: &ExecStats) {
        self.probes += other.probes;
        self.nodes_inspected += other.nodes_inspected;
        self.pattern_matches += other.pattern_matches;
        self.trees_built += other.trees_built;
        self.subtrees_materialized += other.subtrees_materialized;
        self.join_steps += other.join_steps;
        self.candidate_fetches += other.candidate_fetches;
        self.struct_cmps += other.struct_cmps;
        self.match_cache_hits += other.match_cache_hits;
        self.match_cache_misses += other.match_cache_misses;
        self.fallback_allocs += other.fallback_allocs;
        self.arena_bytes = self.arena_bytes.max(other.arena_bytes);
        self.arena_resets += other.arena_resets;
    }

    /// This bundle with the arena counters zeroed — the projection the
    /// arena-equivalence tests compare on, since the arena must leave every
    /// other counter (and the output bytes) untouched.
    pub fn without_arena_counters(&self) -> ExecStats {
        ExecStats { fallback_allocs: 0, arena_bytes: 0, arena_resets: 0, ..*self }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_sums_fields() {
        let mut a = ExecStats {
            probes: 1,
            nodes_inspected: 2,
            pattern_matches: 3,
            trees_built: 4,
            subtrees_materialized: 5,
            join_steps: 6,
            candidate_fetches: 7,
            struct_cmps: 8,
            match_cache_hits: 9,
            match_cache_misses: 10,
            fallback_allocs: 11,
            arena_bytes: 12,
            arena_resets: 13,
        };
        let b = a;
        a.absorb(&b);
        assert_eq!(a.probes, 2);
        assert_eq!(a.join_steps, 12);
        assert_eq!(a.candidate_fetches, 14);
        assert_eq!(a.struct_cmps, 16);
        assert_eq!(a.match_cache_hits, 18);
        assert_eq!(a.match_cache_misses, 20);
        assert_eq!(a.fallback_allocs, 22);
        assert_eq!(a.arena_bytes, 12, "arena high water absorbs by max, not sum");
        assert_eq!(a.arena_resets, 26);
    }

    #[test]
    fn arena_projection_zeroes_only_arena_counters() {
        let s = ExecStats {
            probes: 1,
            trees_built: 2,
            fallback_allocs: 3,
            arena_bytes: 4,
            arena_resets: 5,
            ..ExecStats::default()
        };
        let p = s.without_arena_counters();
        assert_eq!((p.probes, p.trees_built), (1, 2));
        assert_eq!((p.fallback_allocs, p.arena_bytes, p.arena_resets), (0, 0, 0));
    }
}
