//! Execution counters.
//!
//! Cheap counters threaded through matching and the operators; the ablation
//! benches and the redundancy discussion in EXPERIMENTS.md read them to show
//! *why* plans differ (e.g. how many pattern-match probes each algebra runs
//! for the same query — the paper's "redundant accesses" argument).

/// Counters accumulated during one plan execution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Index probes performed by pattern matching (one per bound-node ×
    /// pattern-child candidate lookup).
    pub probes: u64,
    /// Candidate nodes individually inspected (axis/predicate checks).
    pub nodes_inspected: u64,
    /// Full APT matches executed (one per Select evaluation).
    pub pattern_matches: u64,
    /// Trees produced by all operators combined.
    pub trees_built: u64,
    /// Base subtrees materialized (copied) into intermediate results —
    /// TAX's "early materialization" cost shows up here.
    pub subtrees_materialized: u64,
    /// Value-join key comparisons/merge steps.
    pub join_steps: u64,
}

impl ExecStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        ExecStats::default()
    }

    /// Adds another stats bundle into this one.
    pub fn absorb(&mut self, other: &ExecStats) {
        self.probes += other.probes;
        self.nodes_inspected += other.nodes_inspected;
        self.pattern_matches += other.pattern_matches;
        self.trees_built += other.trees_built;
        self.subtrees_materialized += other.subtrees_materialized;
        self.join_steps += other.join_steps;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_sums_fields() {
        let mut a = ExecStats {
            probes: 1,
            nodes_inspected: 2,
            pattern_matches: 3,
            trees_built: 4,
            subtrees_materialized: 5,
            join_steps: 6,
        };
        let b = a;
        a.absorb(&b);
        assert_eq!(a.probes, 2);
        assert_eq!(a.join_steps, 12);
    }
}
