//! XQuery → TLC translation (the Figure 6 algorithm).
//!
//! The translator walks a FLWOR block in the paper's order:
//!
//! 1. **FOR/LET** — each `document(...)`-rooted path opens a new pattern
//!    tree (a Select); paths rooted at a variable extend the variable's
//!    pattern (`addToAPT`). FOR edges are `-`, LET edges `*`. A nested FLWOR
//!    is translated recursively and joined in later (the `NestedQuery`
//!    procedure).
//! 2. **WHERE** — simple predicates become APT node predicates (`-` edges);
//!    aggregate predicates extend with `*` edges and append
//!    Aggregate+Filter; value joins extend both sides with `-` edges and
//!    either record a join predicate (cross-pattern), a within-tree filter
//!    (same pattern), or a *deferred* predicate when one side refers to an
//!    outer query's variable (Figure 8's Join 9). Quantifiers extend with
//!    `*` and filter with EVERY / at-least-one. OR is normalized to DNF and
//!    translated to a Union, deduplicated on the FOR variables.
//! 3. The patterns are joined (Cartesian when no predicate applies, per the
//!    FOR-FOR case of Figure 6), then **Project** (keep bound variables and
//!    everything the return needs) and **NodeIDDE** on FOR variables.
//! 4. **ORDER BY** — extension selects for key paths plus a Sort.
//! 5. **RETURN** — extension selects with `*` edges for each return path
//!    (the pattern-tree reuse of Selects 8/9 in Figure 7), Aggregates for
//!    aggregate arguments, and a final Construct. For subquery blocks the
//!    construct additionally carries *hidden* copies of the deferred join
//!    classes and the dedup key so they "survive the project \[and\]
//!    construct" as Figure 8 requires.

use crate::error::{Error, Result};
use crate::logical_class::{LclGen, LclId};
use crate::ops::construct::{ConstructItem, ConstructValue};
use crate::ops::dupelim::DedupKind;
use crate::ops::filter::{FilterMode, FilterPred};
use crate::ops::join::{JoinPred, JoinSpec};
use crate::ops::sort::SortKey;
use crate::pattern::{Apt, ContentPred, MSpec, PredValue};
use crate::plan::Plan;
use std::collections::HashMap;
use xmldb::{AxisRel, Database, TagId};
use xquery::{
    AggFunc, Axis, Binding, BindingKind, BindingSource, CmpOp, Flwor, NodeTest, PathRoot,
    Quantifier, ReturnExpr, SimplePath, Step, WhereExpr,
};

/// Which algebra's plan shape to generate.
///
/// All three styles share the same operators, executor and store, exactly
/// like the paper's experimental setup (§6.1, all competitors implemented
/// inside TIMBER), so measured differences reflect plan structure:
///
/// * [`Style::Tlc`] — the paper's contribution: annotated pattern edges,
///   nest-joins, pattern-tree reuse via logical classes.
/// * [`Style::Gtp`] — generalized tree patterns: one pattern match per query
///   block with reuse, but every nested (`+`/`*`) path pays an explicit
///   grouping procedure (split / group / merge).
/// * [`Style::Tax`] — per-operator pattern matching: grouping procedures
///   like GTP, plus early materialization of bound-variable subtrees and a
///   fresh document-rooted pattern match + node-id stitch join for every
///   RETURN path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Style {
    /// TLC (the paper's algebra).
    #[default]
    Tlc,
    /// The GTP baseline.
    Gtp,
    /// The TAX baseline.
    Tax,
}

/// Translates a parsed FLWOR into a TLC-style plan.
pub fn translate(q: &Flwor, db: &Database) -> Result<Plan> {
    translate_with_style(q, db, Style::Tlc)
}

/// Translates a parsed FLWOR into a plan of the given style.
///
/// Every freshly compiled plan is verified by the static LC dataflow
/// analysis ([`mod@crate::analyze`]) before it is returned: a translator bug
/// that emits an operator referencing an unavailable class surfaces here as
/// [`Error::Analyze`] instead of a silently empty result at execution time.
pub fn translate_with_style(q: &Flwor, db: &Database, style: Style) -> Result<Plan> {
    let plan = translate_unverified(q, db, style)?;
    crate::analyze::verify(&plan).map_err(Error::Analyze)?;
    Ok(plan)
}

fn translate_unverified(q: &Flwor, db: &Database, style: Style) -> Result<Plan> {
    let q = &desugar_return_subqueries(q);
    let disjuncts = match &q.where_expr {
        None => vec![Vec::new()],
        Some(w) => dnf(w),
    };
    if disjuncts.len() == 1 {
        let mut t = Translator::new(db, style);
        return Ok(t.block(q, &disjuncts[0], false)?.plan);
    }
    // OR: translate phase 1 per disjunct with identically-seeded label
    // generators (bindings are processed first, so variable labels agree
    // across branches), union the branches, then run phase 2 once.
    let mut branches = Vec::with_capacity(disjuncts.len());
    let mut last: Option<Translator> = None;
    let mut max_issued = 0;
    let mut dedup_on: Vec<LclId> = Vec::new();
    for d in &disjuncts {
        let mut t = Translator::new(db, style);
        t.push_block();
        let p1 = t.phase1(q, d, false)?;
        dedup_on = t.current().for_var_lcls();
        max_issued = max_issued.max(t.lcl.issued());
        branches.push(p1);
        last = Some(t);
    }
    let mut t = last.expect("at least one disjunct");
    t.lcl = LclGen::new();
    for _ in 0..max_issued {
        t.lcl.fresh();
    }
    let union = Plan::Union { inputs: branches, dedup_on };
    let out = t.phase2(q, union, false)?;
    t.pop_block();
    Ok(out.plan)
}

/// Rewrites `RETURN <nested FLWOR>` into an equivalent synthetic LET
/// binding (`LET $__retN := <FLWOR> ... RETURN ... $__retN ...`), which the
/// NestedQuery machinery already handles. Applied recursively to subquery
/// bodies.
fn desugar_return_subqueries(q: &Flwor) -> Flwor {
    let mut q = q.clone();
    for b in &mut q.bindings {
        if let BindingSource::Subquery(s) = &mut b.source {
            **s = desugar_return_subqueries(s);
        }
    }
    let mut lets = Vec::new();
    let mut counter = 0usize;
    q.ret = desugar_ret(q.ret.clone(), &mut lets, &mut counter);
    q.bindings.extend(lets);
    q
}

fn desugar_ret(r: ReturnExpr, lets: &mut Vec<Binding>, counter: &mut usize) -> ReturnExpr {
    match r {
        ReturnExpr::Subquery(s) => {
            let var = format!("__ret{counter}");
            *counter += 1;
            let inner = desugar_return_subqueries(&s);
            lets.push(Binding {
                kind: BindingKind::Let,
                var: var.clone(),
                source: BindingSource::Subquery(Box::new(inner)),
            });
            ReturnExpr::Path(SimplePath::var(&var))
        }
        ReturnExpr::Element { tag, attrs, children } => ReturnExpr::Element {
            tag,
            attrs,
            children: children.into_iter().map(|c| desugar_ret(c, lets, counter)).collect(),
        },
        other => other,
    }
}

/// Disjunctive normal form of a WHERE expression.
fn dnf(w: &WhereExpr) -> Vec<Vec<WhereExpr>> {
    match w {
        WhereExpr::Or(a, b) => {
            let mut out = dnf(a);
            out.extend(dnf(b));
            out
        }
        WhereExpr::And(a, b) => {
            let left = dnf(a);
            let right = dnf(b);
            let mut out = Vec::with_capacity(left.len() * right.len());
            for l in &left {
                for r in &right {
                    let mut c = l.clone();
                    c.extend(r.iter().cloned());
                    out.push(c);
                }
            }
            out
        }
        leaf => vec![vec![leaf.clone()]],
    }
}

/// Output of translating one block.
pub struct BlockOut {
    /// The block's plan.
    pub plan: Plan,
    /// Construct mapping for subquery resolution.
    pub ret_map: RetMap,
    /// Deferred predicates to be applied by the enclosing block's join.
    pub deferred: Vec<JoinPred>,
    /// Class to deduplicate right matches on (the block's first FOR var).
    pub dedup_lcl: Option<LclId>,
    /// LET vs FOR determines the outer join's right matching spec.
    pub kind: BindingKind,
}

/// Maps step names of a subquery variable's paths onto the classes of the
/// subquery's constructed output.
#[derive(Debug, Clone, Default)]
pub struct RetMap {
    /// Class of the constructed root element.
    pub root_lcl: Option<LclId>,
    /// Tag of the constructed root element (so `$a/mya` resolves to the
    /// roots themselves when the subquery constructs `<mya>`).
    pub root_tag: Option<String>,
    /// `tag name → class` for the root element's children.
    pub children: HashMap<String, LclId>,
}

/// One pattern tree under construction plus its post-select operator chain.
struct SelectBuild {
    apt: Apt,
    post: Vec<PostOp>,
}

enum PostOp {
    Aggregate {
        func: AggFunc,
        over: LclId,
        new_lcl: LclId,
    },
    Filter {
        lcl: LclId,
        pred: FilterPred,
        mode: FilterMode,
    },
    /// Baseline styles only: the grouping procedure.
    GroupBy {
        by: LclId,
        collect: LclId,
    },
}

/// A translated subquery waiting to be joined in.
struct SubBuild {
    out: BlockOut,
}

#[derive(Clone)]
enum VarBinding {
    /// Bound to a pattern node of select `select` in its block.
    Pattern { select: usize, lcl: LclId, kind: BindingKind },
    /// Bound to a subquery's constructed output.
    Sub { sub: usize },
}

#[derive(Default)]
struct BlockState {
    selects: Vec<SelectBuild>,
    subs: Vec<SubBuild>,
    vars: HashMap<String, VarBinding>,
    var_order: Vec<String>,
    /// Join predicates between two selects of this block:
    /// (left select, left lcl, op, right select, right lcl).
    join_preds: Vec<(usize, LclId, CmpOp, usize, LclId)>,
    /// Predicates deferred to the enclosing block (this block is a sub):
    /// (outer lcl, op, inner lcl).
    deferred: Vec<JoinPred>,
    /// Filters/aggregates to apply after all joins of this block.
    post_join: Vec<PostOp>,
}

impl BlockState {
    fn for_var_lcls(&self) -> Vec<LclId> {
        self.var_order
            .iter()
            .filter_map(|v| match &self.vars[v] {
                VarBinding::Pattern { lcl, kind: BindingKind::For, .. } => Some(*lcl),
                _ => None,
            })
            .collect()
    }

    fn all_pattern_var_lcls(&self) -> Vec<LclId> {
        self.var_order
            .iter()
            .filter_map(|v| match &self.vars[v] {
                VarBinding::Pattern { lcl, .. } => Some(*lcl),
                _ => None,
            })
            .collect()
    }
}

struct Translator<'a> {
    db: &'a Database,
    lcl: LclGen,
    blocks: Vec<BlockState>,
    style: Style,
}

/// Where a path resolved to.
enum Resolved {
    /// A pattern node: (block index, select index, class).
    Pattern { block: usize, select: usize, lcl: LclId },
    /// A class of a subquery's constructed output.
    SubMapped { lcl: LclId },
}

impl<'a> Translator<'a> {
    fn new(db: &'a Database, style: Style) -> Self {
        Translator { db, lcl: LclGen::new(), blocks: Vec::new(), style }
    }

    /// The class a pattern-bound variable's own node carries.
    fn var_pattern_lcl(&self, name: &str) -> Option<LclId> {
        self.blocks.iter().rev().find_map(|b| match b.vars.get(name) {
            Some(VarBinding::Pattern { lcl, .. }) => Some(*lcl),
            _ => None,
        })
    }

    /// True when grouped matches must pay the baseline grouping procedure.
    fn needs_grouping(&self) -> bool {
        self.style != Style::Tlc
    }

    fn push_block(&mut self) {
        self.blocks.push(BlockState::default());
    }

    fn pop_block(&mut self) {
        self.blocks.pop();
    }

    fn current(&self) -> &BlockState {
        self.blocks.last().expect("inside a block")
    }

    fn tag_of(&self, test: &NodeTest) -> Result<TagId> {
        match test {
            NodeTest::Tag(t) => Ok(self.db.interner().intern(t)),
            NodeTest::Attribute(a) => Ok(self.db.interner().intern(&format!("@{a}"))),
            NodeTest::Text => Err(Error::Unsupported("text() in a non-final position".into())),
        }
    }

    fn axis_of(a: Axis) -> AxisRel {
        match a {
            Axis::Child => AxisRel::Child,
            Axis::Descendant => AxisRel::Descendant,
        }
    }

    // ------------------------------------------------------------------
    // Block translation
    // ------------------------------------------------------------------

    fn block(&mut self, q: &Flwor, conjuncts: &[WhereExpr], as_sub: bool) -> Result<BlockOut> {
        self.push_block();
        let p1 = self.phase1(q, conjuncts, as_sub)?;
        let out = self.phase2(q, p1, as_sub)?;
        self.pop_block();
        Ok(out)
    }

    /// Bindings + WHERE + joins + post-join ops + Project + NodeIDDE.
    fn phase1(&mut self, q: &Flwor, conjuncts: &[WhereExpr], as_sub: bool) -> Result<Plan> {
        for b in &q.bindings {
            self.bind(b)?;
        }
        for c in conjuncts {
            self.conjunct(c)?;
        }
        self.assemble(as_sub)
    }

    /// ORDER BY + RETURN.
    fn phase2(&mut self, q: &Flwor, mut plan: Plan, as_sub: bool) -> Result<BlockOut> {
        if let Some(ob) = &q.order_by {
            if as_sub {
                return Err(Error::Unsupported("ORDER BY inside a subquery".into()));
            }
            let mut keys = Vec::with_capacity(ob.keys.len());
            for key_path in &ob.keys {
                let (p, lcl) = self.return_path(plan, key_path, MSpec::Opt)?;
                plan = p;
                keys.push(SortKey { lcl, descending: ob.descending });
            }
            plan = Plan::Sort { input: Box::new(plan), keys };
        }
        let (mut plan, mut items, ret_map) = self.process_return(plan, &q.ret)?;
        let block = self.blocks.last().expect("inside a block");
        let deferred = block.deferred.clone();
        let dedup_lcl = block.for_var_lcls().first().copied();
        if as_sub {
            // Hidden survivors for the enclosing join (Figure 8).
            let mut hidden: Vec<LclId> = deferred.iter().map(|d| d.right).collect();
            hidden.extend(dedup_lcl);
            hidden.sort_unstable();
            hidden.dedup();
            let Some(ConstructItem::Element { children, .. }) = items.first_mut() else {
                return Err(Error::Unsupported(
                    "a subquery's RETURN must be an element constructor".into(),
                ));
            };
            for h in hidden {
                children.push(ConstructItem::LclRef { lcl: h, hidden: true });
            }
        }
        plan = Plan::Construct { input: Box::new(plan), spec: items };
        Ok(BlockOut { plan, ret_map, deferred, dedup_lcl, kind: BindingKind::For })
    }

    // ------------------------------------------------------------------
    // Bindings
    // ------------------------------------------------------------------

    fn bind(&mut self, b: &Binding) -> Result<()> {
        match &b.source {
            BindingSource::Path(path) => {
                let mspec = match b.kind {
                    BindingKind::For => MSpec::One,
                    BindingKind::Let => MSpec::Star,
                };
                match &path.root {
                    PathRoot::Document(doc) => {
                        let root_lcl = self.lcl.fresh();
                        let apt = Apt::for_document(doc.clone(), root_lcl);
                        let block = self.blocks.len() - 1;
                        self.blocks[block].selects.push(SelectBuild { apt, post: Vec::new() });
                        let select = self.blocks[block].selects.len() - 1;
                        let lcl = self.add_steps(block, select, None, &path.steps, mspec, None)?;
                        let lcl = lcl.unwrap_or(root_lcl);
                        if b.kind == BindingKind::Let && lcl != root_lcl && self.needs_grouping() {
                            self.blocks[block].selects[select]
                                .post
                                .push(PostOp::GroupBy { by: root_lcl, collect: lcl });
                        }
                        self.blocks[block].vars.insert(
                            b.var.clone(),
                            VarBinding::Pattern { select, lcl, kind: b.kind },
                        );
                        if !self.blocks[block].var_order.contains(&b.var) {
                            self.blocks[block].var_order.push(b.var.clone());
                        }
                    }
                    PathRoot::Var(v) => match self.resolve_var_path(path, mspec, None)? {
                        Resolved::Pattern { block, select, lcl } => {
                            if block != self.blocks.len() - 1 {
                                return Err(Error::Unsupported(format!(
                                    "FOR/LET over outer variable ${v}"
                                )));
                            }
                            if b.kind == BindingKind::Let && self.needs_grouping() {
                                if let Some(by) = self.var_pattern_lcl(v) {
                                    if by != lcl {
                                        self.blocks[block].selects[select]
                                            .post
                                            .push(PostOp::GroupBy { by, collect: lcl });
                                    }
                                }
                            }
                            self.blocks[block].vars.insert(
                                b.var.clone(),
                                VarBinding::Pattern { select, lcl, kind: b.kind },
                            );
                            if !self.blocks[block].var_order.contains(&b.var) {
                                self.blocks[block].var_order.push(b.var.clone());
                            }
                        }
                        Resolved::SubMapped { .. } => {
                            return Err(Error::Unsupported(
                                "FOR/LET over a subquery variable's path".into(),
                            ))
                        }
                    },
                }
            }
            BindingSource::Subquery(sub) => {
                if b.kind == BindingKind::For {
                    return Err(Error::Unsupported(
                        "FOR over a nested FLWOR (use LET; the workload's nested \
                         queries are LET-bound)"
                            .into(),
                    ));
                }
                let disjuncts = match &sub.where_expr {
                    None => vec![Vec::new()],
                    Some(w) => {
                        let d = dnf(w);
                        if d.len() > 1 {
                            return Err(Error::Unsupported("OR inside a subquery".into()));
                        }
                        d
                    }
                };
                let mut out = self.block(sub, &disjuncts[0], true)?;
                out.kind = b.kind;
                let block = self.blocks.len() - 1;
                self.blocks[block].subs.push(SubBuild { out });
                let sub_idx = self.blocks[block].subs.len() - 1;
                self.blocks[block].vars.insert(b.var.clone(), VarBinding::Sub { sub: sub_idx });
                if !self.blocks[block].var_order.contains(&b.var) {
                    self.blocks[block].var_order.push(b.var.clone());
                }
            }
        }
        Ok(())
    }

    /// Adds a step chain to a select's APT, reusing identical existing
    /// children (`addToAPT`). Returns the leaf's class, or `None` for an
    /// empty chain. `leaf_pred` lands on the final node.
    fn add_steps(
        &mut self,
        block: usize,
        select: usize,
        from: Option<usize>,
        steps: &[Step],
        mspec: MSpec,
        leaf_pred: Option<ContentPred>,
    ) -> Result<Option<LclId>> {
        let mut at = from;
        let mut lcl = None;
        let last = steps.len().checked_sub(1);
        for (i, step) in steps.iter().enumerate() {
            if step.test == NodeTest::Text {
                // text() is handled by the caller (value access, not a node).
                break;
            }
            let tag = self.tag_of(&step.test)?;
            let axis = Self::axis_of(step.axis);
            let pred = if Some(i) == last { leaf_pred.clone() } else { None };
            // Reuse an identical child.
            let apt = &self.blocks[block].selects[select].apt;
            let existing = apt.children_of(at).find(|&c| {
                let n = &apt.nodes[c];
                n.tag == tag && n.axis == axis && n.mspec == mspec && n.pred == pred
            });
            let idx = match existing {
                Some(c) => c,
                None => {
                    let fresh = self.lcl.fresh();
                    self.blocks[block].selects[select].apt.add(at, axis, mspec, tag, pred, fresh)
                }
            };
            lcl = Some(self.blocks[block].selects[select].apt.nodes[idx].lcl);
            at = Some(idx);
        }
        Ok(lcl)
    }

    /// Resolves a variable-rooted path, extending the variable's pattern
    /// when it is pattern-bound or mapping through the subquery's construct
    /// classes when it is subquery-bound.
    fn resolve_var_path(
        &mut self,
        path: &SimplePath,
        mspec: MSpec,
        leaf_pred: Option<ContentPred>,
    ) -> Result<Resolved> {
        let PathRoot::Var(v) = &path.root else {
            return Err(Error::Unsupported("document-rooted path in this position".into()));
        };
        // Lexical lookup, innermost block first.
        let Some((block, binding)) = self
            .blocks
            .iter()
            .enumerate()
            .rev()
            .find_map(|(i, b)| b.vars.get(v).map(|vb| (i, vb.clone())))
        else {
            return Err(Error::UnboundVariable(v.clone()));
        };
        match binding {
            VarBinding::Pattern { select, lcl, .. } => {
                let anchor = self.blocks[block].selects[select].apt.node_with_lcl(lcl);
                // anchor None ⇒ the variable is the pattern root itself.
                let leaf = self.add_steps(block, select, anchor, &path.steps, mspec, leaf_pred)?;
                Ok(Resolved::Pattern { block, select, lcl: leaf.unwrap_or(lcl) })
            }
            VarBinding::Sub { sub } => {
                let map = &self.blocks[block].subs[sub].out.ret_map;
                let steps = strip_text(&path.steps);
                match steps.len() {
                    0 => map
                        .root_lcl
                        .map(|lcl| Resolved::SubMapped { lcl })
                        .ok_or_else(|| Error::Unsupported("subquery without a root class".into())),
                    1 => {
                        let NodeTest::Tag(tag) = &steps[0].test else {
                            return Err(Error::Unsupported(
                                "attribute step into a subquery variable".into(),
                            ));
                        };
                        if let Some(&lcl) = map.children.get(tag) {
                            return Ok(Resolved::SubMapped { lcl });
                        }
                        // `$a/mya` where the subquery constructs `<mya>`:
                        // treat as the constructed roots themselves.
                        if map.root_tag.as_deref() == Some(tag) {
                            if let Some(lcl) = map.root_lcl {
                                return Ok(Resolved::SubMapped { lcl });
                            }
                        }
                        Err(Error::Unsupported(format!(
                            "path ${v}/{tag} does not match the subquery's constructor"
                        )))
                    }
                    _ => Err(Error::Unsupported("multi-step path into a subquery variable".into())),
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // WHERE conjuncts
    // ------------------------------------------------------------------

    fn conjunct(&mut self, w: &WhereExpr) -> Result<()> {
        match w {
            WhereExpr::And(a, b) => {
                self.conjunct(a)?;
                self.conjunct(b)
            }
            WhereExpr::Or(..) => {
                Err(Error::Unsupported("OR must be normalized before this point".into()))
            }
            WhereExpr::Comparison { path, op, value } => {
                let pred = ContentPred { op: *op, value: PredValue::from(value) };
                if path.steps.is_empty() || strip_text(&path.steps).is_empty() {
                    // Predicate on the variable node itself: post-select filter.
                    return self.add_value_filter(path, pred, FilterMode::Alo);
                }
                match self.resolve_var_path(path, MSpec::One, Some(pred.clone()))? {
                    Resolved::Pattern { .. } => Ok(()), // predicate embedded in the APT
                    Resolved::SubMapped { lcl } => {
                        let b = self.blocks.len() - 1;
                        self.blocks[b].post_join.push(PostOp::Filter {
                            lcl,
                            pred: FilterPred::Content(pred),
                            mode: FilterMode::Alo,
                        });
                        Ok(())
                    }
                }
            }
            WhereExpr::AggrComparison { func, path, op, value } => {
                let pred = ContentPred { op: *op, value: PredValue::from(value) };
                let new_lcl = self.lcl.fresh();
                match self.resolve_var_path(path, MSpec::Star, None)? {
                    Resolved::Pattern { block, select, lcl } => {
                        let grouping = self
                            .needs_grouping()
                            .then(|| match &path.root {
                                PathRoot::Var(v) => self.var_pattern_lcl(v),
                                PathRoot::Document(_) => None,
                            })
                            .flatten();
                        let post = &mut self.blocks[block].selects[select].post;
                        if let Some(by) = grouping {
                            if by != lcl {
                                post.push(PostOp::GroupBy { by, collect: lcl });
                            }
                        }
                        post.push(PostOp::Aggregate { func: *func, over: lcl, new_lcl });
                        post.push(PostOp::Filter {
                            lcl: new_lcl,
                            pred: FilterPred::Content(pred),
                            mode: FilterMode::Alo,
                        });
                        Ok(())
                    }
                    Resolved::SubMapped { lcl } => {
                        let b = self.blocks.len() - 1;
                        self.blocks[b].post_join.push(PostOp::Aggregate {
                            func: *func,
                            over: lcl,
                            new_lcl,
                        });
                        self.blocks[b].post_join.push(PostOp::Filter {
                            lcl: new_lcl,
                            pred: FilterPred::Content(pred),
                            mode: FilterMode::Alo,
                        });
                        Ok(())
                    }
                }
            }
            WhereExpr::ValueJoin { left, op, right } => self.value_join(left, *op, right),
            WhereExpr::Quantified { quant, var: _, path, cond_path, op, value } => {
                let mode = match quant {
                    Quantifier::Every => FilterMode::Every,
                    Quantifier::Some => FilterMode::Alo,
                };
                let pred = ContentPred { op: *op, value: PredValue::from(value) };
                let cond_steps = strip_text(&cond_path.steps);
                match self.resolve_var_path(path, MSpec::Star, None)? {
                    Resolved::Pattern { block, select, lcl } => {
                        // Extend with the SATISFIES path (if any), then filter.
                        let anchor = self.blocks[block].selects[select].apt.node_with_lcl(lcl);
                        let leaf = self
                            .add_steps(block, select, anchor, &cond_steps, MSpec::Star, None)?
                            .unwrap_or(lcl);
                        if self.needs_grouping() {
                            if let PathRoot::Var(v) = &path.root {
                                if let Some(by) = self.var_pattern_lcl(v) {
                                    if by != leaf {
                                        self.blocks[block].selects[select]
                                            .post
                                            .push(PostOp::GroupBy { by, collect: leaf });
                                    }
                                }
                            }
                        }
                        self.blocks[block].selects[select].post.push(PostOp::Filter {
                            lcl: leaf,
                            pred: FilterPred::Content(pred),
                            mode,
                        });
                        Ok(())
                    }
                    Resolved::SubMapped { lcl } => {
                        if !cond_steps.is_empty() {
                            return Err(Error::Unsupported(
                                "SATISFIES path below a subquery class".into(),
                            ));
                        }
                        let b = self.blocks.len() - 1;
                        self.blocks[b].post_join.push(PostOp::Filter {
                            lcl,
                            pred: FilterPred::Content(pred),
                            mode,
                        });
                        Ok(())
                    }
                }
            }
        }
    }

    /// A zero-step comparison (`$i > 2` style) becomes a post-select filter
    /// on the variable's own class.
    fn add_value_filter(
        &mut self,
        path: &SimplePath,
        pred: ContentPred,
        mode: FilterMode,
    ) -> Result<()> {
        match self.resolve_var_path(path, MSpec::One, None)? {
            Resolved::Pattern { block, select, lcl } => {
                self.blocks[block].selects[select].post.push(PostOp::Filter {
                    lcl,
                    pred: FilterPred::Content(pred),
                    mode,
                });
                Ok(())
            }
            Resolved::SubMapped { lcl } => {
                let b = self.blocks.len() - 1;
                self.blocks[b].post_join.push(PostOp::Filter {
                    lcl,
                    pred: FilterPred::Content(pred),
                    mode,
                });
                Ok(())
            }
        }
    }

    /// The block a variable-rooted path's variable is bound in.
    fn var_block(&self, path: &SimplePath) -> Option<usize> {
        let PathRoot::Var(v) = &path.root else { return None };
        self.blocks.iter().enumerate().rev().find_map(|(i, b)| b.vars.contains_key(v).then_some(i))
    }

    fn value_join(&mut self, left: &SimplePath, op: CmpOp, right: &SimplePath) -> Result<()> {
        let cur = self.blocks.len() - 1;
        // A side that lives in an *outer* block feeds a deferred LET join,
        // where matchless outer trees must survive (`*` right edge) — so the
        // outer path extends with `?` instead of `-`.
        let l_mspec =
            if self.var_block(left).is_some_and(|b| b < cur) { MSpec::Opt } else { MSpec::One };
        let r_mspec =
            if self.var_block(right).is_some_and(|b| b < cur) { MSpec::Opt } else { MSpec::One };
        let l = self.resolve_var_path(left, l_mspec, None)?;
        let r = self.resolve_var_path(right, r_mspec, None)?;
        match (l, r) {
            (
                Resolved::Pattern { block: bl, select: sl, lcl: ll },
                Resolved::Pattern { block: br, select: sr, lcl: rl },
            ) => {
                if bl == cur && br == cur {
                    if sl == sr {
                        // Within one pattern: post-select filter comparing
                        // the two classes.
                        self.blocks[cur].selects[sl].post.push(PostOp::Filter {
                            lcl: ll,
                            pred: FilterPred::CmpLcl { op, other: rl },
                            mode: FilterMode::Alo,
                        });
                    } else {
                        self.blocks[cur].join_preds.push((sl, ll, op, sr, rl));
                    }
                    Ok(())
                } else if bl < cur && br == cur {
                    // Left side is an outer variable: defer (outer on the
                    // left of the eventual outer⋈inner join).
                    self.blocks[cur].deferred.push(JoinPred::value(ll, op, rl));
                    Ok(())
                } else if br < cur && bl == cur {
                    self.blocks[cur].deferred.push(JoinPred::value(rl, flip(op), ll));
                    Ok(())
                } else {
                    Err(Error::Unsupported("join between two outer variables".into()))
                }
            }
            _ => Err(Error::Unsupported("value join involving a subquery variable".into())),
        }
    }

    // ------------------------------------------------------------------
    // Assembly
    // ------------------------------------------------------------------

    fn chain_select(&self, select: &SelectBuild, input: Option<Plan>) -> Plan {
        let mut plan = Plan::Select { input: input.map(Box::new), apt: select.apt.clone() };
        for post in &select.post {
            plan = match post {
                PostOp::Aggregate { func, over, new_lcl } => Plan::Aggregate {
                    input: Box::new(plan),
                    func: *func,
                    over: *over,
                    new_lcl: *new_lcl,
                },
                PostOp::Filter { lcl, pred, mode } => Plan::Filter {
                    input: Box::new(plan),
                    lcl: *lcl,
                    pred: pred.clone(),
                    mode: *mode,
                },
                PostOp::GroupBy { by, collect } => {
                    Plan::GroupBy { input: Box::new(plan), by: *by, collect: *collect }
                }
            };
        }
        plan
    }

    fn assemble(&mut self, as_sub: bool) -> Result<Plan> {
        let cur = self.blocks.len() - 1;
        let nselects = self.blocks[cur].selects.len();
        if nselects == 0 {
            return Err(Error::Unsupported("a query block needs at least one pattern".into()));
        }
        let mut plan = {
            let block = &self.blocks[cur];
            self.chain_select(&block.selects[0], None)
        };
        let mut joined = 1usize;
        let mut preds = self.blocks[cur].join_preds.clone();
        while joined < nselects {
            let right = {
                let block = &self.blocks[cur];
                self.chain_select(&block.selects[joined], None)
            };
            // One predicate connecting the new select to the joined prefix
            // becomes the join predicate; the rest become post filters.
            let pick = preds.iter().position(|(sl, _, _, sr, _)| {
                (*sr == joined && *sl < joined) || (*sl == joined && *sr < joined)
            });
            let pred = pick.map(|i| {
                let (sl, ll, op, _sr, rl) = preds.remove(i);
                if sl == joined {
                    // New select is on the left of the source predicate.
                    JoinPred::value(rl, flip(op), ll)
                } else {
                    JoinPred::value(ll, op, rl)
                }
            });
            let root = self.lcl.fresh();
            plan = Plan::Join {
                left: Box::new(plan),
                right: Box::new(right),
                spec: JoinSpec {
                    root_lcl: root,
                    right_mspec: MSpec::One,
                    pred,
                    dedup_right_on: None,
                },
            };
            joined += 1;
            // Remaining predicates fully inside the joined prefix → filters.
            let mut i = 0;
            while i < preds.len() {
                let (sl, ll, op, sr, rl) = preds[i];
                if sl < joined && sr < joined {
                    preds.remove(i);
                    plan = Plan::Filter {
                        input: Box::new(plan),
                        lcl: ll,
                        pred: FilterPred::CmpLcl { op, other: rl },
                        mode: FilterMode::Alo,
                    };
                } else {
                    i += 1;
                }
            }
        }
        // Join in the subqueries.
        let nsubs = self.blocks[cur].subs.len();
        for s in 0..nsubs {
            let (sub_plan, mut deferred, dedup, kind) = {
                let sub = &self.blocks[cur].subs[s];
                (sub.out.plan.clone(), sub.out.deferred.clone(), sub.out.dedup_lcl, sub.out.kind)
            };
            let pred = if deferred.is_empty() { None } else { Some(deferred.remove(0)) };
            let root = self.lcl.fresh();
            let right_mspec = match kind {
                BindingKind::Let => MSpec::Star,
                BindingKind::For => MSpec::One,
            };
            plan = Plan::Join {
                left: Box::new(plan),
                right: Box::new(sub_plan),
                spec: JoinSpec { root_lcl: root, right_mspec, pred, dedup_right_on: dedup },
            };
            if right_mspec == MSpec::Star && self.needs_grouping() {
                // The baselines recover the LET nesting with a grouping
                // procedure over the outer FOR variable.
                let by = self.blocks[cur].for_var_lcls().first().copied();
                let collect = self.blocks[cur].subs[s].out.ret_map.root_lcl;
                if let (Some(by), Some(collect)) = (by, collect) {
                    plan = Plan::GroupBy { input: Box::new(plan), by, collect };
                }
            }
            for extra in deferred {
                plan = Plan::Filter {
                    input: Box::new(plan),
                    lcl: extra.left,
                    pred: FilterPred::CmpLcl { op: extra.op, other: extra.right },
                    mode: FilterMode::Alo,
                };
            }
        }
        // Post-join filters/aggregates (subquery-class predicates).
        let post: Vec<PostOp> = std::mem::take(&mut self.blocks[cur].post_join);
        for p in post {
            plan = match p {
                PostOp::Aggregate { func, over, new_lcl } => {
                    Plan::Aggregate { input: Box::new(plan), func, over, new_lcl }
                }
                PostOp::Filter { lcl, pred, mode } => {
                    Plan::Filter { input: Box::new(plan), lcl, pred, mode }
                }
                PostOp::GroupBy { by, collect } => {
                    Plan::GroupBy { input: Box::new(plan), by, collect }
                }
            };
        }
        // Project + NodeIDDE.
        let keep = self.keep_list();
        plan = Plan::Project { input: Box::new(plan), keep };
        if self.style == Style::Tax {
            // TAX brings the entire subtree of every bound variable into
            // memory right after its FOR/WHERE processing (§6.1).
            let lcls = self.blocks[cur].all_pattern_var_lcls();
            if !lcls.is_empty() {
                plan = Plan::Materialize { input: Box::new(plan), lcls };
            }
        }
        let mut dedup_on = self.blocks[cur].for_var_lcls();
        if as_sub {
            // Distinct (FOR vars, deferred join values) — see DESIGN.md on
            // Figure 8's inner NodeIDDE.
            dedup_on.extend(self.blocks[cur].deferred.iter().map(|d| d.right));
        }
        if !dedup_on.is_empty() {
            plan = Plan::DupElim { input: Box::new(plan), on: dedup_on, kind: DedupKind::NodeId };
        }
        Ok(plan)
    }

    /// Classes to keep through the projection: bound variables, deferred
    /// join values, and the classes of subquery construct output.
    fn keep_list(&self) -> Vec<LclId> {
        let block = self.current();
        let mut keep = block.all_pattern_var_lcls();
        keep.extend(block.deferred.iter().map(|d| d.right));
        for sub in &block.subs {
            keep.extend(sub.out.ret_map.root_lcl);
            keep.extend(sub.out.ret_map.children.values().copied());
        }
        keep.sort_unstable();
        keep.dedup();
        keep
    }

    // ------------------------------------------------------------------
    // RETURN
    // ------------------------------------------------------------------

    /// Adds an extension select for a return/order path; returns the leaf
    /// class whose members the path denotes.
    fn return_path(
        &mut self,
        plan: Plan,
        path: &SimplePath,
        mspec: MSpec,
    ) -> Result<(Plan, LclId)> {
        match &path.root {
            PathRoot::Document(_) => Err(Error::Unsupported("document-rooted RETURN path".into())),
            PathRoot::Var(v) => {
                let binding = self
                    .blocks
                    .iter()
                    .rev()
                    .find_map(|b| b.vars.get(v))
                    .cloned()
                    .ok_or_else(|| Error::UnboundVariable(v.clone()))?;
                match binding {
                    VarBinding::Pattern { lcl, .. } => {
                        let steps = strip_text(&path.steps);
                        if steps.is_empty() {
                            return Ok((plan, lcl));
                        }
                        if self.style == Style::Tax {
                            if let Some(out) = self.tax_return_path(plan.clone(), lcl, &steps)? {
                                return Ok(out);
                            }
                        }
                        // Fresh extension pattern anchored at the variable's
                        // class (pattern-tree reuse, Selects 8/9 of Fig. 7).
                        let mut apt = Apt::extending(lcl);
                        let mut at = None;
                        let mut leaf = lcl;
                        for step in &steps {
                            let tag = self.tag_of(&step.test)?;
                            let fresh = self.lcl.fresh();
                            at = Some(apt.add(
                                at,
                                Self::axis_of(step.axis),
                                mspec,
                                tag,
                                None,
                                fresh,
                            ));
                            leaf = fresh;
                        }
                        let mut out = Plan::Select { input: Some(Box::new(plan)), apt };
                        if self.style == Style::Gtp {
                            // GTP retrieves the nested return nodes through a
                            // grouping procedure instead of a nest match.
                            out = Plan::GroupBy { input: Box::new(out), by: lcl, collect: leaf };
                        }
                        Ok((out, leaf))
                    }
                    VarBinding::Sub { .. } => match self.resolve_var_path(path, mspec, None)? {
                        Resolved::SubMapped { lcl } => Ok((plan, lcl)),
                        Resolved::Pattern { lcl, .. } => Ok((plan, lcl)),
                    },
                }
            }
        }
    }

    /// TAX's RETURN handling: a fresh document-rooted pattern match for the
    /// path ("TAX will create a selection for every path"), stitched back to
    /// the FOR/WHERE result with a node-identity join, then the grouping
    /// procedure to cluster the matches. Returns `None` when the variable's
    /// defining pattern is not document-rooted (falls back to the shared
    /// extension-select code path).
    fn tax_return_path(
        &mut self,
        plan: Plan,
        var_lcl: LclId,
        steps: &[Step],
    ) -> Result<Option<(Plan, LclId)>> {
        // Locate the variable's defining pattern and its root→variable chain.
        let mut def: Option<(String, Vec<(AxisRel, TagId)>)> = None;
        'search: for b in &self.blocks {
            for sel in &b.selects {
                let crate::pattern::AptRoot::Document { name, lcl: root_lcl } = &sel.apt.root
                else {
                    continue;
                };
                if *root_lcl == var_lcl {
                    def = Some((name.clone(), Vec::new()));
                    break 'search;
                }
                if let Some(idx) = sel.apt.node_with_lcl(var_lcl) {
                    let mut chain = Vec::new();
                    let mut cur = Some(idx);
                    while let Some(i) = cur {
                        let n = &sel.apt.nodes[i];
                        chain.push((n.axis, n.tag));
                        cur = n.parent;
                    }
                    chain.reverse();
                    def = Some((name.clone(), chain));
                    break 'search;
                }
            }
        }
        let Some((doc, chain)) = def else {
            return Ok(None);
        };
        // Fresh full pattern match from the document root (no reuse).
        let mut apt = Apt::for_document(doc, self.lcl.fresh());
        let mut at = None;
        for (axis, tag) in chain {
            let fresh = self.lcl.fresh();
            at = Some(apt.add(at, axis, MSpec::One, tag, None, fresh));
        }
        let cloned_var_lcl = match at {
            Some(i) => apt.nodes[i].lcl,
            None => apt.root_lcl(),
        };
        let mut leaf = cloned_var_lcl;
        for step in steps {
            let tag = self.tag_of(&step.test)?;
            let fresh = self.lcl.fresh();
            at = Some(apt.add(at, Self::axis_of(step.axis), MSpec::One, tag, None, fresh));
            leaf = fresh;
        }
        let right = Plan::Select { input: None, apt };
        let root = self.lcl.fresh();
        let join = Plan::Join {
            left: Box::new(plan),
            right: Box::new(right),
            spec: JoinSpec {
                root_lcl: root,
                right_mspec: MSpec::Star,
                pred: Some(JoinPred::node_id(var_lcl, cloned_var_lcl)),
                dedup_right_on: None,
            },
        };
        let grouped = Plan::GroupBy { input: Box::new(join), by: var_lcl, collect: leaf };
        Ok(Some((grouped, leaf)))
    }

    fn process_return(
        &mut self,
        plan: Plan,
        ret: &ReturnExpr,
    ) -> Result<(Plan, Vec<ConstructItem>, RetMap)> {
        let mut map = RetMap::default();
        let (plan, item) = self.return_item(plan, ret, &mut map, true)?;
        Ok((plan, vec![item], map))
    }

    fn return_item(
        &mut self,
        plan: Plan,
        ret: &ReturnExpr,
        map: &mut RetMap,
        top: bool,
    ) -> Result<(Plan, ConstructItem)> {
        match ret {
            ReturnExpr::Text(s) => Ok((plan, ConstructItem::Text(s.clone()))),
            ReturnExpr::Path(path) => {
                let is_text = path.ends_in_text();
                let (plan, lcl) = self.return_path(plan, path, MSpec::Star)?;
                if let Some(tag) = last_tag(path) {
                    map.children.insert(tag, lcl);
                }
                let item = if is_text {
                    ConstructItem::LclText(lcl)
                } else {
                    ConstructItem::LclRef { lcl, hidden: false }
                };
                Ok((plan, item))
            }
            ReturnExpr::Aggr(func, path) => {
                let (plan, over) = self.return_path(plan, path, MSpec::Star)?;
                let new_lcl = self.lcl.fresh();
                let plan = Plan::Aggregate { input: Box::new(plan), func: *func, over, new_lcl };
                Ok((plan, ConstructItem::LclText(new_lcl)))
            }
            ReturnExpr::Element { tag, attrs, children } => {
                let lcl = self.lcl.fresh();
                if top {
                    map.root_lcl = Some(lcl);
                    map.root_tag = Some(tag.clone());
                }
                let mut plan = plan;
                let mut built_attrs = Vec::with_capacity(attrs.len());
                for (name, path) in attrs {
                    let (p, alcl) = self.return_path(plan, path, MSpec::Star)?;
                    plan = p;
                    built_attrs.push((name.clone(), ConstructValue::LclText(alcl)));
                }
                let mut built_children = Vec::with_capacity(children.len());
                for c in children {
                    let (p, item) = self.return_item(plan, c, map, false)?;
                    plan = p;
                    if top {
                        if let (
                            ReturnExpr::Element { tag: ct, .. },
                            ConstructItem::Element { lcl: Some(cl), .. },
                        ) = (c, &item)
                        {
                            map.children.insert(ct.clone(), *cl);
                        }
                    }
                    built_children.push(item);
                }
                Ok((
                    plan,
                    ConstructItem::Element {
                        tag: tag.clone(),
                        lcl: Some(lcl),
                        attrs: built_attrs,
                        children: built_children,
                    },
                ))
            }
            ReturnExpr::Subquery(_) => Err(Error::Unsupported(
                "nested FLWOR in RETURN position (bind it with LET instead)".into(),
            )),
        }
    }
}

fn strip_text(steps: &[Step]) -> Vec<Step> {
    steps.iter().filter(|s| s.test != NodeTest::Text).cloned().collect()
}

fn last_tag(path: &SimplePath) -> Option<String> {
    strip_text(&path.steps).last().map(|s| match &s.test {
        NodeTest::Tag(t) => t.clone(),
        NodeTest::Attribute(a) => format!("@{a}"),
        NodeTest::Text => unreachable!("stripped"),
    })
}

fn flip(op: CmpOp) -> CmpOp {
    match op {
        CmpOp::Eq => CmpOp::Eq,
        CmpOp::Ne => CmpOp::Ne,
        CmpOp::Lt => CmpOp::Gt,
        CmpOp::Le => CmpOp::Ge,
        CmpOp::Gt => CmpOp::Lt,
        CmpOp::Ge => CmpOp::Le,
        CmpOp::Contains => CmpOp::Contains,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::execute_to_string;

    fn small_db() -> Database {
        let mut db = Database::new();
        db.load_xml(
            "auction.xml",
            r#"<site>
              <people>
                <person id="person0"><name>Ann</name><age>30</age></person>
                <person id="person1"><name>Bo</name><age>20</age></person>
                <person id="person2"><name>Cy</name></person>
              </people>
              <open_auctions>
                <open_auction id="oa0">
                  <bidder><personref person="person0"/><increase>3.00</increase></bidder>
                  <bidder><personref person="person1"/><increase>5.00</increase></bidder>
                  <quantity>5</quantity>
                </open_auction>
                <open_auction id="oa1">
                  <bidder><personref person="person0"/><increase>9.00</increase></bidder>
                  <quantity>1</quantity>
                </open_auction>
              </open_auctions>
            </site>"#,
        )
        .unwrap();
        db
    }

    fn run(db: &Database, q: &str) -> String {
        let plan = crate::compile(q, db).unwrap_or_else(|e| panic!("compile {q}: {e}"));
        execute_to_string(db, &plan).unwrap_or_else(|e| panic!("execute {q}: {e}"))
    }

    #[test]
    fn simple_for_return_path() {
        let db = small_db();
        let out = run(&db, r#"FOR $p IN document("auction.xml")//person RETURN $p/name"#);
        assert_eq!(out, "<name>Ann</name>\n<name>Bo</name>\n<name>Cy</name>");
    }

    #[test]
    fn where_predicate_filters() {
        let db = small_db();
        let out = run(
            &db,
            r#"FOR $p IN document("auction.xml")//person WHERE $p/age > 25 RETURN $p/name"#,
        );
        assert_eq!(out, "<name>Ann</name>");
    }

    #[test]
    fn attribute_equality_predicate() {
        let db = small_db();
        let out = run(
            &db,
            r#"FOR $p IN document("auction.xml")//person WHERE $p/@id = "person1" RETURN $p/name"#,
        );
        assert_eq!(out, "<name>Bo</name>");
    }

    #[test]
    fn aggregate_predicate() {
        let db = small_db();
        let out = run(
            &db,
            r#"FOR $o IN document("auction.xml")//open_auction
               WHERE count($o/bidder) > 1 RETURN $o/quantity"#,
        );
        assert_eq!(out, "<quantity>5</quantity>");
    }

    #[test]
    fn aggregate_in_return() {
        let db = small_db();
        let out = run(
            &db,
            r#"FOR $o IN document("auction.xml")//open_auction
               RETURN <n>{count($o/bidder)}</n>"#,
        );
        assert_eq!(out, "<n>2</n>\n<n>1</n>");
    }

    #[test]
    fn constructor_with_attribute() {
        let db = small_db();
        let out = run(
            &db,
            r#"FOR $p IN document("auction.xml")//person
               WHERE $p/age > 25
               RETURN <res name={$p/name/text()}>{$p/age}</res>"#,
        );
        assert_eq!(out, "<res name=\"Ann\"><age>30</age></res>");
    }

    #[test]
    fn value_join_between_patterns() {
        let db = small_db();
        let out = run(
            &db,
            r#"FOR $p IN document("auction.xml")//person
               FOR $o IN document("auction.xml")//open_auction
               WHERE $p/@id = $o/bidder//@person AND $p/age > 25
               RETURN <hit>{$p/name}</hit>"#,
        );
        // Ann (person0) bids on both auctions; after NodeIDDE each (p,o)
        // pair appears once → two hits for Ann, none for Bo (age 20).
        assert_eq!(out, "<hit><name>Ann</name></hit>\n<hit><name>Ann</name></hit>");
    }

    #[test]
    fn paper_q1_runs() {
        let db = small_db();
        let out = run(
            &db,
            r#"FOR $p IN document("auction.xml")//person
               FOR $o IN document("auction.xml")//open_auction
               WHERE count($o/bidder) > 1 AND $p/age > 25
                 AND $p/@id = $o/bidder//@person
               RETURN <person name={$p/name/text()}> $o/bidder </person>"#,
        );
        // Only oa0 has >1 bidders; Ann (30) bid there → one result with
        // both bidder subtrees clustered.
        assert_eq!(out.matches("<person name=\"Ann\">").count(), 1);
        assert_eq!(out.matches("<bidder>").count(), 2);
    }

    #[test]
    fn order_by_sorts_results() {
        let db = small_db();
        let out = run(
            &db,
            r#"FOR $p IN document("auction.xml")//person
               ORDER BY $p/name DESCENDING RETURN $p/name"#,
        );
        assert_eq!(out, "<name>Cy</name>\n<name>Bo</name>\n<name>Ann</name>");
    }

    #[test]
    fn or_translates_to_union() {
        let db = small_db();
        let out = run(
            &db,
            r#"FOR $p IN document("auction.xml")//person
               WHERE $p/@id = "person0" OR $p/age < 25
               RETURN $p/name"#,
        );
        assert_eq!(out, "<name>Ann</name>\n<name>Bo</name>");
    }

    #[test]
    fn or_branches_dedup_common_matches() {
        let db = small_db();
        let out = run(
            &db,
            r#"FOR $p IN document("auction.xml")//person
               WHERE $p/age > 25 OR $p/@id = "person0"
               RETURN $p/name"#,
        );
        assert_eq!(out, "<name>Ann</name>", "Ann satisfies both branches but appears once");
    }

    #[test]
    fn let_subquery_with_deferred_join() {
        let db = small_db();
        let out = run(
            &db,
            r#"FOR $p IN document("auction.xml")//person
               LET $a := FOR $o IN document("auction.xml")//open_auction
                         WHERE $p/@id = $o/bidder//@person
                         RETURN <mya>{$o/quantity/text()}</mya>
               WHERE $p/age > 25
               RETURN <res name={$p/name/text()}>{$a/mya}</res>"#,
        );
        // Ann matched both auctions → two <mya> nested; quantities 5 and 1.
        assert_eq!(out.matches("<mya>").count(), 2);
        assert!(out.starts_with("<res name=\"Ann\">"));
    }

    #[test]
    fn paper_q2_runs() {
        let db = small_db();
        let out = run(
            &db,
            r#"FOR $p IN document("auction.xml")//person
               LET $a := FOR $o IN document("auction.xml")//open_auction
                         WHERE count($o/bidder) > 1
                           AND $p/@id = $o/bidder//@person
                         RETURN <myauction> {$o/bidder}
                                  <myquan>{$o/quantity/text()}</myquan>
                                </myauction>
               WHERE $p/age > 25
                 AND EVERY $i IN $a/myquan SATISFIES $i > 2
               RETURN <person name={$p/name/text()}>{$a/bidder}</person>"#,
        );
        // Ann: only oa0 qualifies (2 bidders, quantity 5 > 2) → 2 bidders.
        // Bo fails age; Cy has no bids but EVERY over empty passes — yet
        // age predicate (required `-` edge) already dropped Cy.
        assert_eq!(out.matches("name=\"Ann\"").count(), 1);
        assert_eq!(out.matches("<bidder>").count(), 2);
        assert!(!out.contains("Bo") && !out.contains("Cy"));
    }

    #[test]
    fn every_quantifier_on_pattern_path() {
        let db = small_db();
        let out = run(
            &db,
            r#"FOR $o IN document("auction.xml")//open_auction
               WHERE EVERY $i IN $o/bidder/increase SATISFIES $i > 4
               RETURN $o/quantity"#,
        );
        // oa0 has increases 3, 5 → fails; oa1 has 9 → passes.
        assert_eq!(out, "<quantity>1</quantity>");
    }

    #[test]
    fn contains_predicate() {
        let db = small_db();
        let out = run(
            &db,
            r#"FOR $p IN document("auction.xml")//person
               WHERE contains($p/name, "n") RETURN $p/name"#,
        );
        assert_eq!(out, "<name>Ann</name>");
    }

    #[test]
    fn unbound_variable_is_an_error() {
        let db = small_db();
        assert!(matches!(
            crate::compile("FOR $p IN $nope//x RETURN $p", &db),
            Err(Error::UnboundVariable(_))
        ));
    }

    #[test]
    fn let_path_binding_clusters() {
        let db = small_db();
        let out = run(
            &db,
            r#"FOR $o IN document("auction.xml")//open_auction
               LET $b := $o/bidder
               RETURN <n>{count($b)}</n>"#,
        );
        assert_eq!(out, "<n>2</n>\n<n>1</n>");
    }

    #[test]
    fn plan_shape_matches_figure_7() {
        // Q1's plan: two document selects, one join, project, dedup, two
        // extension selects, one construct (+ aggregate/filter for count).
        let db = small_db();
        let plan = crate::compile(
            r#"FOR $p IN document("auction.xml")//person
               FOR $o IN document("auction.xml")//open_auction
               WHERE count($o/bidder) > 1 AND $p/age > 25
                 AND $p/@id = $o/bidder//@person
               RETURN <person name={$p/name/text()}> $o/bidder </person>"#,
            &db,
        )
        .unwrap();
        assert_eq!(plan.select_count(), 4, "2 base selects + 2 return extension selects");
        let rendered = plan.display(Some(&db)).to_string();
        assert!(rendered.contains("Join"), "{rendered}");
        assert!(rendered.contains("Aggregate[count"), "{rendered}");
        assert!(rendered.contains("DupElim"), "{rendered}");
    }

    #[test]
    fn styles_produce_identical_results() {
        let db = small_db();
        for q in [
            r#"FOR $p IN document("auction.xml")//person WHERE $p/age > 25 RETURN $p/name"#,
            r#"FOR $o IN document("auction.xml")//open_auction
               WHERE count($o/bidder) > 1 RETURN <n>{count($o/bidder)}</n>"#,
            r#"FOR $p IN document("auction.xml")//person
               FOR $o IN document("auction.xml")//open_auction
               WHERE count($o/bidder) > 1 AND $p/age > 25
                 AND $p/@id = $o/bidder//@person
               RETURN <person name={$p/name/text()}> $o/bidder </person>"#,
            r#"FOR $p IN document("auction.xml")//person
               LET $a := FOR $o IN document("auction.xml")//open_auction
                         WHERE $p/@id = $o/bidder//@person
                         RETURN <mya>{$o/quantity/text()}</mya>
               WHERE $p/age > 25
               RETURN <res name={$p/name/text()}>{$a/mya}</res>"#,
        ] {
            let tlc_out = {
                let plan = crate::compile_with_style(q, &db, Style::Tlc).unwrap();
                execute_to_string(&db, &plan).unwrap()
            };
            for style in [Style::Gtp, Style::Tax] {
                let plan = crate::compile_with_style(q, &db, style)
                    .unwrap_or_else(|e| panic!("{style:?} compile: {e}"));
                let out = execute_to_string(&db, &plan)
                    .unwrap_or_else(|e| panic!("{style:?} execute: {e}"));
                assert_eq!(out, tlc_out, "{style:?} differs on {q}");
            }
        }
    }

    #[test]
    fn tax_plans_use_materialize_and_stitch_joins() {
        let db = small_db();
        let q = r#"FOR $p IN document("auction.xml")//person WHERE $p/age > 25 RETURN $p/name"#;
        let plan = crate::compile_with_style(q, &db, Style::Tax).unwrap();
        let s = plan.display(Some(&db)).to_string();
        assert!(s.contains("Materialize"), "{s}");
        assert!(s.contains("GroupBy"), "{s}");
        assert!(s.contains("NodeId"), "{s}");
        // TAX re-matches the return path from the document root and
        // materializes subtrees: strictly more data touched than TLC.
        let (_, tax_stats) = crate::execute(&db, &plan).unwrap();
        let tlc_plan = crate::compile(q, &db).unwrap();
        let (_, tlc_stats) = crate::execute(&db, &tlc_plan).unwrap();
        assert!(
            tax_stats.nodes_inspected > tlc_stats.nodes_inspected,
            "TAX {} vs TLC {}",
            tax_stats.nodes_inspected,
            tlc_stats.nodes_inspected
        );
        assert!(tax_stats.subtrees_materialized > 0);
    }

    #[test]
    fn gtp_plans_use_grouping_but_reuse_patterns() {
        let db = small_db();
        let q = r#"FOR $o IN document("auction.xml")//open_auction
                   WHERE count($o/bidder) > 1 RETURN $o/quantity"#;
        let tlc_plan = crate::compile(q, &db).unwrap();
        let gtp_plan = crate::compile_with_style(q, &db, Style::Gtp).unwrap();
        assert_eq!(gtp_plan.select_count(), tlc_plan.select_count(), "GTP reuses matches");
        assert!(gtp_plan.display(Some(&db)).to_string().contains("GroupBy"));
        assert!(!tlc_plan.display(Some(&db)).to_string().contains("GroupBy"));
    }
}
