//! Static LC dataflow analysis over [`Plan`]s.
//!
//! The paper's central discipline (§2.2, Definition 4) is that every
//! operator refers to nodes *exclusively* through logical class labels. That
//! makes plan well-formedness statically decidable: walking a plan bottom-up
//! we can infer, for every operator, the set of classes its output trees
//! carry, and check each operator's references against what its input
//! actually produces. A reference to a class that is never produced — or
//! that a Project dropped, a Join put on the wrong side, or a Union branch
//! forgot — is a *compile-time* bug, not a silent empty result at runtime.
//!
//! [`analyze`] infers a [`PlanType`]: the available classes with their
//! per-tree cardinality (derived from the APT matching specifications) and
//! the plan's output ordering. [`verify`] is the boolean form. Three places
//! run it:
//!
//! * [`crate::translate`] verifies every freshly compiled plan;
//! * [`crate::rewrite::optimize`] re-verifies after *every individual
//!   rewrite pass* (the differential rewrite oracle — see
//!   [`crate::rewrite::optimize_verified`]);
//! * the service layer checks plans before they enter its cache.
//!
//! The analysis is deliberately *permissive where the executor is*: it
//! over-approximates the classes surviving a Construct (copied subtrees
//! carry their members' descendants, whose labels are not statically
//! known), and it only enforces singleton cardinality where the executor
//! hard-errors (Flatten/Shadow parents, the grouping key).

use crate::logical_class::LclId;
use crate::ops::construct::{ConstructItem, ConstructValue};
use crate::ops::filter::FilterPred;
use crate::pattern::{Apt, AptRoot, MSpec};
use crate::plan::Plan;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use xmldb::TagId;

/// Per-tree cardinality of a logical class, abstracted from the matching
/// specifications along its APT path (Definition 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Card {
    /// Exactly one member per tree (`-` edges all the way down).
    One,
    /// Zero or one member per tree (`?` somewhere on the path).
    Opt,
    /// Any number of members (`+`/`*` grouping, or a nesting join).
    Many,
}

impl Card {
    /// Cardinality of a child class reached over `edge` from a parent with
    /// this cardinality.
    fn step(self, edge: MSpec) -> Card {
        match (self, edge) {
            (Card::Many, _) | (_, MSpec::Plus | MSpec::Star) => Card::Many,
            (c, MSpec::One) => c,
            (_, MSpec::Opt) => Card::Opt,
        }
    }

    /// Least upper bound (used to merge Union branches).
    fn join(self, other: Card) -> Card {
        self.max(other)
    }
}

/// Output ordering of a plan, tracked informationally alongside the classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Order {
    /// Trees are in document order of their anchoring base nodes.
    #[default]
    Document,
    /// Trees were explicitly sorted by class values (ORDER BY).
    Sorted,
    /// No ordering guarantee (e.g. after a grouping procedure).
    Unspecified,
}

/// The inferred type of a plan: which classes its output trees carry.
#[derive(Debug, Clone, Default)]
pub struct PlanType {
    /// Available classes and their per-tree cardinality.
    pub classes: BTreeMap<LclId, Card>,
    /// Every label defined anywhere below (a superset of `classes`; Union
    /// keeps branch-local labels here so fresh labels cannot collide).
    pub seen: BTreeSet<LclId>,
    /// The class labelling the root node of every output tree, when it is
    /// statically known. The root survives every Project (the output must
    /// stay a tree), so its class is available even when not in `keep`.
    pub root: Option<LclId>,
    /// Output ordering.
    pub order: Order,
}

impl PlanType {
    /// Is `lcl` usable by a downstream operator? True for every class in
    /// [`PlanType::classes`] plus the tree-root class (which survives every
    /// Project even when not kept explicitly).
    pub fn available(&self, lcl: LclId) -> bool {
        self.classes.contains_key(&lcl) || self.root == Some(lcl)
    }

    fn define(&mut self, op: &'static str, lcl: LclId, card: Card) -> Result<(), AnalyzeError> {
        if self.seen.contains(&lcl) {
            return Err(AnalyzeError::DuplicateClass { op, lcl });
        }
        self.classes.insert(lcl, card);
        self.seen.insert(lcl);
        Ok(())
    }

    fn require(&self, op: &'static str, lcl: LclId) -> Result<(), AnalyzeError> {
        if self.available(lcl) {
            Ok(())
        } else {
            Err(AnalyzeError::MissingClass { op, lcl })
        }
    }
}

/// A dataflow violation found by the analyzer. Each variant names the
/// offending operator and class, so a failure pinpoints the broken edge of
/// the plan rather than surfacing later as a silently empty result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AnalyzeError {
    /// `op` references class `lcl`, which its input does not produce.
    MissingClass {
        /// The referencing operator.
        op: &'static str,
        /// The unavailable class.
        lcl: LclId,
    },
    /// An operator introduces a label that is already defined upstream.
    DuplicateClass {
        /// The redefining operator.
        op: &'static str,
        /// The doubly-defined class.
        lcl: LclId,
    },
    /// An extension select's anchor class is not available in its input (or
    /// the select has no input at all).
    MissingAnchor {
        /// The anchor class of the extension APT.
        lcl: LclId,
    },
    /// A document-anchored select has an upstream input; it must be a leaf.
    DocSelectWithInput {
        /// The document the APT is anchored at.
        document: String,
    },
    /// A join parameter references a class that is not on the required side.
    JoinSideMissing {
        /// `"left"` or `"right"`.
        side: &'static str,
        /// The class the predicate or dedup key references.
        lcl: LclId,
    },
    /// A Union operator with no branches.
    EmptyUnion,
    /// A class the Union relies on (its dedup key) is missing from one
    /// branch — the branches are not class-compatible.
    UnionBranchMissing {
        /// Zero-based index of the offending branch.
        branch: usize,
        /// The class that branch fails to produce.
        lcl: LclId,
    },
    /// An operator that requires a singleton class (the executor errors
    /// otherwise) got a class that may carry another number of members.
    NotSingleton {
        /// The demanding operator.
        op: &'static str,
        /// The class whose inferred cardinality is not `One`.
        lcl: LclId,
    },
}

impl fmt::Display for AnalyzeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalyzeError::MissingClass { op, lcl } => {
                write!(f, "{op} references class {lcl}, which its input does not produce")
            }
            AnalyzeError::DuplicateClass { op, lcl } => {
                write!(f, "{op} redefines class {lcl}, which is already live")
            }
            AnalyzeError::MissingAnchor { lcl } => {
                write!(f, "extension select is anchored at unavailable class {lcl}")
            }
            AnalyzeError::DocSelectWithInput { document } => {
                write!(f, "select on document {document:?} must be a leaf but has an input")
            }
            AnalyzeError::JoinSideMissing { side, lcl } => {
                write!(f, "join references class {lcl}, which the {side} input does not produce")
            }
            AnalyzeError::EmptyUnion => write!(f, "union has no branches"),
            AnalyzeError::UnionBranchMissing { branch, lcl } => {
                write!(f, "union branch {branch} does not produce class {lcl}")
            }
            AnalyzeError::NotSingleton { op, lcl } => {
                write!(f, "{op} requires class {lcl} to be a per-tree singleton")
            }
        }
    }
}

impl std::error::Error for AnalyzeError {}

/// Infers the classes produced by `plan`, checking every LC reference along
/// the way.
pub fn analyze(plan: &Plan) -> Result<PlanType, AnalyzeError> {
    match plan {
        Plan::Select { input: None, apt } => match &apt.root {
            AptRoot::Document { lcl, .. } => {
                let mut t = PlanType::default();
                t.define("Select", *lcl, Card::One)?;
                t.root = Some(*lcl);
                define_apt_nodes(&mut t, apt, Card::One)?;
                Ok(t)
            }
            AptRoot::Lcl(lcl) => Err(AnalyzeError::MissingAnchor { lcl: *lcl }),
        },
        Plan::Select { input: Some(input), apt } => match &apt.root {
            AptRoot::Document { name, .. } => {
                Err(AnalyzeError::DocSelectWithInput { document: name.clone() })
            }
            AptRoot::Lcl(anchor) => {
                let mut t = analyze(input)?;
                if !t.available(*anchor) {
                    return Err(AnalyzeError::MissingAnchor { lcl: *anchor });
                }
                let anchor_card = t.classes.get(anchor).copied().unwrap_or(Card::One);
                define_apt_nodes(&mut t, apt, anchor_card)?;
                Ok(t)
            }
        },
        Plan::Filter { input, lcl, pred, .. } => {
            let t = analyze(input)?;
            t.require("Filter", *lcl)?;
            if let FilterPred::CmpLcl { other, .. } = pred {
                t.require("Filter", *other)?;
            }
            Ok(t)
        }
        Plan::Join { left, right, spec } => {
            let lt = analyze(left)?;
            let rt = analyze(right)?;
            if let Some(pred) = &spec.pred {
                if !lt.available(pred.left) {
                    return Err(AnalyzeError::JoinSideMissing { side: "left", lcl: pred.left });
                }
                if !rt.available(pred.right) {
                    return Err(AnalyzeError::JoinSideMissing { side: "right", lcl: pred.right });
                }
            }
            if let Some(key) = spec.dedup_right_on {
                if !rt.available(key) {
                    return Err(AnalyzeError::JoinSideMissing { side: "right", lcl: key });
                }
            }
            // The sides come from disjoint label generations; a shared label
            // would merge unrelated members under one class.
            let mut t = lt;
            for (&lcl, &card) in &rt.classes {
                if t.seen.contains(&lcl) {
                    return Err(AnalyzeError::DuplicateClass { op: "Join", lcl });
                }
                // A grouping right edge nests every matching right tree
                // under one output root, so right-side classes multiply; an
                // optional edge can leave them absent.
                let card = match spec.right_mspec {
                    MSpec::Plus | MSpec::Star => Card::Many,
                    MSpec::Opt => card.join(Card::Opt),
                    MSpec::One => card,
                };
                t.classes.insert(lcl, card);
            }
            t.seen.extend(rt.seen.iter().copied());
            t.define("Join", spec.root_lcl, Card::One)?;
            t.root = Some(spec.root_lcl);
            Ok(t)
        }
        Plan::Project { input, keep } => {
            let mut t = analyze(input)?;
            for k in keep {
                t.require("Project", *k)?;
            }
            // Only the kept classes (plus the always-retained tree root)
            // survive; this is the availability boundary the rewrite
            // oracle's widen-projects fix-up exists for.
            let root = t.root;
            t.classes.retain(|lcl, _| keep.contains(lcl) || Some(*lcl) == root);
            Ok(t)
        }
        Plan::DupElim { input, on, .. } => {
            let t = analyze(input)?;
            for k in on {
                t.require("DupElim", *k)?;
            }
            Ok(t)
        }
        Plan::Aggregate { input, over, new_lcl, .. } => {
            let mut t = analyze(input)?;
            t.require("Aggregate", *over)?;
            t.define("Aggregate", *new_lcl, Card::One)?;
            Ok(t)
        }
        Plan::Construct { input, spec } => {
            let mut t = analyze(input)?;
            let mut root = None;
            for item in spec {
                check_construct_item(&mut t, item, &mut root)?;
            }
            // Copied member subtrees keep their descendants' labels, so the
            // input classes stay (conservatively) available.
            t.root = root;
            t.order = Order::Document;
            Ok(t)
        }
        Plan::Sort { input, keys } => {
            let mut t = analyze(input)?;
            for k in keys {
                t.require("Sort", k.lcl)?;
            }
            t.order = Order::Sorted;
            Ok(t)
        }
        Plan::Flatten { input, parent, child } => {
            let mut t = analyze(input)?;
            require_singleton(&t, "Flatten", *parent)?;
            t.require("Flatten", *child)?;
            t.classes.insert(*child, Card::One);
            Ok(t)
        }
        Plan::Shadow { input, parent, child } => {
            let mut t = analyze(input)?;
            require_singleton(&t, "Shadow", *parent)?;
            t.require("Shadow", *child)?;
            // One visible member per tree; the shadowed rest come back at
            // the Illuminate.
            t.classes.insert(*child, Card::One);
            Ok(t)
        }
        Plan::Illuminate { input, lcl } => {
            let mut t = analyze(input)?;
            t.require("Illuminate", *lcl)?;
            t.classes.insert(*lcl, Card::Many);
            Ok(t)
        }
        Plan::GroupBy { input, by, collect } => {
            let mut t = analyze(input)?;
            require_singleton(&t, "GroupBy", *by)?;
            t.require("GroupBy", *collect)?;
            t.classes.insert(*collect, Card::Many);
            t.order = Order::Unspecified;
            Ok(t)
        }
        Plan::Materialize { input, lcls } => {
            let t = analyze(input)?;
            for l in lcls {
                t.require("Materialize", *l)?;
            }
            Ok(t)
        }
        Plan::Union { inputs, dedup_on } => {
            if inputs.is_empty() {
                return Err(AnalyzeError::EmptyUnion);
            }
            let branches: Vec<PlanType> = inputs.iter().map(analyze).collect::<Result<_, _>>()?;
            // Branches are translated with identically-seeded label
            // generators, so shared labels are intentional; only classes
            // present in *every* branch are usable downstream.
            for (i, b) in branches.iter().enumerate() {
                for key in dedup_on {
                    if !b.available(*key) {
                        return Err(AnalyzeError::UnionBranchMissing { branch: i, lcl: *key });
                    }
                }
            }
            let mut t = PlanType::default();
            let first = &branches[0];
            'classes: for (&lcl, &card) in &first.classes {
                let mut merged = card;
                for b in &branches[1..] {
                    match b.classes.get(&lcl) {
                        Some(&c) => merged = merged.join(c),
                        None => continue 'classes,
                    }
                }
                t.classes.insert(lcl, merged);
            }
            for b in &branches {
                t.seen.extend(b.seen.iter().copied());
            }
            t.root = first.root.filter(|r| branches[1..].iter().all(|b| b.root == Some(*r)));
            t.order = if branches.iter().all(|b| b.order == first.order)
                && branches[0].order != Order::Sorted
            {
                first.order
            } else {
                Order::Unspecified
            };
            Ok(t)
        }
    }
}

/// Checks the whole plan's LC dataflow; `Ok(())` means every operator's
/// references are satisfied by its input.
pub fn verify(plan: &Plan) -> Result<(), AnalyzeError> {
    analyze(plan).map(|_| ())
}

/// The data a plan can possibly read: which documents its selects are
/// anchored at and which tags its pattern nodes test.
///
/// This is a *conservative* static over-approximation used for selective
/// cache invalidation: a mutation whose affected-tag set (see
/// `xmldb::update::UpdateSummary`) is disjoint from a cached plan's tag
/// footprint — or that touches a document the plan never reads — provably
/// cannot change that plan's result, so the cached entry can be carried
/// into the post-mutation epoch instead of being dropped.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Footprint {
    /// Logical names of the documents the plan's selects are anchored at.
    pub docs: BTreeSet<String>,
    /// Tags tested anywhere in the plan's pattern trees.
    pub tags: BTreeSet<TagId>,
}

impl Footprint {
    /// Can a mutation of `doc` with the given affected tags change this
    /// plan's result? False only when provably not: either the plan never
    /// reads `doc`, or none of the affected tags appears in its patterns.
    pub fn overlaps(&self, doc: &str, affected_tags: &[TagId]) -> bool {
        self.docs.contains(doc) && affected_tags.iter().any(|t| self.tags.contains(t))
    }

    fn absorb_apt(&mut self, apt: &Apt) {
        if let AptRoot::Document { name, .. } = &apt.root {
            self.docs.insert(name.clone());
        }
        for node in &apt.nodes {
            self.tags.insert(node.tag);
        }
    }
}

/// Computes the [`Footprint`] of a plan by walking every operator and
/// collecting the document anchors and tag tests of all its selects.
pub fn plan_footprint(plan: &Plan) -> Footprint {
    let mut fp = Footprint::default();
    collect_footprint(plan, &mut fp);
    fp
}

fn collect_footprint(plan: &Plan, fp: &mut Footprint) {
    match plan {
        Plan::Select { input, apt } => {
            fp.absorb_apt(apt);
            if let Some(input) = input {
                collect_footprint(input, fp);
            }
        }
        Plan::Filter { input, .. }
        | Plan::Project { input, .. }
        | Plan::DupElim { input, .. }
        | Plan::Aggregate { input, .. }
        | Plan::Construct { input, .. }
        | Plan::Sort { input, .. }
        | Plan::Flatten { input, .. }
        | Plan::Shadow { input, .. }
        | Plan::Illuminate { input, .. }
        | Plan::GroupBy { input, .. }
        | Plan::Materialize { input, .. } => collect_footprint(input, fp),
        Plan::Join { left, right, .. } => {
            collect_footprint(left, fp);
            collect_footprint(right, fp);
        }
        Plan::Union { inputs, .. } => {
            for i in inputs {
                collect_footprint(i, fp);
            }
        }
    }
}

/// Defines the classes of every pattern node of `apt` (anchor excluded),
/// deriving each node's cardinality from the matching specifications along
/// its path from the anchor.
fn define_apt_nodes(t: &mut PlanType, apt: &Apt, anchor_card: Card) -> Result<(), AnalyzeError> {
    // Parent indexes precede children, so one forward pass suffices.
    let mut cards: Vec<Card> = Vec::with_capacity(apt.nodes.len());
    for node in &apt.nodes {
        let parent_card = match node.parent {
            None => anchor_card,
            Some(p) => cards[p],
        };
        let card = parent_card.step(node.mspec);
        t.define("Select", node.lcl, card)?;
        cards.push(card);
    }
    Ok(())
}

/// Checks one construct item: every referenced class must be live, every
/// element label must be fresh. `root` captures the first top-level
/// element's label (the constructed tree's root class).
fn check_construct_item(
    t: &mut PlanType,
    item: &ConstructItem,
    root: &mut Option<LclId>,
) -> Result<(), AnalyzeError> {
    match item {
        ConstructItem::Element { lcl, attrs, children, .. } => {
            if let Some(l) = lcl {
                t.define("Construct", *l, Card::One)?;
                if root.is_none() {
                    *root = Some(*l);
                }
            }
            for (_, v) in attrs {
                if let ConstructValue::LclText(l) = v {
                    t.require("Construct", *l)?;
                }
            }
            let mut child_root = None;
            for c in children {
                check_construct_item(t, c, &mut child_root)?;
            }
            Ok(())
        }
        ConstructItem::LclRef { lcl, .. } | ConstructItem::LclText(lcl) => {
            t.require("Construct", *lcl)
        }
        ConstructItem::Text(_) => Ok(()),
    }
}

/// Cardinality check for the operators whose executor errors on a
/// non-singleton class (Flatten/Shadow parents, the grouping key).
fn require_singleton(t: &PlanType, op: &'static str, lcl: LclId) -> Result<(), AnalyzeError> {
    t.require(op, lcl)?;
    match t.classes.get(&lcl) {
        Some(Card::One) | None => Ok(()),
        Some(_) => Err(AnalyzeError::NotSingleton { op, lcl }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::dupelim::DedupKind;
    use crate::ops::join::{JoinPred, JoinSpec};
    use crate::ops::sort::SortKey;
    use xmldb::{AxisRel, TagId};
    use xquery::CmpOp;

    fn doc_select() -> Plan {
        // doc(a.xml)(1)[//-person(2)[/*age(3)]]
        let mut apt = Apt::for_document("a.xml", LclId(1));
        let p = apt.add(None, AxisRel::Descendant, MSpec::One, TagId(10), None, LclId(2));
        apt.add(Some(p), AxisRel::Child, MSpec::Star, TagId(11), None, LclId(3));
        Plan::Select { input: None, apt }
    }

    #[test]
    fn doc_select_defines_apt_classes_with_cards() {
        let t = analyze(&doc_select()).unwrap();
        assert_eq!(t.classes.get(&LclId(1)), Some(&Card::One));
        assert_eq!(t.classes.get(&LclId(2)), Some(&Card::One));
        assert_eq!(t.classes.get(&LclId(3)), Some(&Card::Many));
        assert_eq!(t.root, Some(LclId(1)));
        assert_eq!(t.order, Order::Document);
    }

    #[test]
    fn extension_select_needs_its_anchor() {
        let mut ext = Apt::extending(LclId(2));
        ext.add(None, AxisRel::Child, MSpec::Opt, TagId(12), None, LclId(4));
        let good = Plan::Select { input: Some(Box::new(doc_select())), apt: ext.clone() };
        let t = analyze(&good).unwrap();
        assert_eq!(t.classes.get(&LclId(4)), Some(&Card::Opt));

        let mut bad_ext = Apt::extending(LclId(99));
        bad_ext.add(None, AxisRel::Child, MSpec::One, TagId(12), None, LclId(4));
        let bad = Plan::Select { input: Some(Box::new(doc_select())), apt: bad_ext };
        assert_eq!(analyze(&bad).unwrap_err(), AnalyzeError::MissingAnchor { lcl: LclId(99) });

        assert!(matches!(
            analyze(&Plan::Select { input: None, apt: ext }),
            Err(AnalyzeError::MissingAnchor { .. })
        ));
    }

    #[test]
    fn duplicate_labels_are_rejected() {
        let mut ext = Apt::extending(LclId(2));
        ext.add(None, AxisRel::Child, MSpec::One, TagId(12), None, LclId(3)); // collides
        let p = Plan::Select { input: Some(Box::new(doc_select())), apt: ext };
        assert_eq!(
            analyze(&p).unwrap_err(),
            AnalyzeError::DuplicateClass { op: "Select", lcl: LclId(3) }
        );
    }

    #[test]
    fn project_drops_availability() {
        let projected = Plan::Project { input: Box::new(doc_select()), keep: vec![LclId(2)] };
        let t = analyze(&projected).unwrap();
        assert!(t.classes.contains_key(&LclId(2)));
        assert!(!t.classes.contains_key(&LclId(3)));
        // The tree root always survives a projection.
        assert!(t.available(LclId(1)));

        let sorted = Plan::Sort {
            input: Box::new(projected),
            keys: vec![SortKey { lcl: LclId(3), descending: false }],
        };
        assert_eq!(
            analyze(&sorted).unwrap_err(),
            AnalyzeError::MissingClass { op: "Sort", lcl: LclId(3) }
        );
    }

    #[test]
    fn join_checks_sides_and_creates_root() {
        let left = doc_select();
        let mut apt = Apt::for_document("a.xml", LclId(10));
        apt.add(None, AxisRel::Descendant, MSpec::One, TagId(20), None, LclId(11));
        let right = Plan::Select { input: None, apt };
        let spec = JoinSpec {
            root_lcl: LclId(20),
            right_mspec: MSpec::One,
            pred: Some(JoinPred::value(LclId(2), CmpOp::Eq, LclId(11))),
            dedup_right_on: None,
        };
        let good = Plan::Join {
            left: Box::new(left.clone()),
            right: Box::new(right.clone()),
            spec: spec.clone(),
        };
        let t = analyze(&good).unwrap();
        assert_eq!(t.root, Some(LclId(20)));
        assert!(t.available(LclId(2)) && t.available(LclId(11)));

        // Swapped predicate sides must be caught.
        let mut swapped = spec.clone();
        swapped.pred = Some(JoinPred::value(LclId(11), CmpOp::Eq, LclId(2)));
        let bad = Plan::Join {
            left: Box::new(left.clone()),
            right: Box::new(right.clone()),
            spec: swapped,
        };
        assert_eq!(
            analyze(&bad).unwrap_err(),
            AnalyzeError::JoinSideMissing { side: "left", lcl: LclId(11) }
        );

        // A self-join without relabeling merges classes: rejected.
        let dup = Plan::Join {
            left: Box::new(left.clone()),
            right: Box::new(left),
            spec: JoinSpec {
                root_lcl: LclId(20),
                right_mspec: MSpec::One,
                pred: None,
                dedup_right_on: None,
            },
        };
        assert_eq!(
            analyze(&dup).unwrap_err(),
            AnalyzeError::DuplicateClass { op: "Join", lcl: LclId(1) }
        );
    }

    #[test]
    fn nesting_join_multiplies_right_classes() {
        let mut apt = Apt::for_document("b.xml", LclId(10));
        apt.add(None, AxisRel::Descendant, MSpec::One, TagId(20), None, LclId(11));
        let right = Plan::Select { input: None, apt };
        let p = Plan::Join {
            left: Box::new(doc_select()),
            right: Box::new(right),
            spec: JoinSpec {
                root_lcl: LclId(20),
                right_mspec: MSpec::Star,
                pred: Some(JoinPred::value(LclId(2), CmpOp::Eq, LclId(11))),
                dedup_right_on: Some(LclId(10)),
            },
        };
        let t = analyze(&p).unwrap();
        assert_eq!(t.classes.get(&LclId(11)), Some(&Card::Many));
    }

    #[test]
    fn union_requires_compatible_branches() {
        let a = doc_select();
        let mut apt = Apt::for_document("a.xml", LclId(1));
        apt.add(None, AxisRel::Descendant, MSpec::One, TagId(10), None, LclId(2));
        let b = Plan::Select { input: None, apt }; // same seeds, no class (3)
        let u = Plan::Union { inputs: vec![a.clone(), b], dedup_on: vec![LclId(2)] };
        let t = analyze(&u).unwrap();
        assert!(t.classes.contains_key(&LclId(2)));
        assert!(!t.classes.contains_key(&LclId(3)), "class (3) is not in every branch");

        let bad = Plan::Union { inputs: vec![a], dedup_on: vec![LclId(7)] };
        assert_eq!(
            analyze(&bad).unwrap_err(),
            AnalyzeError::UnionBranchMissing { branch: 0, lcl: LclId(7) }
        );
        assert_eq!(
            analyze(&Plan::Union { inputs: vec![], dedup_on: vec![] }).unwrap_err(),
            AnalyzeError::EmptyUnion
        );
    }

    #[test]
    fn flatten_requires_singleton_parent_and_narrows_child() {
        let good =
            Plan::Flatten { input: Box::new(doc_select()), parent: LclId(2), child: LclId(3) };
        let t = analyze(&good).unwrap();
        assert_eq!(t.classes.get(&LclId(3)), Some(&Card::One));

        let bad =
            Plan::Flatten { input: Box::new(doc_select()), parent: LclId(3), child: LclId(2) };
        assert_eq!(
            analyze(&bad).unwrap_err(),
            AnalyzeError::NotSingleton { op: "Flatten", lcl: LclId(3) }
        );

        let lit = Plan::Illuminate {
            input: Box::new(Plan::Shadow {
                input: Box::new(doc_select()),
                parent: LclId(2),
                child: LclId(3),
            }),
            lcl: LclId(3),
        };
        assert_eq!(analyze(&lit).unwrap().classes.get(&LclId(3)), Some(&Card::Many));
    }

    #[test]
    fn aggregate_and_dupelim_and_construct() {
        use xquery::AggFunc;
        let agg = Plan::Aggregate {
            input: Box::new(doc_select()),
            func: AggFunc::Count,
            over: LclId(3),
            new_lcl: LclId(4),
        };
        let t = analyze(&agg).unwrap();
        assert_eq!(t.classes.get(&LclId(4)), Some(&Card::One));

        let clash = Plan::Aggregate {
            input: Box::new(doc_select()),
            func: AggFunc::Count,
            over: LclId(3),
            new_lcl: LclId(2),
        };
        assert!(matches!(analyze(&clash), Err(AnalyzeError::DuplicateClass { .. })));

        let de = Plan::DupElim {
            input: Box::new(doc_select()),
            on: vec![LclId(9)],
            kind: DedupKind::NodeId,
        };
        assert_eq!(
            analyze(&de).unwrap_err(),
            AnalyzeError::MissingClass { op: "DupElim", lcl: LclId(9) }
        );

        let c = Plan::Construct {
            input: Box::new(doc_select()),
            spec: vec![ConstructItem::Element {
                tag: "out".into(),
                lcl: Some(LclId(5)),
                attrs: vec![("n".into(), ConstructValue::LclText(LclId(2)))],
                children: vec![ConstructItem::LclRef { lcl: LclId(3), hidden: false }],
            }],
        };
        let t = analyze(&c).unwrap();
        assert_eq!(t.root, Some(LclId(5)));
        assert!(t.available(LclId(3)), "copied member classes stay available");

        let broken = Plan::Construct {
            input: Box::new(doc_select()),
            spec: vec![ConstructItem::LclText(LclId(42))],
        };
        assert_eq!(
            analyze(&broken).unwrap_err(),
            AnalyzeError::MissingClass { op: "Construct", lcl: LclId(42) }
        );
    }

    #[test]
    fn footprint_collects_docs_and_tags_and_tests_overlap() {
        let left = doc_select(); // a.xml, tags 10/11
        let mut apt = Apt::for_document("b.xml", LclId(10));
        apt.add(None, AxisRel::Descendant, MSpec::One, TagId(20), None, LclId(11));
        let right = Plan::Select { input: None, apt };
        let p = Plan::Join {
            left: Box::new(left),
            right: Box::new(right),
            spec: JoinSpec {
                root_lcl: LclId(20),
                right_mspec: MSpec::One,
                pred: Some(JoinPred::value(LclId(2), CmpOp::Eq, LclId(11))),
                dedup_right_on: None,
            },
        };
        let fp = plan_footprint(&p);
        assert!(fp.docs.contains("a.xml") && fp.docs.contains("b.xml"));
        for t in [10, 11, 20] {
            assert!(fp.tags.contains(&TagId(t)));
        }
        assert!(fp.overlaps("a.xml", &[TagId(10)]));
        assert!(!fp.overlaps("c.xml", &[TagId(10)]), "unread document never overlaps");
        assert!(!fp.overlaps("a.xml", &[TagId(99)]), "disjoint tags never overlap");
    }

    #[test]
    fn errors_display_the_offending_edge() {
        let e = AnalyzeError::MissingClass { op: "Sort", lcl: LclId(7) };
        assert_eq!(e.to_string(), "Sort references class (7), which its input does not produce");
        let e = AnalyzeError::JoinSideMissing { side: "right", lcl: LclId(3) };
        assert!(e.to_string().contains("right input"));
    }
}
