//! Static LC dataflow analysis over [`Plan`]s.
//!
//! The paper's central discipline (§2.2, Definition 4) is that every
//! operator refers to nodes *exclusively* through logical class labels. That
//! makes plan well-formedness statically decidable: walking a plan bottom-up
//! we can infer, for every operator, the set of classes its output trees
//! carry, and check each operator's references against what its input
//! actually produces. A reference to a class that is never produced — or
//! that a Project dropped, a Join put on the wrong side, or a Union branch
//! forgot — is a *compile-time* bug, not a silent empty result at runtime.
//!
//! [`analyze`] infers a [`PlanType`]: the available classes with their
//! per-tree cardinality (derived from the APT matching specifications) and
//! the plan's output ordering. [`verify`] is the boolean form. Three places
//! run it:
//!
//! * [`crate::translate()`] verifies every freshly compiled plan;
//! * [`crate::rewrite::optimize`] re-verifies after *every individual
//!   rewrite pass* (the differential rewrite oracle — see
//!   [`crate::rewrite::optimize_verified`]);
//! * the service layer checks plans before they enter its cache.
//!
//! Beyond the verifier, this module is the home of the *analysis framework*:
//! independent passes over verified plans that downstream consumers exploit.
//!
//! * [`plan_footprint`] — per-operator read-effect analysis (documents,
//!   per-document tag sets, axis step counts, value-predicate domains) used
//!   by the service's selective cache invalidation;
//! * [`distinctness`] — per-tree membership bounds plus cross-tree
//!   identity-distinctness facts, which justify removing provably redundant
//!   `DupElim` operators (see `crate::rewrite::prune_dead_classes`);
//! * [`temp_classes`] — classes whose members are executor temporaries
//!   rather than store nodes, which the liveness pruner must treat as
//!   serialization-opaque;
//! * `crate::exec::check_conformance` — the runtime half: debug builds
//!   assert every operator's observed output against the inferred
//!   [`PlanType`], and the `experiments lintcheck` oracle does the same for
//!   hundreds of seeded random plans per run.
//!
//! The analysis is deliberately *permissive where the executor is*: it
//! over-approximates the classes surviving a Construct (copied subtrees
//! carry their members' descendants, whose labels are not statically
//! known), and it only enforces singleton cardinality where the executor
//! hard-errors (Flatten/Shadow parents, the grouping key).

use crate::logical_class::LclId;
use crate::ops::construct::{ConstructItem, ConstructValue};
use crate::ops::dupelim::DedupKind;
use crate::ops::filter::FilterPred;
use crate::pattern::{Apt, AptRoot, MSpec, PredValue};
use crate::plan::Plan;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use xmldb::TagId;
use xquery::CmpOp;

/// Per-tree cardinality of a logical class, abstracted from the matching
/// specifications along its APT path (Definition 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Card {
    /// Exactly one member per tree (`-` edges all the way down).
    One,
    /// Zero or one member per tree (`?` somewhere on the path).
    Opt,
    /// Any number of members (`+`/`*` grouping, or a nesting join).
    Many,
}

impl Card {
    /// Cardinality of a child class reached over `edge` from a parent with
    /// this cardinality.
    fn step(self, edge: MSpec) -> Card {
        match (self, edge) {
            (Card::Many, _) | (_, MSpec::Plus | MSpec::Star) => Card::Many,
            (c, MSpec::One) => c,
            (_, MSpec::Opt) => Card::Opt,
        }
    }

    /// Least upper bound (used to merge Union branches).
    fn join(self, other: Card) -> Card {
        self.max(other)
    }
}

/// Output ordering of a plan, tracked informationally alongside the classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Order {
    /// Trees are in document order of their anchoring base nodes.
    #[default]
    Document,
    /// Trees were explicitly sorted by class values (ORDER BY).
    Sorted,
    /// No ordering guarantee (e.g. after a grouping procedure).
    Unspecified,
}

/// The inferred type of a plan: which classes its output trees carry.
#[derive(Debug, Clone, Default)]
pub struct PlanType {
    /// Available classes and their per-tree cardinality.
    pub classes: BTreeMap<LclId, Card>,
    /// Every label defined anywhere below (a superset of `classes`; Union
    /// keeps branch-local labels here so fresh labels cannot collide).
    pub seen: BTreeSet<LclId>,
    /// The class labelling the root node of every output tree, when it is
    /// statically known. The root survives every Project (the output must
    /// stay a tree), so its class is available even when not in `keep`.
    pub root: Option<LclId>,
    /// Output ordering.
    pub order: Order,
}

impl PlanType {
    /// Is `lcl` usable by a downstream operator? True for every class in
    /// [`PlanType::classes`] plus the tree-root class (which survives every
    /// Project even when not kept explicitly).
    pub fn available(&self, lcl: LclId) -> bool {
        self.classes.contains_key(&lcl) || self.root == Some(lcl)
    }

    fn define(&mut self, op: &'static str, lcl: LclId, card: Card) -> Result<(), AnalyzeError> {
        if self.seen.contains(&lcl) {
            return Err(AnalyzeError::DuplicateClass { op, lcl });
        }
        self.classes.insert(lcl, card);
        self.seen.insert(lcl);
        Ok(())
    }

    fn require(&self, op: &'static str, lcl: LclId) -> Result<(), AnalyzeError> {
        if self.available(lcl) {
            Ok(())
        } else {
            Err(AnalyzeError::MissingClass { op, lcl })
        }
    }
}

/// A dataflow violation found by the analyzer. Each variant names the
/// offending operator and class, so a failure pinpoints the broken edge of
/// the plan rather than surfacing later as a silently empty result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AnalyzeError {
    /// `op` references class `lcl`, which its input does not produce.
    MissingClass {
        /// The referencing operator.
        op: &'static str,
        /// The unavailable class.
        lcl: LclId,
    },
    /// An operator introduces a label that is already defined upstream.
    DuplicateClass {
        /// The redefining operator.
        op: &'static str,
        /// The doubly-defined class.
        lcl: LclId,
    },
    /// An extension select's anchor class is not available in its input (or
    /// the select has no input at all).
    MissingAnchor {
        /// The anchor class of the extension APT.
        lcl: LclId,
    },
    /// A document-anchored select has an upstream input; it must be a leaf.
    DocSelectWithInput {
        /// The document the APT is anchored at.
        document: String,
    },
    /// A join parameter references a class that is not on the required side.
    JoinSideMissing {
        /// `"left"` or `"right"`.
        side: &'static str,
        /// The class the predicate or dedup key references.
        lcl: LclId,
    },
    /// A Union operator with no branches.
    EmptyUnion,
    /// A class the Union relies on (its dedup key) is missing from one
    /// branch — the branches are not class-compatible.
    UnionBranchMissing {
        /// Zero-based index of the offending branch.
        branch: usize,
        /// The class that branch fails to produce.
        lcl: LclId,
    },
    /// An operator that requires a singleton class (the executor errors
    /// otherwise) got a class that may carry another number of members.
    NotSingleton {
        /// The demanding operator.
        op: &'static str,
        /// The class whose inferred cardinality is not `One`.
        lcl: LclId,
    },
}

impl fmt::Display for AnalyzeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalyzeError::MissingClass { op, lcl } => {
                write!(f, "{op} references class {lcl}, which its input does not produce")
            }
            AnalyzeError::DuplicateClass { op, lcl } => {
                write!(f, "{op} redefines class {lcl}, which is already live")
            }
            AnalyzeError::MissingAnchor { lcl } => {
                write!(f, "extension select is anchored at unavailable class {lcl}")
            }
            AnalyzeError::DocSelectWithInput { document } => {
                write!(f, "select on document {document:?} must be a leaf but has an input")
            }
            AnalyzeError::JoinSideMissing { side, lcl } => {
                write!(f, "join references class {lcl}, which the {side} input does not produce")
            }
            AnalyzeError::EmptyUnion => write!(f, "union has no branches"),
            AnalyzeError::UnionBranchMissing { branch, lcl } => {
                write!(f, "union branch {branch} does not produce class {lcl}")
            }
            AnalyzeError::NotSingleton { op, lcl } => {
                write!(f, "{op} requires class {lcl} to be a per-tree singleton")
            }
        }
    }
}

impl std::error::Error for AnalyzeError {}

/// Infers the classes produced by `plan`, checking every LC reference along
/// the way.
pub fn analyze(plan: &Plan) -> Result<PlanType, AnalyzeError> {
    match plan {
        Plan::Select { input: None, apt } => match &apt.root {
            AptRoot::Document { lcl, .. } => {
                let mut t = PlanType::default();
                t.define("Select", *lcl, Card::One)?;
                t.root = Some(*lcl);
                define_apt_nodes(&mut t, apt, Card::One)?;
                Ok(t)
            }
            AptRoot::Lcl(lcl) => Err(AnalyzeError::MissingAnchor { lcl: *lcl }),
        },
        Plan::Select { input: Some(input), apt } => match &apt.root {
            AptRoot::Document { name, .. } => {
                Err(AnalyzeError::DocSelectWithInput { document: name.clone() })
            }
            AptRoot::Lcl(anchor) => {
                let mut t = analyze(input)?;
                if !t.available(*anchor) {
                    return Err(AnalyzeError::MissingAnchor { lcl: *anchor });
                }
                let anchor_card = t.classes.get(anchor).copied().unwrap_or(Card::One);
                define_apt_nodes(&mut t, apt, anchor_card)?;
                Ok(t)
            }
        },
        Plan::Filter { input, lcl, pred, .. } => {
            let t = analyze(input)?;
            t.require("Filter", *lcl)?;
            if let FilterPred::CmpLcl { other, .. } = pred {
                t.require("Filter", *other)?;
            }
            Ok(t)
        }
        Plan::Join { left, right, spec } => {
            let lt = analyze(left)?;
            let rt = analyze(right)?;
            if let Some(pred) = &spec.pred {
                if !lt.available(pred.left) {
                    return Err(AnalyzeError::JoinSideMissing { side: "left", lcl: pred.left });
                }
                if !rt.available(pred.right) {
                    return Err(AnalyzeError::JoinSideMissing { side: "right", lcl: pred.right });
                }
            }
            if let Some(key) = spec.dedup_right_on {
                if !rt.available(key) {
                    return Err(AnalyzeError::JoinSideMissing { side: "right", lcl: key });
                }
            }
            // The sides come from disjoint label generations; a shared label
            // would merge unrelated members under one class.
            let mut t = lt;
            for (&lcl, &card) in &rt.classes {
                if t.seen.contains(&lcl) {
                    return Err(AnalyzeError::DuplicateClass { op: "Join", lcl });
                }
                // A grouping right edge nests every matching right tree
                // under one output root, so right-side classes multiply; an
                // optional edge can leave them absent.
                let card = match spec.right_mspec {
                    MSpec::Plus | MSpec::Star => Card::Many,
                    MSpec::Opt => card.join(Card::Opt),
                    MSpec::One => card,
                };
                t.classes.insert(lcl, card);
            }
            t.seen.extend(rt.seen.iter().copied());
            t.define("Join", spec.root_lcl, Card::One)?;
            t.root = Some(spec.root_lcl);
            Ok(t)
        }
        Plan::Project { input, keep } => {
            let mut t = analyze(input)?;
            for k in keep {
                t.require("Project", *k)?;
            }
            // Only the kept classes (plus the always-retained tree root)
            // survive; this is the availability boundary the rewrite
            // oracle's widen-projects fix-up exists for.
            let root = t.root;
            t.classes.retain(|lcl, _| keep.contains(lcl) || Some(*lcl) == root);
            Ok(t)
        }
        Plan::DupElim { input, on, .. } => {
            let t = analyze(input)?;
            for k in on {
                t.require("DupElim", *k)?;
            }
            Ok(t)
        }
        Plan::Aggregate { input, over, new_lcl, .. } => {
            let mut t = analyze(input)?;
            t.require("Aggregate", *over)?;
            t.define("Aggregate", *new_lcl, Card::One)?;
            Ok(t)
        }
        Plan::Construct { input, spec } => {
            let mut t = analyze(input)?;
            let mut root = None;
            for item in spec {
                check_construct_item(&mut t, item, &mut root)?;
            }
            // Copied member subtrees keep their descendants' labels, so the
            // input classes stay (conservatively) available.
            t.root = root;
            t.order = Order::Document;
            Ok(t)
        }
        Plan::Sort { input, keys } => {
            let mut t = analyze(input)?;
            for k in keys {
                t.require("Sort", k.lcl)?;
            }
            t.order = Order::Sorted;
            Ok(t)
        }
        Plan::Flatten { input, parent, child } => {
            let mut t = analyze(input)?;
            require_singleton(&t, "Flatten", *parent)?;
            t.require("Flatten", *child)?;
            t.classes.insert(*child, Card::One);
            Ok(t)
        }
        Plan::Shadow { input, parent, child } => {
            let mut t = analyze(input)?;
            require_singleton(&t, "Shadow", *parent)?;
            t.require("Shadow", *child)?;
            // One visible member per tree; the shadowed rest come back at
            // the Illuminate.
            t.classes.insert(*child, Card::One);
            Ok(t)
        }
        Plan::Illuminate { input, lcl } => {
            let mut t = analyze(input)?;
            t.require("Illuminate", *lcl)?;
            t.classes.insert(*lcl, Card::Many);
            Ok(t)
        }
        Plan::GroupBy { input, by, collect } => {
            let mut t = analyze(input)?;
            require_singleton(&t, "GroupBy", *by)?;
            t.require("GroupBy", *collect)?;
            t.classes.insert(*collect, Card::Many);
            t.order = Order::Unspecified;
            Ok(t)
        }
        Plan::Materialize { input, lcls } => {
            let t = analyze(input)?;
            for l in lcls {
                t.require("Materialize", *l)?;
            }
            Ok(t)
        }
        Plan::Union { inputs, dedup_on } => {
            if inputs.is_empty() {
                return Err(AnalyzeError::EmptyUnion);
            }
            let branches: Vec<PlanType> = inputs.iter().map(analyze).collect::<Result<_, _>>()?;
            // Branches are translated with identically-seeded label
            // generators, so shared labels are intentional; only classes
            // present in *every* branch are usable downstream.
            for (i, b) in branches.iter().enumerate() {
                for key in dedup_on {
                    if !b.available(*key) {
                        return Err(AnalyzeError::UnionBranchMissing { branch: i, lcl: *key });
                    }
                }
            }
            let mut t = PlanType::default();
            let first = &branches[0];
            'classes: for (&lcl, &card) in &first.classes {
                let mut merged = card;
                for b in &branches[1..] {
                    match b.classes.get(&lcl) {
                        Some(&c) => merged = merged.join(c),
                        None => continue 'classes,
                    }
                }
                t.classes.insert(lcl, merged);
            }
            for b in &branches {
                t.seen.extend(b.seen.iter().copied());
            }
            t.root = first.root.filter(|r| branches[1..].iter().all(|b| b.root == Some(*r)));
            t.order = if branches.iter().all(|b| b.order == first.order)
                && branches[0].order != Order::Sorted
            {
                first.order
            } else {
                Order::Unspecified
            };
            Ok(t)
        }
    }
}

/// Checks the whole plan's LC dataflow; `Ok(())` means every operator's
/// references are satisfied by its input.
pub fn verify(plan: &Plan) -> Result<(), AnalyzeError> {
    analyze(plan).map(|_| ())
}

/// One value-predicate domain a plan reads: a comparison applied to the
/// string content of nodes carrying a specific tag. Collected from APT node
/// predicates and from `Filter` content predicates whose class is labelled
/// by a pattern node (so the tag is statically known).
#[derive(Debug, Clone, PartialEq)]
pub struct PredDomain {
    /// Tag of the nodes whose content the predicate reads.
    pub tag: TagId,
    /// Comparison operator.
    pub op: CmpOp,
    /// Literal the content is compared against.
    pub value: PredValue,
}

/// The data a plan can possibly read: per-operator read effects collected
/// over the whole plan — document anchors, the tags tested *per document*,
/// axis step counts, and the value-predicate domains.
///
/// This is a *conservative* static over-approximation used for selective
/// cache invalidation: a mutation whose affected-tag set (see
/// `xmldb::update::UpdateSummary`) is disjoint from a cached plan's tag
/// footprint — or that touches a document the plan never reads — provably
/// cannot change that plan's result, so the cached entry can be carried
/// into the post-mutation epoch instead of being dropped. Unlike the
/// earlier plan-global tag set, tags are attributed to the documents whose
/// selects test them, so a mutation of one document of a multi-document
/// join invalidates only when *that document's* tags overlap.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Footprint {
    /// Logical names of the documents the plan's selects are anchored at.
    pub docs: BTreeSet<String>,
    /// Tags tested by pattern nodes, per document whose data they match.
    pub doc_tags: BTreeMap<String, BTreeSet<TagId>>,
    /// Tags tested by pattern nodes that could not be attributed to any
    /// document (defensive; empty for every verifiable plan, since each
    /// select chain bottoms out at a document anchor).
    pub tags: BTreeSet<TagId>,
    /// Number of child-axis pattern edges in the plan.
    pub child_steps: u32,
    /// Number of descendant-axis pattern edges in the plan.
    pub descendant_steps: u32,
    /// Value-predicate domains the plan evaluates.
    pub preds: Vec<PredDomain>,
}

impl Footprint {
    /// Can a mutation of `doc` with the given affected tags change this
    /// plan's result? False only when provably not: either the plan never
    /// reads `doc`, or none of the affected tags is tested against `doc`'s
    /// data.
    pub fn overlaps(&self, doc: &str, affected_tags: &[TagId]) -> bool {
        self.docs.contains(doc)
            && affected_tags.iter().any(|t| {
                self.doc_tags.get(doc).is_some_and(|s| s.contains(t)) || self.tags.contains(t)
            })
    }

    /// Absorbs one APT: attributes its node tags to the documents the
    /// pattern matches against (`input_docs` for extension selects) and
    /// returns the document set flowing out of the select.
    fn absorb_apt(&mut self, apt: &Apt, input_docs: &BTreeSet<String>) -> BTreeSet<String> {
        let docs: BTreeSet<String> = match &apt.root {
            AptRoot::Document { name, .. } => {
                self.docs.insert(name.clone());
                std::iter::once(name.clone()).collect()
            }
            AptRoot::Lcl(_) => input_docs.clone(),
        };
        for node in &apt.nodes {
            match node.axis {
                xmldb::AxisRel::Child => self.child_steps += 1,
                xmldb::AxisRel::Descendant => self.descendant_steps += 1,
            }
            if docs.is_empty() {
                self.tags.insert(node.tag);
            } else {
                for d in &docs {
                    self.doc_tags.entry(d.clone()).or_default().insert(node.tag);
                }
            }
            if let Some(p) = &node.pred {
                self.preds.push(PredDomain { tag: node.tag, op: p.op, value: p.value.clone() });
            }
        }
        docs
    }
}

/// Computes the [`Footprint`] of a plan by walking every operator,
/// attributing each select's tag tests to the documents its input chain is
/// anchored at.
pub fn plan_footprint(plan: &Plan) -> Footprint {
    let mut tag_of = BTreeMap::new();
    collect_node_tags(plan, &mut tag_of);
    let mut fp = Footprint::default();
    collect_footprint(plan, &mut fp, &tag_of);
    fp
}

/// Maps every pattern-node class to its tag, for attributing `Filter`
/// content predicates to a tag domain.
fn collect_node_tags(plan: &Plan, out: &mut BTreeMap<LclId, TagId>) {
    if let Plan::Select { apt, .. } = plan {
        for node in &apt.nodes {
            out.insert(node.lcl, node.tag);
        }
    }
    match plan {
        Plan::Select { input, .. } => {
            if let Some(i) = input {
                collect_node_tags(i, out);
            }
        }
        Plan::Join { left, right, .. } => {
            collect_node_tags(left, out);
            collect_node_tags(right, out);
        }
        Plan::Union { inputs, .. } => {
            for i in inputs {
                collect_node_tags(i, out);
            }
        }
        Plan::Filter { input, .. }
        | Plan::Project { input, .. }
        | Plan::DupElim { input, .. }
        | Plan::Aggregate { input, .. }
        | Plan::Construct { input, .. }
        | Plan::Sort { input, .. }
        | Plan::Flatten { input, .. }
        | Plan::Shadow { input, .. }
        | Plan::Illuminate { input, .. }
        | Plan::GroupBy { input, .. }
        | Plan::Materialize { input, .. } => collect_node_tags(input, out),
    }
}

/// Recursive collection; returns the set of documents the subtree reads so
/// extension selects can attribute their tags.
fn collect_footprint(
    plan: &Plan,
    fp: &mut Footprint,
    tag_of: &BTreeMap<LclId, TagId>,
) -> BTreeSet<String> {
    match plan {
        Plan::Select { input, apt } => {
            let in_docs = match input {
                Some(i) => collect_footprint(i, fp, tag_of),
                None => BTreeSet::new(),
            };
            fp.absorb_apt(apt, &in_docs)
        }
        Plan::Filter { input, lcl, pred, .. } => {
            let docs = collect_footprint(input, fp, tag_of);
            if let FilterPred::Content(p) = pred {
                if let Some(&tag) = tag_of.get(lcl) {
                    fp.preds.push(PredDomain { tag, op: p.op, value: p.value.clone() });
                }
            }
            docs
        }
        Plan::Project { input, .. }
        | Plan::DupElim { input, .. }
        | Plan::Aggregate { input, .. }
        | Plan::Construct { input, .. }
        | Plan::Sort { input, .. }
        | Plan::Flatten { input, .. }
        | Plan::Shadow { input, .. }
        | Plan::Illuminate { input, .. }
        | Plan::GroupBy { input, .. }
        | Plan::Materialize { input, .. } => collect_footprint(input, fp, tag_of),
        Plan::Join { left, right, .. } => {
            let mut docs = collect_footprint(left, fp, tag_of);
            docs.extend(collect_footprint(right, fp, tag_of));
            docs
        }
        Plan::Union { inputs, .. } => {
            let mut docs = BTreeSet::new();
            for i in inputs {
                docs.extend(collect_footprint(i, fp, tag_of));
            }
            docs
        }
    }
}

/// Statically derived duplicate structure of a plan's output: which classes
/// are per-tree singletons-or-empty, and which class *sets* have pairwise
/// distinct member-identity tuples across the output trees.
///
/// `DupElim` keys on [`crate::tree::ResultTree::members_all`] (shadowed
/// members count, `None` for an empty class) and errors on more than one
/// member, so `atmost_one` here means "at most one member per tree counting
/// shadowed members" — exactly the domain on which identity tuples are
/// well defined.
#[derive(Debug, Clone, Default)]
pub struct Distinctness {
    /// Classes with at most one member per output tree (shadowed included).
    pub atmost_one: BTreeSet<LclId>,
    /// Class sets whose member-identity tuples are pairwise distinct across
    /// the output trees. An empty set is a valid fact: it asserts the plan
    /// produces at most one tree.
    pub facts: Vec<BTreeSet<LclId>>,
}

impl Distinctness {
    /// True when node-identity duplicate elimination over `on` is a provable
    /// no-op: every key class is a per-tree at-most-singleton (so the key is
    /// well defined) and some known-distinct fact is covered by the key set
    /// (distinct on a subset implies distinct on the whole key).
    pub fn proves_distinct_on(&self, on: &[LclId]) -> bool {
        let on_set: BTreeSet<LclId> = on.iter().copied().collect();
        on.iter().all(|l| self.atmost_one.contains(l))
            && self.facts.iter().any(|f| f.is_subset(&on_set))
    }
}

/// Infers the [`Distinctness`] of a plan's output.
///
/// The core facts: a document select produces one tree per embedding of its
/// *non-grouped* pattern nodes (grouped `+`/`*` members collect under one
/// tree), so the One/Opt-cardinality classes form a distinct tuple; a Join,
/// Aggregate, or Construct attaches a fresh temporary per output tree; a
/// `DupElim` makes its own key distinct by construction. Everything not
/// provable is dropped — the analysis is conservative by design and its
/// claims are cross-checked by the `experiments lintcheck` oracle.
pub fn distinctness(plan: &Plan) -> Distinctness {
    match plan {
        Plan::Select { input: None, apt } => {
            let mut d = Distinctness::default();
            if let AptRoot::Document { lcl, .. } = &apt.root {
                // The document root is the same node in every tree: a
                // per-tree singleton that adds nothing to distinctness, so
                // it stays out of the fact.
                d.atmost_one.insert(*lcl);
            }
            let fact = absorb_apt_distinctness(&mut d, apt, Card::One);
            d.facts.push(fact);
            d
        }
        Plan::Select { input: Some(input), apt } => {
            let mut d = distinctness(input);
            if let AptRoot::Lcl(anchor) = &apt.root {
                let anchor_card =
                    if d.atmost_one.contains(anchor) { Card::One } else { Card::Many };
                let fresh = absorb_apt_distinctness(&mut d, apt, anchor_card);
                if anchor_card == Card::One {
                    // Outputs fanned out from one input differ on at least
                    // one non-grouped new node; outputs from different
                    // inputs differ on the old fact.
                    for f in &mut d.facts {
                        f.extend(fresh.iter().copied());
                    }
                } else {
                    // Fan-out per anchor member: the new nodes cannot
                    // witness which member anchored the extension.
                    d.facts.clear();
                }
            }
            d
        }
        Plan::Filter { input, .. } | Plan::Sort { input, .. } => distinctness(input),
        Plan::Materialize { input, .. } | Plan::Illuminate { input, .. } => distinctness(input),
        Plan::Project { input, keep } => {
            let mut d = distinctness(input);
            let keep_set: BTreeSet<LclId> = keep.iter().copied().collect();
            d.atmost_one.retain(|l| keep_set.contains(l));
            d.facts.retain(|f| f.is_subset(&keep_set));
            d
        }
        Plan::DupElim { input, on, kind } => {
            let mut d = distinctness(input);
            if *kind == DedupKind::NodeId {
                d.facts.push(on.iter().copied().collect());
            }
            d
        }
        Plan::Join { left, right, spec } => {
            let lt = distinctness(left);
            let rt = distinctness(right);
            let mut d = Distinctness { atmost_one: lt.atmost_one, ..Default::default() };
            if matches!(spec.right_mspec, MSpec::One | MSpec::Opt) {
                d.atmost_one.extend(rt.atmost_one);
            }
            d.atmost_one.insert(spec.root_lcl);
            // Every output tree is rooted at a freshly created temporary.
            d.facts.push(std::iter::once(spec.root_lcl).collect());
            d
        }
        Plan::Aggregate { input, new_lcl, .. } => {
            let mut d = distinctness(input);
            d.atmost_one.insert(*new_lcl);
            // One fresh temporary per tree — distinct by construction.
            d.facts.push(std::iter::once(*new_lcl).collect());
            d
        }
        Plan::Flatten { input, child, .. } => {
            let mut d = distinctness(input);
            d.atmost_one.insert(*child);
            // Trees fanned out from one input differ in the kept child.
            for f in &mut d.facts {
                f.insert(*child);
            }
            d
        }
        Plan::Shadow { input, .. } => {
            // Fan-out copies differ only in shadow flags: identity tuples
            // repeat across outputs (members_all is unchanged).
            let mut d = distinctness(input);
            d.facts.clear();
            d
        }
        Plan::Construct { input, spec } => {
            // Output trees are rebuilt; copied members may duplicate, so
            // only the spec's own element classes (one fresh temporary per
            // tree) survive.
            let _ = distinctness(input);
            let mut d = Distinctness::default();
            let mut root = None;
            collect_element_lcls(spec, &mut d.atmost_one, &mut root);
            if let Some(r) = root {
                d.facts.push(std::iter::once(r).collect());
            }
            d
        }
        // Grouping grafts members across trees and union concatenates
        // branches that may repeat each other: nothing provable.
        Plan::GroupBy { .. } | Plan::Union { .. } => Distinctness::default(),
    }
}

/// Adds the One/Opt-cardinality classes of `apt` to `d.atmost_one` and
/// returns them (the non-grouped embedding witnesses).
fn absorb_apt_distinctness(d: &mut Distinctness, apt: &Apt, anchor_card: Card) -> BTreeSet<LclId> {
    let mut fresh = BTreeSet::new();
    let mut cards: Vec<Card> = Vec::with_capacity(apt.nodes.len());
    for node in &apt.nodes {
        let parent_card = match node.parent {
            None => anchor_card,
            Some(p) => cards[p],
        };
        let card = parent_card.step(node.mspec);
        if card != Card::Many {
            d.atmost_one.insert(node.lcl);
            fresh.insert(node.lcl);
        }
        cards.push(card);
    }
    fresh
}

fn collect_element_lcls(
    spec: &[ConstructItem],
    out: &mut BTreeSet<LclId>,
    root: &mut Option<LclId>,
) {
    for item in spec {
        if let ConstructItem::Element { lcl, children, .. } = item {
            if let Some(l) = lcl {
                out.insert(*l);
                if root.is_none() {
                    *root = Some(*l);
                }
            }
            let mut child_root = None;
            collect_element_lcls(children, out, &mut child_root);
        }
    }
}

/// Classes whose members are executor-created *temporaries* rather than
/// store nodes: Join output roots, Aggregate result classes, and Construct
/// element classes. Temporary nodes serialize their result-tree children
/// (store nodes serialize their stored subtree), so the liveness pruner
/// must treat trees reachable through them as fully observable.
pub fn temp_classes(plan: &Plan) -> BTreeSet<LclId> {
    let mut out = BTreeSet::new();
    collect_temp_classes(plan, &mut out);
    out
}

fn collect_temp_classes(plan: &Plan, out: &mut BTreeSet<LclId>) {
    match plan {
        Plan::Select { input, .. } => {
            if let Some(i) = input {
                collect_temp_classes(i, out);
            }
        }
        Plan::Join { left, right, spec } => {
            out.insert(spec.root_lcl);
            collect_temp_classes(left, out);
            collect_temp_classes(right, out);
        }
        Plan::Aggregate { input, new_lcl, .. } => {
            out.insert(*new_lcl);
            collect_temp_classes(input, out);
        }
        Plan::Construct { input, spec } => {
            let mut root = None;
            collect_element_lcls(spec, out, &mut root);
            collect_temp_classes(input, out);
        }
        Plan::Union { inputs, .. } => {
            for i in inputs {
                collect_temp_classes(i, out);
            }
        }
        Plan::Filter { input, .. }
        | Plan::Project { input, .. }
        | Plan::DupElim { input, .. }
        | Plan::Sort { input, .. }
        | Plan::Flatten { input, .. }
        | Plan::Shadow { input, .. }
        | Plan::Illuminate { input, .. }
        | Plan::GroupBy { input, .. }
        | Plan::Materialize { input, .. } => collect_temp_classes(input, out),
    }
}

/// Defines the classes of every pattern node of `apt` (anchor excluded),
/// deriving each node's cardinality from the matching specifications along
/// its path from the anchor.
fn define_apt_nodes(t: &mut PlanType, apt: &Apt, anchor_card: Card) -> Result<(), AnalyzeError> {
    // Parent indexes precede children, so one forward pass suffices.
    let mut cards: Vec<Card> = Vec::with_capacity(apt.nodes.len());
    for node in &apt.nodes {
        let parent_card = match node.parent {
            None => anchor_card,
            Some(p) => cards[p],
        };
        let card = parent_card.step(node.mspec);
        t.define("Select", node.lcl, card)?;
        cards.push(card);
    }
    Ok(())
}

/// Checks one construct item: every referenced class must be live, every
/// element label must be fresh. `root` captures the first top-level
/// element's label (the constructed tree's root class).
fn check_construct_item(
    t: &mut PlanType,
    item: &ConstructItem,
    root: &mut Option<LclId>,
) -> Result<(), AnalyzeError> {
    match item {
        ConstructItem::Element { lcl, attrs, children, .. } => {
            if let Some(l) = lcl {
                t.define("Construct", *l, Card::One)?;
                if root.is_none() {
                    *root = Some(*l);
                }
            }
            for (_, v) in attrs {
                if let ConstructValue::LclText(l) = v {
                    t.require("Construct", *l)?;
                }
            }
            let mut child_root = None;
            for c in children {
                check_construct_item(t, c, &mut child_root)?;
            }
            Ok(())
        }
        ConstructItem::LclRef { lcl, .. } | ConstructItem::LclText(lcl) => {
            t.require("Construct", *lcl)
        }
        ConstructItem::Text(_) => Ok(()),
    }
}

/// Cardinality check for the operators whose executor errors on a
/// non-singleton class (Flatten/Shadow parents, the grouping key).
fn require_singleton(t: &PlanType, op: &'static str, lcl: LclId) -> Result<(), AnalyzeError> {
    t.require(op, lcl)?;
    match t.classes.get(&lcl) {
        Some(Card::One) | None => Ok(()),
        Some(_) => Err(AnalyzeError::NotSingleton { op, lcl }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::dupelim::DedupKind;
    use crate::ops::join::{JoinPred, JoinSpec};
    use crate::ops::sort::SortKey;
    use xmldb::{AxisRel, TagId};
    use xquery::CmpOp;

    fn doc_select() -> Plan {
        // doc(a.xml)(1)[//-person(2)[/*age(3)]]
        let mut apt = Apt::for_document("a.xml", LclId(1));
        let p = apt.add(None, AxisRel::Descendant, MSpec::One, TagId(10), None, LclId(2));
        apt.add(Some(p), AxisRel::Child, MSpec::Star, TagId(11), None, LclId(3));
        Plan::Select { input: None, apt }
    }

    #[test]
    fn doc_select_defines_apt_classes_with_cards() {
        let t = analyze(&doc_select()).unwrap();
        assert_eq!(t.classes.get(&LclId(1)), Some(&Card::One));
        assert_eq!(t.classes.get(&LclId(2)), Some(&Card::One));
        assert_eq!(t.classes.get(&LclId(3)), Some(&Card::Many));
        assert_eq!(t.root, Some(LclId(1)));
        assert_eq!(t.order, Order::Document);
    }

    #[test]
    fn extension_select_needs_its_anchor() {
        let mut ext = Apt::extending(LclId(2));
        ext.add(None, AxisRel::Child, MSpec::Opt, TagId(12), None, LclId(4));
        let good = Plan::Select { input: Some(Box::new(doc_select())), apt: ext.clone() };
        let t = analyze(&good).unwrap();
        assert_eq!(t.classes.get(&LclId(4)), Some(&Card::Opt));

        let mut bad_ext = Apt::extending(LclId(99));
        bad_ext.add(None, AxisRel::Child, MSpec::One, TagId(12), None, LclId(4));
        let bad = Plan::Select { input: Some(Box::new(doc_select())), apt: bad_ext };
        assert_eq!(analyze(&bad).unwrap_err(), AnalyzeError::MissingAnchor { lcl: LclId(99) });

        assert!(matches!(
            analyze(&Plan::Select { input: None, apt: ext }),
            Err(AnalyzeError::MissingAnchor { .. })
        ));
    }

    #[test]
    fn duplicate_labels_are_rejected() {
        let mut ext = Apt::extending(LclId(2));
        ext.add(None, AxisRel::Child, MSpec::One, TagId(12), None, LclId(3)); // collides
        let p = Plan::Select { input: Some(Box::new(doc_select())), apt: ext };
        assert_eq!(
            analyze(&p).unwrap_err(),
            AnalyzeError::DuplicateClass { op: "Select", lcl: LclId(3) }
        );
    }

    #[test]
    fn project_drops_availability() {
        let projected = Plan::Project { input: Box::new(doc_select()), keep: vec![LclId(2)] };
        let t = analyze(&projected).unwrap();
        assert!(t.classes.contains_key(&LclId(2)));
        assert!(!t.classes.contains_key(&LclId(3)));
        // The tree root always survives a projection.
        assert!(t.available(LclId(1)));

        let sorted = Plan::Sort {
            input: Box::new(projected),
            keys: vec![SortKey { lcl: LclId(3), descending: false }],
        };
        assert_eq!(
            analyze(&sorted).unwrap_err(),
            AnalyzeError::MissingClass { op: "Sort", lcl: LclId(3) }
        );
    }

    #[test]
    fn join_checks_sides_and_creates_root() {
        let left = doc_select();
        let mut apt = Apt::for_document("a.xml", LclId(10));
        apt.add(None, AxisRel::Descendant, MSpec::One, TagId(20), None, LclId(11));
        let right = Plan::Select { input: None, apt };
        let spec = JoinSpec {
            root_lcl: LclId(20),
            right_mspec: MSpec::One,
            pred: Some(JoinPred::value(LclId(2), CmpOp::Eq, LclId(11))),
            dedup_right_on: None,
        };
        let good = Plan::Join {
            left: Box::new(left.clone()),
            right: Box::new(right.clone()),
            spec: spec.clone(),
        };
        let t = analyze(&good).unwrap();
        assert_eq!(t.root, Some(LclId(20)));
        assert!(t.available(LclId(2)) && t.available(LclId(11)));

        // Swapped predicate sides must be caught.
        let mut swapped = spec.clone();
        swapped.pred = Some(JoinPred::value(LclId(11), CmpOp::Eq, LclId(2)));
        let bad = Plan::Join {
            left: Box::new(left.clone()),
            right: Box::new(right.clone()),
            spec: swapped,
        };
        assert_eq!(
            analyze(&bad).unwrap_err(),
            AnalyzeError::JoinSideMissing { side: "left", lcl: LclId(11) }
        );

        // A self-join without relabeling merges classes: rejected.
        let dup = Plan::Join {
            left: Box::new(left.clone()),
            right: Box::new(left),
            spec: JoinSpec {
                root_lcl: LclId(20),
                right_mspec: MSpec::One,
                pred: None,
                dedup_right_on: None,
            },
        };
        assert_eq!(
            analyze(&dup).unwrap_err(),
            AnalyzeError::DuplicateClass { op: "Join", lcl: LclId(1) }
        );
    }

    #[test]
    fn nesting_join_multiplies_right_classes() {
        let mut apt = Apt::for_document("b.xml", LclId(10));
        apt.add(None, AxisRel::Descendant, MSpec::One, TagId(20), None, LclId(11));
        let right = Plan::Select { input: None, apt };
        let p = Plan::Join {
            left: Box::new(doc_select()),
            right: Box::new(right),
            spec: JoinSpec {
                root_lcl: LclId(20),
                right_mspec: MSpec::Star,
                pred: Some(JoinPred::value(LclId(2), CmpOp::Eq, LclId(11))),
                dedup_right_on: Some(LclId(10)),
            },
        };
        let t = analyze(&p).unwrap();
        assert_eq!(t.classes.get(&LclId(11)), Some(&Card::Many));
    }

    #[test]
    fn union_requires_compatible_branches() {
        let a = doc_select();
        let mut apt = Apt::for_document("a.xml", LclId(1));
        apt.add(None, AxisRel::Descendant, MSpec::One, TagId(10), None, LclId(2));
        let b = Plan::Select { input: None, apt }; // same seeds, no class (3)
        let u = Plan::Union { inputs: vec![a.clone(), b], dedup_on: vec![LclId(2)] };
        let t = analyze(&u).unwrap();
        assert!(t.classes.contains_key(&LclId(2)));
        assert!(!t.classes.contains_key(&LclId(3)), "class (3) is not in every branch");

        let bad = Plan::Union { inputs: vec![a], dedup_on: vec![LclId(7)] };
        assert_eq!(
            analyze(&bad).unwrap_err(),
            AnalyzeError::UnionBranchMissing { branch: 0, lcl: LclId(7) }
        );
        assert_eq!(
            analyze(&Plan::Union { inputs: vec![], dedup_on: vec![] }).unwrap_err(),
            AnalyzeError::EmptyUnion
        );
    }

    #[test]
    fn flatten_requires_singleton_parent_and_narrows_child() {
        let good =
            Plan::Flatten { input: Box::new(doc_select()), parent: LclId(2), child: LclId(3) };
        let t = analyze(&good).unwrap();
        assert_eq!(t.classes.get(&LclId(3)), Some(&Card::One));

        let bad =
            Plan::Flatten { input: Box::new(doc_select()), parent: LclId(3), child: LclId(2) };
        assert_eq!(
            analyze(&bad).unwrap_err(),
            AnalyzeError::NotSingleton { op: "Flatten", lcl: LclId(3) }
        );

        let lit = Plan::Illuminate {
            input: Box::new(Plan::Shadow {
                input: Box::new(doc_select()),
                parent: LclId(2),
                child: LclId(3),
            }),
            lcl: LclId(3),
        };
        assert_eq!(analyze(&lit).unwrap().classes.get(&LclId(3)), Some(&Card::Many));
    }

    #[test]
    fn aggregate_and_dupelim_and_construct() {
        use xquery::AggFunc;
        let agg = Plan::Aggregate {
            input: Box::new(doc_select()),
            func: AggFunc::Count,
            over: LclId(3),
            new_lcl: LclId(4),
        };
        let t = analyze(&agg).unwrap();
        assert_eq!(t.classes.get(&LclId(4)), Some(&Card::One));

        let clash = Plan::Aggregate {
            input: Box::new(doc_select()),
            func: AggFunc::Count,
            over: LclId(3),
            new_lcl: LclId(2),
        };
        assert!(matches!(analyze(&clash), Err(AnalyzeError::DuplicateClass { .. })));

        let de = Plan::DupElim {
            input: Box::new(doc_select()),
            on: vec![LclId(9)],
            kind: DedupKind::NodeId,
        };
        assert_eq!(
            analyze(&de).unwrap_err(),
            AnalyzeError::MissingClass { op: "DupElim", lcl: LclId(9) }
        );

        let c = Plan::Construct {
            input: Box::new(doc_select()),
            spec: vec![ConstructItem::Element {
                tag: "out".into(),
                lcl: Some(LclId(5)),
                attrs: vec![("n".into(), ConstructValue::LclText(LclId(2)))],
                children: vec![ConstructItem::LclRef { lcl: LclId(3), hidden: false }],
            }],
        };
        let t = analyze(&c).unwrap();
        assert_eq!(t.root, Some(LclId(5)));
        assert!(t.available(LclId(3)), "copied member classes stay available");

        let broken = Plan::Construct {
            input: Box::new(doc_select()),
            spec: vec![ConstructItem::LclText(LclId(42))],
        };
        assert_eq!(
            analyze(&broken).unwrap_err(),
            AnalyzeError::MissingClass { op: "Construct", lcl: LclId(42) }
        );
    }

    #[test]
    fn footprint_collects_docs_and_tags_and_tests_overlap() {
        let left = doc_select(); // a.xml, tags 10/11
        let mut apt = Apt::for_document("b.xml", LclId(10));
        apt.add(None, AxisRel::Descendant, MSpec::One, TagId(20), None, LclId(11));
        let right = Plan::Select { input: None, apt };
        let p = Plan::Join {
            left: Box::new(left),
            right: Box::new(right),
            spec: JoinSpec {
                root_lcl: LclId(20),
                right_mspec: MSpec::One,
                pred: Some(JoinPred::value(LclId(2), CmpOp::Eq, LclId(11))),
                dedup_right_on: None,
            },
        };
        let fp = plan_footprint(&p);
        assert!(fp.docs.contains("a.xml") && fp.docs.contains("b.xml"));
        for t in [10, 11] {
            assert!(fp.doc_tags["a.xml"].contains(&TagId(t)));
        }
        assert!(fp.doc_tags["b.xml"].contains(&TagId(20)));
        assert!(fp.overlaps("a.xml", &[TagId(10)]));
        assert!(!fp.overlaps("c.xml", &[TagId(10)]), "unread document never overlaps");
        assert!(!fp.overlaps("a.xml", &[TagId(99)]), "disjoint tags never overlap");
        // Per-document attribution: b.xml's tag does not spill into a.xml.
        assert!(!fp.overlaps("a.xml", &[TagId(20)]), "tags attribute to their own document");
        assert!(fp.overlaps("b.xml", &[TagId(20)]));
        // Axis steps: one descendant edge per side, one child edge on the left.
        assert_eq!(fp.descendant_steps, 2);
        assert_eq!(fp.child_steps, 1);
    }

    #[test]
    fn footprint_attributes_extension_and_filter_preds() {
        use crate::ops::filter::FilterMode;
        use crate::pattern::ContentPred;
        let mut ext = Apt::extending(LclId(2));
        ext.add(
            None,
            AxisRel::Child,
            MSpec::Opt,
            TagId(12),
            Some(ContentPred { op: CmpOp::Gt, value: PredValue::Num(25.0) }),
            LclId(4),
        );
        let p = Plan::Filter {
            input: Box::new(Plan::Select { input: Some(Box::new(doc_select())), apt: ext }),
            lcl: LclId(2),
            pred: FilterPred::Content(ContentPred {
                op: CmpOp::Eq,
                value: PredValue::Str("x".into()),
            }),
            mode: FilterMode::Every,
        };
        let fp = plan_footprint(&p);
        // The extension select's tag is attributed to the chain's document.
        assert!(fp.doc_tags["a.xml"].contains(&TagId(12)));
        assert!(fp.tags.is_empty(), "every tag is attributable in a verifiable plan");
        assert_eq!(fp.preds.len(), 2);
        assert!(fp.preds.iter().any(|p| p.tag == TagId(12) && p.op == CmpOp::Gt));
        assert!(fp.preds.iter().any(|p| p.tag == TagId(10) && p.op == CmpOp::Eq));
    }

    #[test]
    fn distinctness_tracks_singletons_and_facts() {
        // doc select: classes 2 (One) distinct witness; 3 (Many) not.
        let d = distinctness(&doc_select());
        assert!(d.atmost_one.contains(&LclId(1)) && d.atmost_one.contains(&LclId(2)));
        assert!(!d.atmost_one.contains(&LclId(3)));
        assert!(d.proves_distinct_on(&[LclId(2)]));
        assert!(!d.proves_distinct_on(&[LclId(3)]), "grouped classes never prove distinctness");
        assert!(!d.proves_distinct_on(&[LclId(1)]), "the shared document root is no witness");

        // A NodeId DupElim over class 2 is therefore provably redundant…
        let de = Plan::DupElim {
            input: Box::new(doc_select()),
            on: vec![LclId(2)],
            kind: DedupKind::NodeId,
        };
        assert!(distinctness(&Plan::Project { input: Box::new(de.clone()), keep: vec![LclId(2)] })
            .proves_distinct_on(&[LclId(2)]));

        // …but a Content DupElim proves nothing about identity.
        let dc = Plan::DupElim {
            input: Box::new(Plan::Shadow {
                input: Box::new(doc_select()),
                parent: LclId(2),
                child: LclId(3),
            }),
            on: vec![LclId(2)],
            kind: DedupKind::Content,
        };
        assert!(
            !distinctness(&dc).proves_distinct_on(&[LclId(2)]),
            "shadow fan-out repeats identity tuples"
        );
    }

    #[test]
    fn temp_classes_cover_join_aggregate_construct() {
        use xquery::AggFunc;
        let agg = Plan::Aggregate {
            input: Box::new(doc_select()),
            func: AggFunc::Count,
            over: LclId(3),
            new_lcl: LclId(4),
        };
        let c = Plan::Construct {
            input: Box::new(agg),
            spec: vec![ConstructItem::Element {
                tag: "out".into(),
                lcl: Some(LclId(5)),
                attrs: vec![],
                children: vec![ConstructItem::LclRef { lcl: LclId(3), hidden: false }],
            }],
        };
        let temps = temp_classes(&c);
        assert!(temps.contains(&LclId(4)) && temps.contains(&LclId(5)));
        assert!(!temps.contains(&LclId(2)), "pattern classes are store-sourced");
    }

    #[test]
    fn errors_display_the_offending_edge() {
        let e = AnalyzeError::MissingClass { op: "Sort", lcl: LclId(7) };
        assert_eq!(e.to_string(), "Sort references class (7), which its input does not produce");
        let e = AnalyzeError::JoinSideMissing { side: "right", lcl: LclId(3) };
        assert!(e.to_string().contains("right input"));
    }
}
