//! Seeded random generation of *valid* TLC plans.
//!
//! The generator is the supply side of the differential soundness oracle
//! (`experiments lintcheck`): it produces hundreds of structurally diverse
//! plans per run, every one of which passes [`crate::analyze::verify`] by
//! construction, so the oracle can compare what the static analyses claim
//! (cardinalities, distinctness, liveness, footprints) against what actually
//! happens when the plan executes. The same generator feeds the negative
//! plan-mutation tests: a valid plan is the starting point that mutations
//! then break.
//!
//! Generation strategy: start from a document-anchored Select whose APT is
//! grown randomly (axes, matching specifications, tags drawn from the
//! database's interner — including tags that occur in *other* documents,
//! which is what exercises the statically-empty-select lint), then attempt
//! up to four wrapper operators (Filter, extension Select, Project, DupElim,
//! Sort, Aggregate, Union, value Join) and optionally a final Construct.
//! Every candidate wrapper is gated by the verifier; rejected candidates are
//! simply skipped, so the output is always a well-typed plan. Class labels
//! are drawn from one monotone counter, keeping them plan-wide unique even
//! across the two sides of a Join.
//!
//! Determinism: the only entropy source is an inline splitmix64 stream
//! seeded by the caller, so a `(database, document, seed)` triple always
//! yields the same plan — which is what lets the oracle print reproducible
//! seeds for any violation it finds.

use crate::analyze::{self, Card};
use crate::logical_class::LclId;
use crate::ops::construct::ConstructItem;
use crate::ops::dupelim::DedupKind;
use crate::ops::filter::{FilterMode, FilterPred};
use crate::ops::join::{JoinPred, JoinSpec};
use crate::ops::sort::SortKey;
use crate::pattern::{Apt, ContentPred, MSpec, PredValue};
use crate::plan::Plan;
use xmldb::{AxisRel, Database, TagId};
use xquery::{AggFunc, CmpOp};

/// A generated plan plus the bookkeeping the oracle reports on.
#[derive(Debug, Clone)]
pub struct GenPlan {
    /// The plan; verified (`analyze::verify(..).is_ok()`) by construction.
    pub plan: Plan,
    /// How many wrapper operators were accepted on top of the base Select.
    pub wrappers: usize,
    /// The seed that produced this plan (echoed for reproducibility).
    pub seed: u64,
}

/// Generates one random, verifier-approved plan over `doc`.
///
/// `doc` must name a document loaded in `db` (the generator cannot
/// enumerate documents itself). Tags are drawn from the whole interner, so
/// patterns may test tags that never occur under `doc` — deliberately: those
/// are the plans the statically-empty-select lint must be sound on.
pub fn random_plan(db: &Database, doc: &str, seed: u64) -> GenPlan {
    let mut rng = Rng(seed);
    let tags = element_tags(db);
    let mut next = 1u32;
    let root_lcl = fresh(&mut next);
    let mut apt = Apt::for_document(doc, root_lcl);
    if !tags.is_empty() {
        grow_apt(&mut rng, &mut apt, &tags, &mut next, 3);
    }
    let mut plan = Plan::Select { input: None, apt };
    let mut wrappers = 0;
    for _ in 0..rng.below(5) {
        let Ok(t) = analyze::analyze(&plan) else { break };
        let temps = analyze::temp_classes(&plan);
        let classes: Vec<LclId> = t.classes.keys().copied().collect();
        let singles: Vec<LclId> =
            t.classes.iter().filter(|&(_, c)| *c != Card::Many).map(|(l, _)| *l).collect();
        let base: Vec<LclId> = classes.iter().copied().filter(|l| !temps.contains(l)).collect();
        let cand = match rng.below(8) {
            0 => wrap_filter(&mut rng, &plan, &classes, &singles),
            1 => wrap_ext_select(&mut rng, &plan, &tags, &base, &mut next),
            2 => wrap_project(&mut rng, &plan, &classes),
            3 => wrap_dupelim(&mut rng, &plan, &singles),
            4 => wrap_sort(&mut rng, &plan, &singles),
            5 => wrap_aggregate(&mut rng, &plan, &classes, &mut next),
            6 => wrap_union(&mut rng, &plan, &singles),
            _ => wrap_join(&mut rng, &plan, doc, &tags, &singles, &mut next),
        };
        if let Some(c) = cand {
            if analyze::verify(&c).is_ok() {
                plan = c;
                wrappers += 1;
            }
        }
    }
    if rng.chance(30) {
        if let Some(c) = wrap_construct(&mut rng, &plan, &mut next) {
            if analyze::verify(&c).is_ok() {
                plan = c;
                wrappers += 1;
            }
        }
    }
    debug_assert!(analyze::verify(&plan).is_ok());
    GenPlan { plan, wrappers, seed }
}

/// splitmix64 — the usual 64-bit mixer; tiny, dependency-free, and good
/// enough for structural fuzzing.
struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }

    fn chance(&mut self, pct: usize) -> bool {
        self.below(100) < pct
    }
}

fn fresh(next: &mut u32) -> LclId {
    let l = LclId(*next);
    *next += 1;
    l
}

fn pick<T: Copy>(rng: &mut Rng, xs: &[T]) -> Option<T> {
    if xs.is_empty() {
        None
    } else {
        Some(xs[rng.below(xs.len())])
    }
}

/// Every interned element tag: the document/text sentinels and attribute
/// tags (`@…`) are excluded, absent-in-this-document tags are kept.
fn element_tags(db: &Database) -> Vec<TagId> {
    let it = db.interner();
    let (doc, text) = (it.doc_tag(), it.text_tag());
    (0..it.len() as u32)
        .map(TagId)
        .filter(|&t| t != doc && t != text && !it.name(t).starts_with('@'))
        .collect()
}

fn random_pred(rng: &mut Rng) -> ContentPred {
    let op = [CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge][rng.below(6)];
    let value = if rng.chance(70) {
        PredValue::Num(rng.below(200) as f64)
    } else {
        PredValue::Str(["1", "a", "person0"][rng.below(3)].into())
    };
    ContentPred { op, value }
}

fn random_mspec(rng: &mut Rng) -> MSpec {
    match rng.below(100) {
        x if x < 35 => MSpec::One,
        x if x < 55 => MSpec::Opt,
        x if x < 85 => MSpec::Star,
        _ => MSpec::Plus,
    }
}

/// Adds 1..=`max_new` random pattern nodes, each attached to the anchor or
/// to a previously added node.
fn grow_apt(rng: &mut Rng, apt: &mut Apt, tags: &[TagId], next: &mut u32, max_new: usize) {
    let n = 1 + rng.below(max_new);
    let mut parents: Vec<Option<usize>> = vec![None];
    for _ in 0..n {
        let parent = parents[rng.below(parents.len())];
        let axis = if rng.chance(60) { AxisRel::Descendant } else { AxisRel::Child };
        let tag = tags[rng.below(tags.len())];
        let pred = if rng.chance(20) { Some(random_pred(rng)) } else { None };
        let lcl = fresh(next);
        let i = apt.add(parent, axis, random_mspec(rng), tag, pred, lcl);
        parents.push(Some(i));
    }
}

fn wrap_filter(rng: &mut Rng, plan: &Plan, classes: &[LclId], singles: &[LclId]) -> Option<Plan> {
    let lcl = pick(rng, classes)?;
    let mode = [FilterMode::Every, FilterMode::Alo, FilterMode::Ex][rng.below(3)];
    let pred = if rng.chance(20) && singles.len() >= 2 {
        // within-tree value comparison; `other` must be a singleton class
        let other = pick(rng, singles)?;
        let op = [CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Gt][rng.below(4)];
        FilterPred::CmpLcl { op, other }
    } else {
        FilterPred::Content(random_pred(rng))
    };
    Some(Plan::Filter { input: Box::new(plan.clone()), lcl, pred, mode })
}

fn wrap_ext_select(
    rng: &mut Rng,
    plan: &Plan,
    tags: &[TagId],
    base: &[LclId],
    next: &mut u32,
) -> Option<Plan> {
    if tags.is_empty() {
        return None;
    }
    // anchor on a base-data class only: temp members have no stored subtree
    // to navigate from
    let anchor = pick(rng, base)?;
    let mut apt = Apt::extending(anchor);
    grow_apt(rng, &mut apt, tags, next, 2);
    Some(Plan::Select { input: Some(Box::new(plan.clone())), apt })
}

fn wrap_project(rng: &mut Rng, plan: &Plan, classes: &[LclId]) -> Option<Plan> {
    let mut keep: Vec<LclId> = classes.iter().copied().filter(|_| rng.chance(60)).collect();
    if keep.is_empty() {
        keep.push(pick(rng, classes)?);
    }
    Some(Plan::Project { input: Box::new(plan.clone()), keep })
}

fn wrap_dupelim(rng: &mut Rng, plan: &Plan, singles: &[LclId]) -> Option<Plan> {
    // keys are drawn from One/Opt-card classes so the executor's singleton
    // requirement is met by the analyzer's own claim (which the conformance
    // oracle independently checks)
    let first = pick(rng, singles)?;
    let mut on = vec![first];
    if singles.len() > 1 && rng.chance(40) {
        let second = pick(rng, singles)?;
        if second != first {
            on.push(second);
        }
    }
    on.sort();
    let kind = if rng.chance(80) { DedupKind::NodeId } else { DedupKind::Content };
    Some(Plan::DupElim { input: Box::new(plan.clone()), on, kind })
}

fn wrap_sort(rng: &mut Rng, plan: &Plan, singles: &[LclId]) -> Option<Plan> {
    let n = 1 + rng.below(2);
    let mut keys = Vec::new();
    for _ in 0..n {
        keys.push(SortKey { lcl: pick(rng, singles)?, descending: rng.chance(30) });
    }
    Some(Plan::Sort { input: Box::new(plan.clone()), keys })
}

fn wrap_aggregate(rng: &mut Rng, plan: &Plan, classes: &[LclId], next: &mut u32) -> Option<Plan> {
    let over = pick(rng, classes)?;
    let func = if rng.chance(70) { AggFunc::Count } else { AggFunc::Sum };
    let new_lcl = fresh(next);
    Some(Plan::Aggregate { input: Box::new(plan.clone()), func, over, new_lcl })
}

fn wrap_union(rng: &mut Rng, plan: &Plan, singles: &[LclId]) -> Option<Plan> {
    let dedup_on = if rng.chance(50) {
        pick(rng, singles).map(|l| vec![l]).unwrap_or_default()
    } else {
        Vec::new()
    };
    Some(Plan::Union { inputs: vec![plan.clone(), plan.clone()], dedup_on })
}

fn wrap_join(
    rng: &mut Rng,
    plan: &Plan,
    doc: &str,
    tags: &[TagId],
    singles: &[LclId],
    next: &mut u32,
) -> Option<Plan> {
    if tags.is_empty() {
        return None;
    }
    let left_key = pick(rng, singles)?;
    let mut right_apt = Apt::for_document(doc, fresh(next));
    grow_apt(rng, &mut right_apt, tags, next, 2);
    let right = Plan::Select { input: None, apt: right_apt };
    let rt = analyze::analyze(&right).ok()?;
    let right_singles: Vec<LclId> =
        rt.classes.iter().filter(|&(_, c)| *c != Card::Many).map(|(l, _)| *l).collect();
    let right_key = pick(rng, &right_singles)?;
    let root_lcl = fresh(next);
    let right_mspec = [MSpec::One, MSpec::Opt, MSpec::Star, MSpec::Plus][rng.below(4)];
    // biased toward Eq: inequality joins are near-cross-products
    let op = if rng.chance(70) { CmpOp::Eq } else { [CmpOp::Lt, CmpOp::Gt][rng.below(2)] };
    Some(Plan::Join {
        left: Box::new(plan.clone()),
        right: Box::new(right),
        spec: JoinSpec {
            root_lcl,
            right_mspec,
            pred: Some(JoinPred::value(left_key, op, right_key)),
            dedup_right_on: None,
        },
    })
}

fn wrap_construct(rng: &mut Rng, plan: &Plan, next: &mut u32) -> Option<Plan> {
    let t = analyze::analyze(plan).ok()?;
    // never reference the current tree root: for a plain document select that
    // is the doc root, and copying a whole document dwarfs everything else
    let picks: Vec<LclId> = t.classes.keys().copied().filter(|l| Some(*l) != t.root).collect();
    let content = pick(rng, &picks)?;
    let elem_lcl = fresh(next);
    let child = if rng.chance(60) {
        ConstructItem::LclRef { lcl: content, hidden: false }
    } else {
        ConstructItem::LclText(content)
    };
    let spec = vec![ConstructItem::Element {
        tag: "result".into(),
        lcl: Some(elem_lcl),
        attrs: Vec::new(),
        children: vec![child],
    }];
    Some(Plan::Construct { input: Box::new(plan.clone()), spec })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> Database {
        let mut db = Database::new();
        db.load_xml(
            "auction.xml",
            r#"<site><people>
                 <person id="person0"><name>Ann</name><age>30</age></person>
                 <person id="person1"><name>Bo</name><age>17</age></person>
                 <person id="person2"><name>Cy</name></person>
               </people>
               <regions><europe>
                 <item id="item0"><name>gold watch</name><price>120</price></item>
                 <item id="item1"><name>tin cup</name><price>1</price></item>
               </europe></regions></site>"#,
        )
        .unwrap();
        // a second document so the tag pool contains names absent from
        // auction.xml — the statically-empty-select scenario
        db.load_xml("other.xml", "<catalog><entry>x</entry></catalog>").unwrap();
        db
    }

    #[test]
    fn same_seed_same_plan() {
        let db = db();
        for seed in 0..20 {
            let a = random_plan(&db, "auction.xml", seed);
            let b = random_plan(&db, "auction.xml", seed);
            assert_eq!(a.plan, b.plan, "seed {seed}");
        }
    }

    #[test]
    fn every_generated_plan_verifies() {
        let db = db();
        for seed in 0..300 {
            let g = random_plan(&db, "auction.xml", seed);
            assert!(
                analyze::verify(&g.plan).is_ok(),
                "seed {seed} produced an unverifiable plan:\n{}",
                g.plan.display(Some(&db))
            );
        }
    }

    #[test]
    fn generated_plans_execute_and_prune_byte_identically() {
        let db = db();
        for seed in 0..120 {
            let g = random_plan(&db, "auction.xml", seed);
            // execution runs the debug conformance hook on every operator
            let out = crate::execute_to_string(&db, &g.plan)
                .unwrap_or_else(|e| panic!("seed {seed} failed at runtime: {e}"));
            let (pruned, _) = crate::rewrite::prune_with_report(&g.plan);
            assert!(analyze::verify(&pruned).is_ok(), "seed {seed}: pruned plan unverifiable");
            let pruned_out = crate::execute_to_string(&db, &pruned)
                .unwrap_or_else(|e| panic!("seed {seed} pruned failed at runtime: {e}"));
            assert_eq!(out, pruned_out, "seed {seed}: pruning changed the output");
        }
    }

    #[test]
    fn generator_covers_wrappers_and_construct() {
        let db = db();
        let mut multi_wrapper = 0;
        let mut constructs = 0;
        for seed in 0..300 {
            let g = random_plan(&db, "auction.xml", seed);
            if g.wrappers >= 2 {
                multi_wrapper += 1;
            }
            if matches!(g.plan, Plan::Construct { .. }) {
                constructs += 1;
            }
        }
        assert!(multi_wrapper > 30, "only {multi_wrapper} plans had ≥2 wrappers");
        assert!(constructs > 10, "only {constructs} plans ended in Construct");
    }
}
