//! Static lint diagnostics over verified plans.
//!
//! Where [`mod@crate::analyze`] rejects *invalid* plans, the linter warns about
//! *suspicious-but-valid* ones: work the plan provably does not need, or
//! patterns that can never produce a result against the target database.
//! Each warning is a structured [`Lint`] so callers (the `.explain`
//! protocol command, `.metrics` counters) can render or count them without
//! parsing text. Lints never change a plan — the analysis-justified
//! rewrites in [`crate::rewrite`] do that, and the overlap is intentional:
//! a lint names what the optimizer *would* remove.

use crate::analyze;
use crate::logical_class::LclId;
use crate::ops::dupelim::DedupKind;
use crate::ops::filter::FilterPred;
use crate::pattern::{Apt, AptRoot, PredValue};
use crate::plan::Plan;
use crate::rewrite;
use std::fmt;
use xmldb::Database;
use xquery::CmpOp;

/// The category of a lint warning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LintCode {
    /// A Select matches a tag with no occurrence in the database's tag
    /// index: the pattern node can never match, and if it sits on a
    /// required (`-`/`+`) path the whole query is statically empty.
    EmptySelect,
    /// Two value predicates over the same class are mutually
    /// unsatisfiable (e.g. `= 3` and `> 5`).
    ContradictoryPredicates,
    /// A NodeId DupElim whose input [`analyze::distinctness`] proves
    /// already distinct on the key — a provable no-op.
    RedundantDupElim,
    /// A Project keeps a class no downstream operator reads.
    DeadProjectColumn,
}

impl LintCode {
    /// Stable kebab-case slug used in rendered diagnostics.
    pub fn slug(self) -> &'static str {
        match self {
            LintCode::EmptySelect => "empty-select",
            LintCode::ContradictoryPredicates => "contradictory-predicates",
            LintCode::RedundantDupElim => "redundant-dupelim",
            LintCode::DeadProjectColumn => "dead-project-column",
        }
    }
}

/// One structured lint warning.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lint {
    /// What kind of problem this is.
    pub code: LintCode,
    /// Human-readable description naming the offending class/tag.
    pub message: String,
}

impl fmt::Display for Lint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "warning[{}]: {}", self.code.slug(), self.message)
    }
}

/// Runs every lint over `plan` against `db`'s indexes. Order is stable:
/// empty selects, contradictory predicates, redundant DupElims, dead
/// Project columns.
pub fn lint(plan: &Plan, db: &Database) -> Vec<Lint> {
    let mut out = Vec::new();
    lint_empty_selects(plan, db, &mut out);
    lint_contradictory_predicates(plan, db, &mut out);
    lint_redundant_dupelims(plan, &mut out);
    lint_dead_project_columns(plan, &mut out);
    out
}

fn for_each_op(plan: &Plan, f: &mut impl FnMut(&Plan)) {
    f(plan);
    for i in plan.inputs() {
        for_each_op(i, f);
    }
}

// ---------------------------------------------------------------------
// empty-select
// ---------------------------------------------------------------------

fn lint_empty_selects(plan: &Plan, db: &Database, out: &mut Vec<Lint>) {
    for_each_op(plan, &mut |p| {
        let Plan::Select { input, apt } = p else { return };
        for (i, node) in apt.nodes.iter().enumerate() {
            let name = db.interner().name(node.tag);
            if !db.nodes_with_tag(&name).is_empty() {
                continue;
            }
            let required =
                required_path(apt, i) && anchor_always_present(&apt.root, input.as_deref());
            let consequence = if required {
                "the pattern is on a required path, so the result is statically empty"
            } else {
                "the branch can never match"
            };
            let target = match &apt.root {
                AptRoot::Document { name, .. } => format!("document {name}"),
                AptRoot::Lcl(l) => format!("extension of class {l}"),
            };
            out.push(Lint {
                code: LintCode::EmptySelect,
                message: format!(
                    "select over {target} matches tag '{name}' (class {}) which is absent \
                     from the tag index; {consequence}",
                    node.lcl
                ),
            });
        }
    });
}

/// Whether every input tree is guaranteed to contain an anchor member for
/// the select's pattern. Document-rooted selects always anchor (the match
/// starts at the document root); extension selects only when the input
/// type pins the anchor class to exactly one member per tree. Without this
/// guarantee a tree with *no* anchor member passes through the select
/// vacuously, so even an unmatchable required pattern does not make the
/// result statically empty — the differential oracle caught exactly that
/// over-claim on random plans with `?`-card anchors.
fn anchor_always_present(root: &AptRoot, input: Option<&Plan>) -> bool {
    match root {
        AptRoot::Document { .. } => true,
        AptRoot::Lcl(anchor) => input
            .and_then(|p| analyze::analyze(p).ok())
            .is_some_and(|t| t.classes.get(anchor) == Some(&analyze::Card::One)),
    }
}

/// Is node `i` reachable from the anchor over non-optional (`-`/`+`)
/// edges only? Then zero matches for it drop every tree.
fn required_path(apt: &Apt, i: usize) -> bool {
    let mut cur = Some(i);
    while let Some(c) = cur {
        if apt.nodes[c].mspec.optional() {
            return false;
        }
        cur = apt.nodes[c].parent;
    }
    true
}

// ---------------------------------------------------------------------
// contradictory-predicates
// ---------------------------------------------------------------------

fn lint_contradictory_predicates(plan: &Plan, db: &Database, out: &mut Vec<Lint>) {
    // Gather every (op, value) constraint per class: APT node predicates
    // (members satisfy them by construction) plus content Filters.
    let mut preds: Vec<(LclId, CmpOp, PredValue)> = Vec::new();
    for_each_op(plan, &mut |p| match p {
        Plan::Select { apt, .. } => {
            for node in &apt.nodes {
                if let Some(pr) = &node.pred {
                    preds.push((node.lcl, pr.op, pr.value.clone()));
                }
            }
            lint_sibling_contradictions(apt, db, out);
        }
        Plan::Filter { lcl, pred: FilterPred::Content(pr), .. } => {
            preds.push((*lcl, pr.op, pr.value.clone()));
        }
        _ => {}
    });
    let mut classes: Vec<LclId> = preds.iter().map(|(l, _, _)| *l).collect();
    classes.sort();
    classes.dedup();
    for lcl in classes {
        let own: Vec<(CmpOp, PredValue)> =
            preds.iter().filter(|(l, _, _)| *l == lcl).map(|(_, op, v)| (*op, v.clone())).collect();
        if let Some((a, b)) = find_contradiction(&own) {
            out.push(Lint {
                code: LintCode::ContradictoryPredicates,
                message: format!(
                    "class {lcl} has mutually unsatisfiable value predicates: \
                     {} vs {}",
                    render_pred(&a),
                    render_pred(&b)
                ),
            });
        }
    }
}

/// The translator gives every path expression its own pattern node, so
/// `$p/age > 40 AND $p/age < 10` becomes two *sibling* APT nodes over the
/// same tag whose predicates draw from one candidate set. Flag sibling
/// same-tag nodes under the same parent with jointly unsatisfiable
/// predicates: no single element can satisfy both (distinct siblings still
/// could, hence a warning, not a rewrite).
fn lint_sibling_contradictions(apt: &Apt, db: &Database, out: &mut Vec<Lint>) {
    use std::collections::BTreeMap;
    // Grouping key: (parent slot, descendant axis?, tag id).
    type SiblingKey = (Option<usize>, bool, u32);
    let mut groups: BTreeMap<SiblingKey, Vec<(CmpOp, PredValue)>> = BTreeMap::new();
    for node in &apt.nodes {
        if let Some(pr) = &node.pred {
            let desc = matches!(node.axis, xmldb::AxisRel::Descendant);
            groups
                .entry((node.parent, desc, node.tag.0))
                .or_default()
                .push((pr.op, pr.value.clone()));
        }
    }
    for ((_, _, tag), own) in groups {
        if own.len() < 2 {
            continue;
        }
        if let Some((a, b)) = find_contradiction(&own) {
            let name = db.interner().name(xmldb::TagId(tag));
            out.push(Lint {
                code: LintCode::ContradictoryPredicates,
                message: format!(
                    "sibling pattern nodes on tag '{name}' carry mutually unsatisfiable \
                     predicates ({} vs {}): no single element satisfies both",
                    render_pred(&a),
                    render_pred(&b)
                ),
            });
        }
    }
}

fn render_pred((op, v): &(CmpOp, PredValue)) -> String {
    let sym = match op {
        CmpOp::Eq => "=",
        CmpOp::Ne => "!=",
        CmpOp::Lt => "<",
        CmpOp::Le => "<=",
        CmpOp::Gt => ">",
        CmpOp::Ge => ">=",
        CmpOp::Contains => "contains",
    };
    match v {
        PredValue::Num(n) => format!("{sym} {n}"),
        PredValue::Str(s) => format!("{sym} '{s}'"),
    }
}

type PredPair = ((CmpOp, PredValue), (CmpOp, PredValue));

/// Finds one pair of jointly unsatisfiable constraints, if any: two
/// distinct equalities, or an empty numeric interval.
fn find_contradiction(preds: &[(CmpOp, PredValue)]) -> Option<PredPair> {
    for (i, a) in preds.iter().enumerate() {
        for b in &preds[i + 1..] {
            let clash = match (a, b) {
                ((CmpOp::Eq, x), (CmpOp::Eq, y)) => {
                    std::mem::discriminant(x) == std::mem::discriminant(y) && x != y
                }
                _ => numeric_clash(a, b),
            };
            if clash {
                return Some((a.clone(), b.clone()));
            }
        }
    }
    None
}

/// Do two numeric range constraints exclude each other?
fn numeric_clash(a: &(CmpOp, PredValue), b: &(CmpOp, PredValue)) -> bool {
    let bounds = |p: &(CmpOp, PredValue)| -> Option<(f64, bool, f64, bool)> {
        let PredValue::Num(n) = p.1 else { return None };
        // (lower, lower-strict, upper, upper-strict)
        Some(match p.0 {
            CmpOp::Eq => (n, false, n, false),
            CmpOp::Gt => (n, true, f64::INFINITY, false),
            CmpOp::Ge => (n, false, f64::INFINITY, false),
            CmpOp::Lt => (f64::NEG_INFINITY, false, n, true),
            CmpOp::Le => (f64::NEG_INFINITY, false, n, false),
            CmpOp::Ne | CmpOp::Contains => return None,
        })
    };
    let (Some((alo, als, ahi, ahs)), Some((blo, bls, bhi, bhs))) = (bounds(a), bounds(b)) else {
        return false;
    };
    let lo = alo.max(blo);
    let lo_strict = (als && lo == alo) || (bls && lo == blo);
    let hi = ahi.min(bhi);
    let hi_strict = (ahs && hi == ahi) || (bhs && hi == bhi);
    lo > hi || (lo == hi && (lo_strict || hi_strict))
}

// ---------------------------------------------------------------------
// redundant-dupelim / dead-project-column
// ---------------------------------------------------------------------

fn lint_redundant_dupelims(plan: &Plan, out: &mut Vec<Lint>) {
    for_each_op(plan, &mut |p| {
        let Plan::DupElim { input, on, kind } = p else { return };
        if *kind == DedupKind::NodeId && analyze::distinctness(input).proves_distinct_on(on) {
            let keys: Vec<String> = on.iter().map(|l| l.to_string()).collect();
            out.push(Lint {
                code: LintCode::RedundantDupElim,
                message: format!(
                    "duplicate elimination on [{}] is a provable no-op: the input is \
                     already distinct on the key",
                    keys.join(", ")
                ),
            });
        }
    });
}

fn lint_dead_project_columns(plan: &Plan, out: &mut Vec<Lint>) {
    let (_, report) = rewrite::prune_with_report(plan);
    for lcl in report.dead_project_columns {
        out.push(Lint {
            code: LintCode::DeadProjectColumn,
            message: format!("Project keeps class {lcl} but nothing downstream reads it"),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> Database {
        let mut db = Database::new();
        db.load_xml("a.xml", "<site><person><age>30</age><name>Ann</name></person></site>")
            .unwrap();
        db
    }

    #[test]
    fn empty_select_fires_on_absent_tag() {
        let db = db();
        // Interning works through `&self`, so compiling a query over an
        // unknown tag succeeds — the tag just has no postings.
        let plan = crate::compile(r#"FOR $z IN document("a.xml")//zzz RETURN $z"#, &db).unwrap();
        let lints = lint(&plan, &db);
        let empty: Vec<_> = lints.iter().filter(|l| l.code == LintCode::EmptySelect).collect();
        assert!(!empty.is_empty(), "{lints:?}");
        assert!(empty[0].message.contains("statically empty"), "{}", empty[0].message);
    }

    #[test]
    fn contradictory_predicates_fire_across_select_and_filter() {
        let db = db();
        let plan = crate::compile(
            r#"FOR $p IN document("a.xml")//person WHERE $p/age > 40 AND $p/age < 10 RETURN $p"#,
            &db,
        )
        .unwrap();
        let lints = lint(&plan, &db);
        assert!(lints.iter().any(|l| l.code == LintCode::ContradictoryPredicates), "{lints:?}");
    }

    #[test]
    fn equal_string_predicates_do_not_clash_with_themselves() {
        assert!(find_contradiction(&[
            (CmpOp::Eq, PredValue::Str("a".into())),
            (CmpOp::Eq, PredValue::Str("a".into())),
        ])
        .is_none());
        assert!(find_contradiction(&[
            (CmpOp::Eq, PredValue::Str("a".into())),
            (CmpOp::Eq, PredValue::Str("b".into())),
        ])
        .is_some());
        // Feasible and infeasible intervals.
        assert!(find_contradiction(&[
            (CmpOp::Gt, PredValue::Num(3.0)),
            (CmpOp::Le, PredValue::Num(9.0)),
        ])
        .is_none());
        assert!(find_contradiction(&[
            (CmpOp::Gt, PredValue::Num(3.0)),
            (CmpOp::Lt, PredValue::Num(3.0)),
        ])
        .is_some());
        assert!(find_contradiction(&[
            (CmpOp::Ge, PredValue::Num(3.0)),
            (CmpOp::Le, PredValue::Num(3.0)),
        ])
        .is_none());
        assert!(find_contradiction(&[
            (CmpOp::Eq, PredValue::Num(5.0)),
            (CmpOp::Gt, PredValue::Num(5.0)),
        ])
        .is_some());
    }

    #[test]
    fn redundant_dupelim_fires_on_single_variable_query() {
        let db = db();
        let plan = crate::compile(r#"FOR $s IN document("a.xml")/site RETURN $s"#, &db).unwrap();
        let lints = lint(&plan, &db);
        assert!(lints.iter().any(|l| l.code == LintCode::RedundantDupElim), "{lints:?}");
        // A display round trip carries the slug.
        let rendered = lints.iter().map(ToString::to_string).collect::<Vec<_>>().join("\n");
        assert!(rendered.contains("warning[redundant-dupelim]"), "{rendered}");
    }
}
