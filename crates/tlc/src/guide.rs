//! A guided tour of the TLC algebra (documentation only — no code).
//!
//! This module walks through the paper's core ideas with small, runnable
//! examples. Every code block below is a doctest; `cargo test` executes
//! them all.
//!
//! # 1. The problem: heterogeneous sets
//!
//! XML collections are heterogeneous — `book` elements may have one author
//! or five, an optional price, and so on. Bulk algebras want homogeneous
//! inputs. Classical pattern trees force homogeneity by *fanning out*: a
//! two-node pattern `book/author` produces one witness tree per (book,
//! author) *pair*, losing the original clustering.
//!
//! # 2. Annotated pattern trees
//!
//! TLC's pattern edges carry a matching specification. `-` fans out like a
//! classical pattern; `+`/`*` cluster all matching relatives into a single
//! witness tree; `?`/`*` make the branch optional:
//!
//! ```
//! use tlc::{Apt, LclId, MSpec, Plan};
//! use xmldb::AxisRel;
//!
//! let mut db = xmldb::Database::new();
//! db.load_xml("lib.xml",
//!     "<lib>\
//!        <book><author>A</author><author>B</author><price>9</price></book>\
//!        <book><author>C</author></book>\
//!      </lib>").unwrap();
//! let tag = |n: &str| db.interner().lookup(n).unwrap();
//!
//! // book[-] with author[+] and price[?]
//! let mut apt = Apt::for_document("lib.xml", LclId(1));
//! let book = apt.add(None, AxisRel::Descendant, MSpec::One, tag("book"), None, LclId(2));
//! apt.add(Some(book), AxisRel::Child, MSpec::Plus, tag("author"), None, LclId(3));
//! apt.add(Some(book), AxisRel::Child, MSpec::Opt, tag("price"), None, LclId(4));
//!
//! let (trees, _) = tlc::execute(&db, &Plan::Select { input: None, apt }).unwrap();
//! assert_eq!(trees.len(), 2, "one witness tree per book, not per (book, author)");
//! assert_eq!(trees[0].members(LclId(3)).len(), 2, "authors clustered by '+'");
//! assert_eq!(trees[1].members(LclId(4)).len(), 0, "missing price allowed by '?'");
//! ```
//!
//! # 3. Logical classes
//!
//! The witness trees above are heterogeneous (2 authors vs 1, price vs no
//! price) — but every node carries the *logical class* of the pattern node
//! it matched, so operators address "the authors" uniformly with
//! `members(LclId(3))`. That indirection is the paper's central idea: the
//! logical class reduction of any witness tree is isomorphic to the
//! pattern, hence homogeneous.
//!
//! # 4. From XQuery to plans
//!
//! The Figure 6 translator compiles the paper's FLWOR fragment into plans
//! of these operators:
//!
//! ```
//! let mut db = xmldb::Database::new();
//! db.load_xml("lib.xml",
//!     "<lib>\
//!        <book><author>A</author><author>B</author><price>9</price></book>\
//!        <book><author>C</author></book>\
//!      </lib>").unwrap();
//!
//! let plan = tlc::compile(
//!     r#"FOR $b IN document("lib.xml")//book
//!        WHERE count($b/author) > 1
//!        RETURN <hit>{$b/author}</hit>"#,
//!     &db,
//! ).unwrap();
//! assert_eq!(
//!     tlc::execute_to_string(&db, &plan).unwrap(),
//!     "<hit><author>A</author><author>B</author></hit>",
//! );
//! ```
//!
//! # 5. Eliminating redundancy
//!
//! When a query uses the same tag under different edge annotations (a
//! count *and* a join through `author`, say), naive plans access those
//! nodes twice. The §4 rewrites remove the duplication:
//!
//! ```
//! let mut db = xmldb::Database::new();
//! db.load_xml("lib.xml",
//!     r#"<lib>
//!          <book><author ref="a"/><author ref="b"/><title>X</title></book>
//!          <book><author ref="a"/><title>Y</title></book>
//!          <person id="a"/><person id="b"/>
//!        </lib>"#).unwrap();
//! let plan = tlc::compile(
//!     r#"FOR $p IN document("lib.xml")//person
//!        FOR $b IN document("lib.xml")//book
//!        WHERE count($b/author) > 1 AND $p/@id = $b/author/@ref
//!        RETURN <r>{$b/author}</r>"#,
//!     &db,
//! ).unwrap();
//! let optimized = tlc::rewrite::optimize(&plan);
//! // Same answers…
//! assert_eq!(
//!     tlc::execute_to_string(&db, &plan).unwrap(),
//!     tlc::execute_to_string(&db, &optimized).unwrap(),
//! );
//! // …fewer data accesses.
//! let (_, plain) = tlc::execute(&db, &plan).unwrap();
//! let (_, opt) = tlc::execute(&db, &optimized).unwrap();
//! assert!(opt.nodes_inspected < plain.nodes_inspected);
//! ```
//!
//! # 6. Comparing against the baselines
//!
//! The same query can be compiled in TAX or GTP style (see
//! [`crate::Style`]); the plans share this crate's executor but pay the
//! grouping-procedure and materialization costs those algebras require:
//!
//! ```
//! use tlc::Style;
//! let mut db = xmldb::Database::new();
//! db.load_xml("lib.xml",
//!     "<lib><book><author>A</author><author>B</author></book></lib>").unwrap();
//! let q = r#"FOR $b IN document("lib.xml")//book RETURN <n>{count($b/author)}</n>"#;
//! let tlc_out = tlc::execute_to_string(&db, &tlc::compile(q, &db).unwrap()).unwrap();
//! for style in [Style::Gtp, Style::Tax] {
//!     let plan = tlc::compile_with_style(q, &db, style).unwrap();
//!     assert_eq!(tlc::execute_to_string(&db, &plan).unwrap(), tlc_out);
//! }
//! ```
//!
//! # 7. Where to go next
//!
//! * [`crate::pattern`] — APT construction and matching specifications.
//! * [`mod@crate::translate`] — the full Figure 6 algorithm.
//! * [`crate::rewrite`] — Flatten and Shadow/Illuminate.
//! * [`crate::physical`] — structural joins, nest-joins, TwigStack.
//! * `examples/` and the `tlc-shell` binary for interactive exploration.
