//! Errors raised during plan construction and execution.

use crate::analyze::AnalyzeError;
use crate::logical_class::LclId;
use std::fmt;

/// Execution/translation errors.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// A pattern referenced a document that is not loaded.
    UnknownDocument(String),
    /// An operator required a singleton logical class but found `found`
    /// members (paper §2.3: "others require that the logical class comprise
    /// a singleton set of nodes in each tree, else they generate an error").
    NotSingleton {
        /// The offending class.
        lcl: LclId,
        /// How many visible members there were.
        found: usize,
    },
    /// A pattern extension was anchored at a temporary node, which has no
    /// stored subtree to match into.
    TempAnchor(LclId),
    /// The query used a feature outside the supported fragment.
    Unsupported(String),
    /// A variable was referenced but never bound.
    UnboundVariable(String),
    /// Execution exceeded its wall-clock deadline (see
    /// [`crate::exec::execute_with_deadline`]). The executor checks the
    /// deadline between operators, so the abort is clean: no partial results
    /// escape, and the store is untouched.
    DeadlineExceeded,
    /// Execution was cancelled cooperatively: a sibling shard of the same
    /// request failed or hit the deadline first and raised the shared
    /// cancellation flag (see [`mod@crate::par`]). Like a deadline abort,
    /// the cut is clean — no partial results escape.
    Cancelled,
    /// The static LC dataflow analysis ([`mod@crate::analyze`]) rejected the
    /// plan: some operator references a logical class its input does not
    /// produce.
    Analyze(AnalyzeError),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::UnknownDocument(d) => write!(f, "unknown document {d:?}"),
            Error::NotSingleton { lcl, found } => {
                write!(f, "logical class {lcl} must be a singleton but has {found} members")
            }
            Error::TempAnchor(lcl) => {
                write!(f, "cannot extend pattern from temporary nodes in class {lcl}")
            }
            Error::Unsupported(m) => write!(f, "unsupported query feature: {m}"),
            Error::UnboundVariable(v) => write!(f, "unbound variable ${v}"),
            Error::DeadlineExceeded => write!(f, "execution exceeded its deadline"),
            Error::Cancelled => write!(f, "execution cancelled by a sibling shard"),
            Error::Analyze(e) => write!(f, "plan failed LC dataflow analysis: {e}"),
        }
    }
}

impl std::error::Error for Error {}

/// Result alias for the crate.
pub type Result<T> = std::result::Result<T, Error>;
